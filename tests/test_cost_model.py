"""Unit tests for repro.core.cost_model (Sec. III-B cost formulas)."""

import pytest

from repro.core.cost_model import (
    compare_costs,
    orthonormalization_inner_products,
    rom_nonzeros,
    simulation_flops,
    sweep_cost_model,
)
from repro.exceptions import ValidationError


class TestFormulas:
    def test_orthonormalization_counts(self):
        m, l = 51, 6
        assert orthonormalization_inner_products(m, l, "BDSM") \
            == m * l * (l - 1) // 2
        assert orthonormalization_inner_products(m, l, "PRIMA") \
            == m * l * (m * l - 1) // 2

    def test_rom_nonzeros(self):
        m, l = 10, 4
        assert rom_nonzeros(m, l, "BDSM") == 2 * m * l * l + m * l
        assert rom_nonzeros(m, l, "PRIMA") == 2 * (m * l) ** 2 + m * l * m

    def test_simulation_flops(self):
        m, l = 7, 3
        assert simulation_flops(m, l, "BDSM") == m * l ** 3
        assert simulation_flops(m, l, "PRIMA") == (m * l) ** 3

    def test_paper_million_x_example(self):
        # "if m = 1000, the BDSM ROM is expected to enjoy a 1e6x speedup"
        comparison = compare_costs(1000, 6)
        assert comparison.simulation_speedup == pytest.approx(1e6)

    def test_single_port_degenerates_to_parity(self):
        comparison = compare_costs(1, 5)
        assert comparison.simulation_speedup == pytest.approx(1.0)
        assert comparison.ortho_speedup >= 1.0

    def test_invalid_method(self):
        with pytest.raises(ValidationError):
            rom_nonzeros(4, 2, "EKS")

    def test_invalid_sizes(self):
        with pytest.raises(ValidationError):
            simulation_flops(0, 2)


class TestComparisonAndSweep:
    def test_speedups_grow_with_ports(self):
        small = compare_costs(10, 6)
        large = compare_costs(100, 6)
        assert large.ortho_speedup > small.ortho_speedup
        assert large.storage_ratio > small.storage_ratio
        assert large.simulation_speedup > small.simulation_speedup

    def test_as_row_keys(self):
        row = compare_costs(10, 6).as_row()
        assert {"m", "l", "ortho speedup", "storage ratio",
                "sim speedup"} <= set(row)

    def test_sweep_shape(self):
        results = sweep_cost_model([10, 100], [4, 8, 12])
        assert len(results) == 6
        assert {(r.m, r.l) for r in results} == {
            (10, 4), (10, 8), (10, 12), (100, 4), (100, 8), (100, 12)}
