"""Tests for the repro.perf subsystem (timers, bench runner, workloads)."""

import json
import threading

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.perf import (
    BenchmarkRunner,
    PerfRegistry,
    check_regressions,
    default_registry,
    increment_counter,
    load_results,
    scoped_timer,
)
from repro.perf.bench import format_workloads, write_results
from repro.perf.workloads import run_workloads, workload_names


class TestPerfRegistry:
    def test_timer_records_durations(self):
        registry = PerfRegistry()
        with registry.timer("work"):
            pass
        with registry.timer("work"):
            pass
        stat = registry.timers()["work"]
        assert stat.count == 2
        assert stat.total_seconds >= 0.0
        assert stat.min_seconds <= stat.max_seconds
        assert stat.mean_seconds == pytest.approx(stat.total_seconds / 2)

    def test_timer_records_on_exception(self):
        registry = PerfRegistry()
        with pytest.raises(RuntimeError):
            with registry.timer("broken"):
                raise RuntimeError("boom")
        assert registry.timers()["broken"].count == 1

    def test_counters(self):
        registry = PerfRegistry()
        registry.increment("solves")
        registry.increment("solves", 4)
        assert registry.counters() == {"solves": 5}

    def test_snapshot_and_reset(self):
        registry = PerfRegistry()
        with registry.timer("t"):
            pass
        registry.increment("c", 2)
        snap = registry.snapshot()
        assert snap["timers"]["t"]["count"] == 1
        assert snap["counters"] == {"c": 2}
        json.dumps(snap)  # snapshot must be JSON-serialisable
        registry.reset()
        assert registry.snapshot() == {"timers": {}, "counters": {}}

    def test_thread_safety(self):
        registry = PerfRegistry()

        def work():
            for _ in range(200):
                registry.increment("n")
                registry.record_timer("t", 1e-9)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.counters()["n"] == 800
        assert registry.timers()["t"].count == 800

    def test_module_level_helpers_use_default_registry(self):
        registry = default_registry()
        before = registry.counters().get("perf-test-counter", 0)
        increment_counter("perf-test-counter")
        with scoped_timer("perf-test-timer"):
            pass
        assert registry.counters()["perf-test-counter"] == before + 1
        assert registry.timers()["perf-test-timer"].count >= 1

    def test_reducers_record_into_default_registry(self, rc_grid_system):
        from repro.core.bdsm import bdsm_reduce
        registry = default_registry()
        before = registry.timers().get("bdsm.cluster_bases")
        before_count = before.count if before else 0
        bdsm_reduce(rc_grid_system, 2)
        after = registry.timers()["bdsm.cluster_bases"]
        assert after.count > before_count


class TestBenchmarkRunner:
    def test_time_callable_best_of(self):
        runner = BenchmarkRunner(repeats=3)
        calls = []
        seconds = runner.time_callable(lambda: calls.append(1))
        assert len(calls) == 3
        assert seconds >= 0.0

    def test_setup_runs_outside_timing(self):
        runner = BenchmarkRunner(repeats=2)
        order = []
        runner.time_callable(lambda: order.append("run"),
                             setup=lambda: order.append("setup"))
        assert order == ["setup", "run", "setup", "run"]

    def test_invalid_repeats(self):
        with pytest.raises(ValidationError):
            BenchmarkRunner(repeats=0)

    def test_write_and_load_round_trip(self, tmp_path):
        runner = BenchmarkRunner(repeats=1)
        runner.set_meta(scale="smoke")
        runner.record("w", {"seconds": 0.5, "speedup": 2.0, "gate": True})
        path = runner.write(tmp_path / "results" / "out.json")
        payload = load_results(path)
        assert payload["schema"] == 1
        assert payload["scale"] == "smoke"
        assert payload["workloads"]["w"]["speedup"] == 2.0

    def test_load_rejects_garbage(self, tmp_path):
        missing = tmp_path / "missing.json"
        with pytest.raises(ValidationError):
            load_results(missing)
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValidationError):
            load_results(bad)
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"schema": 99, "workloads": {}}))
        with pytest.raises(ValidationError):
            load_results(wrong)
        not_payload = tmp_path / "shape.json"
        not_payload.write_text(json.dumps({"schema": 1}))
        with pytest.raises(ValidationError):
            load_results(not_payload)


class TestCheckRegressions:
    BASE = {"schema": 1, "workloads": {
        "gated": {"speedup": 2.0, "gate": True},
        "info": {"speedup": 5.0, "gate": False},
    }}

    def test_no_regression_within_tolerance(self):
        current = {"schema": 1, "workloads": {
            "gated": {"speedup": 1.7, "gate": True},
        }}
        assert check_regressions(current, self.BASE) == []

    def test_regression_beyond_tolerance_fails(self):
        current = {"schema": 1, "workloads": {
            "gated": {"speedup": 1.5, "gate": True},
        }}
        failures = check_regressions(current, self.BASE)
        assert len(failures) == 1
        assert "gated" in failures[0]

    def test_ungated_workloads_ignored(self):
        current = {"schema": 1, "workloads": {
            "gated": {"speedup": 2.5, "gate": True},
            "info": {"speedup": 0.1, "gate": False},
        }}
        assert check_regressions(current, self.BASE) == []

    def test_missing_gated_workload_fails(self):
        failures = check_regressions({"schema": 1, "workloads": {}},
                                     self.BASE)
        assert any("missing" in f for f in failures)

    def test_missing_speedup_fails(self):
        current = {"schema": 1, "workloads": {
            "gated": {"seconds": 1.0, "gate": True},
        }}
        failures = check_regressions(current, self.BASE)
        assert any("no speedup" in f for f in failures)

    def test_invalid_tolerance(self):
        with pytest.raises(ValidationError):
            check_regressions(self.BASE, self.BASE, tolerance=1.5)

    def test_only_filter_skips_other_gated_workloads(self):
        base = {"schema": 1, "workloads": {
            "a": {"speedup": 2.0, "gate": True},
            "b": {"speedup": 2.0, "gate": True},
        }}
        current = {"schema": 1, "workloads": {
            "a": {"speedup": 2.1, "gate": True},
        }}
        # Without the filter the missing gated workload "b" fails...
        assert any("missing" in f for f in check_regressions(current, base))
        # ...with it, only the selected workload is enforced.
        assert check_regressions(current, base, only=["a"]) == []

    def test_benchmark_scale_mismatch_is_a_failure(self):
        base = {"schema": 1, "benchmark": "ckt2", "scale": "smoke",
                "workloads": {"a": {"speedup": 1.0, "gate": True}}}
        current = {"schema": 1, "benchmark": "ckt1", "scale": "smoke",
                   "workloads": {"a": {"speedup": 5.0, "gate": True}}}
        failures = check_regressions(current, base)
        assert any("benchmark mismatch" in f for f in failures)
        # Matching metadata (or absent metadata) gates normally.
        current["benchmark"] = "ckt2"
        assert check_regressions(current, base) == []


class TestWorkloads:
    def test_workload_names_stable(self):
        names = workload_names()
        assert "ortho_blocked_vs_columnwise" in names
        assert "bdsm_cold" in names
        assert "prima_cold" in names
        assert "bdsm_pooled_clusters" in names

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValidationError):
            run_workloads(["nope"], scale="smoke")

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValidationError):
            run_workloads(["bdsm_cold"], benchmark="ckt99", scale="smoke")

    def test_ortho_workload_records_speedup(self):
        payload = run_workloads(["ortho_blocked_vs_columnwise"],
                                benchmark="ckt1", scale="smoke", repeats=1)
        entry = payload["workloads"]["ortho_blocked_vs_columnwise"]
        assert entry["gate"] is True
        assert entry["seconds"] > 0.0
        assert entry["baseline_seconds"] > 0.0
        assert entry["speedup"] == pytest.approx(
            entry["baseline_seconds"] / entry["seconds"])
        assert payload["schema"] == 1
        assert payload["scale"] == "smoke"

    def test_bdsm_cold_workload_runs(self):
        payload = run_workloads(["bdsm_cold"], benchmark="ckt1",
                                scale="smoke", repeats=1)
        entry = payload["workloads"]["bdsm_cold"]
        assert entry["seconds"] > 0.0
        assert entry["ports"] > 0

    def test_format_workloads_rows(self):
        payload = {"schema": 1, "workloads": {
            "a": {"seconds": 0.123456, "speedup": 2.5, "gate": True},
            "b": {"seconds": 0.2, "baseline_seconds": 0.4, "gate": False},
        }}
        rows = format_workloads(payload)
        assert rows[0]["workload"] == "a"
        assert rows[0]["speedup"] == "2.50x"
        assert rows[0]["gated"] == "yes"
        assert rows[1]["baseline (s)"] == 0.4

    def test_write_results_helper(self, tmp_path):
        payload = {"schema": 1, "workloads": {"w": {"seconds": 1.0}}}
        path = write_results(payload, tmp_path / "nested" / "r.json")
        assert load_results(path)["workloads"]["w"]["seconds"] == 1.0


class TestBenchCLI:
    def test_bench_quick_records_and_checks(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "results.json"
        baseline = tmp_path / "baseline.json"
        code = main(["bench", "--quick", "--benchmark", "ckt1",
                     "--workload", "ortho_blocked_vs_columnwise",
                     "--repeats", "1",
                     "--output", str(out), "--baseline", str(baseline),
                     "--update-baseline"])
        assert code == 0
        assert out.exists() and baseline.exists()
        # A second run gated against the just-recorded baseline passes
        # (same machine, same workload).
        code = main(["bench", "--quick", "--benchmark", "ckt1",
                     "--workload", "ortho_blocked_vs_columnwise",
                     "--repeats", "1",
                     "--output", str(out), "--baseline", str(baseline),
                     "--check"])
        captured = capsys.readouterr()
        assert code == 0, captured.err
        assert "perf check OK" in captured.out

    def test_bench_check_fails_on_regression(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "results.json"
        baseline = tmp_path / "baseline.json"
        # A baseline with an unreachable speedup forces the gate to trip.
        write_results({"schema": 1, "workloads": {
            "ortho_blocked_vs_columnwise": {"speedup": 1e9, "gate": True},
        }}, baseline)
        code = main(["bench", "--quick", "--benchmark", "ckt1",
                     "--workload", "ortho_blocked_vs_columnwise",
                     "--repeats", "1",
                     "--output", str(out), "--baseline", str(baseline),
                     "--check"])
        captured = capsys.readouterr()
        assert code == 1
        assert "perf regression" in captured.err

    def test_bench_unknown_workload_errors(self, tmp_path, capsys):
        from repro.cli import main
        code = main(["bench", "--quick", "--workload", "nope",
                     "--output", str(tmp_path / "o.json")])
        captured = capsys.readouterr()
        assert code == 1
        assert "unknown workload" in captured.err

    def test_bench_workload_filter_checks_only_selection(self, tmp_path,
                                                         capsys):
        from repro.cli import main
        out = tmp_path / "results.json"
        baseline = tmp_path / "baseline.json"
        # Baseline gates two workloads; a filtered run must not fail on
        # the unselected one.
        write_results({"schema": 1, "benchmark": "ckt1", "scale": "smoke",
                       "workloads": {
                           "ortho_blocked_vs_columnwise":
                               {"speedup": 0.1, "gate": True},
                           "prima_cold": {"speedup": 1e9, "gate": True},
                       }}, baseline)
        code = main(["bench", "--quick", "--benchmark", "ckt1",
                     "--workload", "ortho_blocked_vs_columnwise",
                     "--repeats", "1",
                     "--output", str(out), "--baseline", str(baseline),
                     "--check"])
        captured = capsys.readouterr()
        assert code == 0, captured.err
        assert "1 gated workload(s)" in captured.out

    def test_bench_check_rejects_mismatched_baseline_grid(self, tmp_path,
                                                          capsys):
        from repro.cli import main
        baseline = tmp_path / "baseline.json"
        write_results({"schema": 1, "benchmark": "ckt2", "scale": "smoke",
                       "workloads": {
                           "ortho_blocked_vs_columnwise":
                               {"speedup": 0.1, "gate": True},
                       }}, baseline)
        code = main(["bench", "--quick", "--benchmark", "ckt1",
                     "--workload", "ortho_blocked_vs_columnwise",
                     "--repeats", "1",
                     "--output", str(tmp_path / "o.json"),
                     "--baseline", str(baseline), "--check"])
        captured = capsys.readouterr()
        assert code == 1
        assert "benchmark mismatch" in captured.err

    def test_bench_invalid_repeats_is_clean_cli_error(self, tmp_path,
                                                      capsys):
        from repro.cli import main
        code = main(["bench", "--quick", "--repeats", "0",
                     "--output", str(tmp_path / "o.json")])
        captured = capsys.readouterr()
        assert code == 1
        assert "error:" in captured.err and "--repeats" in captured.err

    def test_bench_missing_baseline_errors(self, tmp_path, capsys):
        from repro.cli import main
        code = main(["bench", "--quick", "--benchmark", "ckt1",
                     "--workload", "ortho_blocked_vs_columnwise",
                     "--repeats", "1",
                     "--output", str(tmp_path / "o.json"),
                     "--baseline", str(tmp_path / "nope.json"),
                     "--check"])
        captured = capsys.readouterr()
        assert code == 1
        assert "does not exist" in captured.err


class TestReduceJobsCLI:
    def test_reduce_jobs_bdsm(self, capsys):
        from repro.cli import main
        code = main(["reduce", "--benchmark", "ckt1", "--method", "bdsm",
                     "--moments", "2", "--jobs", "2"])
        captured = capsys.readouterr()
        assert code == 0
        assert "BDSM" in captured.out

    def test_reduce_jobs_rejected_for_other_methods(self, capsys):
        from repro.cli import main
        code = main(["reduce", "--benchmark", "ckt1", "--method", "prima",
                     "--moments", "2", "--jobs", "2"])
        captured = capsys.readouterr()
        assert code == 1
        assert "--jobs" in captured.err


def test_blocked_kernel_speed_on_smoke_grid():
    """Guard the blocked kernel's cost on the smoke-scale global block.

    The smoke grid's global ``m*l`` candidate block is *deflation-heavy*
    (rank ~86 of 200), which since the deflation-correctness fix routes
    the blocked kernel through its column-wise fallback — the QR screen
    is then pure overhead, so blocked is legitimately somewhat slower
    than column-wise here (the BLAS-3 speedup applies to deflation-free
    blocks, which dominate real reductions moment block by moment
    block).  This guard only insists the screening overhead stays
    bounded and that both kernels agree on the rank.
    """
    payload = run_workloads(["ortho_blocked_vs_columnwise"],
                            benchmark="ckt2", scale="smoke", repeats=3)
    entry = payload["workloads"]["ortho_blocked_vs_columnwise"]
    assert entry["speedup"] > 0.4
    assert np.isfinite(entry["speedup"])
    assert entry["rank_blocked"] == entry["rank_columnwise"]
