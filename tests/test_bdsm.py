"""Unit tests for repro.core.bdsm (Algorithm 1 of the paper)."""

import numpy as np
import pytest

from repro.core import BDSMOptions, bdsm_reduce
from repro.core.structured_rom import BlockDiagonalROM
from repro.exceptions import ReductionError, ResourceBudgetExceeded
from repro.mor import ResourceBudget, prima_reduce
from repro.validation import (
    count_matched_moments,
    max_relative_error,
    relative_error_curve,
)


class TestBdsmBasics:
    def test_returns_block_diagonal_rom(self, rc_grid_system):
        rom, stats, elapsed = bdsm_reduce(rc_grid_system, 3)
        assert isinstance(rom, BlockDiagonalROM)
        assert rom.n_blocks == rc_grid_system.n_ports
        assert elapsed >= 0.0
        assert stats.inner_products > 0

    def test_rom_size_is_m_times_l(self, rc_grid_system):
        l = 4
        rom, _, _ = bdsm_reduce(rc_grid_system, l)
        assert rom.size == rc_grid_system.n_ports * l
        assert all(size == l for size in rom.layout.sizes)

    def test_works_on_rlc_grid(self, rlc_grid_system):
        rom, _, _ = bdsm_reduce(rlc_grid_system, 3)
        omegas = np.logspace(5, 9, 5)
        assert max_relative_error(rlc_grid_system, rom, omegas) < 1e-6

    def test_invalid_moments(self, rc_grid_system):
        with pytest.raises(ReductionError):
            bdsm_reduce(rc_grid_system, 0)

    def test_invalid_chunk_size(self, rc_grid_system):
        with pytest.raises(ReductionError):
            bdsm_reduce(rc_grid_system, 2,
                        options=BDSMOptions(port_chunk_size=0))

    def test_reduction_avoids_matrix_producing_todense(self, rc_grid_system,
                                                       monkeypatch):
        """Block assembly uses ``.toarray()`` (ndarray), never the
        deprecated ``np.matrix``-producing ``.todense()``."""
        import scipy.sparse as sp

        def banned(self, *args, **kwargs):
            raise AssertionError(".todense() called in a hot path")

        monkeypatch.setattr(sp.spmatrix, "todense", banned)
        rom, _, _ = bdsm_reduce(rc_grid_system, 2)
        for block in rom.blocks:
            assert type(block.b) is np.ndarray
            assert type(block.L) is np.ndarray


class TestBdsmAccuracy:
    def test_matches_l_moments_per_column(self, rc_grid_system):
        l = 4
        rom, _, _ = bdsm_reduce(rc_grid_system, l)
        assert count_matched_moments(rc_grid_system, rom, l) >= l

    def test_accuracy_comparable_to_prima(self, rc_grid_system):
        # Paper claim: similar accuracy to PRIMA for the same l.
        l = 4
        omegas = np.logspace(5, 9, 6)
        bdsm_rom, _, _ = bdsm_reduce(rc_grid_system, l)
        prima_rom, _, _ = prima_reduce(rc_grid_system, l)
        err_bdsm = relative_error_curve(rc_grid_system, bdsm_rom, omegas,
                                        output=0, port=1)
        err_prima = relative_error_curve(rc_grid_system, prima_rom, omegas,
                                         output=0, port=1)
        assert np.max(err_bdsm) < 1e-6
        assert np.max(err_prima) < 1e-6

    def test_nonzero_expansion_point(self, rc_grid_system):
        s0 = 1e9
        rom, _, _ = bdsm_reduce(rc_grid_system, 3, s0=s0)
        assert count_matched_moments(rc_grid_system, rom, 3, s0=s0) >= 3

    def test_column_by_column_moment_matching(self, rc_grid_system):
        # Each column of H_r matches the corresponding column of H at s0.
        rom, _, _ = bdsm_reduce(rc_grid_system, 3)
        H0_full = rc_grid_system.transfer_function(0.0)
        H0_rom = rom.transfer_function(0.0)
        for col in range(rc_grid_system.n_ports):
            denom = np.linalg.norm(H0_full[:, col])
            err = np.linalg.norm(H0_rom[:, col] - H0_full[:, col]) / denom
            assert err < 1e-8


class TestBdsmCostAndStructure:
    def test_fewer_inner_products_than_prima(self, rc_grid_system):
        l = 4
        _, bdsm_stats, _ = bdsm_reduce(rc_grid_system, l)
        _, prima_stats, _ = prima_reduce(rc_grid_system, l)
        assert bdsm_stats.inner_products < prima_stats.inner_products
        m = rc_grid_system.n_ports
        # Predicted ratio ~ (m*l - 1) / (l - 1); allow slack for
        # re-orthogonalisation bookkeeping differences.
        predicted = (m * l - 1) / (l - 1)
        measured = prima_stats.inner_products / bdsm_stats.inner_products
        assert measured > predicted / 3

    def test_rom_sparser_than_prima(self, rc_grid_system):
        l = 3
        bdsm_rom, _, _ = bdsm_reduce(rc_grid_system, l)
        prima_rom, _, _ = prima_reduce(rc_grid_system, l)
        assert bdsm_rom.nnz < prima_rom.nnz
        assert bdsm_rom.density()["G"] <= 1 / rc_grid_system.n_ports + 1e-12

    def test_budget_guard(self, rc_grid_system):
        budget = ResourceBudget(max_dense_bytes=128)
        with pytest.raises(ResourceBudgetExceeded):
            bdsm_reduce(rc_grid_system, 4, budget=budget)

    def test_bdsm_fits_budget_that_breaks_prima(self, rc_grid_system):
        # With chunked ports BDSM's working set is tiny, so a budget sized
        # between the two reproduces Table II's "break down" asymmetry.
        n = rc_grid_system.size
        # exactly the BDSM chunk working set (n x chunk*l doubles): BDSM fits,
        # PRIMA's n x (m*l) basis does not.
        budget = ResourceBudget(max_dense_bytes=n * 4 * 4 * 8)
        rom, _, _ = bdsm_reduce(rc_grid_system, 4,
                                options=BDSMOptions(port_chunk_size=4),
                                budget=budget)
        assert rom.size == rc_grid_system.n_ports * 4
        with pytest.raises(ResourceBudgetExceeded):
            prima_reduce(rc_grid_system, 4, budget=budget)


class TestBdsmChunking:
    def test_chunked_equals_unchunked(self, rc_grid_system):
        full_rom, _, _ = bdsm_reduce(rc_grid_system, 3)
        chunked_rom, _, _ = bdsm_reduce(
            rc_grid_system, 3, options=BDSMOptions(port_chunk_size=2))
        s = 1j * 1e8
        assert np.allclose(full_rom.transfer_function(s),
                           chunked_rom.transfer_function(s))
        for a, b in zip(full_rom.blocks, chunked_rom.blocks):
            assert np.allclose(a.C, b.C)
            assert np.allclose(a.G, b.G)

    def test_chunk_size_one(self, rc_grid_system):
        rom, _, _ = bdsm_reduce(rc_grid_system, 2,
                                options=BDSMOptions(port_chunk_size=1))
        assert rom.n_blocks == rc_grid_system.n_ports

    def test_parallel_workers_give_identical_rom(self, rc_grid_system):
        sequential, seq_stats, _ = bdsm_reduce(rc_grid_system, 3)
        parallel, par_stats, _ = bdsm_reduce(
            rc_grid_system, 3,
            options=BDSMOptions(port_chunk_size=2, n_workers=3))
        assert parallel.n_blocks == sequential.n_blocks
        assert par_stats.inner_products == seq_stats.inner_products
        s = 1j * 1e8
        assert np.allclose(parallel.transfer_function(s),
                           sequential.transfer_function(s))
        for a, b in zip(sequential.blocks, parallel.blocks):
            assert a.index == b.index
            assert np.allclose(a.C, b.C)
            assert np.allclose(a.b, b.b)

    def test_invalid_worker_count(self, rc_grid_system):
        with pytest.raises(ReductionError):
            bdsm_reduce(rc_grid_system, 2,
                        options=BDSMOptions(n_workers=0))

    def test_keep_projection_stores_bases(self, rc_grid_system):
        rom, _, _ = bdsm_reduce(rc_grid_system, 2,
                                options=BDSMOptions(keep_projection=True))
        for block in rom.blocks:
            assert block.basis is not None
            assert block.basis.shape == (rc_grid_system.size, 2)
            # basis columns are orthonormal
            assert np.allclose(block.basis.T @ block.basis, np.eye(2),
                               atol=1e-10)
