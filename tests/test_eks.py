"""Unit tests for repro.mor.eks."""

import numpy as np
import pytest

from repro.exceptions import ReductionError
from repro.mor import eks_reduce, prima_reduce
from repro.validation import max_relative_error


class TestEksReduce:
    def test_rom_is_tiny(self, rc_grid_system):
        l = 6
        rom, _, _ = eks_reduce(rc_grid_system, l)
        assert rom.size <= l
        assert rom.method == "EKS"

    def test_rom_not_reusable(self, rc_grid_system):
        rom, _, _ = eks_reduce(rc_grid_system, 4)
        assert rom.reusable is False

    def test_accurate_for_assumed_excitation(self, rc_grid_system):
        # The response to the assumed excitation (all ports driven equally)
        # is y(s) = H(s) w; EKS matches its moments, so the aggregated
        # response of the ROM tracks the full model at low frequency.
        weights = np.ones(rc_grid_system.n_ports)
        rom, _, _ = eks_reduce(rc_grid_system, 6, port_weights=weights)
        for omega in (1e5, 1e7):
            s = 1j * omega
            y_full = rc_grid_system.transfer_function(s) @ weights
            y_rom = rom.transfer_function(s) @ weights
            err = np.linalg.norm(y_rom - y_full) / np.linalg.norm(y_full)
            assert err < 1e-6

    def test_inaccurate_for_individual_entries(self, rc_grid_system):
        # Fig. 5: the EKS ROM does not reproduce individual transfer-matrix
        # entries, unlike PRIMA/BDSM.
        omegas = np.logspace(5, 9, 5)
        eks_rom, _, _ = eks_reduce(rc_grid_system, 6)
        prima_rom, _, _ = prima_reduce(rc_grid_system, 6)
        err_eks = max_relative_error(rc_grid_system, eks_rom, omegas,
                                     output=0, port=1)
        err_prima = max_relative_error(rc_grid_system, prima_rom, omegas,
                                       output=0, port=1)
        assert err_eks > 1e3 * err_prima

    def test_inaccurate_for_new_input_pattern(self, rc_grid_system):
        # Rebuilding the excitation changes the response; the ROM built for
        # all-ones weights mispredicts the response to a different pattern.
        m = rc_grid_system.n_ports
        rom, _, _ = eks_reduce(rc_grid_system, 6,
                               port_weights=np.ones(m))
        new_pattern = np.zeros(m)
        new_pattern[0] = 1.0
        s = 1j * 1e7
        y_full = rc_grid_system.transfer_function(s) @ new_pattern
        y_rom = rom.transfer_function(s) @ new_pattern
        err = np.linalg.norm(y_rom - y_full) / np.linalg.norm(y_full)
        assert err > 1e-3

    def test_custom_weights_change_rom(self, rc_grid_system):
        m = rc_grid_system.n_ports
        rom_a, _, _ = eks_reduce(rc_grid_system, 3, port_weights=np.ones(m))
        weights_b = np.linspace(1.0, 2.0, m)
        rom_b, _, _ = eks_reduce(rc_grid_system, 3, port_weights=weights_b)
        # compare with a relative tolerance only: the C entries are O(1e-15)
        # farads, far below numpy's default absolute tolerance
        assert not np.allclose(rom_a.C, rom_b.C, rtol=1e-6, atol=0.0)

    def test_input_moment_weights_extend_basis(self, rc_grid_system):
        m = rc_grid_system.n_ports
        # the extra input-moment direction must differ from the zeroth-order
        # weights, otherwise it deflates away immediately
        extra = np.linspace(0.5, 2.0, m)
        rom, _, _ = eks_reduce(rc_grid_system, 3,
                               input_moment_weights=[extra])
        assert rom.size <= 6
        assert rom.size > 3

    def test_invalid_inputs(self, rc_grid_system):
        m = rc_grid_system.n_ports
        with pytest.raises(ReductionError):
            eks_reduce(rc_grid_system, 0)
        with pytest.raises(ReductionError):
            eks_reduce(rc_grid_system, 2, port_weights=np.ones(m + 1))
        with pytest.raises(ReductionError):
            eks_reduce(rc_grid_system, 2, port_weights=np.zeros(m))
        with pytest.raises(ReductionError):
            eks_reduce(rc_grid_system, 2,
                       input_moment_weights=[np.ones(m + 2)])
