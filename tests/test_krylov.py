"""Unit tests for repro.linalg.krylov."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import DeflationError, ReductionError
from repro.linalg.krylov import (
    ShiftedOperator,
    block_krylov_basis,
    column_clustered_krylov_bases,
    krylov_candidate_blocks,
)


def _small_rc_matrices(n=12, seed=3):
    """Dense SPD-like (C, G, B) matrices mimicking an RC grid pencil."""
    rng = np.random.default_rng(seed)
    lap = np.diag(2.0 * np.ones(n)) - np.diag(np.ones(n - 1), 1) \
        - np.diag(np.ones(n - 1), -1)
    lap[0, 0] += 1.0
    G = -sp.csr_matrix(lap)                     # paper convention: G = -G_mna
    C = sp.diags(rng.uniform(0.5, 1.5, size=n)).tocsr()
    B = np.zeros((n, 3))
    B[1, 0] = 1.0
    B[5, 1] = 1.0
    B[9, 2] = 1.0
    return C, G, sp.csr_matrix(B)


class TestShiftedOperator:
    def test_solve_matches_direct(self):
        C, G, B = _small_rc_matrices()
        op = ShiftedOperator(C, G, s0=0.0)
        rhs = np.arange(1.0, 13.0)
        x = op.solve(rhs)
        assert np.allclose((-G) @ x, rhs)

    def test_solve_multiple_rhs(self):
        C, G, B = _small_rc_matrices()
        op = ShiftedOperator(C, G, s0=1e3)
        X = op.solve(B.toarray())
        pencil = (1e3 * C - G).toarray()
        assert np.allclose(pencil @ X, B.toarray())

    def test_apply_is_operator_times_x(self):
        C, G, B = _small_rc_matrices()
        op = ShiftedOperator(C, G, s0=0.0)
        x = np.ones(12)
        direct = np.linalg.solve((-G).toarray(), (C @ x))
        assert np.allclose(op.apply(x), direct)

    def test_complex_expansion_point(self):
        C, G, B = _small_rc_matrices()
        s0 = 1j * 1e6
        op = ShiftedOperator(C, G, s0=s0)
        rhs = np.ones(12)
        x = op.solve(rhs)
        pencil = (s0 * C.toarray() - G.toarray())
        assert np.allclose(pencil @ x, rhs)

    def test_solve_count_increments(self):
        C, G, B = _small_rc_matrices()
        op = ShiftedOperator(C, G, s0=0.0)
        op.solve(np.ones(12))
        op.solve(np.ones((12, 4)))
        assert op.solve_count == 5

    def test_shape_mismatch_rejected(self):
        C, G, _ = _small_rc_matrices()
        with pytest.raises(ReductionError):
            ShiftedOperator(C, sp.eye(5, format="csr"))

    def test_wrong_rhs_length_rejected(self):
        C, G, _ = _small_rc_matrices()
        op = ShiftedOperator(C, G)
        with pytest.raises(ReductionError):
            op.solve(np.ones(7))


class TestCandidateBlocks:
    def test_recursion_definition(self):
        C, G, B = _small_rc_matrices()
        op = ShiftedOperator(C, G, s0=0.0)
        blocks = krylov_candidate_blocks(op, B, 3)
        assert len(blocks) == 3
        A = np.linalg.solve((-G).toarray(), C.toarray())
        R = np.linalg.solve((-G).toarray(), B.toarray())
        assert np.allclose(blocks[0], R)
        assert np.allclose(blocks[1], A @ R)
        assert np.allclose(blocks[2], A @ A @ R)

    def test_order_must_be_positive(self):
        C, G, B = _small_rc_matrices()
        op = ShiftedOperator(C, G)
        with pytest.raises(ValueError):
            krylov_candidate_blocks(op, B, 0)


class TestBlockKrylovBasis:
    def test_orthonormal_and_expected_size(self):
        C, G, B = _small_rc_matrices()
        op = ShiftedOperator(C, G, s0=0.0)
        result = block_krylov_basis(op, B, 3)
        V = result.basis
        assert V.shape == (12, 9)
        assert np.allclose(V.T @ V, np.eye(9), atol=1e-10)

    def test_spans_candidate_blocks(self):
        C, G, B = _small_rc_matrices()
        op = ShiftedOperator(C, G, s0=0.0)
        result = block_krylov_basis(op, B, 2)
        V = result.basis
        blocks = krylov_candidate_blocks(op, B, 2)
        target = np.hstack(blocks)
        proj = V @ (V.T @ target)
        assert np.allclose(proj, target, atol=1e-8)

    def test_deflation_flag_for_dependent_inputs(self):
        C, G, B = _small_rc_matrices()
        B_dep = sp.csr_matrix(np.hstack([B.toarray(), B.toarray()[:, :1]]))
        op = ShiftedOperator(C, G, s0=0.0)
        result = block_krylov_basis(op, B_dep, 2)
        assert result.deflated
        assert result.basis.shape[1] < 8

    def test_zero_input_raises(self):
        C, G, _ = _small_rc_matrices()
        op = ShiftedOperator(C, G, s0=0.0)
        with pytest.raises(DeflationError):
            block_krylov_basis(op, np.zeros((12, 2)), 2)


class TestColumnClusteredBases:
    def test_one_basis_per_column(self):
        C, G, B = _small_rc_matrices()
        op = ShiftedOperator(C, G, s0=0.0)
        bases, stats, deflated = column_clustered_krylov_bases(op, B, 4)
        assert len(bases) == 3
        assert not deflated
        for V in bases:
            assert V.shape == (12, 4)
            assert np.allclose(V.T @ V, np.eye(4), atol=1e-10)

    def test_each_basis_spans_single_column_krylov(self):
        C, G, B = _small_rc_matrices()
        op = ShiftedOperator(C, G, s0=0.0)
        bases, _, _ = column_clustered_krylov_bases(op, B, 3)
        A = np.linalg.solve((-G).toarray(), C.toarray())
        for i, V in enumerate(bases):
            r = np.linalg.solve((-G).toarray(), B.toarray()[:, i])
            target = np.column_stack([r, A @ r, A @ A @ r])
            proj = V @ (V.T @ target)
            assert np.allclose(proj, target, atol=1e-8)

    def test_column_subset(self):
        C, G, B = _small_rc_matrices()
        op = ShiftedOperator(C, G, s0=0.0)
        bases, _, _ = column_clustered_krylov_bases(op, B, 2, columns=[2])
        assert len(bases) == 1
        assert bases[0].shape == (12, 2)

    def test_invalid_column_rejected(self):
        C, G, B = _small_rc_matrices()
        op = ShiftedOperator(C, G, s0=0.0)
        with pytest.raises(ValueError):
            column_clustered_krylov_bases(op, B, 2, columns=[5])

    def test_clustered_cheaper_than_global(self):
        C, G, B = _small_rc_matrices()
        op = ShiftedOperator(C, G, s0=0.0)
        _, clustered_stats, _ = column_clustered_krylov_bases(op, B, 4)
        global_result = block_krylov_basis(op, B, 4)
        assert clustered_stats.inner_products \
            < global_result.stats.inner_products

    def test_zero_column_raises(self):
        C, G, B = _small_rc_matrices()
        B_zero = B.toarray().copy()
        B_zero[:, 1] = 0.0
        op = ShiftedOperator(C, G, s0=0.0)
        with pytest.raises(DeflationError):
            column_clustered_krylov_bases(op, B_zero, 2)
