"""Unit tests for repro.circuit.elements."""

import pytest

from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    Resistor,
    VoltageSource,
)
from repro.exceptions import CircuitError


class TestResistor:
    def test_conductance(self):
        r = Resistor("R1", "a", "b", 4.0)
        assert r.conductance == pytest.approx(0.25)

    def test_positive_value_required(self):
        with pytest.raises(CircuitError):
            Resistor("R1", "a", "b", 0.0)
        with pytest.raises(CircuitError):
            Resistor("R1", "a", "b", -1.0)

    def test_spice_line(self):
        assert Resistor("R1", "a", "0", 1500.0).spice_line() == "R1 a 0 1500"


class TestCapacitorInductor:
    def test_capacitor_positive_value(self):
        with pytest.raises(CircuitError):
            Capacitor("C1", "a", "0", -1e-12)

    def test_inductor_positive_value(self):
        with pytest.raises(CircuitError):
            Inductor("L1", "a", "b", 0.0)

    def test_valid_construction(self):
        c = Capacitor("C1", "a", "0", 1e-12)
        l = Inductor("L1", "a", "b", 1e-9)
        assert c.value == 1e-12
        assert l.nodes == ("a", "b")


class TestSources:
    def test_current_source_nonnegative(self):
        with pytest.raises(CircuitError):
            CurrentSource("I1", "a", "0", -1.0)

    def test_current_source_zero_allowed(self):
        assert CurrentSource("I1", "a", "0", 0.0).value == 0.0

    def test_voltage_source_any_value(self):
        assert VoltageSource("V1", "a", "0", -1.2).value == -1.2


class TestElementValidation:
    def test_self_loop_rejected(self):
        with pytest.raises(CircuitError):
            Resistor("R1", "a", "a", 1.0)

    def test_empty_name_rejected(self):
        with pytest.raises(CircuitError):
            Resistor("", "a", "b", 1.0)

    def test_non_numeric_value_rejected(self):
        with pytest.raises(CircuitError):
            Resistor("R1", "a", "b", "big")  # type: ignore[arg-type]

    def test_prefixes(self):
        assert Resistor("R1", "a", "b", 1.0).prefix == "R"
        assert Capacitor("C1", "a", "b", 1.0).prefix == "C"
        assert Inductor("L1", "a", "b", 1.0).prefix == "L"
        assert CurrentSource("I1", "a", "b", 1.0).prefix == "I"
        assert VoltageSource("V1", "a", "b", 1.0).prefix == "V"

    def test_elements_are_frozen(self):
        r = Resistor("R1", "a", "b", 1.0)
        with pytest.raises(AttributeError):
            r.value = 2.0  # type: ignore[misc]
