"""Unit tests for repro.core.simulation (block-wise ROM transient)."""

import numpy as np
import pytest

from repro.analysis import SourceBank, TransientAnalysis
from repro.analysis.sources import PulseSource, StepSource
from repro.core import bdsm_reduce
from repro.core.simulation import simulate_blockwise
from repro.exceptions import SimulationError


@pytest.fixture()
def rom(rc_grid_system):
    rom, _, _ = bdsm_reduce(rc_grid_system, 3)
    return rom


class TestSimulateBlockwise:
    @pytest.mark.parametrize("method", ["backward_euler", "trapezoidal"])
    def test_matches_generic_integrator(self, rom, method):
        bank = SourceBank.uniform(rom.n_ports,
                                  StepSource(1e-3, t0=2e-10, rise_time=1e-10))
        generic = TransientAnalysis(t_stop=2e-9, dt=5e-11,
                                    method=method).run(rom, bank)
        blockwise = simulate_blockwise(rom, bank, t_stop=2e-9, dt=5e-11,
                                       method=method)
        assert np.allclose(blockwise.outputs, generic.outputs,
                           rtol=1e-9, atol=1e-15)
        assert np.allclose(blockwise.times, generic.times)

    def test_matches_full_model(self, rc_grid_system, rom):
        bank = SourceBank.uniform(
            rom.n_ports,
            PulseSource(2e-3, period=1e-9, width=3e-10, rise=1e-10,
                        fall=1e-10))
        full = TransientAnalysis(t_stop=2e-9, dt=5e-11).run(
            rc_grid_system, bank)
        reduced = simulate_blockwise(rom, bank, t_stop=2e-9, dt=5e-11)
        scale = max(float(np.max(np.abs(full.outputs))), 1e-15)
        assert reduced.max_abs_error_to(full) < 1e-3 * scale

    def test_zero_input_stays_zero(self, rom):
        result = simulate_blockwise(rom, SourceBank(rom.n_ports),
                                    t_stop=1e-9, dt=1e-10)
        assert np.allclose(result.outputs, 0.0)

    def test_rejects_non_structured_rom(self, rc_grid_system):
        from repro.mor import prima_reduce
        dense_rom, _, _ = prima_reduce(rc_grid_system, 2)
        bank = SourceBank(rc_grid_system.n_ports)
        with pytest.raises(SimulationError):
            simulate_blockwise(dense_rom, bank, t_stop=1e-9, dt=1e-10)

    def test_rejects_bad_time_grid(self, rom):
        bank = SourceBank(rom.n_ports)
        with pytest.raises(SimulationError):
            simulate_blockwise(rom, bank, t_stop=0.0, dt=1e-10)
        with pytest.raises(SimulationError):
            simulate_blockwise(rom, bank, t_stop=1e-9, dt=2e-9)

    def test_rejects_bad_method(self, rom):
        bank = SourceBank(rom.n_ports)
        with pytest.raises(SimulationError):
            simulate_blockwise(rom, bank, t_stop=1e-9, dt=1e-10,
                               method="forward_euler")

    def test_rejects_port_mismatch(self, rom):
        with pytest.raises(SimulationError):
            simulate_blockwise(rom, SourceBank(rom.n_ports + 1),
                               t_stop=1e-9, dt=1e-10)
