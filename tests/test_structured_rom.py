"""Unit tests for repro.core.structured_rom (BlockDiagonalROM)."""

import numpy as np
import pytest

from repro.core import BDSMOptions, bdsm_reduce
from repro.core.structured_rom import BlockDiagonalROM, ROMBlock
from repro.exceptions import ReductionError


def _manual_block(index, l=2, p=3, seed=0):
    rng = np.random.default_rng(seed + index)
    C = np.diag(rng.uniform(1.0, 2.0, size=l))
    G = -np.diag(rng.uniform(1.0, 2.0, size=l))
    b = rng.normal(size=l)
    L = rng.normal(size=(p, l))
    return ROMBlock(index=index, C=C, G=G, b=b, L=L)


class TestROMBlock:
    def test_transfer_column_matches_manual_solve(self):
        block = _manual_block(0)
        s = 1j * 2.0
        expected = block.L @ np.linalg.solve(s * block.C - block.G,
                                             block.b.astype(complex))
        assert np.allclose(block.transfer_column(s), expected)

    def test_shape_validation(self):
        with pytest.raises(ReductionError):
            ROMBlock(index=0, C=np.eye(2), G=np.eye(3), b=np.ones(2),
                     L=np.ones((1, 2)))
        with pytest.raises(ReductionError):
            ROMBlock(index=0, C=np.eye(2), G=np.eye(2), b=np.ones(3),
                     L=np.ones((1, 2)))
        with pytest.raises(ReductionError):
            ROMBlock(index=0, C=np.eye(2), G=np.eye(2), b=np.ones(2),
                     L=np.ones((1, 3)))


class TestBlockDiagonalROM:
    @pytest.fixture()
    def manual_rom(self):
        blocks = [_manual_block(i) for i in range(4)]
        return BlockDiagonalROM(blocks, n_outputs=3, n_moments=2,
                                original_size=50, original_ports=4)

    def test_dimensions(self, manual_rom):
        assert manual_rom.size == 8
        assert manual_rom.n_ports == 4
        assert manual_rom.n_blocks == 4
        assert manual_rom.n_outputs == 3

    def test_global_matrices_are_block_diagonal(self, manual_rom):
        C = manual_rom.C.toarray()
        # off-diagonal blocks are exactly zero
        assert np.allclose(C[0:2, 2:], 0.0)
        assert np.allclose(C[2:4, 0:2], 0.0)
        assert manual_rom.C.nnz <= 4 * 4

    def test_nnz_matches_paper_formula(self, manual_rom):
        m, l = 4, 2
        # 2 m l^2 (C_r and G_r) + m l (B_r) when blocks are dense
        assert manual_rom.nnz <= 2 * m * l * l + m * l

    def test_b_matrix_block_column_structure(self, manual_rom):
        B = manual_rom.B.toarray()
        assert B.shape == (8, 4)
        for i in range(4):
            col = B[:, i]
            assert np.count_nonzero(col[2 * i:2 * i + 2]) > 0
            outside = np.delete(col, [2 * i, 2 * i + 1])
            assert np.allclose(outside, 0.0)

    def test_transfer_function_equals_densified(self, manual_rom):
        s = 1j * 3.0
        dense = manual_rom.to_reduced_system()
        assert np.allclose(manual_rom.transfer_function(s),
                           dense.transfer_function(s))

    def test_transfer_entry_matches_column(self, manual_rom):
        s = 1j * 5.0
        H = manual_rom.transfer_function(s)
        assert manual_rom.transfer_entry(s, 1, 2) == pytest.approx(H[1, 2])

    def test_transfer_entry_out_of_range(self, manual_rom):
        with pytest.raises(ReductionError):
            manual_rom.transfer_entry(1j, 0, 10)

    def test_density_reflects_block_structure(self, manual_rom):
        density = manual_rom.density()
        assert density["C"] <= 1 / 4 + 1e-12
        assert density["B"] <= 1 / 4 + 1e-12

    def test_output_count_mismatch_rejected(self):
        blocks = [_manual_block(0)]
        with pytest.raises(ReductionError):
            BlockDiagonalROM(blocks, n_outputs=5)

    def test_empty_blocks_rejected(self):
        with pytest.raises(ReductionError):
            BlockDiagonalROM([], n_outputs=1)

    def test_summary_row(self, manual_rom):
        summary = manual_rom.summary(mor_seconds=0.5)
        row = summary.as_row()
        assert row["method"] == "BDSM"
        assert row["ROM size"] == 8
        assert row["reusable"] == "yes"


class TestToReducedSystemCache:
    def test_repeated_queries_return_cached_conversion(self, rc_grid_system):
        rom, _, _ = bdsm_reduce(rc_grid_system, 2)
        first = rom.to_reduced_system()
        second = rom.to_reduced_system()
        assert second is first  # densified once, reused afterwards

    def test_cached_conversion_matches_structure(self, rc_grid_system):
        rom, _, _ = bdsm_reduce(rc_grid_system, 2)
        dense = rom.to_reduced_system()
        assert dense.size == rom.size
        assert np.allclose(dense.C, rom.C.toarray())
        assert np.allclose(dense.transfer_function(1j * 1e6),
                           rom.transfer_function(1j * 1e6))


class TestStateReconstruction:
    def test_requires_kept_bases(self, rc_grid_system):
        rom, _, _ = bdsm_reduce(rc_grid_system, 2)
        with pytest.raises(ReductionError):
            rom.reconstruct_state(np.zeros(rom.size))

    def test_reconstruction_shape(self, rc_grid_system):
        rom, _, _ = bdsm_reduce(rc_grid_system, 2,
                                options=BDSMOptions(keep_projection=True))
        x = rom.reconstruct_state(np.ones(rom.size))
        assert x.shape == (rc_grid_system.size,)

    def test_wrong_state_length(self, rc_grid_system):
        rom, _, _ = bdsm_reduce(rc_grid_system, 2,
                                options=BDSMOptions(keep_projection=True))
        with pytest.raises(ReductionError):
            rom.reconstruct_state(np.ones(rom.size + 1))


class TestComplexOutputBlocks:
    def test_rom_block_preserves_complex_L(self):
        import numpy as np

        from repro.core.structured_rom import ROMBlock

        block = ROMBlock(index=0, C=np.eye(2), G=-np.eye(2),
                         b=np.ones(2), L=np.array([[1.0 + 2.0j, 0.5]]))
        assert np.iscomplexobj(block.L)
        assert block.L[0, 0] == 1.0 + 2.0j
        # Real inputs (including ints) still become float arrays.
        real = ROMBlock(index=1, C=np.eye(2, dtype=int),
                        G=-np.eye(2, dtype=int), b=np.ones(2, dtype=int),
                        L=np.ones((1, 2), dtype=int))
        for arr in (real.C, real.G, real.b, real.L):
            assert arr.dtype == float
