"""Unit tests for repro.circuit.powergrid."""

import numpy as np
import pytest

from repro.circuit import PowerGridSpec, assemble_mna, build_power_grid
from repro.exceptions import CircuitError


class TestPowerGridSpec:
    def test_mesh_node_count(self):
        spec = PowerGridSpec(rows=5, cols=7, n_ports=3)
        assert spec.n_mesh_nodes == 35

    def test_has_package_flag(self):
        rc = PowerGridSpec(rows=4, cols=4, n_ports=2, package_inductance=0.0)
        rlc = PowerGridSpec(rows=4, cols=4, n_ports=2, package_inductance=1e-12)
        assert not rc.has_package
        assert rlc.has_package

    @pytest.mark.parametrize("kwargs", [
        {"rows": 1, "cols": 4, "n_ports": 1},
        {"rows": 4, "cols": 4, "n_ports": 0},
        {"rows": 3, "cols": 3, "n_ports": 10},
        {"rows": 4, "cols": 4, "n_ports": 2, "n_pads": 0},
        {"rows": 4, "cols": 4, "n_ports": 2, "variation": 1.5},
    ])
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(CircuitError):
            PowerGridSpec(**kwargs)


class TestBuildPowerGrid:
    def test_counts_rc_grid(self):
        spec = PowerGridSpec(rows=4, cols=5, n_ports=3, n_pads=2,
                             package_inductance=0.0, seed=1)
        net = build_power_grid(spec)
        summary = net.summary()
        # rails: 4*(5-1) horizontal + 5*(4-1) vertical, plus 2 pad resistors
        # (mesh->pad) and 2 pad-to-ground resistors.
        assert summary["resistors"] == 4 * 4 + 5 * 3 + 2 + 2
        assert summary["capacitors"] == 20
        assert summary["inductors"] == 0
        assert summary["current_sources"] == 3
        net.validate()

    def test_counts_rlc_grid_with_ideal_pads(self):
        spec = PowerGridSpec(rows=4, cols=4, n_ports=2, n_pads=3,
                             package_inductance=1e-12, use_ideal_pads=True,
                             seed=2)
        net = build_power_grid(spec)
        summary = net.summary()
        assert summary["inductors"] == 3
        assert summary["voltage_sources"] == 3
        net.validate()

    def test_output_nodes_are_port_nodes(self):
        spec = PowerGridSpec(rows=5, cols=5, n_ports=4, seed=3)
        net = build_power_grid(spec)
        assert len(net.output_nodes) == 4
        port_nodes = {s.node_pos for s in net.current_sources}
        assert set(net.output_nodes) == port_nodes

    def test_deterministic_for_same_seed(self):
        spec = PowerGridSpec(rows=5, cols=5, n_ports=4, seed=9)
        a = build_power_grid(spec)
        b = build_power_grid(spec)
        assert [e.spice_line() for e in a] == [e.spice_line() for e in b]

    def test_different_seed_changes_values(self):
        a = build_power_grid(PowerGridSpec(rows=5, cols=5, n_ports=4, seed=1))
        b = build_power_grid(PowerGridSpec(rows=5, cols=5, n_ports=4, seed=2))
        assert [e.spice_line() for e in a] != [e.spice_line() for e in b]

    def test_zero_variation_gives_nominal_values(self):
        spec = PowerGridSpec(rows=3, cols=3, n_ports=1, variation=0.0,
                             rail_resistance=2.5, seed=0)
        net = build_power_grid(spec)
        rail_values = {r.value for r in net.resistors
                       if r.name.startswith("R") and not
                       r.name.startswith(("Rpkg", "Rpad"))}
        assert rail_values == {2.5}

    def test_stamps_into_solvable_system(self):
        spec = PowerGridSpec(rows=6, cols=6, n_ports=5, seed=4)
        system = assemble_mna(build_power_grid(spec))
        H0 = system.transfer_function(0.0)
        assert H0.shape == (5, 5)
        assert np.all(np.isfinite(H0))
        # driving-point DC resistances are negative in our sign convention
        # (the source draws current) and non-zero.
        assert np.all(np.diag(np.real(H0)) < 0.0)


class TestPadCapacityValidation:
    """Regression tests for the silent n_pads clamp (now a clear error)."""

    def test_too_many_pads_rejected_up_front(self):
        # A 2x2 mesh has 4 boundary nodes; the old code silently clamped
        # a 5-pad request down to 4 pads instead of rejecting it.
        with pytest.raises(CircuitError, match="cannot place 5 pads"):
            PowerGridSpec(rows=2, cols=2, n_ports=1, n_pads=5)

    def test_exact_capacity_is_accepted(self):
        spec = PowerGridSpec(rows=3, cols=3, n_ports=1, n_pads=8,
                             package_inductance=0.0, seed=1)
        assert spec.boundary_capacity == 8
        net = build_power_grid(spec)
        assert sum(1 for r in net.resistors
                   if r.name.startswith("Rpad")) == 8
        # Every pad grabbed a distinct boundary node.
        pad_nodes = {r.node_pos for r in net.resistors
                     if r.name.startswith("Rpkg")}
        assert len(pad_nodes) == 8

    def test_blockage_reduces_capacity(self):
        from repro.circuit import GridRegion  # noqa: F401  (API sanity)
        open_spec = PowerGridSpec(rows=8, cols=8, n_ports=2)
        assert open_spec.boundary_capacity == 2 * (8 + 8) - 4


class TestMultiDomainGrids:
    def test_region_scales_element_values(self):
        from repro.circuit import GridRegion
        region = GridRegion(0, 0, 3, 3, r_scale=1.0, c_scale=10.0)
        base = PowerGridSpec(rows=6, cols=6, n_ports=2, variation=0.0,
                             node_capacitance=1e-15, seed=0)
        scaled = PowerGridSpec(rows=6, cols=6, n_ports=2, variation=0.0,
                               node_capacitance=1e-15, regions=(region,),
                               seed=0)
        caps_base = {c.name: c.value for c in build_power_grid(base).capacitors}
        caps_scaled = {c.name: c.value
                       for c in build_power_grid(scaled).capacitors}
        ratios = {round(caps_scaled[name] / caps_base[name], 9)
                  for name in caps_base}
        assert ratios == {1.0, 10.0}

    def test_region_validation(self):
        from repro.circuit import GridRegion
        with pytest.raises(CircuitError):
            GridRegion(0, 0, 0, 3)
        with pytest.raises(CircuitError):
            GridRegion(0, 0, 2, 2, r_scale=0.0)
        with pytest.raises(CircuitError):
            PowerGridSpec(rows=4, cols=4, n_ports=1,
                          regions=(GridRegion(2, 2, 5, 5),))
        with pytest.raises(CircuitError):
            PowerGridSpec(rows=4, cols=4, n_ports=1, regions=("logic",))

    def test_blockage_removes_nodes(self):
        spec = PowerGridSpec(rows=8, cols=8, n_ports=4, seed=2,
                             blockages=((3, 3, 2, 2),))
        assert spec.n_open_nodes == 64 - 4
        net = build_power_grid(spec)
        blocked = {f"n{r}_{c}" for r in (3, 4) for c in (3, 4)}
        for element in net:
            assert blocked.isdisjoint(element.nodes)
        net.validate()
        system = assemble_mna(net)
        assert np.all(np.isfinite(system.transfer_function(0.0)))

    def test_blockage_validation(self):
        # Touching the boundary ring would disconnect the pad ring.
        with pytest.raises(CircuitError, match="boundary ring"):
            PowerGridSpec(rows=6, cols=6, n_ports=1,
                          blockages=((0, 2, 2, 2),))
        with pytest.raises(CircuitError):
            PowerGridSpec(rows=6, cols=6, n_ports=1, blockages=((2, 2),))
        # Ports must still fit the surviving nodes.
        with pytest.raises(CircuitError, match="blocked node"):
            PowerGridSpec(rows=6, cols=6, n_ports=33,
                          blockages=((1, 1, 4, 4),))

    def test_make_multidomain_spec(self):
        from repro.circuit import make_multidomain_spec
        spec = make_multidomain_spec(12, 12, 6, seed=1)
        assert len(spec.regions) == 4
        assert len(spec.blockages) == 1
        system = assemble_mna(build_power_grid(spec))
        assert system.n_ports == 6
        assert np.all(np.isfinite(system.transfer_function(1j * 1e7)))
        with pytest.raises(CircuitError):
            make_multidomain_spec(4, 4, 2)
