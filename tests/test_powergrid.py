"""Unit tests for repro.circuit.powergrid."""

import numpy as np
import pytest

from repro.circuit import PowerGridSpec, assemble_mna, build_power_grid
from repro.exceptions import CircuitError


class TestPowerGridSpec:
    def test_mesh_node_count(self):
        spec = PowerGridSpec(rows=5, cols=7, n_ports=3)
        assert spec.n_mesh_nodes == 35

    def test_has_package_flag(self):
        rc = PowerGridSpec(rows=4, cols=4, n_ports=2, package_inductance=0.0)
        rlc = PowerGridSpec(rows=4, cols=4, n_ports=2, package_inductance=1e-12)
        assert not rc.has_package
        assert rlc.has_package

    @pytest.mark.parametrize("kwargs", [
        {"rows": 1, "cols": 4, "n_ports": 1},
        {"rows": 4, "cols": 4, "n_ports": 0},
        {"rows": 3, "cols": 3, "n_ports": 10},
        {"rows": 4, "cols": 4, "n_ports": 2, "n_pads": 0},
        {"rows": 4, "cols": 4, "n_ports": 2, "variation": 1.5},
    ])
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(CircuitError):
            PowerGridSpec(**kwargs)


class TestBuildPowerGrid:
    def test_counts_rc_grid(self):
        spec = PowerGridSpec(rows=4, cols=5, n_ports=3, n_pads=2,
                             package_inductance=0.0, seed=1)
        net = build_power_grid(spec)
        summary = net.summary()
        # rails: 4*(5-1) horizontal + 5*(4-1) vertical, plus 2 pad resistors
        # (mesh->pad) and 2 pad-to-ground resistors.
        assert summary["resistors"] == 4 * 4 + 5 * 3 + 2 + 2
        assert summary["capacitors"] == 20
        assert summary["inductors"] == 0
        assert summary["current_sources"] == 3
        net.validate()

    def test_counts_rlc_grid_with_ideal_pads(self):
        spec = PowerGridSpec(rows=4, cols=4, n_ports=2, n_pads=3,
                             package_inductance=1e-12, use_ideal_pads=True,
                             seed=2)
        net = build_power_grid(spec)
        summary = net.summary()
        assert summary["inductors"] == 3
        assert summary["voltage_sources"] == 3
        net.validate()

    def test_output_nodes_are_port_nodes(self):
        spec = PowerGridSpec(rows=5, cols=5, n_ports=4, seed=3)
        net = build_power_grid(spec)
        assert len(net.output_nodes) == 4
        port_nodes = {s.node_pos for s in net.current_sources}
        assert set(net.output_nodes) == port_nodes

    def test_deterministic_for_same_seed(self):
        spec = PowerGridSpec(rows=5, cols=5, n_ports=4, seed=9)
        a = build_power_grid(spec)
        b = build_power_grid(spec)
        assert [e.spice_line() for e in a] == [e.spice_line() for e in b]

    def test_different_seed_changes_values(self):
        a = build_power_grid(PowerGridSpec(rows=5, cols=5, n_ports=4, seed=1))
        b = build_power_grid(PowerGridSpec(rows=5, cols=5, n_ports=4, seed=2))
        assert [e.spice_line() for e in a] != [e.spice_line() for e in b]

    def test_zero_variation_gives_nominal_values(self):
        spec = PowerGridSpec(rows=3, cols=3, n_ports=1, variation=0.0,
                             rail_resistance=2.5, seed=0)
        net = build_power_grid(spec)
        rail_values = {r.value for r in net.resistors
                       if r.name.startswith("R") and not
                       r.name.startswith(("Rpkg", "Rpad"))}
        assert rail_values == {2.5}

    def test_stamps_into_solvable_system(self):
        spec = PowerGridSpec(rows=6, cols=6, n_ports=5, seed=4)
        system = assemble_mna(build_power_grid(spec))
        H0 = system.transfer_function(0.0)
        assert H0.shape == (5, 5)
        assert np.all(np.isfinite(H0))
        # driving-point DC resistances are negative in our sign convention
        # (the source draws current) and non-zero.
        assert np.all(np.diag(np.real(H0)) < 0.0)
