"""Property-based tests (hypothesis) for circuit stamping and grids."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import PowerGridSpec, assemble_mna, build_power_grid
from repro.circuit.parser import parse_netlist, write_netlist
from repro.linalg.sparse_utils import is_symmetric

SETTINGS = settings(max_examples=15, deadline=None)


@st.composite
def grid_specs(draw, with_package: bool | None = None):
    rows = draw(st.integers(min_value=3, max_value=7))
    cols = draw(st.integers(min_value=3, max_value=7))
    n_ports = draw(st.integers(min_value=1,
                               max_value=min(6, rows * cols)))
    n_pads = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=10 ** 6))
    if with_package is None:
        package = draw(st.sampled_from([0.0, 1e-12]))
    else:
        package = 1e-12 if with_package else 0.0
    variation = draw(st.floats(min_value=0.0, max_value=0.5))
    return PowerGridSpec(rows=rows, cols=cols, n_ports=n_ports,
                         n_pads=n_pads, package_inductance=package,
                         variation=variation, seed=seed)


class TestGridStampingProperties:
    @SETTINGS
    @given(grid_specs())
    def test_netlist_always_validates(self, spec):
        build_power_grid(spec).validate()

    @SETTINGS
    @given(grid_specs())
    def test_state_count_accounting(self, spec):
        netlist = build_power_grid(spec)
        system = assemble_mna(netlist)
        expected = netlist.n_nodes + len(netlist.inductors) \
            + len(netlist.voltage_sources)
        assert system.size == expected
        assert system.n_ports == spec.n_ports

    @SETTINGS
    @given(grid_specs(with_package=False))
    def test_rc_grids_stamp_symmetric_matrices(self, spec):
        system = assemble_mna(build_power_grid(spec))
        assert is_symmetric(system.C)
        assert is_symmetric(system.G)

    @SETTINGS
    @given(grid_specs())
    def test_dc_pencil_is_nonsingular(self, spec):
        system = assemble_mna(build_power_grid(spec))
        H0 = system.transfer_function(0.0)
        assert np.all(np.isfinite(H0))

    @SETTINGS
    @given(grid_specs())
    def test_dc_driving_point_drops_are_nonnegative(self, spec):
        # Every diagonal entry of -H(0) is a driving-point resistance.
        system = assemble_mna(build_power_grid(spec))
        H0 = np.real(system.transfer_function(0.0))
        assert np.all(np.diag(-H0) > 0.0)

    @SETTINGS
    @given(grid_specs())
    def test_netlist_roundtrips_through_spice_text(self, spec):
        netlist = build_power_grid(spec)
        reparsed = parse_netlist(write_netlist(netlist))
        assert reparsed.summary() == netlist.summary()
        assert reparsed.output_nodes == netlist.output_nodes
        for a, b in zip(netlist, reparsed):
            assert a.name == b.name
            assert np.isclose(a.value, b.value, rtol=1e-9)
