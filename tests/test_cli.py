"""Unit tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_reduce_defaults(self):
        args = build_parser().parse_args(["reduce"])
        assert args.benchmark == "ckt1"
        assert args.method == "bdsm"
        assert args.moments == 6
        assert args.scale == "smoke"

    def test_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reduce", "--method", "magic"])

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reduce", "--benchmark", "ckt9"])


class TestBenchmarksCommand:
    def test_lists_all_benchmarks(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        for name in ("ckt1", "ckt2", "ckt3", "ckt4", "ckt5"):
            assert name in out
        assert "paper ports" in out


class TestReduceCommand:
    @pytest.mark.parametrize("method", ["bdsm", "prima", "eks"])
    def test_reduce_prints_summary(self, capsys, method):
        code = main(["reduce", "--benchmark", "ckt1", "--method", method,
                     "--moments", "3", "--scale", "smoke"])
        assert code == 0
        out = capsys.readouterr().out
        assert "reduction summary" in out
        assert method.upper() in out
        assert "ROM size" in out

    def test_reduce_reports_reusability(self, capsys):
        main(["reduce", "--method", "eks", "--moments", "3"])
        out = capsys.readouterr().out
        assert "| no" in out or "no " in out


class TestSweepCommand:
    def test_sweep_prints_series(self, capsys):
        code = main(["sweep", "--benchmark", "ckt1", "--moments", "3",
                     "--points", "5", "--output", "1", "--port", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "relerr BDSM" in out
        assert "relerr PRIMA" in out
        assert out.count("\n") >= 6

    def test_sweep_rejects_zero_based_indices(self, capsys):
        assert main(["sweep", "--output", "0", "--port", "1"]) == 2

    def test_sweep_rejects_out_of_range_port(self, capsys):
        assert main(["sweep", "--port", "9999"]) == 2

    def test_sweep_parallel_jobs_output_matches_serial(self, capsys):
        argv = ["sweep", "--benchmark", "ckt1", "--moments", "3",
                "--points", "5", "--output", "1", "--port", "2"]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out
        # identical tables: the parallel sweep is bit-identical, and the
        # formatting layer prints the exact same digits
        serial_table = [line for line in serial_out.splitlines()
                        if "solver cache" not in line]
        parallel_table = [line for line in parallel_out.splitlines()
                          if "solver cache" not in line]
        assert serial_table == parallel_table

    def test_sweep_rejects_negative_jobs(self, capsys):
        assert main(["sweep", "--jobs", "-2"]) == 2

    def test_sweep_adaptive_reports_refinement(self, capsys):
        code = main(["sweep", "--benchmark", "ckt1", "--moments", "3",
                     "--points", "12", "--output", "1", "--port", "2",
                     "--adaptive", "--target-error", "1e-2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "adaptive sweep: evaluated" in out
        assert "relerr BDSM" in out
