"""Unit tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        import repro
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_reduce_defaults(self):
        args = build_parser().parse_args(["reduce"])
        assert args.benchmark == "ckt1"
        assert args.method == "bdsm"
        assert args.moments == 6
        assert args.scale == "smoke"

    def test_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reduce", "--method", "magic"])

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reduce", "--benchmark", "ckt9"])


class TestBenchmarksCommand:
    def test_lists_all_benchmarks(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        for name in ("ckt1", "ckt2", "ckt3", "ckt4", "ckt5"):
            assert name in out
        assert "paper ports" in out


class TestReduceCommand:
    @pytest.mark.parametrize("method", ["bdsm", "prima", "eks"])
    def test_reduce_prints_summary(self, capsys, method):
        code = main(["reduce", "--benchmark", "ckt1", "--method", method,
                     "--moments", "3", "--scale", "smoke"])
        assert code == 0
        out = capsys.readouterr().out
        assert "reduction summary" in out
        assert method.upper() in out
        assert "ROM size" in out

    def test_reduce_reports_reusability(self, capsys):
        main(["reduce", "--method", "eks", "--moments", "3"])
        out = capsys.readouterr().out
        assert "| no" in out or "no " in out

    def test_reduce_save_writes_artifact(self, capsys, tmp_path):
        path = tmp_path / "rom.npz"
        code = main(["reduce", "--benchmark", "ckt1", "--moments", "3",
                     "--save", str(path)])
        assert code == 0
        assert path.exists()
        from repro import load_artifact
        assert load_artifact(path).size > 0
        assert "ROM artifact saved" in capsys.readouterr().out

    def test_reduce_store_miss_then_hit(self, capsys, tmp_path):
        argv = ["reduce", "--benchmark", "ckt1", "--moments", "3",
                "--store", str(tmp_path / "store")]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "miss (ROM saved)" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "hit (reduction skipped)" in second

    def test_reduce_from_store_without_store_flag(self, capsys):
        assert main(["reduce", "--from-store"]) == 1
        assert "--from-store requires --store" in capsys.readouterr().err

    def test_reduce_from_store_missing_entry_is_clean(self, capsys,
                                                      tmp_path):
        store_dir = tmp_path / "store"
        assert main(["reduce", "--benchmark", "ckt1", "--moments", "3",
                     "--store", str(store_dir)]) == 0
        capsys.readouterr()
        code = main(["reduce", "--benchmark", "ckt2", "--moments", "3",
                     "--store", str(store_dir), "--from-store"])
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "no entry" in err

    def test_reduce_store_rejects_unmemoizable_method(self, capsys,
                                                      tmp_path):
        code = main(["reduce", "--method", "eks", "--moments", "3",
                     "--store", str(tmp_path / "store")])
        assert code == 1
        assert "only memoizes" in capsys.readouterr().err


class TestStoreCommand:
    def test_missing_store_is_clean_error(self, capsys, tmp_path):
        code = main(["store", "list", "--store",
                     str(tmp_path / "nowhere")])
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "no model store" in err

    def test_list_and_stats_and_clear(self, capsys, tmp_path):
        store_dir = str(tmp_path / "store")
        main(["reduce", "--benchmark", "ckt1", "--moments", "3",
              "--store", store_dir])
        capsys.readouterr()
        assert main(["store", "list", "--store", store_dir]) == 0
        out = capsys.readouterr().out
        assert "ckt1-smoke" in out and "BDSM" in out
        assert main(["store", "stats", "--store", store_dir]) == 0
        assert "1 entries" in capsys.readouterr().out
        assert main(["store", "clear", "--store", store_dir]) == 0
        assert "removed 1 entries" in capsys.readouterr().out
        assert main(["store", "list", "--store", store_dir]) == 0
        assert "is empty" in capsys.readouterr().out


class TestQueryCommand:
    def test_query_serves_stored_rom(self, capsys, tmp_path):
        store_dir = str(tmp_path / "store")
        main(["reduce", "--benchmark", "ckt1", "--moments", "3",
              "--store", store_dir])
        capsys.readouterr()
        code = main(["query", "--store", store_dir, "--benchmark", "ckt1",
                     "--method", "bdsm", "--moments", "3", "--points", "4",
                     "--output", "1", "--port", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "no reduction performed" in out
        assert "|H| ROM" in out

    def test_query_missing_entry_is_clean(self, capsys, tmp_path):
        store_dir = str(tmp_path / "store")
        main(["reduce", "--benchmark", "ckt1", "--moments", "3",
              "--store", store_dir])
        capsys.readouterr()
        code = main(["query", "--store", store_dir, "--benchmark", "ckt1",
                     "--method", "bdsm", "--moments", "4"])
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "populate it" in err

    def test_query_missing_store_is_clean(self, capsys, tmp_path):
        code = main(["query", "--store", str(tmp_path / "nope"),
                     "--benchmark", "ckt1"])
        assert code == 1
        assert "no model store" in capsys.readouterr().err

    def test_query_rejects_zero_based_indices(self, tmp_path):
        store_dir = str(tmp_path / "store")
        main(["reduce", "--benchmark", "ckt1", "--moments", "3",
              "--store", store_dir])
        assert main(["query", "--store", store_dir, "--output", "0"]) == 2


class TestSweepCommand:
    def test_sweep_prints_series(self, capsys):
        code = main(["sweep", "--benchmark", "ckt1", "--moments", "3",
                     "--points", "5", "--output", "1", "--port", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "relerr BDSM" in out
        assert "relerr PRIMA" in out
        assert out.count("\n") >= 6

    def test_sweep_rejects_zero_based_indices(self, capsys):
        assert main(["sweep", "--output", "0", "--port", "1"]) == 2

    def test_sweep_rejects_out_of_range_port(self, capsys):
        assert main(["sweep", "--port", "9999"]) == 2

    def test_sweep_parallel_jobs_output_matches_serial(self, capsys):
        argv = ["sweep", "--benchmark", "ckt1", "--moments", "3",
                "--points", "5", "--output", "1", "--port", "2"]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out
        # identical tables: the parallel sweep is bit-identical, and the
        # formatting layer prints the exact same digits
        serial_table = [line for line in serial_out.splitlines()
                        if "solver cache" not in line]
        parallel_table = [line for line in parallel_out.splitlines()
                          if "solver cache" not in line]
        assert serial_table == parallel_table

    def test_sweep_rejects_negative_jobs(self, capsys):
        assert main(["sweep", "--jobs", "-2"]) == 2

    def test_sweep_adaptive_reports_refinement(self, capsys):
        code = main(["sweep", "--benchmark", "ckt1", "--moments", "3",
                     "--points", "12", "--output", "1", "--port", "2",
                     "--adaptive", "--target-error", "1e-2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "adaptive sweep: evaluated" in out
        assert "relerr BDSM" in out


class TestPartitionedReduceCommand:
    def test_partitioned_reduce_prints_summary(self, capsys):
        code = main(["reduce", "--benchmark", "ckt1", "--moments", "3",
                     "--partitions", "3", "--partitioner", "bfs"])
        assert code == 0
        out = capsys.readouterr().out
        assert "P-BDSM" in out
        assert "3x bfs" in out
        assert "interface" in out

    def test_partitioned_prima_with_jobs(self, capsys):
        code = main(["reduce", "--benchmark", "ckt1", "--moments", "2",
                     "--method", "prima", "--partitions", "2",
                     "--jobs", "2"])
        assert code == 0
        assert "P-PRIMA" in capsys.readouterr().out

    def test_partitioned_natural_strategy(self, capsys):
        code = main(["reduce", "--benchmark", "ckt1", "--moments", "2",
                     "--partitions", "2", "--partitioner", "natural"])
        assert code == 0
        assert "natural" in capsys.readouterr().out

    def test_partitioned_save_exports_dense_artifact(self, capsys,
                                                     tmp_path):
        from repro.store import load_artifact
        target = tmp_path / "partitioned.npz"
        code = main(["reduce", "--benchmark", "ckt1", "--moments", "2",
                     "--partitions", "2", "--save", str(target)])
        assert code == 0
        model = load_artifact(target)
        assert model.method == "P-BDSM"

    def test_partitioned_store_hits_per_shard(self, capsys, tmp_path):
        store_dir = str(tmp_path / "store")
        argv = ["reduce", "--benchmark", "ckt1", "--moments", "2",
                "--partitions", "2", "--store", store_dir]
        assert main(argv) == 0
        assert "miss" in capsys.readouterr().out
        assert main(argv) == 0
        assert "hit" in capsys.readouterr().out

    def test_partitioned_rejects_unsupported_method(self, capsys):
        code = main(["reduce", "--benchmark", "ckt1", "--moments", "2",
                     "--method", "eks", "--partitions", "2"])
        assert code == 1
        assert "--partitions" in capsys.readouterr().err

    def test_partitioned_rejects_from_store(self, capsys, tmp_path):
        code = main(["reduce", "--benchmark", "ckt1", "--moments", "2",
                     "--partitions", "2",
                     "--store", str(tmp_path / "s"), "--from-store"])
        assert code == 1
        assert "per shard" in capsys.readouterr().err

    def test_partitioned_rejects_bad_k(self, capsys):
        code = main(["reduce", "--benchmark", "ckt1", "--moments", "2",
                     "--partitions", "0"])
        assert code == 1
        assert "--partitions" in capsys.readouterr().err


class TestObservabilityCLI:
    @staticmethod
    def _profile(path, phases):
        import json
        total = sum(t for p, t in phases.items() if "/" not in p)
        path.write_text(json.dumps({
            "schema": 1, "kind": "trace_profile", "total_s": total,
            "phases": {p: {"count": 1, "total_s": t}
                       for p, t in phases.items()}}))
        return str(path)

    def test_trace_diff_gates_seeded_regression(self, capsys, tmp_path):
        base = self._profile(tmp_path / "base.json",
                             {"reduce": 1.0, "reduce/ortho": 0.4})
        # Seeded 50% phase regression, well past the 20% budget.
        cur = self._profile(tmp_path / "cur.json",
                            {"reduce": 1.2, "reduce/ortho": 0.6})
        code = main(["trace", "--from", cur, "--diff", base,
                     "--budget", "20%"])
        captured = capsys.readouterr()
        assert code == 1
        assert "trace regression" in captured.err
        assert "reduce/ortho" in captured.err

    def test_trace_diff_within_budget_passes(self, capsys, tmp_path):
        base = self._profile(tmp_path / "base.json",
                             {"reduce": 1.0, "reduce/ortho": 0.4})
        cur = self._profile(tmp_path / "cur.json",
                            {"reduce": 1.02, "reduce/ortho": 0.42})
        code = main(["trace", "--from", cur, "--diff", base,
                     "--budget", "20%"])
        out = capsys.readouterr().out
        assert code == 0
        assert "trace diff OK" in out

    def test_trace_budget_requires_diff(self, capsys):
        assert main(["trace", "--budget", "20%"]) == 1
        assert "--diff" in capsys.readouterr().err

    def test_trace_profile_out_self_diff_is_clean(self, capsys, tmp_path):
        profile = tmp_path / "profile.json"
        assert main(["trace", "--benchmark", "ckt1", "--method", "bdsm",
                     "--profile-out", str(profile)]) == 0
        capsys.readouterr()
        code = main(["trace", "--from", str(profile), "--diff",
                     str(profile), "--budget", "20%", "--mode", "share"])
        out = capsys.readouterr().out
        assert code == 0
        assert "trace diff OK" in out

    def test_stats_json_out_round_trips_through_from(self, capsys,
                                                     tmp_path):
        import json
        dump = tmp_path / "stats.json"
        assert main(["stats", "--json-out", str(dump)]) == 0
        capsys.readouterr()
        payload = json.loads(dump.read_text())
        assert set(payload) >= {"metrics", "perf"}
        assert main(["stats", "--from", str(dump)]) == 0

    def test_ledger_flag_records_and_obs_report_reads(self, capsys,
                                                      tmp_path):
        from repro.obs.ledger import read_ledger
        ledger = tmp_path / "ledger.jsonl"
        argv = ["reduce", "--benchmark", "ckt1", "--moments", "3",
                "--ledger", str(ledger)]
        assert main(argv) == 0
        assert "ledger: recorded" in capsys.readouterr().out
        assert main(argv) == 0
        capsys.readouterr()
        records = read_ledger(ledger)
        assert len(records) == 2
        assert records[0]["kind"] == "reduce"
        assert records[0]["config"]["benchmark"] == "ckt1"
        assert records[0]["span_rollup"]
        assert main(["obs", "report", "--ledger", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "reduce" in out and "trend" in out
        # Reporting must not append to the ledger it reads.
        assert len(read_ledger(ledger)) == 2

    def test_health_flag_prints_verdict_and_feeds_ledger(self, capsys,
                                                         tmp_path):
        from repro.obs.ledger import read_ledger
        ledger = tmp_path / "ledger.jsonl"
        assert main(["reduce", "--benchmark", "ckt1", "--moments", "3",
                     "--health", "--ledger", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "health:" in out
        (record,) = read_ledger(ledger)
        assert record["health"]["status"] in ("ok", "warn")
        assert record["health"]["checks"]

    def test_obs_report_empty_ledger_is_clean(self, capsys, tmp_path):
        assert main(["obs", "report", "--ledger",
                     str(tmp_path / "none.jsonl")]) == 0
        assert "no readable records" in capsys.readouterr().out
