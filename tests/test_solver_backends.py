"""Unit tests for repro.linalg.backends (registry, selection, cache, wiring)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import SingularSystemError, SolverBackendError
from repro.linalg.backends import (
    CholeskySolver,
    DenseSolver,
    FactorizationCache,
    SolverOptions,
    SpluSolver,
    available_backends,
    default_cache,
    get_solver,
    select_backend,
    solve,
    temporary_default_cache,
)
from repro.linalg.krylov import ShiftedOperator


def _laplacian(n: int) -> sp.csr_matrix:
    """1-D Poisson matrix: sparse, symmetric positive definite."""
    main = 2.0 * np.ones(n)
    off = -1.0 * np.ones(n - 1)
    return sp.diags([off, main, off], [-1, 0, 1]).tocsr()


class TestRegistry:
    def test_expected_backends_registered(self):
        assert {"splu", "cholesky", "dense", "cg", "gmres"} <= set(
            available_backends())

    def test_unknown_backend_rejected(self):
        with pytest.raises(SolverBackendError):
            get_solver(_laplacian(5),
                       options=SolverOptions(backend="quantum"))

    def test_explicit_backend_honoured(self):
        A = _laplacian(300)
        for name in ("splu", "cholesky", "dense", "cg", "gmres"):
            solver = get_solver(
                A, options=SolverOptions(backend=name, use_cache=False))
            assert solver.name == name

    def test_iterative_alias_resolves_by_symmetry(self):
        A = _laplacian(10)
        assert select_backend(
            A, SolverOptions(backend="iterative")) == "cg"
        U = A.tolil()
        U[0, 5] = 3.0
        assert select_backend(
            U.tocsr(), SolverOptions(backend="iterative")) == "gmres"


class TestSelectionHeuristics:
    def test_small_matrices_go_dense(self):
        assert select_backend(_laplacian(8)) == "dense"

    def test_spd_matrices_go_cholesky(self):
        assert select_backend(_laplacian(300)) == "cholesky"

    def test_unsymmetric_matrices_go_splu(self):
        A = _laplacian(300).tolil()
        A[0, 250] = 5.0
        assert select_backend(A.tocsr()) == "splu"

    def test_complex_matrices_go_splu(self):
        A = (_laplacian(300) * (1 + 1j)).tocsr()
        assert select_backend(A) == "splu"

    def test_huge_matrices_go_iterative(self):
        A = _laplacian(400)
        opts = SolverOptions(iterative_threshold=350)
        assert select_backend(A, opts) == "cg"

    def test_thresholds_configurable(self):
        A = _laplacian(300)
        assert select_backend(A, SolverOptions(dense_threshold=512)) == "dense"


class TestBackendBehaviour:
    def test_cholesky_rejects_unsymmetric(self):
        A = _laplacian(20).tolil()
        A[0, 10] = 5.0
        with pytest.raises(SolverBackendError):
            CholeskySolver(A.tocsr(), SolverOptions())

    def test_cholesky_falls_back_on_indefinite(self):
        # Symmetric but indefinite: symmetric-mode SuperLU may hit a zero
        # pivot; the backend must still produce a correct solve via LU.
        A = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        x = CholeskySolver(A, SolverOptions()).solve(np.array([1.0, 2.0]))
        assert np.allclose(A @ x, [1.0, 2.0])

    @pytest.mark.filterwarnings("ignore::scipy.linalg.LinAlgWarning")
    def test_dense_rejects_singular(self):
        A = np.zeros((3, 3))
        with pytest.raises(SingularSystemError):
            DenseSolver(A, SolverOptions()).solve(np.ones(3))

    def test_non_square_rejected(self):
        with pytest.raises(SolverBackendError):
            SpluSolver(sp.csr_matrix(np.ones((2, 3))), SolverOptions())

    def test_rhs_length_checked(self):
        solver = get_solver(_laplacian(5),
                            options=SolverOptions(use_cache=False))
        with pytest.raises(SolverBackendError):
            solver.solve(np.ones(7))

    def test_complex_pencil_all_direct_backends(self):
        A = (_laplacian(40) + 1j * sp.eye(40)).tocsr()
        b = np.ones(40)
        for name in ("splu", "dense", "gmres"):
            x = get_solver(
                A, options=SolverOptions(backend=name, use_cache=False,
                                         tol=1e-13)).solve(b)
            assert np.linalg.norm(A @ x - b) < 1e-8

    def test_cg_rejects_complex(self):
        A = (_laplacian(10) * (1 + 1j)).tocsr()
        with pytest.raises(SolverBackendError):
            get_solver(A, options=SolverOptions(backend="cg",
                                                use_cache=False))

    def test_iterative_unknown_preconditioner(self):
        with pytest.raises(SolverBackendError):
            get_solver(_laplacian(10),
                       options=SolverOptions(backend="cg", use_cache=False,
                                             preconditioner="magic"))

    def test_sparse_rhs_accepted(self):
        A = _laplacian(6)
        B = sp.csr_matrix(np.eye(6)[:, :2])
        X = get_solver(A, options=SolverOptions(use_cache=False)).solve(B)
        assert np.allclose(A @ X, np.eye(6)[:, :2])

    def test_solve_convenience(self):
        A = _laplacian(6)
        b = np.arange(6.0)
        assert np.allclose(A @ solve(A, b), b)


class TestFactorizationCache:
    def test_lru_eviction_order(self):
        cache = FactorizationCache(capacity=2)
        mats = [sp.eye(k + 1, format="csr") * 2.0 for k in range(3)]
        s0 = get_solver(mats[0], cache=cache)
        get_solver(mats[1], cache=cache)
        # Touch the first entry so the second becomes LRU.
        assert get_solver(mats[0], cache=cache) is s0
        get_solver(mats[2], cache=cache)  # evicts mats[1]
        stats = cache.stats()
        assert stats.evictions == 1
        assert stats.size == 2
        assert get_solver(mats[0], cache=cache) is s0  # still cached

    def test_stats_and_clear(self):
        cache = FactorizationCache(capacity=4)
        A = _laplacian(5)
        get_solver(A, cache=cache)
        get_solver(A, cache=cache)
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == pytest.approx(0.5)
        cache.clear()
        assert len(cache) == 0
        cache.reset_stats()
        assert cache.stats().hits == 0

    def test_capacity_validated(self):
        with pytest.raises(SolverBackendError):
            FactorizationCache(capacity=0)

    def test_different_options_do_not_collide(self):
        cache = FactorizationCache(capacity=8)
        A = _laplacian(5)
        direct = get_solver(A, options=SolverOptions(backend="dense"),
                            cache=cache)
        iterative = get_solver(A, options=SolverOptions(backend="cg"),
                               cache=cache)
        assert direct is not iterative
        assert direct.name == "dense" and iterative.name == "cg"

    def test_use_cache_false_bypasses(self):
        cache = FactorizationCache(capacity=4)
        A = _laplacian(5)
        with temporary_default_cache(cache):
            get_solver(A, options=SolverOptions(use_cache=False))
        assert len(cache) == 0

    def test_temporary_default_cache_restores(self):
        original = default_cache()
        replacement = FactorizationCache(capacity=2)
        with temporary_default_cache(replacement) as active:
            assert default_cache() is active is replacement
        assert default_cache() is original


class TestLibraryWiring:
    """SolverOptions reach the analyses and change nothing numerically."""

    def test_shifted_operator_backend_override(self, rc_grid_system):
        sys_ = rc_grid_system
        rhs = np.arange(sys_.size, dtype=float)
        base = ShiftedOperator(sys_.C, sys_.G, s0=0.0).solve(rhs)
        for name in ("splu", "cholesky", "dense"):
            op = ShiftedOperator(sys_.C, sys_.G, s0=0.0,
                                 solver=SolverOptions(backend=name))
            assert op.backend_name == name
            assert np.allclose(op.solve(rhs), base, rtol=1e-10, atol=1e-14)

    def test_shifted_operator_solve_count_batched(self, rc_grid_system):
        sys_ = rc_grid_system
        op = ShiftedOperator(sys_.C, sys_.G, s0=0.0)
        op.solve(np.ones((sys_.size, 5)))
        assert op.solve_count == 5

    def test_transient_solver_options_equivalent(self, rc_ladder_system):
        from repro.analysis.sources import SourceBank, StepSource
        from repro.analysis.transient import TransientAnalysis
        sources = SourceBank.uniform(rc_ladder_system.B.shape[1],
                                     StepSource(1e-3))
        kwargs = dict(t_stop=1e-4, dt=1e-5)
        base = TransientAnalysis(**kwargs).run(rc_ladder_system, sources)
        alt = TransientAnalysis(
            **kwargs, solver=SolverOptions(backend="splu")).run(
            rc_ladder_system, sources)
        assert np.allclose(base.outputs, alt.outputs, rtol=1e-12, atol=1e-15)

    def test_transient_warm_cache_bit_identical(self, rc_ladder_system):
        from repro.analysis.sources import SourceBank, StepSource
        from repro.analysis.transient import TransientAnalysis
        sources = SourceBank.uniform(rc_ladder_system.B.shape[1],
                                     StepSource(1e-3))
        transient = TransientAnalysis(t_stop=1e-4, dt=1e-5)
        with temporary_default_cache(FactorizationCache(capacity=4)) as cache:
            cold = transient.run(rc_ladder_system, sources)
            warm = transient.run(rc_ladder_system, sources)
            assert cache.stats().hits >= 1
        assert np.array_equal(cold.outputs, warm.outputs)

    def test_bdsm_solver_options_equivalent(self, smoke_benchmark):
        from repro import BDSMOptions, bdsm_reduce
        base, _, _ = bdsm_reduce(smoke_benchmark, 3)
        alt, _, _ = bdsm_reduce(
            smoke_benchmark, 3,
            options=BDSMOptions(solver=SolverOptions(backend="dense")))
        for blk_a, blk_b in zip(base.blocks, alt.blocks):
            assert np.allclose(blk_a.G, blk_b.G, rtol=1e-8, atol=1e-12)

    def test_blockwise_simulation_default_leaves_cache_alone(
            self, smoke_benchmark):
        from repro import BDSMOptions, bdsm_reduce
        from repro.analysis.sources import SourceBank, StepSource
        from repro.core.simulation import simulate_blockwise
        rom, _, _ = bdsm_reduce(smoke_benchmark, 2, options=BDSMOptions())
        sources = SourceBank.uniform(rom.n_ports, StepSource(1e-3))
        with temporary_default_cache(FactorizationCache(capacity=4)) as cache:
            simulate_blockwise(rom, sources, t_stop=1e-5, dt=1e-6)
            # ROMs can have far more blocks than the cache has slots, so
            # per-block factors stay out of the shared cache by default.
            assert len(cache) == 0

    def test_blockwise_simulation_opt_in_cache(self, smoke_benchmark):
        from repro import BDSMOptions, bdsm_reduce
        from repro.analysis.sources import SourceBank, StepSource
        from repro.core.simulation import simulate_blockwise
        rom, _, _ = bdsm_reduce(smoke_benchmark, 2, options=BDSMOptions())
        sources = SourceBank.uniform(rom.n_ports, StepSource(1e-3))
        opts = SolverOptions()
        with temporary_default_cache(
                FactorizationCache(capacity=2 * rom.n_blocks)) as cache:
            cold = simulate_blockwise(rom, sources, t_stop=1e-5, dt=1e-6,
                                      solver=opts)
            misses_cold = cache.stats().misses
            warm = simulate_blockwise(rom, sources, t_stop=1e-5, dt=1e-6,
                                      solver=opts)
            stats = cache.stats()
        assert misses_cold == rom.n_blocks
        assert stats.hits == rom.n_blocks
        assert np.array_equal(cold.outputs, warm.outputs)

    def test_ir_drop_solver_options(self, rc_grid_system):
        from repro import ir_drop_analysis
        loads = np.full(rc_grid_system.B.shape[1], 1e-3)
        base = ir_drop_analysis(rc_grid_system, loads)
        alt = ir_drop_analysis(
            rc_grid_system, loads,
            solver=SolverOptions(backend="cg", tol=1e-13,
                                 preconditioner="ilu"))
        assert np.allclose(base.voltages, alt.voltages,
                           rtol=1e-8, atol=1e-12)
