"""Unit tests for repro.mor.prima."""

import numpy as np
import pytest

from repro.exceptions import ReductionError, ResourceBudgetExceeded
from repro.linalg.sparse_utils import is_symmetric
from repro.mor import ResourceBudget, prima_reduce
from repro.mor.prima import congruence_project
from repro.validation import count_matched_moments, max_relative_error


class TestPrimaReduce:
    def test_rom_size_is_m_times_l(self, rc_grid_system):
        l = 3
        rom, _, _ = prima_reduce(rc_grid_system, l)
        assert rom.size == rc_grid_system.n_ports * l
        assert rom.method == "PRIMA"
        assert rom.reusable

    def test_moment_matching(self, rc_grid_system):
        l = 4
        rom, _, _ = prima_reduce(rc_grid_system, l)
        assert count_matched_moments(rc_grid_system, rom, l) >= l

    def test_accuracy_over_band(self, rc_grid_system):
        rom, _, _ = prima_reduce(rc_grid_system, 4)
        omegas = np.logspace(5, 9, 6)
        assert max_relative_error(rc_grid_system, rom, omegas) < 1e-6

    def test_congruence_preserves_symmetry(self, rc_grid_system):
        rom, _, _ = prima_reduce(rc_grid_system, 3)
        assert is_symmetric(rom.C, tol=1e-8)
        assert is_symmetric(rom.G, tol=1e-8)

    def test_rom_is_dense(self, rc_grid_system):
        rom, _, _ = prima_reduce(rc_grid_system, 3)
        assert rom.density()["G"] > 0.9

    def test_ortho_stats_scale_quadratically(self, rc_grid_system):
        _, stats, _ = prima_reduce(rc_grid_system, 3)
        m = rc_grid_system.n_ports
        q = m * 3
        # two MGS sweeps -> roughly q*(q-1) inner products
        assert stats.inner_products >= q * (q - 1) // 2

    def test_budget_guard_triggers(self, rc_grid_system):
        budget = ResourceBudget(max_dense_bytes=1024, label="tiny")
        with pytest.raises(ResourceBudgetExceeded):
            prima_reduce(rc_grid_system, 4, budget=budget)

    def test_keep_projection(self, rc_grid_system):
        rom, _, _ = prima_reduce(rc_grid_system, 2, keep_projection=True)
        assert rom.projection is not None
        assert rom.projection.shape == (rc_grid_system.size, rom.size)

    def test_invalid_moment_count(self, rc_grid_system):
        with pytest.raises(ReductionError):
            prima_reduce(rc_grid_system, 0)

    def test_nonzero_expansion_point(self, rc_grid_system):
        s0 = 1e9
        rom, _, _ = prima_reduce(rc_grid_system, 3, s0=s0)
        assert count_matched_moments(rc_grid_system, rom, 3, s0=s0) >= 3


class TestCongruenceProject:
    def test_rejects_mismatched_basis(self, rc_grid_system):
        with pytest.raises(ReductionError):
            congruence_project(rc_grid_system, np.ones((5, 2)),
                               method="X", s0=0.0, n_moments=1)

    def test_rejects_non_2d_basis(self, rc_grid_system):
        with pytest.raises(ReductionError):
            congruence_project(rc_grid_system,
                               np.ones(rc_grid_system.size),
                               method="X", s0=0.0, n_moments=1)

    def test_projects_const_input(self, rlc_grid_system):
        # RLC grid with resistive pads has no const term; attach one manually
        # to exercise the code path.
        import copy
        system = copy.copy(rlc_grid_system)
        system.const_input = np.ones(system.size)
        V = np.eye(system.size)[:, :4]
        rom = congruence_project(system, V, method="X", s0=0.0, n_moments=1)
        assert rom.const_input is not None
        assert rom.const_input.shape == (4,)
