"""Unit tests for repro.linalg.sparse_utils."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import SingularSystemError
from repro.linalg.sparse_utils import (
    as_dense,
    estimate_dense_bytes,
    frobenius_norm,
    is_symmetric,
    nnz_density,
    sparsity_info,
    splu_factor,
    to_csc,
    to_csr,
)


class TestConversions:
    def test_to_csr_from_dense(self):
        m = to_csr(np.eye(3))
        assert sp.issparse(m)
        assert m.format == "csr"
        assert m.nnz == 3

    def test_to_csr_passthrough(self):
        original = sp.csr_matrix(np.eye(4))
        assert to_csr(original) is original

    def test_to_csc_from_dense(self):
        m = to_csc([[1.0, 0.0], [0.0, 2.0]])
        assert m.format == "csc"
        assert m.nnz == 2

    def test_as_dense_roundtrip(self):
        arr = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert np.array_equal(as_dense(sp.csr_matrix(arr)), arr)
        assert np.array_equal(as_dense(arr), arr)


class TestDensityAndNorms:
    def test_nnz_density_sparse(self):
        m = sp.eye(10, format="csr")
        assert nnz_density(m) == pytest.approx(0.1)

    def test_nnz_density_dense_ignores_exact_zeros(self):
        arr = np.zeros((4, 4))
        arr[0, 0] = 1.0
        assert nnz_density(arr) == pytest.approx(1 / 16)

    def test_nnz_density_empty(self):
        assert nnz_density(np.zeros((0, 0))) == 0.0

    def test_frobenius_norm_matches_numpy(self, rng):
        arr = rng.normal(size=(5, 5))
        assert frobenius_norm(sp.csr_matrix(arr)) == pytest.approx(
            np.linalg.norm(arr))


class TestSymmetry:
    def test_symmetric_matrix(self):
        arr = np.array([[2.0, -1.0], [-1.0, 2.0]])
        assert is_symmetric(arr)

    def test_asymmetric_matrix(self):
        arr = np.array([[2.0, -1.0], [1.0, 2.0]])
        assert not is_symmetric(arr)

    def test_non_square_is_not_symmetric(self):
        assert not is_symmetric(np.ones((2, 3)))

    def test_tolerance_scales_with_matrix(self):
        arr = np.array([[1e12, 1.0], [1.0 + 1e-4, 1e12]])
        assert is_symmetric(arr, tol=1e-10)


class TestSparsityInfo:
    def test_basic_fields(self):
        m = sp.diags([1.0, 2.0, 3.0]).tocsr()
        info = sparsity_info(m)
        assert info.shape == (3, 3)
        assert info.nnz == 3
        assert info.density == pytest.approx(1 / 3)
        assert info.bandwidth == 0
        assert info.symmetric

    def test_density_percent(self):
        info = sparsity_info(np.eye(4))
        assert info.density_percent == pytest.approx(25.0)

    def test_bandwidth_of_tridiagonal(self):
        m = sp.diags([[1.0] * 4, [1.0] * 5, [1.0] * 4], offsets=[-1, 0, 1])
        assert sparsity_info(m).bandwidth == 1

    def test_empty_matrix(self):
        info = sparsity_info(sp.csr_matrix((3, 3)))
        assert info.nnz == 0
        assert info.bandwidth == 0


class TestEstimateDenseBytes:
    def test_float64_default(self):
        assert estimate_dense_bytes(100, 200) == 100 * 200 * 8

    def test_custom_itemsize(self):
        assert estimate_dense_bytes(10, 10, itemsize=4) == 400


class TestSpluFactor:
    def test_solves_linear_system(self, rng):
        arr = rng.normal(size=(6, 6)) + 6 * np.eye(6)
        factor = splu_factor(sp.csc_matrix(arr))
        b = rng.normal(size=6)
        x = factor.solve(b)
        assert np.allclose(arr @ x, b)

    def test_rejects_non_square(self):
        with pytest.raises(SingularSystemError):
            splu_factor(sp.csr_matrix(np.ones((2, 3))))

    def test_rejects_singular(self):
        singular = sp.csr_matrix(np.zeros((3, 3)))
        with pytest.raises(SingularSystemError):
            splu_factor(singular)

    def test_rejects_non_finite(self):
        arr = np.eye(3)
        arr[0, 0] = np.nan
        with pytest.raises(SingularSystemError):
            splu_factor(sp.csr_matrix(arr))

    def test_complex_matrix(self):
        arr = np.eye(3) * (1.0 + 1.0j)
        factor = splu_factor(sp.csc_matrix(arr))
        x = factor.solve(np.ones(3, dtype=complex))
        assert np.allclose(x, np.full(3, 1.0 / (1.0 + 1.0j)))
