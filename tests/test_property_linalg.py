"""Property-based tests (hypothesis) for the linear-algebra substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.linalg.blockdiag import BlockLayout, block_diag_sparse
from repro.linalg.orthogonalization import (
    modified_gram_schmidt,
    theoretical_inner_products,
)

# Keep hypothesis examples small: each example does dense linear algebra.
SETTINGS = settings(max_examples=25, deadline=None)


finite_floats = st.floats(min_value=-10.0, max_value=10.0,
                          allow_nan=False, allow_infinity=False)


@st.composite
def candidate_matrices(draw):
    rows = draw(st.integers(min_value=3, max_value=12))
    cols = draw(st.integers(min_value=1, max_value=min(rows, 5)))
    return draw(arrays(np.float64, (rows, cols), elements=finite_floats))


@st.composite
def candidate_matrix_pairs(draw):
    """Two candidate matrices sharing the same row count."""
    rows = draw(st.integers(min_value=4, max_value=12))
    cols_a = draw(st.integers(min_value=1, max_value=4))
    cols_b = draw(st.integers(min_value=1, max_value=4))
    a = draw(arrays(np.float64, (rows, cols_a), elements=finite_floats))
    b = draw(arrays(np.float64, (rows, cols_b), elements=finite_floats))
    return a, b


class TestGramSchmidtProperties:
    @SETTINGS
    @given(candidate_matrices())
    def test_basis_is_orthonormal(self, candidates):
        basis, _ = modified_gram_schmidt(candidates)
        gram = basis.T @ basis
        assert np.allclose(gram, np.eye(basis.shape[1]), atol=1e-8)

    @SETTINGS
    @given(candidate_matrices())
    def test_basis_never_wider_than_input(self, candidates):
        basis, stats = modified_gram_schmidt(candidates)
        assert basis.shape[1] + stats.deflations == candidates.shape[1]
        assert basis.shape[1] <= min(candidates.shape)

    @SETTINGS
    @given(candidate_matrices())
    def test_candidates_lie_in_span(self, candidates):
        basis, _ = modified_gram_schmidt(candidates)
        if basis.shape[1] == 0:
            assert np.allclose(candidates, 0.0, atol=1e-9)
            return
        residual = candidates - basis @ (basis.T @ candidates)
        scale = max(np.linalg.norm(candidates), 1.0)
        assert np.linalg.norm(residual) <= 1e-6 * scale

    @SETTINGS
    @given(candidate_matrix_pairs())
    def test_two_stage_orthogonality(self, pair):
        first, second = pair
        basis_a, _ = modified_gram_schmidt(first)
        basis_b, _ = modified_gram_schmidt(second, initial_basis=basis_a)
        if basis_a.shape[1] and basis_b.shape[1]:
            assert np.allclose(basis_a.T @ basis_b, 0.0, atol=1e-8)


class TestCostFormulaProperties:
    @SETTINGS
    @given(st.integers(min_value=1, max_value=2000),
           st.integers(min_value=1, max_value=30))
    def test_clustered_cost_never_exceeds_global(self, m, l):
        assert theoretical_inner_products(m, l, clustered=True) <= \
            theoretical_inner_products(m, l, clustered=False)

    @SETTINGS
    @given(st.integers(min_value=2, max_value=2000),
           st.integers(min_value=2, max_value=30))
    def test_cost_ratio_grows_with_ports(self, m, l):
        ratio = (theoretical_inner_products(m, l, clustered=False)
                 / max(theoretical_inner_products(m, l, clustered=True), 1))
        assert ratio >= (m * l - 1) / (l - 1) - 1e-9


class TestBlockLayoutProperties:
    @SETTINGS
    @given(st.lists(st.integers(min_value=1, max_value=6), min_size=1,
                    max_size=8))
    def test_offsets_partition_the_range(self, sizes):
        layout = BlockLayout(tuple(sizes))
        covered = []
        for i in range(layout.n_blocks):
            sl = layout.block_slice(i)
            covered.extend(range(sl.start, sl.stop))
        assert covered == list(range(layout.total))

    @SETTINGS
    @given(st.lists(st.integers(min_value=1, max_value=5), min_size=1,
                    max_size=6), st.integers(min_value=0, max_value=10 ** 6))
    def test_block_of_index_consistent_with_slices(self, sizes, raw_index):
        layout = BlockLayout(tuple(sizes))
        index = raw_index % layout.total
        block = layout.block_of_index(index)
        sl = layout.block_slice(block)
        assert sl.start <= index < sl.stop

    @SETTINGS
    @given(st.lists(st.integers(min_value=1, max_value=4), min_size=1,
                    max_size=5), st.integers(min_value=0, max_value=1000))
    def test_block_diag_nnz_is_sum_of_block_areas(self, sizes, seed):
        rng = np.random.default_rng(seed)
        blocks = [rng.uniform(0.5, 1.0, size=(k, k)) for k in sizes]
        matrix = block_diag_sparse(blocks)
        assert matrix.nnz == sum(k * k for k in sizes)
        assert matrix.shape == (sum(sizes), sum(sizes))
