"""Unit tests for repro.circuit.parser (SPICE-subset parser/writer)."""

import pytest

from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    Resistor,
    VoltageSource,
)
from repro.circuit.parser import (
    parse_netlist,
    parse_netlist_file,
    parse_value,
    write_netlist,
)
from repro.exceptions import NetlistParseError

DECK = """simple power grid fragment
* mesh resistors
R1 n1 n2 1.5
R2 n2 0 2k
C1 n1 0 10pF    $ decap
L1 n2 n3 1n
Vdd n3 0 DC 1.0
I1 n1 0 1m
.PRINT V(n1) V(n2)
.END
"""


class TestParseValue:
    @pytest.mark.parametrize("token,expected", [
        ("1.5", 1.5),
        ("2k", 2000.0),
        ("10p", 1e-11),
        ("10pF", 1e-11),
        ("3u", 3e-6),
        ("2meg", 2e6),
        ("5MEG", 5e6),
        ("1.2n", 1.2e-9),
        ("4f", 4e-15),
        ("7m", 7e-3),
        ("1e-3", 1e-3),
        ("-2.5", -2.5),
        ("3.3v", 3.3),
    ])
    def test_values(self, token, expected):
        assert parse_value(token) == pytest.approx(expected)

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_value("abc")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parse_value("  ")


class TestParseNetlist:
    def test_full_deck(self):
        net = parse_netlist(DECK)
        assert net.title == "simple power grid fragment"
        assert isinstance(net["R1"], Resistor)
        assert isinstance(net["C1"], Capacitor)
        assert isinstance(net["L1"], Inductor)
        assert isinstance(net["Vdd"], VoltageSource)
        assert isinstance(net["I1"], CurrentSource)
        assert net["R2"].value == pytest.approx(2000.0)
        assert net["C1"].value == pytest.approx(1e-11)
        assert net["Vdd"].value == pytest.approx(1.0)
        assert net.output_nodes == ["n1", "n2"]

    def test_comments_and_blank_lines_ignored(self):
        text = "title\n\n* full comment\nR1 a 0 1.0 ; trailing\nI1 a 0 1\n.END\n"
        net = parse_netlist(text)
        assert len(net) == 2

    def test_continuation_lines(self):
        text = "title\nR1 a\n+ 0 2.0\nI1 a 0 1\n"
        net = parse_netlist(text)
        assert net["R1"].value == 2.0
        assert net["R1"].node_neg == "0"

    def test_continuation_without_previous_line_rejected(self):
        with pytest.raises(NetlistParseError):
            parse_netlist("+ R1 a 0 1.0\n")

    def test_unknown_element_rejected(self):
        with pytest.raises(NetlistParseError, match="unsupported"):
            parse_netlist("title\nQ1 a b 1.0 1.0\n")

    def test_too_few_tokens_rejected(self):
        with pytest.raises(NetlistParseError, match="4 tokens"):
            parse_netlist("title\nR1 a 0\n")

    def test_bad_value_reports_line_number(self):
        with pytest.raises(NetlistParseError) as err:
            parse_netlist("title\nR1 a 0 oops\n")
        assert err.value.line_number == 2

    def test_self_loop_element_reported_with_line(self):
        with pytest.raises(NetlistParseError):
            parse_netlist("title\nR1 a a 1.0\n")

    def test_empty_text_rejected(self):
        with pytest.raises(NetlistParseError):
            parse_netlist("")

    def test_content_after_end_ignored(self):
        text = "title\nR1 a 0 1\nI1 a 0 1\n.END\nR2 b 0 garbage\n"
        net = parse_netlist(text)
        assert "R2" not in net

    def test_unknown_control_cards_ignored(self):
        text = "title\n.TRAN 1n 10n\n.OPTIONS reltol=1e-4\nR1 a 0 1\nI1 a 0 1\n"
        net = parse_netlist(text)
        assert len(net) == 2


class TestRoundTrip:
    def test_write_then_parse(self):
        original = parse_netlist(DECK)
        text = write_netlist(original)
        reparsed = parse_netlist(text)
        assert [e.name for e in original] == [e.name for e in reparsed]
        for a, b in zip(original, reparsed):
            assert a.value == pytest.approx(b.value)
            assert a.nodes == b.nodes
        assert original.output_nodes == reparsed.output_nodes

    def test_file_roundtrip(self, tmp_path):
        original = parse_netlist(DECK)
        path = tmp_path / "deck.sp"
        write_netlist(original, path)
        loaded = parse_netlist_file(path)
        assert loaded.summary() == original.summary()

    def test_missing_file(self, tmp_path):
        with pytest.raises(NetlistParseError):
            parse_netlist_file(tmp_path / "nope.sp")
