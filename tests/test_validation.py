"""Unit tests for repro.validation (error metrics, moment checks, structure)."""

import numpy as np
import pytest

from repro.core import bdsm_reduce
from repro.exceptions import ValidationError
from repro.mor import eks_reduce, prima_reduce
from repro.validation import (
    count_matched_moments,
    max_relative_error,
    relative_error_curve,
    rom_structure_report,
    verify_moment_matching,
)
from repro.validation.error_metrics import transfer_matrix_error


class TestErrorMetrics:
    def test_identical_systems_have_zero_error(self, rc_grid_system):
        omegas = np.logspace(6, 9, 4)
        curve = relative_error_curve(rc_grid_system, rc_grid_system, omegas)
        assert np.allclose(curve, 0.0)
        assert max_relative_error(rc_grid_system, rc_grid_system, omegas) == 0.0

    def test_curve_length_matches_grid(self, rc_grid_system):
        rom, _, _ = bdsm_reduce(rc_grid_system, 2)
        omegas = np.logspace(6, 9, 7)
        curve = relative_error_curve(rc_grid_system, rom, omegas)
        assert curve.shape == (7,)

    def test_empty_grid_rejected(self, rc_grid_system):
        with pytest.raises(ValidationError):
            relative_error_curve(rc_grid_system, rc_grid_system, np.array([]))

    def test_transfer_matrix_error(self, rc_grid_system):
        rom, _, _ = bdsm_reduce(rc_grid_system, 3)
        err = transfer_matrix_error(rc_grid_system, rom, 1j * 1e7)
        assert err < 1e-8
        absolute = transfer_matrix_error(rc_grid_system, rom, 1j * 1e7,
                                         relative=False)
        assert absolute >= 0.0

    def test_transfer_matrix_error_shape_check(self, rc_grid_system,
                                               rc_ladder_system):
        with pytest.raises(ValidationError):
            transfer_matrix_error(rc_grid_system, rc_ladder_system, 1j * 1e6)


class TestMomentCheck:
    def test_moment_matching_of_prima(self, rc_grid_system):
        l = 3
        rom, _, _ = prima_reduce(rc_grid_system, l)
        result = verify_moment_matching(rc_grid_system, rom, l)
        assert result.all_matched
        assert result.n_matched == l

    def test_eks_matches_no_true_moments(self, rc_grid_system):
        rom, _, _ = eks_reduce(rc_grid_system, 4)
        assert count_matched_moments(rc_grid_system, rom, 3) == 0

    def test_prefix_counting(self):
        from repro.validation.moment_check import MomentCheckResult
        result = MomentCheckResult(relative_errors=[1e-9, 1e-8, 1.0, 1e-9],
                                   tolerance=1e-6)
        assert result.n_matched == 2
        assert not result.all_matched

    def test_invalid_moment_count(self, rc_grid_system):
        rom, _, _ = bdsm_reduce(rc_grid_system, 2)
        with pytest.raises(ValidationError):
            verify_moment_matching(rc_grid_system, rom, 0)


class TestStructureReport:
    def test_bdsm_report_has_blocks(self, rc_grid_system):
        rom, _, _ = bdsm_reduce(rc_grid_system, 3)
        report = rom_structure_report(rom)
        assert report.method == "BDSM"
        assert report.block_sizes == [3] * rc_grid_system.n_ports
        assert report.densities["G"] <= 1 / rc_grid_system.n_ports + 1e-12

    def test_prima_report_is_dense(self, rc_grid_system):
        rom, _, _ = prima_reduce(rc_grid_system, 3)
        report = rom_structure_report(rom)
        assert report.block_sizes == []
        assert report.densities["G"] > 0.9

    def test_density_percent_and_rows(self, rc_grid_system):
        rom, _, _ = bdsm_reduce(rc_grid_system, 3)
        report = rom_structure_report(rom)
        assert report.density_percent("G") == pytest.approx(
            100.0 * report.densities["G"])
        row = report.as_row()
        assert "G density %" in row
        with pytest.raises(ValidationError):
            report.density_percent("Z")
