"""Property-based tests of the linear-solver backend subsystem.

Three invariants the rest of the library leans on:

* auto-selection always returns a backend that actually solves the system —
  SPD and unsymmetric alike — to tight residual tolerance;
* a cache hit returns bit-identical results to the cold solve (it is the
  same factor object);
* cache eviction never changes results: re-factorising the same matrix is
  deterministic, so a capacity-starved cache only costs time, not accuracy.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.backends import (
    FactorizationCache,
    SolverOptions,
    get_solver,
    matrix_fingerprint,
    select_backend,
)

#: Bounded sizes keep each factorisation cheap; hypothesis drives variety.
SIZES = st.integers(min_value=2, max_value=60)
SEEDS = st.integers(min_value=0, max_value=2**32 - 1)


def _spd_matrix(n: int, seed: int) -> sp.csr_matrix:
    """Random sparse SPD matrix (grid-Laplacian-like: diagonally dominant)."""
    rng = np.random.default_rng(seed)
    A = sp.random(n, n, density=min(1.0, 4.0 / n), random_state=rng,
                  format="csr")
    A = A + A.T
    # Diagonal dominance makes it SPD and keeps the condition number tame.
    row_sums = np.asarray(np.abs(A).sum(axis=1)).reshape(-1)
    return (A + sp.diags(row_sums + 1.0)).tocsr()


def _unsymmetric_matrix(n: int, seed: int) -> sp.csr_matrix:
    rng = np.random.default_rng(seed)
    A = _spd_matrix(n, seed)
    skew = sp.random(n, n, density=min(1.0, 3.0 / n), random_state=rng,
                     format="csr")
    return (A + skew).tocsr()


def _rhs(n: int, seed: int) -> np.ndarray:
    return np.random.default_rng(seed + 1).normal(size=n)


def _relative_residual(A, x, b) -> float:
    return float(np.linalg.norm(A @ x - b)
                 / max(np.linalg.norm(b), 1e-300))


class TestAutoSelectionSolves:
    @given(n=SIZES, seed=SEEDS)
    @settings(max_examples=30, deadline=None)
    def test_spd_systems(self, n, seed):
        A = _spd_matrix(n, seed)
        b = _rhs(n, seed)
        solver = get_solver(A, options=SolverOptions(use_cache=False))
        assert _relative_residual(A, solver.solve(b), b) < 1e-9

    @given(n=SIZES, seed=SEEDS)
    @settings(max_examples=30, deadline=None)
    def test_unsymmetric_systems(self, n, seed):
        A = _unsymmetric_matrix(n, seed)
        b = _rhs(n, seed)
        solver = get_solver(A, options=SolverOptions(use_cache=False))
        assert _relative_residual(A, solver.solve(b), b) < 1e-9

    @given(n=SIZES, seed=SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_selection_is_deterministic(self, n, seed):
        A = _unsymmetric_matrix(n, seed)
        assert select_backend(A) == select_backend(A)

    @given(n=SIZES, seed=SEEDS, k=st.integers(min_value=1, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_block_rhs_matches_columnwise(self, n, seed, k):
        """Batched multi-RHS solves equal the column-by-column solves."""
        A = _unsymmetric_matrix(n, seed)
        B = np.random.default_rng(seed + 2).normal(size=(n, k))
        solver = get_solver(A, options=SolverOptions(use_cache=False))
        X = solver.solve(B)
        for j in range(k):
            assert np.allclose(X[:, j], solver.solve(B[:, j]),
                               rtol=1e-12, atol=1e-14)


class TestCacheSemantics:
    @given(n=SIZES, seed=SEEDS)
    @settings(max_examples=30, deadline=None)
    def test_cache_hit_is_bit_identical(self, n, seed):
        A = _spd_matrix(n, seed)
        b = _rhs(n, seed)
        cache = FactorizationCache(capacity=4)
        cold = get_solver(A, cache=cache).solve(b)
        warm = get_solver(A, cache=cache).solve(b)
        assert cache.stats().hits == 1
        assert np.array_equal(cold, warm)

    @given(n=SIZES, seed=SEEDS)
    @settings(max_examples=15, deadline=None)
    def test_eviction_never_changes_results(self, n, seed):
        """A capacity-1 cache thrashing between two matrices stays exact."""
        A = _spd_matrix(n, seed)
        B = _unsymmetric_matrix(n, seed + 7)
        b = _rhs(n, seed)
        reference = {
            "A": get_solver(A, options=SolverOptions(use_cache=False)).solve(b),
            "B": get_solver(B, options=SolverOptions(use_cache=False)).solve(b),
        }
        cache = FactorizationCache(capacity=1)
        for _ in range(3):  # alternate to force evictions every lookup
            xa = get_solver(A, cache=cache).solve(b)
            xb = get_solver(B, cache=cache).solve(b)
            assert np.array_equal(xa, reference["A"])
            assert np.array_equal(xb, reference["B"])
        assert cache.stats().evictions >= 4

    @given(n=SIZES, seed=SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_fingerprint_distinguishes_matrices(self, n, seed):
        A = _spd_matrix(n, seed)
        B = A.copy()
        B[0, 0] += 1.0
        assert matrix_fingerprint(A) == matrix_fingerprint(A.copy())
        assert matrix_fingerprint(A) != matrix_fingerprint(B.tocsr())

    @given(n=SIZES, seed=SEEDS)
    @settings(max_examples=10, deadline=None)
    def test_fingerprint_format_independent(self, n, seed):
        A = _spd_matrix(n, seed)
        assert matrix_fingerprint(A.tocsc()) == matrix_fingerprint(A.tocsr())
        # ... but a dense array is tagged distinctly from a sparse one.
        assert matrix_fingerprint(A.toarray()) != matrix_fingerprint(A)
