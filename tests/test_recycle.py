"""Unit tests for repro.linalg.recycle (basis recycling across shifts/shards)."""

import numpy as np
import pytest

from repro.core import BDSMOptions, multipoint_bdsm_reduce
from repro.linalg import (
    RecycleStats,
    RecycleWorkspace,
    ShardBasisCache,
    block_orthonormalize,
    modified_gram_schmidt,
)
from repro.mor import multipoint_prima_reduce
from repro.partition import partitioned_reduce
from repro.validation import rom_agreement_report


def _total_solves(rom) -> int:
    return int(sum(rom.solve_counts))


class TestRecycleWorkspace:
    def test_first_shift_screens_nothing(self):
        ws = RecycleWorkspace(8)
        ws.begin_shift()
        keep = ws.screen(np.random.default_rng(0).standard_normal((8, 3)))
        assert keep.all()
        assert ws.stats.hits == 0

    def test_repeated_direction_is_a_hit(self):
        from repro.linalg import OrthoStats

        rng = np.random.default_rng(1)
        ws = RecycleWorkspace(10)
        block = rng.standard_normal((10, 3))
        ws.begin_shift()
        ws.absorb(block, OrthoStats())
        ws.begin_shift()
        # A column inside the absorbed span screens out; a fresh one stays.
        inside = block @ rng.standard_normal(3)
        fresh = rng.standard_normal(10)
        keep = ws.screen(np.column_stack([inside, fresh]))
        assert keep.tolist() == [False, True]
        assert ws.stats.screened == 2
        assert ws.stats.hits == 1

    def test_zero_candidate_is_not_a_hit(self):
        from repro.linalg import OrthoStats

        ws = RecycleWorkspace(6)
        ws.begin_shift()
        ws.absorb(np.eye(6)[:, :2], OrthoStats())
        ws.begin_shift()
        keep = ws.screen(np.zeros((6, 1)))
        assert keep.tolist() == [True]
        assert ws.stats.hits == 0

    def test_absorb_splits_complex_blocks_and_keeps_basis_real(self):
        from repro.linalg import OrthoStats

        rng = np.random.default_rng(2)
        ws = RecycleWorkspace(12)
        ws.begin_shift()
        block = (rng.standard_normal((12, 2))
                 + 1j * rng.standard_normal((12, 2)))
        added = ws.absorb(block, OrthoStats())
        assert added == 4
        assert np.isrealobj(ws.basis)
        assert np.allclose(ws.basis.T @ ws.basis, np.eye(4), atol=1e-12)

    def test_invalid_recycle_tol(self):
        with pytest.raises(ValueError):
            RecycleWorkspace(4, recycle_tol=0.0)

    def test_stats_merge_and_as_dict(self):
        a = RecycleStats(screened=3, hits=1, solves_skipped=2)
        a.merge(RecycleStats(screened=2, hits=2, shard_hits=1,
                             shard_misses=4))
        assert a.as_dict() == {"screened": 5, "hits": 3,
                               "solves_skipped": 2, "shard_hits": 1,
                               "shard_misses": 4}


class TestDeflationParityWithColumnwise:
    """The blocked kernel's decisions must match the MGS reference."""

    @pytest.mark.parametrize("seed", range(8))
    def test_heavy_deflation_runs_match_mgs(self, seed):
        # Blocks engineered so a large fraction of the columns deflate in
        # runs — the regime the deflation-aware re-QR accelerates.
        rng = np.random.default_rng(seed)
        n, independent = 40, 12
        base = rng.standard_normal((n, independent))
        cols = [base[:, i] for i in range(independent)]
        for _ in range(30):
            cols.append(base @ rng.standard_normal(independent))
        order = rng.permutation(len(cols))
        W = np.column_stack([cols[i] for i in order])
        qb, sb = block_orthonormalize(W.copy())
        qc, sc = modified_gram_schmidt(W.copy())
        assert qb.shape == qc.shape
        assert sb.deflations == sc.deflations
        assert (sb.inner_products, sb.axpy_updates,
                sb.normalizations) == (sc.inner_products, sc.axpy_updates,
                                       sc.normalizations)
        # Same span, not necessarily the same columns.
        assert np.linalg.norm(qb - qc @ (qc.T @ qb)) < 1e-8

    def test_all_duplicate_block_collapses_to_rank_one(self):
        v = np.linspace(1.0, 2.0, 16)
        W = np.column_stack([v * s for s in (1.0, 2.0, -0.5, 3.0)])
        qb, sb = block_orthonormalize(W.copy())
        qc, sc = modified_gram_schmidt(W.copy())
        assert qb.shape == (16, 1)
        assert sb.deflations == sc.deflations == 3


class TestMultipointRecycling:
    POINTS = [0.0, 5e8, 2e9]

    def test_prima_recycled_matches_scratch(self, rc_grid_system):
        scratch, _, _ = multipoint_prima_reduce(rc_grid_system, 2,
                                                self.POINTS)
        recycled, _, _ = multipoint_prima_reduce(rc_grid_system, 2,
                                                 self.POINTS, recycle=True)
        omegas = np.logspace(6, 10, 7)
        report = rom_agreement_report(scratch, recycled, omegas)
        assert report["max_rel_error"] < 1e-6

    def test_prima_recycling_skips_solves(self, rc_grid_system):
        scratch, _, _ = multipoint_prima_reduce(rc_grid_system, 3,
                                                self.POINTS)
        recycled, _, _ = multipoint_prima_reduce(rc_grid_system, 3,
                                                 self.POINTS, recycle=True)
        assert recycled.recycle_stats.hits > 0
        assert _total_solves(recycled) < _total_solves(scratch)

    def test_bdsm_recycled_matches_scratch(self, rc_grid_system):
        scratch, _, _ = multipoint_bdsm_reduce(rc_grid_system, 2,
                                               self.POINTS)
        recycled, _, _ = multipoint_bdsm_reduce(rc_grid_system, 2,
                                                self.POINTS, recycle=True)
        omegas = np.logspace(6, 10, 7)
        report = rom_agreement_report(scratch, recycled, omegas)
        assert report["max_rel_error"] < 1e-6
        assert recycled.recycle_stats is not None
        assert _total_solves(recycled) <= _total_solves(scratch)

    def test_repeated_shift_pays_only_starting_block(self, rc_grid_system):
        # The second visit to an identical shift spans nothing new: every
        # candidate beyond the starting block screens out.
        rom, _, _ = multipoint_prima_reduce(rc_grid_system, 2, [0.0, 0.0],
                                            recycle=True)
        assert rom.recycle_stats.hits > 0
        assert rom.solve_counts[1] < rom.solve_counts[0]

    def test_single_point_recycle_matches_scratch_exactly(
            self, rc_grid_system):
        # With one shift nothing is ever frozen, so screening is inert and
        # the recycled build is the from-scratch build.
        scratch, _, _ = multipoint_prima_reduce(rc_grid_system, 2, [0.0])
        recycled, _, _ = multipoint_prima_reduce(rc_grid_system, 2, [0.0],
                                                 recycle=True)
        assert recycled.recycle_stats.hits == 0
        s = 1j * 1e8
        assert np.allclose(scratch.transfer_function(s),
                           recycled.transfer_function(s), rtol=1e-12)

    def test_empty_points_still_raises(self, rc_grid_system):
        from repro.exceptions import ReductionError

        with pytest.raises(ReductionError):
            multipoint_prima_reduce(rc_grid_system, 2, [], recycle=True)
        with pytest.raises(ReductionError):
            multipoint_bdsm_reduce(rc_grid_system, 2, [], recycle=True)


class TestShardBasisCache:
    def test_key_is_content_based(self, rc_grid_system, rlc_grid_system):
        k1 = ShardBasisCache.key_for(rc_grid_system, n_moments=2, s0=0j)
        k2 = ShardBasisCache.key_for(rc_grid_system, n_moments=2, s0=0j)
        k3 = ShardBasisCache.key_for(rc_grid_system, n_moments=3, s0=0j)
        k4 = ShardBasisCache.key_for(rlc_grid_system, n_moments=2, s0=0j)
        assert k1 == k2
        assert k1 != k3
        assert k1 != k4

    def test_fetch_store_counts(self):
        cache = ShardBasisCache()
        key = ("a",)
        assert cache.fetch(key) is None
        cache.store(key, np.eye(3))
        assert cache.fetch(key) is not None
        assert len(cache) == 1
        assert cache.describe() == {"entries": 1, "hits": 1, "misses": 1}

    def test_partitioned_recycle_matches_plain(self, smoke_benchmark):
        plain, _, _ = partitioned_reduce(smoke_benchmark, 2, n_parts=4)
        recycled, _, _ = partitioned_reduce(smoke_benchmark, 2, n_parts=4,
                                            recycle=True)
        omegas = np.logspace(6, 10, 5)
        report = rom_agreement_report(plain, recycled, omegas)
        assert report["max_rel_error"] < 1e-8
        assert "shard_basis_cache" in recycled.partition_info

    def test_shared_cache_hits_across_reductions(self, smoke_benchmark):
        # Two identical reductions drawing from one cache: the second run's
        # shards are content-identical to the first's, so every lookup hits
        # and the bases come back verbatim.
        cache = ShardBasisCache()
        first, _, _ = partitioned_reduce(smoke_benchmark, 2, n_parts=4,
                                         basis_cache=cache)
        misses_after_first = cache.stats.shard_misses
        second, _, _ = partitioned_reduce(smoke_benchmark, 2, n_parts=4,
                                          basis_cache=cache)
        assert cache.stats.shard_misses == misses_after_first
        assert cache.stats.shard_hits >= 4
        s = 1j * 1e8
        assert np.allclose(first.transfer_function(s),
                           second.transfer_function(s), rtol=1e-12)
