"""Unit tests for repro.io (matrix persistence and table formatting)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.io import (
    format_table,
    load_descriptor_npz,
    save_descriptor_npz,
    save_matrix_market,
    write_table,
)


class TestDescriptorNpz:
    def test_roundtrip(self, rc_grid_system, tmp_path):
        path = tmp_path / "grid.npz"
        save_descriptor_npz(rc_grid_system, path)
        loaded = load_descriptor_npz(path)
        assert loaded.size == rc_grid_system.size
        assert loaded.n_ports == rc_grid_system.n_ports
        assert loaded.port_names == rc_grid_system.port_names
        assert loaded.name == rc_grid_system.name
        s = 1j * 1e8
        assert np.allclose(loaded.transfer_function(s),
                           rc_grid_system.transfer_function(s))

    def test_const_input_preserved(self, tmp_path):
        from repro.circuit import Netlist, assemble_mna
        net = Netlist(title="vdd-grid")
        net.add_voltage_source("V1", "a", "0", 1.0)
        net.add_resistor("R1", "a", "b", 1.0)
        net.add_resistor("R2", "b", "0", 1.0)
        net.add_capacitor("C1", "b", "0", 1e-12)
        net.add_current_source("I1", "b", "0", 1e-3)
        system = assemble_mna(net)
        assert system.const_input is not None
        path = tmp_path / "vdd.npz"
        save_descriptor_npz(system, path)
        loaded = load_descriptor_npz(path)
        assert np.allclose(loaded.const_input, system.const_input)

    def test_complex_valued_system_roundtrip(self, tmp_path):
        """Complex descriptor matrices (multipoint expansions at complex
        s0 produce them) must round-trip with dtype and values intact."""
        import scipy.sparse as sp
        from repro.circuit.mna import DescriptorSystem
        rng = np.random.default_rng(3)
        n = 5
        C = sp.csr_matrix(rng.standard_normal((n, n))
                          + 1j * rng.standard_normal((n, n)))
        G = -(sp.eye(n) + 0.1j * sp.eye(n)).tocsr()
        B = sp.csr_matrix((np.eye(n)[:, :2] * (1 + 2j)))
        L = sp.csr_matrix(np.eye(n)[:1].astype(complex))
        system = DescriptorSystem(
            C=C, G=G, B=B, L=L,
            state_names=[f"n{i}" for i in range(n)],
            port_names=["p0", "p1"], output_names=["o0"], name="complex")
        path = tmp_path / "complex.npz"
        loaded = load_descriptor_npz(save_descriptor_npz(system, path))
        for name in ("C", "G", "B", "L"):
            got = getattr(loaded, name)
            want = getattr(system, name)
            assert got.dtype == want.dtype, name
            assert got.shape == want.shape, name
            assert (got != want).nnz == 0, name
        s = 1j * 1e8
        assert np.array_equal(loaded.transfer_function(s),
                              system.transfer_function(s))

    def test_zero_port_system_roundtrip(self, tmp_path):
        """A system with no input ports (autonomous grid slice) must keep
        its (n, 0) input shape — and a complex empty B its dtype."""
        import scipy.sparse as sp
        from repro.circuit.mna import DescriptorSystem
        n = 4
        system = DescriptorSystem(
            C=sp.eye(n).tocsr(), G=(-sp.eye(n)).tocsr(),
            B=sp.csr_matrix((n, 0), dtype=complex),
            L=sp.csr_matrix(np.eye(n)[:2]),
            state_names=[f"n{i}" for i in range(n)],
            port_names=[], output_names=["a", "b"], name="zero-port")
        loaded = load_descriptor_npz(
            save_descriptor_npz(system, tmp_path / "zp.npz"))
        assert loaded.n_ports == 0
        assert loaded.B.shape == (n, 0)
        assert loaded.B.dtype == system.B.dtype
        assert loaded.port_names == []
        assert loaded.state_names == system.state_names

    def test_zero_output_and_empty_names_roundtrip(self, tmp_path):
        import scipy.sparse as sp
        from repro.circuit.mna import DescriptorSystem
        n = 3
        system = DescriptorSystem(
            C=sp.eye(n).tocsr(), G=(-sp.eye(n)).tocsr(),
            B=sp.csr_matrix((n, 0)), L=sp.csr_matrix((0, n)),
            state_names=[], port_names=[], output_names=[], name="empty")
        loaded = load_descriptor_npz(
            save_descriptor_npz(system, tmp_path / "empty.npz"))
        assert loaded.L.shape == (0, n)
        assert loaded.B.shape == (n, 0)
        assert loaded.output_names == []
        assert loaded.state_names == []

    def test_integer_dtype_preserved(self, tmp_path):
        import scipy.sparse as sp
        from repro.circuit.mna import DescriptorSystem
        n = 3
        system = DescriptorSystem(
            C=sp.eye(n, dtype=np.int64).tocsr(),
            G=(-sp.eye(n, dtype=np.int64)).tocsr(),
            B=sp.csr_matrix(np.eye(n, dtype=np.int32)[:, :1]),
            L=sp.csr_matrix(np.eye(n)[:1]),
            state_names=["a", "b", "c"], port_names=["p"],
            output_names=["o"])
        loaded = load_descriptor_npz(
            save_descriptor_npz(system, tmp_path / "int.npz"))
        assert loaded.C.dtype == np.int64
        assert loaded.B.dtype == np.int32

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            load_descriptor_npz(tmp_path / "missing.npz")

    def test_wrong_archive_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, foo=np.ones(3))
        with pytest.raises(ValidationError):
            load_descriptor_npz(path)


class TestMatrixMarket:
    def test_export_creates_readable_file(self, rc_grid_system, tmp_path):
        import scipy.io
        path = save_matrix_market(rc_grid_system.G, tmp_path / "G.mtx",
                                  comment="conductance")
        matrix = scipy.io.mmread(str(path))
        assert np.allclose(matrix.toarray(), rc_grid_system.G.toarray())

    def test_suffix_added_when_missing(self, rc_grid_system, tmp_path):
        path = save_matrix_market(rc_grid_system.C, tmp_path / "C")
        assert path.exists()

    def test_complex_matrix_export(self, tmp_path):
        import scipy.io
        import scipy.sparse as sp
        M = sp.csr_matrix(np.array([[1 + 2j, 0.0], [0.0, 3 - 1j]]))
        path = save_matrix_market(M, tmp_path / "M.mtx")
        back = scipy.io.mmread(str(path))
        assert np.iscomplexobj(back.toarray())
        assert np.allclose(back.toarray(), M.toarray())


class TestTables:
    ROWS = [
        {"method": "BDSM", "ROM size": 306, "MOR time (s)": 8.18},
        {"method": "PRIMA", "ROM size": 306, "MOR time (s)": 29.37},
        {"method": "EKS", "ROM size": 6, "MOR time (s)": None},
    ]

    def test_format_contains_all_cells(self):
        text = format_table(self.ROWS, title="Table II (ckt1)")
        assert "Table II (ckt1)" in text
        assert "BDSM" in text and "PRIMA" in text and "EKS" in text
        assert "306" in text
        assert "-" in text             # None rendered as dash

    def test_column_order_respected(self):
        text = format_table(self.ROWS, columns=["ROM size", "method"])
        header = text.splitlines()[0]
        assert header.index("ROM size") < header.index("method")

    def test_missing_keys_render_as_dash(self):
        text = format_table([{"a": 1}, {"b": 2}])
        assert "-" in text

    def test_empty_rows_rejected(self):
        with pytest.raises(ValidationError):
            format_table([])

    def test_write_table(self, tmp_path):
        path = tmp_path / "report.txt"
        write_table(self.ROWS, path, title="first")
        write_table(self.ROWS, path, title="second", append=True)
        content = path.read_text()
        assert "first" in content and "second" in content

    def test_float_rendering(self):
        text = format_table([{"x": 0.000123456, "y": 123456.7, "z": 0.0}])
        assert "0.000123" in text
        assert "1.23e+05" in text
        assert " 0" in text or "0 " in text
