"""Unit tests for repro.io (matrix persistence and table formatting)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.io import (
    format_table,
    load_descriptor_npz,
    save_descriptor_npz,
    save_matrix_market,
    write_table,
)


class TestDescriptorNpz:
    def test_roundtrip(self, rc_grid_system, tmp_path):
        path = tmp_path / "grid.npz"
        save_descriptor_npz(rc_grid_system, path)
        loaded = load_descriptor_npz(path)
        assert loaded.size == rc_grid_system.size
        assert loaded.n_ports == rc_grid_system.n_ports
        assert loaded.port_names == rc_grid_system.port_names
        assert loaded.name == rc_grid_system.name
        s = 1j * 1e8
        assert np.allclose(loaded.transfer_function(s),
                           rc_grid_system.transfer_function(s))

    def test_const_input_preserved(self, tmp_path):
        from repro.circuit import Netlist, assemble_mna
        net = Netlist(title="vdd-grid")
        net.add_voltage_source("V1", "a", "0", 1.0)
        net.add_resistor("R1", "a", "b", 1.0)
        net.add_resistor("R2", "b", "0", 1.0)
        net.add_capacitor("C1", "b", "0", 1e-12)
        net.add_current_source("I1", "b", "0", 1e-3)
        system = assemble_mna(net)
        assert system.const_input is not None
        path = tmp_path / "vdd.npz"
        save_descriptor_npz(system, path)
        loaded = load_descriptor_npz(path)
        assert np.allclose(loaded.const_input, system.const_input)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            load_descriptor_npz(tmp_path / "missing.npz")

    def test_wrong_archive_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, foo=np.ones(3))
        with pytest.raises(ValidationError):
            load_descriptor_npz(path)


class TestMatrixMarket:
    def test_export_creates_readable_file(self, rc_grid_system, tmp_path):
        import scipy.io
        path = save_matrix_market(rc_grid_system.G, tmp_path / "G.mtx",
                                  comment="conductance")
        matrix = scipy.io.mmread(str(path))
        assert np.allclose(matrix.toarray(), rc_grid_system.G.toarray())

    def test_suffix_added_when_missing(self, rc_grid_system, tmp_path):
        path = save_matrix_market(rc_grid_system.C, tmp_path / "C")
        assert path.exists()


class TestTables:
    ROWS = [
        {"method": "BDSM", "ROM size": 306, "MOR time (s)": 8.18},
        {"method": "PRIMA", "ROM size": 306, "MOR time (s)": 29.37},
        {"method": "EKS", "ROM size": 6, "MOR time (s)": None},
    ]

    def test_format_contains_all_cells(self):
        text = format_table(self.ROWS, title="Table II (ckt1)")
        assert "Table II (ckt1)" in text
        assert "BDSM" in text and "PRIMA" in text and "EKS" in text
        assert "306" in text
        assert "-" in text             # None rendered as dash

    def test_column_order_respected(self):
        text = format_table(self.ROWS, columns=["ROM size", "method"])
        header = text.splitlines()[0]
        assert header.index("ROM size") < header.index("method")

    def test_missing_keys_render_as_dash(self):
        text = format_table([{"a": 1}, {"b": 2}])
        assert "-" in text

    def test_empty_rows_rejected(self):
        with pytest.raises(ValidationError):
            format_table([])

    def test_write_table(self, tmp_path):
        path = tmp_path / "report.txt"
        write_table(self.ROWS, path, title="first")
        write_table(self.ROWS, path, title="second", append=True)
        content = path.read_text()
        assert "first" in content and "second" in content

    def test_float_rendering(self):
        text = format_table([{"x": 0.000123456, "y": 123456.7, "z": 0.0}])
        assert "0.000123" in text
        assert "1.23e+05" in text
        assert " 0" in text or "0 " in text
