"""Unit tests for repro.linalg.blockdiag."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import ValidationError
from repro.linalg.blockdiag import (
    BlockLayout,
    block_diag_sparse,
    block_view,
    blocks_from_matrix,
    stack_block_columns,
)


class TestBlockLayout:
    def test_uniform(self):
        layout = BlockLayout.uniform(4, 3)
        assert layout.n_blocks == 4
        assert layout.total == 12
        assert layout.sizes == (3, 3, 3, 3)

    def test_offsets_and_slices(self):
        layout = BlockLayout((2, 3, 1))
        assert layout.offsets == (0, 2, 5)
        assert layout.block_slice(1) == slice(2, 5)
        assert layout.block_slice(2) == slice(5, 6)

    def test_block_of_index(self):
        layout = BlockLayout((2, 3, 1))
        assert layout.block_of_index(0) == 0
        assert layout.block_of_index(4) == 1
        assert layout.block_of_index(5) == 2

    def test_block_of_index_out_of_range(self):
        layout = BlockLayout((2, 2))
        with pytest.raises(IndexError):
            layout.block_of_index(4)

    def test_from_blocks(self):
        layout = BlockLayout.from_blocks([np.eye(2), np.eye(4)])
        assert layout.sizes == (2, 4)

    def test_from_blocks_rejects_non_square(self):
        with pytest.raises(ValidationError):
            BlockLayout.from_blocks([np.ones((2, 3))])

    def test_rejects_non_positive_sizes(self):
        with pytest.raises(ValidationError):
            BlockLayout((2, 0))

    def test_slice_out_of_range(self):
        with pytest.raises(IndexError):
            BlockLayout((2,)).block_slice(1)

    def test_iter(self):
        assert list(BlockLayout((1, 2, 3))) == [1, 2, 3]


class TestBlockDiagSparse:
    def test_matches_scipy_block_diag(self, rng):
        blocks = [rng.normal(size=(2, 2)), rng.normal(size=(3, 3))]
        result = block_diag_sparse(blocks)
        expected = sp.block_diag(blocks).toarray()
        assert np.allclose(result.toarray(), expected)
        assert result.format == "csr"

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            block_diag_sparse([])

    def test_roundtrip_with_blocks_from_matrix(self, rng):
        blocks = [rng.normal(size=(k, k)) for k in (2, 4, 1)]
        layout = BlockLayout.from_blocks(blocks)
        matrix = block_diag_sparse(blocks)
        recovered = blocks_from_matrix(matrix, layout)
        for original, back in zip(blocks, recovered):
            assert np.allclose(original, back)

    def test_blocks_from_matrix_shape_check(self):
        with pytest.raises(ValidationError):
            blocks_from_matrix(np.eye(4), BlockLayout((2, 3)))


class TestBlockView:
    def test_diagonal_and_off_diagonal(self, rng):
        blocks = [rng.normal(size=(2, 2)), rng.normal(size=(3, 3))]
        layout = BlockLayout.from_blocks(blocks)
        matrix = block_diag_sparse(blocks)
        assert np.allclose(block_view(matrix, layout, 0, 0), blocks[0])
        assert np.allclose(block_view(matrix, layout, 0, 1), 0.0)

    def test_dense_input(self, rng):
        blocks = [rng.normal(size=(2, 2)), rng.normal(size=(2, 2))]
        layout = BlockLayout.from_blocks(blocks)
        dense = block_diag_sparse(blocks).toarray()
        assert np.allclose(block_view(dense, layout, 1, 1), blocks[1])


class TestStackBlockColumns:
    def test_structure_of_br(self):
        layout = BlockLayout.uniform(3, 2)
        columns = [np.array([1.0, 2.0]), np.array([3.0, 4.0]),
                   np.array([5.0, 6.0])]
        B = stack_block_columns(columns, layout, n_cols=3)
        assert B.shape == (6, 3)
        dense = B.toarray()
        assert np.allclose(dense[0:2, 0], [1.0, 2.0])
        assert np.allclose(dense[2:4, 1], [3.0, 4.0])
        assert np.allclose(dense[4:6, 2], [5.0, 6.0])
        # everything off the block diagonal pattern is zero
        assert B.nnz == 6

    def test_sparsity_matches_paper_claim(self):
        # B_r stores m*l non-zeros out of (m*l)*m entries -> density 1/m.
        m, l = 8, 3
        layout = BlockLayout.uniform(m, l)
        columns = [np.ones(l) for _ in range(m)]
        B = stack_block_columns(columns, layout, n_cols=m)
        assert B.nnz == m * l
        assert B.nnz / (B.shape[0] * B.shape[1]) == pytest.approx(1 / m)

    def test_wrong_number_of_columns(self):
        layout = BlockLayout.uniform(2, 2)
        with pytest.raises(ValidationError):
            stack_block_columns([np.ones(2)], layout, n_cols=2)

    def test_wrong_vector_length(self):
        layout = BlockLayout.uniform(2, 2)
        with pytest.raises(ValidationError):
            stack_block_columns([np.ones(2), np.ones(3)], layout, n_cols=2)

    def test_n_cols_smaller_than_blocks(self):
        layout = BlockLayout.uniform(3, 1)
        with pytest.raises(ValidationError):
            stack_block_columns([np.ones(1)] * 3, layout, n_cols=2)
