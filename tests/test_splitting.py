"""Unit tests for repro.core.splitting (input-matrix splitting, Eq. 6-8)."""

import numpy as np
import pytest

from repro.core.splitting import (
    parallel_composition,
    split_input_matrix,
    split_system,
)
from repro.exceptions import ReductionError


class TestSplitInputMatrix:
    def test_only_selected_column_kept(self, rc_grid_system):
        B = rc_grid_system.B
        B1 = split_input_matrix(B, 1)
        assert B1.shape == B.shape
        dense = B1.toarray()
        assert np.allclose(dense[:, 1], B.toarray()[:, 1])
        dense[:, 1] = 0.0
        assert np.count_nonzero(dense) == 0

    def test_sum_of_splits_recovers_b(self, rc_grid_system):
        B = rc_grid_system.B
        total = sum(split_input_matrix(B, i).toarray()
                    for i in range(B.shape[1]))
        assert np.allclose(total, B.toarray())

    def test_out_of_range_column(self, rc_grid_system):
        with pytest.raises(ReductionError):
            split_input_matrix(rc_grid_system.B, rc_grid_system.n_ports)


class TestSplitSystem:
    def test_transfer_matrix_is_single_column(self, rc_grid_system):
        s = 1j * 1e8
        H = rc_grid_system.transfer_function(s)
        for i in (0, 2):
            sub = split_system(rc_grid_system, i)
            H_i = sub.transfer_function(s)
            assert np.allclose(H_i[:, i], H[:, i])
            mask = np.ones(H.shape[1], dtype=bool)
            mask[i] = False
            assert np.allclose(H_i[:, mask], 0.0)

    def test_transfer_sum_identity(self, rc_grid_system):
        # Eq. (7): H(s) = sum_i H_i(s).
        s = 1j * 1e7
        H = rc_grid_system.transfer_function(s)
        total = np.zeros_like(H)
        for i in range(rc_grid_system.n_ports):
            total += split_system(rc_grid_system, i).transfer_function(s)
        assert np.allclose(total, H)

    def test_shares_matrices(self, rc_grid_system):
        sub = split_system(rc_grid_system, 0)
        assert sub.C is rc_grid_system.C
        assert sub.G is rc_grid_system.G


class TestParallelComposition:
    def test_size_and_transfer_equivalence(self, rc_ladder_system):
        big = parallel_composition(rc_ladder_system)
        m = rc_ladder_system.n_ports
        assert big.size == m * rc_ladder_system.size
        s = 1j * 1e6
        assert np.allclose(big.transfer_function(s),
                           rc_ladder_system.transfer_function(s))

    def test_equivalence_on_multiport_grid(self, rc_grid_system):
        big = parallel_composition(rc_grid_system)
        s = 1j * 1e8
        assert np.allclose(big.transfer_function(s),
                           rc_grid_system.transfer_function(s))

    def test_refuses_too_many_ports(self, rc_grid_system):
        with pytest.raises(ReductionError):
            parallel_composition(rc_grid_system, max_ports=2)
