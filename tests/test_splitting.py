"""Unit tests for repro.core.splitting (input-matrix splitting, Eq. 6-8)."""

import numpy as np
import pytest

from repro.core.splitting import (
    parallel_composition,
    split_input_matrix,
    split_system,
)
from repro.exceptions import ReductionError


class TestSplitInputMatrix:
    def test_only_selected_column_kept(self, rc_grid_system):
        B = rc_grid_system.B
        B1 = split_input_matrix(B, 1)
        assert B1.shape == B.shape
        dense = B1.toarray()
        assert np.allclose(dense[:, 1], B.toarray()[:, 1])
        dense[:, 1] = 0.0
        assert np.count_nonzero(dense) == 0

    def test_sum_of_splits_recovers_b(self, rc_grid_system):
        B = rc_grid_system.B
        total = sum(split_input_matrix(B, i).toarray()
                    for i in range(B.shape[1]))
        assert np.allclose(total, B.toarray())

    def test_out_of_range_column(self, rc_grid_system):
        with pytest.raises(ReductionError):
            split_input_matrix(rc_grid_system.B, rc_grid_system.n_ports)


class TestSplitSystem:
    def test_transfer_matrix_is_single_column(self, rc_grid_system):
        s = 1j * 1e8
        H = rc_grid_system.transfer_function(s)
        for i in (0, 2):
            sub = split_system(rc_grid_system, i)
            H_i = sub.transfer_function(s)
            assert np.allclose(H_i[:, i], H[:, i])
            mask = np.ones(H.shape[1], dtype=bool)
            mask[i] = False
            assert np.allclose(H_i[:, mask], 0.0)

    def test_transfer_sum_identity(self, rc_grid_system):
        # Eq. (7): H(s) = sum_i H_i(s).
        s = 1j * 1e7
        H = rc_grid_system.transfer_function(s)
        total = np.zeros_like(H)
        for i in range(rc_grid_system.n_ports):
            total += split_system(rc_grid_system, i).transfer_function(s)
        assert np.allclose(total, H)

    def test_shares_matrices(self, rc_grid_system):
        sub = split_system(rc_grid_system, 0)
        assert sub.C is rc_grid_system.C
        assert sub.G is rc_grid_system.G


class TestParallelComposition:
    def test_size_and_transfer_equivalence(self, rc_ladder_system):
        big = parallel_composition(rc_ladder_system)
        m = rc_ladder_system.n_ports
        assert big.size == m * rc_ladder_system.size
        s = 1j * 1e6
        assert np.allclose(big.transfer_function(s),
                           rc_ladder_system.transfer_function(s))

    def test_equivalence_on_multiport_grid(self, rc_grid_system):
        big = parallel_composition(rc_grid_system)
        s = 1j * 1e8
        assert np.allclose(big.transfer_function(s),
                           rc_grid_system.transfer_function(s))

    def test_refuses_too_many_ports(self, rc_grid_system):
        with pytest.raises(ReductionError):
            parallel_composition(rc_grid_system, max_ports=2)


class TestParallelCompositionEdgeCases:
    """Satellite coverage: m=1, complex L, and sparsity preservation."""

    def _single_port_system(self):
        import scipy.sparse as sp
        from repro.circuit.mna import DescriptorSystem

        n = 4
        C = sp.diags([1e-15] * n, format="csr")
        G = -sp.diags([2.0, 1.0, 1.0, 3.0], format="csr") \
            + sp.diags([0.5] * (n - 1), 1, format="csr") \
            + sp.diags([0.5] * (n - 1), -1, format="csr")
        B = sp.csr_matrix(np.array([[1.0], [0.0], [0.0], [0.0]]))
        L = sp.csr_matrix(np.array([[0.0, 0.0, 0.0, 1.0]]))
        return DescriptorSystem(C=C, G=G, B=B, L=L, name="m1")

    def test_m_equals_one_is_identity(self):
        system = self._single_port_system()
        big = parallel_composition(system)
        # One split system: the composition is the system itself (same
        # size, same matrices, same transfer function).
        assert big.size == system.size
        assert np.allclose(big.C.toarray(), system.C.toarray())
        assert np.allclose(big.G.toarray(), system.G.toarray())
        assert np.allclose(big.B.toarray(), system.B.toarray())
        s = 1j * 1e6
        assert np.allclose(big.transfer_function(s),
                           system.transfer_function(s))

    def test_complex_output_matrix(self):
        import scipy.sparse as sp
        from repro.circuit.mna import DescriptorSystem

        base = self._single_port_system()
        L = sp.csr_matrix(
            np.array([[0.0, 1.0 + 2.0j, 0.0, 0.5 - 1.0j]]))
        system = DescriptorSystem(C=base.C, G=base.G, B=base.B, L=L,
                                  name="m1-complex")
        big = parallel_composition(system)
        assert np.iscomplexobj(big.L.toarray())
        s = 1j * 3e7
        assert np.allclose(big.transfer_function(s),
                           system.transfer_function(s))

    def test_composed_model_preserves_sparsity(self, rc_grid_system):
        import scipy.sparse as sp

        big = parallel_composition(rc_grid_system)
        m = rc_grid_system.n_ports
        for name in ("C", "G", "B", "L"):
            assert sp.issparse(getattr(big, name)), name
        # Block-diagonal stacking stores exactly m copies of each pencil's
        # non-zeros — no densification anywhere.
        assert big.C.nnz == m * rc_grid_system.C.nnz
        assert big.G.nnz == m * rc_grid_system.G.nnz
        assert big.B.nnz == rc_grid_system.B.nnz
        assert big.L.nnz == m * rc_grid_system.L.nnz
        density = big.G.nnz / (big.size ** 2)
        base_density = rc_grid_system.G.nnz / (rc_grid_system.size ** 2)
        assert density <= base_density / m * 1.001
