"""Tests for the layered serving stack (repro.serve).

Covers the planner (dedup, transfer/sweep coalescing, bit-identity against
the naive per-request path, legacy fallback for unrecognised params), the
registry's admission-controlled warm set (budget eviction order, cold-miss
reload round trips, unreadable-entry accounting), the executor's failure
aggregation (`ServeError` carries every failed index plus partial results),
the serving stats counters, register/close races and the lock-ordering
hammer for overlapping multi-model sweeps.
"""

from __future__ import annotations

import json
import logging
import threading

import numpy as np
import pytest

from repro import (
    ModelServer,
    ModelStore,
    QueryRequest,
    ServeError,
    bdsm_reduce,
    make_benchmark,
    prima_reduce,
)
from repro.exceptions import ValidationError
from repro.serve import (
    LoadSpec,
    ModelRegistry,
    QueryPlanner,
    generate_requests,
    results_equal,
    run_load,
)


@pytest.fixture(scope="module")
def system():
    return make_benchmark("ckt1", scale="smoke")


@pytest.fixture(scope="module")
def second_system():
    return make_benchmark("ckt2", scale="smoke")


@pytest.fixture(scope="module")
def bdsm_rom(system):
    return bdsm_reduce(system, 3)[0]


@pytest.fixture()
def populated_store(system, second_system, tmp_path):
    store = ModelStore(tmp_path / "store")
    bdsm_reduce(system, 3, store=store)
    prima_reduce(system, 3, store=store)
    bdsm_reduce(second_system, 3, store=store)
    prima_reduce(second_system, 3, store=store)
    return store


@pytest.fixture()
def warm_server(populated_store):
    server = ModelServer(populated_store)
    server.warm()
    yield server
    server.close()


S_POINTS = 1j * np.logspace(6, 9, 5)


# --------------------------------------------------------------------- #
# Planner
# --------------------------------------------------------------------- #
class TestPlanner:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError, match="unknown request kind"):
            QueryPlanner().plan([QueryRequest("bogus", "m", {})])

    def test_empty_model_rejected(self):
        with pytest.raises(ValidationError, match="non-empty"):
            QueryPlanner().plan([QueryRequest("transfer", "", {})])

    def test_non_dict_params_rejected(self):
        with pytest.raises(ValidationError, match="params"):
            QueryPlanner().plan([QueryRequest("transfer", "m", [1j])])

    def test_duplicates_dedup_to_one_step(self):
        request = QueryRequest("transfer", "m", {"s_values": S_POINTS})
        twin = QueryRequest("transfer", "m",
                            {"s_values": S_POINTS.copy()})
        plan = QueryPlanner().plan([request, twin, request])
        assert plan.n_requests == 3
        assert plan.n_steps == 1
        assert plan.n_coalesced == 2

    def test_transfer_coalesces_per_model(self):
        a = QueryRequest("transfer", "m", {"s_values": S_POINTS})
        b = QueryRequest("transfer", "m", {"s_values": 2 * S_POINTS})
        c = QueryRequest("transfer", "other", {"s_values": S_POINTS})
        plan = QueryPlanner().plan([a, b, c])
        assert plan.n_steps == 2
        batched = [s for s in plan.steps if s.op == "transfer_batch"]
        assert len(batched) == 1
        assert batched[0].models == ("m",)
        assert batched[0].n_requests == 2

    def test_full_sweeps_coalesce_by_band(self):
        a = QueryRequest("sweep", "m1", {"n_points": 7})
        b = QueryRequest("sweep", "m2", {"n_points": 7})
        c = QueryRequest("sweep", "m3", {"n_points": 9})
        plan = QueryPlanner().plan([a, b, c])
        many = [s for s in plan.steps if s.op == "sweep_many"]
        assert len(many) == 1
        assert set(many[0].models) == {"m1", "m2"}

    def test_normalised_band_groups_with_defaults(self):
        explicit = QueryRequest("sweep", "m1",
                                {"omega_min": 1e5, "omega_max": 1e12,
                                 "n_points": 60})
        implicit = QueryRequest("sweep", "m2", {})
        plan = QueryPlanner().plan([explicit, implicit])
        assert plan.n_steps == 1
        assert plan.steps[0].op == "sweep_many"

    def test_entry_sweeps_stay_single(self):
        a = QueryRequest("sweep", "m1", {"output": 0, "port": 0})
        b = QueryRequest("sweep", "m2", {"output": 0, "port": 0})
        plan = QueryPlanner().plan([a, b])
        assert all(step.op == "single" for step in plan.steps)

    def test_unrecognised_params_fall_back_to_single(self):
        odd = QueryRequest("transfer", "m",
                           {"s_values": S_POINTS, "mystery": 1})
        plan = QueryPlanner().plan([odd, odd])
        # Still dedups (hashable params), but never batches.
        assert plan.n_steps == 1
        assert plan.steps[0].op == "single"

    def test_coalesce_false_is_one_step_per_request(self):
        request = QueryRequest("transfer", "m", {"s_values": S_POINTS})
        plan = QueryPlanner(coalesce=False).plan([request, request])
        assert plan.n_steps == 2
        assert plan.n_coalesced == 0


# --------------------------------------------------------------------- #
# Bit-identity of coalesced execution
# --------------------------------------------------------------------- #
class TestBitIdentity:
    def test_coalesced_transfer_matches_direct(self, warm_server):
        names = warm_server.models()[:2]
        grids = [S_POINTS, 3 * S_POINTS, S_POINTS[:3]]
        requests = [QueryRequest("transfer", name, {"s_values": grid})
                    for name in names for grid in grids]
        served = warm_server.serve(requests, coalesce=True)
        for request, answer in zip(requests, served):
            direct = warm_server.transfer(request.model,
                                          request.params["s_values"])
            assert np.array_equal(answer, direct)

    def test_coalesced_sweep_matches_direct(self, warm_server):
        names = warm_server.models()
        requests = [QueryRequest("sweep", name, {"n_points": 7})
                    for name in names]
        served = warm_server.serve(requests, coalesce=True)
        for name, answer in zip(names, served):
            direct = warm_server.sweep(name, n_points=7)
            assert np.array_equal(answer.values, direct.values)
            assert answer.label == direct.label

    def test_generated_load_bit_identical(self, warm_server):
        models = {name: warm_server.registry.resolve(name)
                  for name in warm_server.models()}
        spec = LoadSpec(n_requests=60, duplication=4.0,
                        transfer_points=6, sweep_points=8)
        requests = generate_requests(models, spec)
        naive = run_load(warm_server, requests, clients=2, batch_size=20,
                         coalesce=False, collect_results=True)
        coalesced = run_load(warm_server, requests, clients=2,
                             batch_size=20, coalesce=True,
                             collect_results=True)
        assert all(results_equal(a, b)
                   for a, b in zip(naive.results, coalesced.results))

    def test_generated_load_is_deterministic(self, warm_server):
        models = {name: warm_server.registry.resolve(name)
                  for name in warm_server.models()}
        spec = LoadSpec(n_requests=30)
        first = generate_requests(models, spec)
        second = generate_requests(models, spec)
        assert [r.kind for r in first] == [r.kind for r in second]
        assert [r.model for r in first] == [r.model for r in second]


# --------------------------------------------------------------------- #
# Registry: admission-controlled warm set
# --------------------------------------------------------------------- #
class TestWarmSet:
    def test_budget_defers_cold_entries(self, populated_store):
        entries = populated_store.entries()
        # Room for the two largest entries only.
        by_size = sorted(entries, key=lambda e: e.n_bytes, reverse=True)
        budget = by_size[0].n_bytes + by_size[1].n_bytes
        registry = ModelRegistry(populated_store, warm_budget=budget)
        result = registry.warm()
        assert result.skipped == []
        assert len(result.loaded) < len(entries)
        assert result.deferred
        assert registry.stats().resident_bytes <= budget

    def test_deferred_model_loads_on_first_resolve(self, populated_store):
        smallest = min(populated_store.entries(), key=lambda e: e.n_bytes)
        registry = ModelRegistry(populated_store,
                                 warm_budget=smallest.n_bytes)
        result = registry.warm()
        assert result.deferred
        cold_name = result.deferred[0]
        assert cold_name not in registry.models()
        model = registry.resolve(cold_name)
        assert model is not None
        assert registry.stats().misses == 1

    def test_eviction_is_lru_ordered(self, populated_store):
        registry = ModelRegistry(populated_store, warm_budget=10**12)
        registry.warm()
        names = registry.models()
        assert len(names) == 4
        # Touch all but the first so it becomes the LRU victim.
        for name in names[1:]:
            registry.resolve(name)
        total = registry.stats().resident_bytes
        registry.warm_budget = total - 1
        # Re-admitting a resident model must now evict exactly the
        # untouched (least recently used) name.
        registry.load(names[1], key=registry._catalog[names[1]])
        assert names[0] not in registry.models()
        assert set(names[1:]) <= set(registry.models())
        assert registry.stats().evictions == 1
        # The evicted artifact stays store-resident and resolvable.
        assert registry.resolve(names[0]) is not None

    def test_cold_miss_reload_round_trip(self, populated_store):
        smallest = min(populated_store.entries(), key=lambda e: e.n_bytes)
        reference = ModelServer(populated_store)
        reference.warm()
        budget_server = ModelServer(populated_store,
                                    warm_budget=smallest.n_bytes)
        budget_server.warm()
        name = reference.models()[0]
        expected = reference.transfer(name, S_POINTS)
        # Resolves through eviction/reload must stay bit-identical.
        for _ in range(3):
            got = budget_server.transfer(name, S_POINTS)
            assert np.array_equal(got, expected)
        reference.close()
        budget_server.close()

    def test_pinned_models_never_evicted(self, populated_store, bdsm_rom):
        registry = ModelRegistry(populated_store, warm_budget=1)
        registry.register("pinned", bdsm_rom)
        registry.warm()
        assert "pinned" in registry.models()

    def test_unreadable_entry_counted_and_logged(self, populated_store,
                                                 caplog):
        victim = populated_store.entries()[0]
        path = populated_store.artifact_path(victim.key)
        path.write_bytes(b"not an npz")
        registry = ModelRegistry(populated_store)
        with caplog.at_level(logging.WARNING, logger="repro.serve"):
            result = registry.warm()
        assert victim.key in result.skipped
        assert registry.stats().skipped == 1
        assert any(victim.key in record.message
                   for record in caplog.records)

    def test_facade_warm_still_returns_names(self, populated_store):
        with ModelServer(populated_store) as server:
            names = server.warm()
        assert isinstance(names, list)
        assert all(isinstance(name, str) for name in names)
        assert len(names) == 4

    def test_invalid_budget_rejected(self, populated_store):
        with pytest.raises(ValidationError, match="positive"):
            ModelRegistry(populated_store, warm_budget=0)


# --------------------------------------------------------------------- #
# Executor: failure aggregation
# --------------------------------------------------------------------- #
class TestFailureAggregation:
    def test_serve_collects_every_failure(self, warm_server):
        name = warm_server.models()[0]
        good = QueryRequest("transfer", name, {"s_values": S_POINTS})
        bad_model = QueryRequest("transfer", "ghost",
                                 {"s_values": S_POINTS})
        bad_params = QueryRequest("sweep", name,
                                  {"output": 0})  # port missing
        requests = [good, bad_model, good, bad_params]
        with pytest.raises(ServeError) as excinfo:
            warm_server.serve(requests, coalesce=False)
        error = excinfo.value
        assert error.failed_indices == [1, 3]
        assert isinstance(error.failures[1], ValidationError)
        # Partial results of the requests that did succeed are kept.
        assert error.results[0] is not None
        assert error.results[2] is not None
        assert error.results[1] is None

    def test_coalesced_failure_marks_all_riders(self, warm_server):
        bad = QueryRequest("transfer", "ghost", {"s_values": S_POINTS})
        with pytest.raises(ServeError) as excinfo:
            warm_server.serve([bad, bad, bad], coalesce=True)
        assert excinfo.value.failed_indices == [0, 1, 2]

    def test_serve_error_message_names_indices(self, warm_server):
        bad = QueryRequest("transfer", "ghost", {"s_values": S_POINTS})
        with pytest.raises(ServeError, match=r"indices \[0\]"):
            warm_server.serve([bad])

    def test_errors_counted_per_failed_request(self, warm_server):
        bad = QueryRequest("transfer", "ghost", {"s_values": S_POINTS})
        before = warm_server.stats().errors
        with pytest.raises(ServeError):
            warm_server.serve([bad, bad])
        assert warm_server.stats().errors == before + 2


# --------------------------------------------------------------------- #
# Stats
# --------------------------------------------------------------------- #
class TestServingStats:
    def test_coalescing_counters(self, warm_server):
        name = warm_server.models()[0]
        request = QueryRequest("transfer", name, {"s_values": S_POINTS})
        warm_server.serve([request] * 4)
        stats = warm_server.serving_stats()
        assert stats.plans == 1
        assert stats.requests == 4
        assert stats.coalesced == 3
        assert stats.kinds["transfer"].batches == 1
        assert 0.0 < stats.coalescing_rate <= 1.0

    def test_latency_percentiles_recorded(self, warm_server):
        name = warm_server.models()[0]
        request = QueryRequest("transfer", name, {"s_values": S_POINTS})
        warm_server.serve([request])
        kind = warm_server.serving_stats().kinds["transfer"]
        assert kind.p50 > 0.0
        assert kind.p99 >= kind.p50

    def test_direct_methods_do_not_count_requests(self, warm_server):
        name = warm_server.models()[0]
        before = warm_server.stats().requests
        warm_server.transfer(name, S_POINTS)
        warm_server.sweep(name, n_points=5)
        assert warm_server.stats().requests == before

    def test_queue_depth_returns_to_zero(self, warm_server):
        name = warm_server.models()[0]
        request = QueryRequest("transfer", name, {"s_values": S_POINTS})
        warm_server.serve([request] * 8, coalesce=False)
        stats = warm_server.serving_stats()
        assert stats.queue_depth == 0
        assert stats.queue_depth_peak >= 1


# --------------------------------------------------------------------- #
# Concurrency
# --------------------------------------------------------------------- #
class TestConcurrency:
    def test_register_close_race(self, bdsm_rom):
        server = ModelServer()
        server.register("rom", bdsm_rom)
        stop = threading.Event()
        errors: list[Exception] = []

        def churn_registry():
            i = 0
            while not stop.is_set():
                try:
                    server.register(f"rom-{i % 3}", bdsm_rom)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
                i += 1

        def churn_pool():
            while not stop.is_set():
                try:
                    server.submit(QueryRequest(
                        "transfer", "rom",
                        {"s_values": S_POINTS})).result()
                    server.close()
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

        threads = [threading.Thread(target=churn_registry),
                   threading.Thread(target=churn_pool)]
        for thread in threads:
            thread.start()
        stop_timer = threading.Timer(0.5, stop.set)
        stop_timer.start()
        for thread in threads:
            thread.join(timeout=10)
        stop_timer.cancel()
        server.close()
        assert errors == []

    def test_sweep_models_overlapping_sets_no_deadlock(self, warm_server):
        names = warm_server.models()
        overlapping = [names, list(reversed(names)),
                       names[:3], names[1:], [names[0], names[-1]]]
        errors: list[Exception] = []

        def hammer(subset):
            try:
                for _ in range(5):
                    result = warm_server.sweep_models(subset, n_points=4)
                    assert sorted(result) == sorted(subset)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(subset,))
                   for subset in overlapping * 3]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not any(thread.is_alive() for thread in threads)
        assert errors == []

    def test_concurrent_coalesced_serves(self, warm_server):
        names = warm_server.models()
        requests = [QueryRequest("transfer", name, {"s_values": S_POINTS})
                    for name in names] * 3
        expected = warm_server.serve(requests, coalesce=False)
        outcomes: list = [None] * 4
        errors: list[Exception] = []

        def client(slot):
            try:
                outcomes[slot] = warm_server.serve(requests, coalesce=True)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(slot,))
                   for slot in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == []
        for served in outcomes:
            assert all(results_equal(a, b)
                       for a, b in zip(served, expected))


# --------------------------------------------------------------------- #
# CLI integration
# --------------------------------------------------------------------- #
class TestServeCli:
    def test_serve_bench_records_json(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "serve.json"
        code = main(["serve-bench", "--requests", "40", "--clients", "2",
                     "--batch-size", "20", "--transfer-points", "4",
                     "--sweep-points", "6", "--output", str(out)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "coalescing speedup" in printed
        payload = json.loads(out.read_text())
        assert payload["bit_identical"] is True
        assert payload["naive"]["qps"] > 0
        assert payload["coalesced"]["qps"] > 0

    def test_query_accepts_serving_flags(self, tmp_path, capsys):
        from repro.cli import main

        store_dir = tmp_path / "store"
        assert main(["reduce", "--benchmark", "ckt1", "--method", "bdsm",
                     "--moments", "3", "--store", str(store_dir)]) == 0
        capsys.readouterr()
        code = main(["query", "--store", str(store_dir),
                     "--benchmark", "ckt1", "--method", "bdsm",
                     "--moments", "3", "--warm-budget", "100000000",
                     "--no-coalesce"])
        assert code == 0
        assert "served" in capsys.readouterr().out
