"""Partition conformance suite: the invariants every partitioned reduce
must satisfy, pinned independently of any particular accuracy target.

Four families of guarantees are enforced here:

* **Structural invariants** (hypothesis): any partition produced by
  :class:`~repro.partition.graph.GridPartitioner` is a bijective
  relabelling of the states, no two internal states of different parts are
  adjacent (every cut edge ends in the separator), and the parts stay
  balanced — for every ``k`` and both built-in strategies.
* **Exactness at ``interface_order=None``**: with identity shard bases the
  assembled macromodel *is* the symmetrically permuted original pencil
  (bit-for-bit block equality) and reproduces the transfer function to the
  PR 5 bound (~1e-12).
* **Structure preservation**: congruence projection with real orthonormal
  bases keeps the RC pencil symmetric and the capacitance block PSD, and
  the macromodel's transfer matrix stays reciprocal — with and without
  interface reduction, at one and two levels.
* **Error budget**: for every ``k`` in {2, 3, 4}, both partitioners and
  both hierarchy depths, an interface-reduced reduce tracks the monolithic
  BDSM ROM within the configured interface error budget.

Plus the satellite regressions: edge cases of the interface-reduction
path, partition-aware store keys (including a fresh-process reload), and
the agreement-report densification guard.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.mna import assemble_mna
from repro.circuit.powergrid import build_power_grid, make_multidomain_spec
from repro.core.bdsm import bdsm_reduce
from repro.exceptions import PartitionError
from repro.partition import (
    GridPartitioner,
    InterfaceBasis,
    PartitionedOptions,
    PartitionedROM,
    compress_subdomain,
    extract_subdomains,
    interface_krylov_basis,
    multilevel_reduce,
    partitioned_reduce,
    partitioned_store_options,
    structure_adjacency,
)
from repro.partition.reduce import _project_subdomain
from repro.store import ModelStore
from repro.validation import max_relative_error, rom_agreement_report

OMEGAS = np.logspace(5, 9, 7)

#: PR 5 exactness bound: with identity bases (or any orthonormal basis
#: containing them) the macromodel is the permuted original pencil.
EXACTNESS_BOUND = 1e-12

#: Interface error budget of the conformance configurations below: with
#: ``interface_order`` matching the shard order and a tight truncation
#: tolerance, the macromodel must track the monolithic ROM at least this
#: well on the conformance grid (measured headroom is ~100x).
INTERFACE_BUDGET = 1e-4
INTERFACE_ORDER = 3
INTERFACE_TOL = 1e-8

# Property examples run a full partition of a ~150-state benchmark each.
SETTINGS = settings(max_examples=20, deadline=None)


@pytest.fixture(scope="module")
def conformance_system():
    """A heterogeneous 24x24 multi-domain grid (four R/C domains + void)."""
    spec = make_multidomain_spec(24, 24, 10, seed=5, name="conf-24x24")
    return assemble_mna(build_power_grid(spec))


@pytest.fixture(scope="module")
def monolithic_rom(conformance_system):
    rom, _, _ = bdsm_reduce(conformance_system, INTERFACE_ORDER)
    return rom


# --------------------------------------------------------------------------- #
# Structural invariants (hypothesis)
# --------------------------------------------------------------------------- #
class TestPartitionInvariants:
    @SETTINGS
    @given(k=st.integers(min_value=1, max_value=6),
           strategy=st.sampled_from(["bfs", "natural"]))
    def test_partition_is_a_bijection(self, smoke_benchmark, k, strategy):
        """Parts plus separator relabel every state exactly once."""
        result = GridPartitioner(k=k, strategy=strategy).partition(
            smoke_benchmark)
        covered = np.concatenate([*result.parts, result.interface])
        assert sorted(covered.tolist()) == list(range(smoke_benchmark.size))

    @SETTINGS
    @given(k=st.integers(min_value=2, max_value=6),
           strategy=st.sampled_from(["bfs", "natural"]))
    def test_every_cut_edge_ends_in_the_separator(self, smoke_benchmark,
                                                  k, strategy):
        """No structural edge may connect internals of different parts."""
        result = GridPartitioner(k=k, strategy=strategy).partition(
            smoke_benchmark)
        owner = np.full(smoke_benchmark.size, -1)
        for part_idx, part in enumerate(result.parts):
            owner[part] = part_idx
        adj = structure_adjacency(smoke_benchmark).tocoo()
        internal = (owner[adj.row] >= 0) & (owner[adj.col] >= 0)
        assert np.all(owner[adj.row[internal]] == owner[adj.col[internal]])

    @SETTINGS
    @given(k=st.integers(min_value=2, max_value=6))
    def test_bfs_parts_stay_balanced(self, smoke_benchmark, k):
        """The bfs strategy keeps parts balanced: the largest part never
        exceeds 3x the ideal share (2x at the default k=4) and the
        separator stays a minority of the states."""
        result = GridPartitioner(k=k, strategy="bfs").partition(
            smoke_benchmark)
        assert result.balance < (2.0 if k <= 4 else 3.0)
        assert result.interface_fraction < 0.5

    @SETTINGS
    @given(k=st.integers(min_value=2, max_value=6),
           strategy=st.sampled_from(["bfs", "natural"]))
    def test_every_part_is_usable(self, smoke_benchmark, k, strategy):
        """Both strategies always produce k non-empty parts (the natural
        strategy trades balance for locality but may not drop parts)."""
        result = GridPartitioner(k=k, strategy=strategy).partition(
            smoke_benchmark)
        assert len(result.parts) == k
        assert all(part.size > 0 for part in result.parts)

    @SETTINGS
    @given(k=st.integers(min_value=2, max_value=4),
           strategy=st.sampled_from(["bfs", "natural"]))
    def test_extraction_conserves_states_and_couplings(
            self, smoke_benchmark, k, strategy):
        """Shard + separator sizes add up and couplings stay on the cut."""
        result = GridPartitioner(k=k, strategy=strategy).partition(
            smoke_benchmark)
        subdomains, separator = extract_subdomains(smoke_benchmark, result)
        assert sum(s.size for s in subdomains) + separator.size \
            == smoke_benchmark.size
        for sub in subdomains:
            # Couplings only touch the separator states the shard's
            # boundary records (boundary = separator positions).
            touched = np.union1d(sub.G_is.tocoo().col,
                                 sub.C_is.tocoo().col)
            assert np.isin(touched, sub.boundary).all()
            assert sub.C_is.shape == (sub.size, separator.size)


# --------------------------------------------------------------------------- #
# Exactness at interface_order=None (the PR 5 bound)
# --------------------------------------------------------------------------- #
class TestExactInterfaceConformance:
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_identity_bases_assemble_the_permuted_pencil(
            self, conformance_system, k):
        """With ``V_i = I`` the assembled blocks equal the permuted
        original matrices exactly — not approximately."""
        system = conformance_system
        result = GridPartitioner(k=k).partition(system)
        subdomains, sep = extract_subdomains(system, result)
        reduced = [_project_subdomain(sub, np.eye(sub.size))
                   for sub in subdomains]
        rom = PartitionedROM(reduced, C_ss=sep.C, G_ss=sep.G,
                             B_s=sep.B, L_s=sep.L)
        perm = np.concatenate([*[s.internal for s in subdomains],
                               sep.indices])
        for assembled, original in ((rom.C, system.C), (rom.G, system.G)):
            expected = original.tocsr()[perm][:, perm]
            assert abs(assembled - expected).max() == 0.0
        assert abs(rom.B - system.B.tocsr()[perm]).max() == 0.0
        assert abs(rom.L - system.L.tocsr()[:, perm]).max() == 0.0

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_identity_bases_reproduce_tf_to_machine_precision(
            self, conformance_system, k):
        system = conformance_system
        result = GridPartitioner(k=k).partition(system)
        subdomains, sep = extract_subdomains(system, result)
        reduced = [_project_subdomain(sub, np.eye(sub.size))
                   for sub in subdomains]
        rom = PartitionedROM(reduced, C_ss=sep.C, G_ss=sep.G,
                             B_s=sep.B, L_s=sep.L)
        for s in (0.0, 1j * 1e7, 1j * 1e9):
            H_full = system.transfer_function(s)
            H_part = rom.transfer_function(s)
            scale = np.max(np.abs(H_full))
            assert np.max(np.abs(H_part - H_full)) / scale \
                < EXACTNESS_BOUND, k

    @pytest.mark.parametrize("levels", [1, 2])
    def test_exact_interface_path_unchanged_by_levels(
            self, conformance_system, levels):
        """``interface_order=None`` keeps the exact-interface semantics at
        every depth: the macromodel matches the full model like PR 5's
        single-level driver does."""
        rom, stats, _ = multilevel_reduce(
            conformance_system, INTERFACE_ORDER, levels=levels, n_parts=2,
            min_states=64)
        assert stats.inner_products > 0
        assert max_relative_error(conformance_system, rom, OMEGAS) < 1e-8


# --------------------------------------------------------------------------- #
# Structure preservation (reciprocity / passivity ingredients)
# --------------------------------------------------------------------------- #
class TestStructurePreservation:
    @pytest.fixture(scope="class", params=[None, INTERFACE_ORDER],
                    ids=["exact-interface", "reduced-interface"])
    def structured_rom(self, request, conformance_system):
        interface = (None if request.param is None else
                     PartitionedOptions(interface_order=request.param,
                                        interface_tol=INTERFACE_TOL))
        rom, _, _ = partitioned_reduce(conformance_system, INTERFACE_ORDER,
                                       n_parts=3, interface=interface)
        return rom

    def test_congruence_keeps_pencil_symmetric(self, structured_rom):
        """The RC grid's C and G are symmetric; real congruence bases (and
        the reduced-interface W) must preserve that in the assembly."""
        for block in (structured_rom.C, structured_rom.G):
            dense = block.toarray()
            scale = np.max(np.abs(dense)) or 1.0
            assert np.max(np.abs(dense - dense.T)) / scale < 1e-12

    def test_congruence_keeps_capacitance_psd(self, structured_rom):
        """Passivity ingredient: x^T C x >= 0 survives projection."""
        dense = structured_rom.C.toarray()
        eigs = np.linalg.eigvalsh(0.5 * (dense + dense.T))
        scale = max(float(eigs[-1]), 1.0)
        assert eigs[0] >= -1e-12 * scale

    def test_transfer_matrix_is_reciprocal(self, conformance_system,
                                           structured_rom):
        """``L = B^T`` grids have symmetric transfer matrices; the
        macromodel must keep the reciprocity the full model has."""
        for s in (1j * 1e6, 1j * 1e8):
            H_full = conformance_system.transfer_function(s)
            assert np.allclose(H_full, H_full.T, rtol=1e-10,
                               atol=1e-12 * np.max(np.abs(H_full)))
            H = structured_rom.transfer_function(s)
            assert np.allclose(H, H.T, rtol=1e-10,
                               atol=1e-12 * np.max(np.abs(H)))


# --------------------------------------------------------------------------- #
# Interface error budget, k x partitioner x levels
# --------------------------------------------------------------------------- #
class TestInterfaceErrorBudget:
    @pytest.mark.parametrize("levels", [1, 2])
    @pytest.mark.parametrize("partitioner", ["bfs", "natural"])
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_reduced_interface_tracks_monolithic(
            self, conformance_system, monolithic_rom, k, partitioner,
            levels):
        rom, _, _ = multilevel_reduce(
            conformance_system, INTERFACE_ORDER, levels=levels, n_parts=k,
            partitioner=partitioner,
            interface=PartitionedOptions(interface_order=INTERFACE_ORDER,
                                         interface_tol=INTERFACE_TOL),
            min_states=64)
        report = rom_agreement_report(monolithic_rom, rom, OMEGAS)
        assert report["max_rel_error"] <= INTERFACE_BUDGET, report
        if rom.is_interface_reduced:
            info = rom.partition_info
            assert info["interface_reduced"] <= info["interface"]

    def test_tighter_tolerance_never_retains_fewer_states(
            self, conformance_system):
        """The truncation knob is monotone: tightening ``interface_tol``
        can only grow the retained interface order."""
        result = GridPartitioner(k=3).partition(conformance_system)
        subdomains, separator = extract_subdomains(conformance_system,
                                                   result)
        sizes = []
        for tol in (1e-2, 1e-6, 1e-10, 0.0):
            basis = interface_krylov_basis(subdomains, separator,
                                           INTERFACE_ORDER, tol=tol)
            sizes.append(basis.size)
            assert basis.W.shape[0] == separator.size
            # Orthonormality of the retained separator directions.
            gram = basis.W.T @ basis.W
            assert np.allclose(gram, np.eye(basis.size), atol=1e-10)
        assert sizes == sorted(sizes)


# --------------------------------------------------------------------------- #
# Edge cases of the interface-reduction path
# --------------------------------------------------------------------------- #
class TestInterfaceEdgeCases:
    def test_single_part_has_no_interface_to_reduce(self, rc_grid_system):
        """k=1 yields an empty separator; asking for interface reduction
        must be a clean no-op, not an error."""
        rom, _, _ = partitioned_reduce(
            rc_grid_system, 2, n_parts=1,
            interface=PartitionedOptions(interface_order=2))
        assert rom.interface_size == 0
        assert not rom.is_interface_reduced
        assert max_relative_error(rc_grid_system, rom, OMEGAS) < 1e-8

    def test_empty_separator_basis_is_well_formed(self, rc_grid_system):
        result = GridPartitioner(k=1).partition(rc_grid_system)
        subdomains, separator = extract_subdomains(rc_grid_system, result)
        assert separator.size == 0
        basis = interface_krylov_basis(subdomains, separator, 2)
        assert basis.W.shape == (0, 0)
        assert basis.size == 0

    def test_complex_outputs_survive_interface_reduction(
            self, rc_grid_system):
        """Complex ``L`` must flow through the compressed-input path
        without dtype coercion."""
        rng = np.random.default_rng(0)
        L = rc_grid_system.L.toarray().astype(complex)
        L += 1j * rng.standard_normal(L.shape) * np.abs(L).max()
        system = rc_grid_system.with_outputs(sp.csr_matrix(L))
        rom, _, _ = partitioned_reduce(
            system, 3, n_parts=2,
            interface=PartitionedOptions(interface_order=3,
                                         interface_tol=1e-10))
        assert np.iscomplexobj(rom.transfer_function(1j * 1e7))
        assert max_relative_error(system, rom, OMEGAS) < 1e-6

    def test_zero_promoted_ports_raise_cleanly(self, rc_grid_system):
        """A shard with no own loads whose couplings vanish under an empty
        separator basis must fail with an actionable PartitionError."""
        result = GridPartitioner(k=2).partition(rc_grid_system)
        subdomains, separator = extract_subdomains(rc_grid_system, result)
        empty = InterfaceBasis(W=np.zeros((separator.size, 0)), order=1,
                               tol=0.0, candidates=0,
                               singular_values=np.zeros(0))
        orphan = replace(subdomains[0], n_own_ports=0)
        with pytest.raises(PartitionError, match="no load ports"):
            compress_subdomain(orphan, empty)

    def test_options_validation(self):
        with pytest.raises(PartitionError):
            PartitionedOptions(interface_order=0)
        for bad_tol in (-0.1, 1.0):
            with pytest.raises(PartitionError):
                PartitionedOptions(interface_tol=bad_tol)
        record = PartitionedOptions(interface_order=4,
                                    interface_tol=1e-6).describe()
        assert record == {"interface_order": 4, "interface_tol": 1e-6}
        assert not PartitionedOptions().reduces_interface

    def test_multilevel_validation(self, rc_grid_system):
        with pytest.raises(PartitionError):
            multilevel_reduce(rc_grid_system, 2, levels=0)
        with pytest.raises(PartitionError):
            multilevel_reduce(rc_grid_system, 2, levels=2, min_states=0)


# --------------------------------------------------------------------------- #
# Partition-aware store keys
# --------------------------------------------------------------------------- #
class TestStoreConformance:
    def test_same_interface_options_hit(self, conformance_system,
                                        tmp_path):
        store = ModelStore(tmp_path / "store")
        interface = PartitionedOptions(interface_order=3,
                                       interface_tol=1e-6)
        first, _, _ = partitioned_reduce(conformance_system, 3, n_parts=3,
                                         interface=interface, store=store)
        assert store.stats().puts == 3
        second, _, _ = partitioned_reduce(conformance_system, 3, n_parts=3,
                                          interface=interface, store=store)
        assert store.stats().hits == 3
        s = 1j * 1e7
        assert np.allclose(second.transfer_function(s),
                           first.transfer_function(s), rtol=1e-12)

    def test_different_interface_order_misses(self, conformance_system,
                                              tmp_path):
        store = ModelStore(tmp_path / "store")
        for order in (2, 3, None):
            interface = (None if order is None
                         else PartitionedOptions(interface_order=order))
            partitioned_reduce(conformance_system, 3, n_parts=2,
                               interface=interface, store=store)
        # Three layouts share the partition but differ in the interface
        # treatment: every shard reduction must be a fresh key.
        assert store.stats().hits == 0
        assert store.stats().puts == 6

    def test_store_options_record_interface(self):
        options = partitioned_store_options(
            3, method="bdsm",
            interface=PartitionedOptions(interface_order=4,
                                         interface_tol=1e-5))
        assert options["partition"]["interface_reduction"] \
            == {"interface_order": 4, "interface_tol": 1e-5}
        exact = partitioned_store_options(3, method="bdsm")
        # The exact-interface record is still present (None order) so the
        # key schema is stable across both modes.
        assert exact["partition"]["interface_reduction"] \
            ["interface_order"] is None


_CHILD_SCRIPT = """
import json, sys
import numpy as np
from repro.store import load_artifact

rom = load_artifact(sys.argv[1])
omegas = np.logspace(5, 9, 5)
H = np.stack([rom.transfer_function(1j * w) for w in omegas])
json.dump({"re": H.real.tolist(), "im": H.imag.tolist()}, sys.stdout)
"""


def test_fresh_process_reload_of_interface_reduced_shard(
        conformance_system, tmp_path):
    """An interface-reduced shard ROM reloaded in a *fresh process* must
    reproduce transfer samples bit-identically — the compressed-input
    ports are ordinary ports to the artifact codec."""
    store = ModelStore(tmp_path / "store")
    partitioned_reduce(conformance_system, 3, n_parts=2,
                       interface=PartitionedOptions(interface_order=3),
                       store=store)
    entries = store.entries()
    assert entries, "shard reductions were not persisted"
    key = entries[-1].key
    shard = store.load(key)

    omegas = np.logspace(5, 9, 5)
    parent = np.stack([shard.transfer_function(1j * w) for w in omegas])

    src_dir = Path(__file__).resolve().parents[1] / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(src_dir) + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else str(src_dir))
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT,
         str(store.artifact_path(key))],
        capture_output=True, text=True, env=env, timeout=120)
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(proc.stdout)
    child = np.asarray(payload["re"]) + 1j * np.asarray(payload["im"])
    assert np.array_equal(parent, child)


# --------------------------------------------------------------------------- #
# Recorded scaling acceptance (pins the committed workload trajectory)
# --------------------------------------------------------------------------- #
def test_recorded_scaled_workload_meets_acceptance():
    """The committed ``partitioned_scaled`` trajectory must show the
    interface-reduced multilevel reduce beating the monolithic one >=5x
    on a >=128x128 grid, within the configured error budget.

    This asserts on the *recorded* JSON (regenerated with
    ``python -m repro bench --workload partitioned_scaled``), not on a
    fresh run — wall-clock ratios at this scale take minutes, and the
    record is what the README's speedup table cites."""
    path = (Path(__file__).resolve().parents[1]
            / "benchmarks" / "results" / "partitioned_scaled.json")
    if not path.exists():
        pytest.skip("partitioned_scaled.json not recorded yet")
    payload = json.loads(path.read_text())
    entry = (payload.get("scales") or {}).get("laptop")
    if entry is None:
        pytest.skip("laptop scale not recorded yet")
    assert entry["levels"] >= 2
    assert entry["interface_order"] is not None
    assert entry["n"] >= 128 * 128 * 0.9  # blockage voids remove nodes
    assert entry["speedup"] >= 5.0, entry
    assert entry["within_budget"], entry
    assert entry["max_rel_error_vs_monolithic"] <= entry["error_budget"]


# --------------------------------------------------------------------------- #
# Agreement-report densification guard (regression)
# --------------------------------------------------------------------------- #
class _CountingToarray(sp.csr_matrix):
    """CSR matrix that counts its densifications."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.toarray_calls = 0

    def toarray(self, *args, **kwargs):
        self.toarray_calls += 1
        return super().toarray(*args, **kwargs)


def test_agreement_report_densifies_interface_once(conformance_system,
                                                   monolithic_rom):
    """Regression: ``rom_agreement_report`` samples the macromodel once
    per frequency, and the Schur path used to densify the (large, possibly
    exact) interface pencil on *every* sample.  The dense interface blocks
    must be built exactly once per report regardless of the grid size."""
    rom, _, _ = partitioned_reduce(
        conformance_system, INTERFACE_ORDER, n_parts=3,
        interface=PartitionedOptions(interface_order=INTERFACE_ORDER,
                                     interface_tol=INTERFACE_TOL))
    counters = {}
    for attr in ("C_ss", "G_ss", "B_s"):
        counting = _CountingToarray(getattr(rom, attr).tocsr())
        setattr(rom, attr, counting)
        counters[attr] = counting
    rom._dense_interface = None  # drop any cached densification

    report = rom_agreement_report(monolithic_rom, rom, OMEGAS)
    assert report["max_rel_error"] <= INTERFACE_BUDGET
    for attr, counting in counters.items():
        assert counting.toarray_calls <= 1, (
            f"{attr} was densified {counting.toarray_calls}x during one "
            f"{OMEGAS.size}-point agreement report")
