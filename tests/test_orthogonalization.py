"""Unit tests for repro.linalg.orthogonalization."""

import numpy as np
import pytest

from repro.exceptions import DeflationError
from repro.linalg.orthogonalization import (
    OrthoStats,
    block_orthonormalize,
    modified_gram_schmidt,
    orthonormalize_against,
    theoretical_inner_products,
)


def _counts(stats: OrthoStats) -> tuple[int, int, int, int]:
    return (stats.inner_products, stats.axpy_updates,
            stats.normalizations, stats.deflations)


class TestOrthoStats:
    def test_merge_accumulates(self):
        a = OrthoStats(1, 2, 3, 4)
        b = OrthoStats(10, 20, 30, 40)
        a.merge(b)
        assert _counts(a) == (11, 22, 33, 44)

    def test_add_returns_new_object(self):
        a = OrthoStats(1, 1, 1, 0)
        b = OrthoStats(2, 2, 2, 1)
        c = a + b
        assert c.inner_products == 3
        assert a.inner_products == 1

    def test_merge_with_empty_is_identity(self):
        a = OrthoStats(5, 6, 7, 8)
        a.merge(OrthoStats())
        assert _counts(a) == (5, 6, 7, 8)

    def test_add_with_empty_is_identity_both_ways(self):
        a = OrthoStats(5, 6, 7, 8)
        assert _counts(a + OrthoStats()) == (5, 6, 7, 8)
        assert _counts(OrthoStats() + a) == (5, 6, 7, 8)

    def test_add_is_commutative_and_non_mutating(self):
        a = OrthoStats(1, 2, 3, 4)
        b = OrthoStats(10, 0, 5, 1)
        assert _counts(a + b) == _counts(b + a)
        assert _counts(a) == (1, 2, 3, 4)
        assert _counts(b) == (10, 0, 5, 1)

    def test_merge_chain_equals_sum(self):
        parts = [OrthoStats(i, 2 * i, 3 * i, i % 2) for i in range(5)]
        merged = OrthoStats()
        for part in parts:
            merged.merge(part)
        total = parts[0] + parts[1] + parts[2] + parts[3] + parts[4]
        assert _counts(merged) == _counts(total)

    def test_merge_self_doubles(self):
        a = OrthoStats(3, 4, 5, 6)
        a.merge(a)
        assert _counts(a) == (6, 8, 10, 12)


class TestOrthonormalizeAgainst:
    def test_empty_basis_normalizes(self):
        q = orthonormalize_against(np.array([3.0, 4.0]), None)
        assert np.allclose(np.linalg.norm(q), 1.0)
        assert np.allclose(q, [0.6, 0.8])

    def test_orthogonal_to_basis(self, rng):
        basis, _ = modified_gram_schmidt(rng.normal(size=(10, 3)))
        q = orthonormalize_against(rng.normal(size=10), basis)
        assert np.allclose(basis.T @ q, 0.0, atol=1e-12)
        assert np.linalg.norm(q) == pytest.approx(1.0)

    def test_dependent_vector_deflates(self):
        basis = np.array([[1.0], [0.0]])
        stats = OrthoStats()
        q = orthonormalize_against(np.array([2.0, 0.0]), basis, stats=stats)
        assert q is None
        assert stats.deflations == 1

    def test_zero_vector_deflates(self):
        stats = OrthoStats()
        assert orthonormalize_against(np.zeros(4), None, stats=stats) is None
        assert stats.deflations == 1

    def test_stats_counting(self):
        basis = np.column_stack([np.eye(5)[:, 0], np.eye(5)[:, 1]])
        stats = OrthoStats()
        orthonormalize_against(np.ones(5), basis, stats=stats,
                               reorthogonalize=False)
        assert stats.inner_products == 2
        assert stats.normalizations == 1


class TestModifiedGramSchmidt:
    def test_produces_orthonormal_basis(self, rng):
        candidates = rng.normal(size=(20, 6))
        basis, _ = modified_gram_schmidt(candidates)
        assert basis.shape == (20, 6)
        assert np.allclose(basis.T @ basis, np.eye(6), atol=1e-10)

    def test_spans_same_space(self, rng):
        candidates = rng.normal(size=(15, 4))
        basis, _ = modified_gram_schmidt(candidates)
        # Every candidate is reproduced by its projection onto the basis.
        proj = basis @ (basis.T @ candidates)
        assert np.allclose(proj, candidates, atol=1e-8)

    def test_rank_deficient_input_drops_columns(self, rng):
        col = rng.normal(size=(10, 1))
        candidates = np.hstack([col, 2 * col, rng.normal(size=(10, 1))])
        basis, stats = modified_gram_schmidt(candidates)
        assert basis.shape[1] == 2
        assert stats.deflations == 1

    def test_require_full_rank_raises(self, rng):
        col = rng.normal(size=(8, 1))
        candidates = np.hstack([col, col])
        with pytest.raises(DeflationError):
            modified_gram_schmidt(candidates, require_full_rank=True)

    def test_respects_initial_basis(self, rng):
        initial, _ = modified_gram_schmidt(rng.normal(size=(12, 3)))
        new, _ = modified_gram_schmidt(rng.normal(size=(12, 2)),
                                       initial_basis=initial)
        assert new.shape[1] == 2
        assert np.allclose(initial.T @ new, 0.0, atol=1e-10)

    def test_initial_basis_row_mismatch(self, rng):
        with pytest.raises(ValueError):
            modified_gram_schmidt(rng.normal(size=(5, 2)),
                                  initial_basis=np.eye(6))

    def test_one_dimensional_input(self):
        basis, _ = modified_gram_schmidt(np.array([0.0, 2.0, 0.0]))
        assert basis.shape == (3, 1)
        assert np.allclose(basis[:, 0], [0.0, 1.0, 0.0])

    def test_all_zero_candidates_give_empty_basis(self):
        basis, stats = modified_gram_schmidt(np.zeros((5, 3)))
        assert basis.shape == (5, 0)
        assert stats.deflations == 3


class TestBlockOrthonormalize:
    def test_produces_orthonormal_basis(self, rng):
        candidates = rng.normal(size=(20, 6))
        basis, _ = block_orthonormalize(candidates)
        assert basis.shape == (20, 6)
        assert np.allclose(basis.T @ basis, np.eye(6), atol=1e-12)

    def test_spans_same_space_as_columnwise(self, rng):
        candidates = rng.normal(size=(30, 5))
        blocked, _ = block_orthonormalize(candidates)
        columnwise, _ = modified_gram_schmidt(candidates)
        # Each basis reproduces the other under projection -> equal spans.
        assert np.allclose(blocked @ (blocked.T @ columnwise), columnwise,
                           atol=1e-10)
        assert np.allclose(columnwise @ (columnwise.T @ blocked), blocked,
                           atol=1e-10)

    def test_respects_initial_basis(self, rng):
        initial, _ = modified_gram_schmidt(rng.normal(size=(25, 4)))
        new, _ = block_orthonormalize(rng.normal(size=(25, 3)),
                                      initial_basis=initial)
        assert new.shape == (25, 3)
        assert np.allclose(initial.T @ new, 0.0, atol=1e-12)
        assert np.allclose(new.T @ new, np.eye(3), atol=1e-12)

    def test_initial_basis_row_mismatch(self, rng):
        with pytest.raises(ValueError):
            block_orthonormalize(rng.normal(size=(5, 2)),
                                 initial_basis=np.eye(6))

    def test_deflation_decisions_match_columnwise(self, rng):
        col = rng.normal(size=(12, 1))
        candidates = np.hstack(
            [col, 2.0 * col, np.zeros((12, 1)), rng.normal(size=(12, 1))])
        blocked, blocked_stats = block_orthonormalize(candidates)
        columnwise, columnwise_stats = modified_gram_schmidt(candidates)
        assert blocked.shape == columnwise.shape == (12, 2)
        assert blocked_stats.deflations == columnwise_stats.deflations == 2

    def test_stats_match_columnwise_kernel(self, rng):
        initial, _ = modified_gram_schmidt(rng.normal(size=(40, 5)))
        col = rng.normal(size=(40, 1))
        candidates = np.hstack([rng.normal(size=(40, 4)), col, 3.0 * col])
        _, blocked_stats = block_orthonormalize(candidates,
                                                initial_basis=initial)
        _, columnwise_stats = modified_gram_schmidt(candidates,
                                                    initial_basis=initial)
        assert _counts(blocked_stats) == _counts(columnwise_stats)

    def test_stats_match_without_reorthogonalization(self, rng):
        initial, _ = modified_gram_schmidt(rng.normal(size=(15, 2)))
        candidates = rng.normal(size=(15, 3))
        _, blocked_stats = block_orthonormalize(
            candidates, initial_basis=initial, reorthogonalize=False)
        _, columnwise_stats = modified_gram_schmidt(
            candidates, initial_basis=initial, reorthogonalize=False)
        assert _counts(blocked_stats) == _counts(columnwise_stats)

    def test_require_full_rank_raises_with_first_deflated_index(self, rng):
        col = rng.normal(size=(8, 1))
        with pytest.raises(DeflationError, match="column 1"):
            block_orthonormalize(np.hstack([col, col]),
                                 require_full_rank=True)

    def test_wide_block_deflates_beyond_dimension(self, rng):
        candidates = rng.normal(size=(4, 7))
        basis, stats = block_orthonormalize(candidates)
        assert basis.shape == (4, 4)
        assert stats.deflations == 3

    def test_all_zero_candidates_give_empty_basis(self):
        basis, stats = block_orthonormalize(np.zeros((5, 3)))
        assert basis.shape == (5, 0)
        assert stats.deflations == 3
        assert stats.inner_products == 0

    def test_empty_candidate_block(self):
        basis, stats = block_orthonormalize(np.empty((6, 0)))
        assert basis.shape == (6, 0)
        assert _counts(stats) == (0, 0, 0, 0)

    def test_one_dimensional_input(self):
        basis, _ = block_orthonormalize(np.array([0.0, 2.0, 0.0]))
        assert basis.shape == (3, 1)
        assert np.allclose(np.abs(basis[:, 0]), [0.0, 1.0, 0.0])

    def test_complex_candidates(self, rng):
        candidates = (rng.normal(size=(20, 4))
                      + 1j * rng.normal(size=(20, 4)))
        basis, stats = block_orthonormalize(candidates)
        assert np.iscomplexobj(basis)
        assert np.allclose(basis.conj().T @ basis, np.eye(4), atol=1e-12)
        assert stats.normalizations == 4

    def test_complex_initial_basis_promotes_dtype(self, rng):
        initial, _ = modified_gram_schmidt(
            rng.normal(size=(20, 2)) + 1j * rng.normal(size=(20, 2)))
        basis, _ = block_orthonormalize(rng.normal(size=(20, 3)),
                                        initial_basis=initial)
        assert np.iscomplexobj(basis)
        assert np.allclose(initial.conj().T @ basis, 0.0, atol=1e-12)


class TestTheoreticalInnerProducts:
    def test_paper_formulas(self):
        m, l = 51, 6
        assert theoretical_inner_products(m, l, clustered=True) \
            == m * l * (l - 1) // 2
        assert theoretical_inner_products(m, l, clustered=False) \
            == (m * l) * (m * l - 1) // 2

    def test_clustered_never_exceeds_global(self):
        for m in (1, 3, 10, 100):
            for l in (1, 2, 5, 8):
                assert theoretical_inner_products(m, l, clustered=True) <= \
                    theoretical_inner_products(m, l, clustered=False)

    def test_negative_arguments_rejected(self):
        with pytest.raises(ValueError):
            theoretical_inner_products(-1, 2, clustered=True)
