"""Unit tests for repro.linalg.orthogonalization."""

import numpy as np
import pytest

from repro.exceptions import DeflationError
from repro.linalg.orthogonalization import (
    OrthoStats,
    modified_gram_schmidt,
    orthonormalize_against,
    theoretical_inner_products,
)


class TestOrthoStats:
    def test_merge_accumulates(self):
        a = OrthoStats(1, 2, 3, 4)
        b = OrthoStats(10, 20, 30, 40)
        a.merge(b)
        assert (a.inner_products, a.axpy_updates,
                a.normalizations, a.deflations) == (11, 22, 33, 44)

    def test_add_returns_new_object(self):
        a = OrthoStats(1, 1, 1, 0)
        b = OrthoStats(2, 2, 2, 1)
        c = a + b
        assert c.inner_products == 3
        assert a.inner_products == 1


class TestOrthonormalizeAgainst:
    def test_empty_basis_normalizes(self):
        q = orthonormalize_against(np.array([3.0, 4.0]), None)
        assert np.allclose(np.linalg.norm(q), 1.0)
        assert np.allclose(q, [0.6, 0.8])

    def test_orthogonal_to_basis(self, rng):
        basis, _ = modified_gram_schmidt(rng.normal(size=(10, 3)))
        q = orthonormalize_against(rng.normal(size=10), basis)
        assert np.allclose(basis.T @ q, 0.0, atol=1e-12)
        assert np.linalg.norm(q) == pytest.approx(1.0)

    def test_dependent_vector_deflates(self):
        basis = np.array([[1.0], [0.0]])
        stats = OrthoStats()
        q = orthonormalize_against(np.array([2.0, 0.0]), basis, stats=stats)
        assert q is None
        assert stats.deflations == 1

    def test_zero_vector_deflates(self):
        stats = OrthoStats()
        assert orthonormalize_against(np.zeros(4), None, stats=stats) is None
        assert stats.deflations == 1

    def test_stats_counting(self):
        basis = np.column_stack([np.eye(5)[:, 0], np.eye(5)[:, 1]])
        stats = OrthoStats()
        orthonormalize_against(np.ones(5), basis, stats=stats,
                               reorthogonalize=False)
        assert stats.inner_products == 2
        assert stats.normalizations == 1


class TestModifiedGramSchmidt:
    def test_produces_orthonormal_basis(self, rng):
        candidates = rng.normal(size=(20, 6))
        basis, _ = modified_gram_schmidt(candidates)
        assert basis.shape == (20, 6)
        assert np.allclose(basis.T @ basis, np.eye(6), atol=1e-10)

    def test_spans_same_space(self, rng):
        candidates = rng.normal(size=(15, 4))
        basis, _ = modified_gram_schmidt(candidates)
        # Every candidate is reproduced by its projection onto the basis.
        proj = basis @ (basis.T @ candidates)
        assert np.allclose(proj, candidates, atol=1e-8)

    def test_rank_deficient_input_drops_columns(self, rng):
        col = rng.normal(size=(10, 1))
        candidates = np.hstack([col, 2 * col, rng.normal(size=(10, 1))])
        basis, stats = modified_gram_schmidt(candidates)
        assert basis.shape[1] == 2
        assert stats.deflations == 1

    def test_require_full_rank_raises(self, rng):
        col = rng.normal(size=(8, 1))
        candidates = np.hstack([col, col])
        with pytest.raises(DeflationError):
            modified_gram_schmidt(candidates, require_full_rank=True)

    def test_respects_initial_basis(self, rng):
        initial, _ = modified_gram_schmidt(rng.normal(size=(12, 3)))
        new, _ = modified_gram_schmidt(rng.normal(size=(12, 2)),
                                       initial_basis=initial)
        assert new.shape[1] == 2
        assert np.allclose(initial.T @ new, 0.0, atol=1e-10)

    def test_initial_basis_row_mismatch(self, rng):
        with pytest.raises(ValueError):
            modified_gram_schmidt(rng.normal(size=(5, 2)),
                                  initial_basis=np.eye(6))

    def test_one_dimensional_input(self):
        basis, _ = modified_gram_schmidt(np.array([0.0, 2.0, 0.0]))
        assert basis.shape == (3, 1)
        assert np.allclose(basis[:, 0], [0.0, 1.0, 0.0])

    def test_all_zero_candidates_give_empty_basis(self):
        basis, stats = modified_gram_schmidt(np.zeros((5, 3)))
        assert basis.shape == (5, 0)
        assert stats.deflations == 3


class TestTheoreticalInnerProducts:
    def test_paper_formulas(self):
        m, l = 51, 6
        assert theoretical_inner_products(m, l, clustered=True) \
            == m * l * (l - 1) // 2
        assert theoretical_inner_products(m, l, clustered=False) \
            == (m * l) * (m * l - 1) // 2

    def test_clustered_never_exceeds_global(self):
        for m in (1, 3, 10, 100):
            for l in (1, 2, 5, 8):
                assert theoretical_inner_products(m, l, clustered=True) <= \
                    theoretical_inner_products(m, l, clustered=False)

    def test_negative_arguments_rejected(self):
        with pytest.raises(ValueError):
            theoretical_inner_products(-1, 2, clustered=True)
