"""Tests for the numerical-health layer (repro.obs.health), the
trace-diff regression gate (repro.obs.diff), the run flight recorder
(repro.obs.ledger) and the HTTP telemetry endpoint (repro.obs.endpoint).

The fault-injection cases are the core: a deliberately de-orthogonalised
merge basis must come back flagged by the ortho watchdog, a seeded
slow-phase profile must trip ``check_budget``, and a live server's
``/healthz`` must answer with the stats layer's actual verdict.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import (
    ModelServer,
    QueryRequest,
    bdsm_reduce,
    make_benchmark,
)
from repro.linalg.orthogonalization import block_orthonormalize
from repro.obs.diff import (
    PhaseDelta,
    check_budget,
    diff_profiles,
    load_profile,
    parse_budget,
    span_rollup,
    trace_profile,
    write_profile,
)
from repro.obs.endpoint import TelemetryServer
from repro.obs.health import (
    HealthMonitors,
    HealthReport,
    begin_reduce_health,
    classify,
    default_health,
    disable_health_monitors,
    enable_health_monitors,
    finish_reduce_health,
    health_enabled,
)
from repro.obs.ledger import (
    RunLedger,
    config_fingerprint,
    read_ledger,
    summarize_ledger,
)
from repro.obs.metrics import MetricsRegistry


@pytest.fixture()
def monitors():
    """Enable health monitoring for one test, leaving the process clean."""
    registry = default_health()
    registry.reset()
    enable_health_monitors()
    yield registry
    disable_health_monitors()
    registry.reset()


# --------------------------------------------------------------------- #
# Classification and the monitor registry
# --------------------------------------------------------------------- #
class TestClassify:
    def test_above_direction(self):
        assert classify(1e-12, warn_at=1e-8, fail_at=1e-6) == "ok"
        assert classify(1e-7, warn_at=1e-8, fail_at=1e-6) == "warn"
        assert classify(1e-3, warn_at=1e-8, fail_at=1e-6) == "fail"

    def test_below_direction(self):
        assert classify(0.9, warn_at=0.5, fail_at=0.1,
                        direction="below") == "ok"
        assert classify(0.3, warn_at=0.5, fail_at=0.1,
                        direction="below") == "warn"
        assert classify(0.05, warn_at=0.5, fail_at=0.1,
                        direction="below") == "fail"

    def test_no_thresholds_is_informational(self):
        assert classify(1e9, warn_at=None, fail_at=None) == "ok"

    def test_bad_direction_raises(self):
        with pytest.raises(ValueError, match="direction"):
            classify(1.0, warn_at=None, fail_at=None, direction="sideways")


class TestHealthMonitors:
    def test_record_uses_default_thresholds(self):
        registry = HealthMonitors(metrics=MetricsRegistry())
        assert registry.record("ortho.loss", 1e-14).status == "ok"
        assert registry.record("ortho.loss", 1e-7).status == "warn"
        assert registry.record("ortho.loss", 1e-3).status == "fail"

    def test_record_publishes_gauge_and_verdict_counter(self):
        metrics = MetricsRegistry()
        registry = HealthMonitors(metrics=metrics)
        registry.record("ortho.loss", 1e-3, method="bdsm")
        snapshot = metrics.snapshot()
        gauges = {e["name"]: e for e in snapshot["gauges"]}
        assert gauges["health.ortho.loss"]["value"] == pytest.approx(1e-3)
        assert gauges["health.ortho.loss"]["labels"] == {"method": "bdsm"}
        verdicts = [e for e in snapshot["counters"]
                    if e["name"] == "health.verdict"]
        assert verdicts and verdicts[0]["labels"]["status"] == "fail"

    def test_explicit_thresholds_override_defaults(self):
        registry = HealthMonitors(metrics=MetricsRegistry())
        check = registry.record("ortho.loss", 1e-7, warn_at=1e-2,
                                fail_at=1e-1)
        assert check.status == "ok"

    def test_configure_overrides_per_registry(self):
        registry = HealthMonitors(metrics=MetricsRegistry())
        registry.configure("serve.queue_depth", warn_at=2, fail_at=4)
        assert registry.record("serve.queue_depth", 3).status == "warn"

    def test_mark_scopes_report(self):
        registry = HealthMonitors(metrics=MetricsRegistry())
        registry.record("ortho.loss", 1e-3)
        mark = registry.mark()
        registry.record("solve.residual", 1e-12)
        report = registry.report(since=mark)
        assert [c.monitor for c in report.checks] == ["solve.residual"]
        assert report.status == "ok"

    def test_bounded_buffer_keeps_mark_arithmetic(self):
        registry = HealthMonitors(buffer=4, metrics=MetricsRegistry())
        mark = registry.mark()
        for i in range(10):
            registry.record("ortho.loss", 1e-14, detail=str(i))
        assert len(registry) == 4
        report = registry.report(since=mark)
        # Everything before the window fell off the front; the surviving
        # checks are the newest four.
        assert [c.detail for c in report.checks] == ["6", "7", "8", "9"]

    def test_report_round_trip_and_summary(self):
        registry = HealthMonitors(metrics=MetricsRegistry())
        registry.record("ortho.loss", 1e-3, detail="merge")
        registry.record("solve.residual", 1e-12)
        report = registry.report()
        clone = HealthReport.from_dict(
            json.loads(json.dumps(report.as_dict())))
        assert clone.status == "fail"
        assert clone.worst("ortho.loss").detail == "merge"
        assert "fail=1" in clone.summary()
        assert len(clone.failed()) == 1 and not clone.warned()


class TestGating:
    def test_disabled_by_default(self):
        assert not health_enabled()
        assert begin_reduce_health() is None

    def test_finish_with_none_mark_is_inert(self):
        rom = type("R", (), {"size": 3})()
        assert finish_reduce_health(None, rom, None, method="x") is None
        assert not hasattr(rom, "health")


# --------------------------------------------------------------------- #
# Fault injection: broken numerics must come back flagged
# --------------------------------------------------------------------- #
class TestFaultInjection:
    def test_perturbed_merge_basis_flags_ortho_loss(self, monitors):
        rng = np.random.default_rng(7)
        existing, _ = np.linalg.qr(rng.standard_normal((60, 4)))
        # De-orthogonalise the supposedly-orthonormal initial basis: the
        # CGS2 projection then leaves candidate components along it, and
        # the merged-basis probe (always run on merges) must notice.
        existing[:, 0] += 0.05 * existing[:, 1]
        candidates = rng.standard_normal((60, 3))
        block_orthonormalize(candidates, initial_basis=existing)
        report = monitors.report()
        worst = report.worst("ortho.loss")
        assert worst is not None
        assert worst.status == "fail"
        assert report.status == "fail"

    def test_healthy_reduce_attaches_ok_report(self, monitors):
        system = make_benchmark("ckt1", "laptop")
        rom, _, _ = bdsm_reduce(system, 4)
        assert hasattr(rom, "health")
        assert rom.health.status in ("ok", "warn")
        monitored = {c.monitor for c in rom.health.checks}
        assert "reduce.deflation_rate" in monitored
        assert "ortho.loss" in monitored

    def test_reduce_report_is_scoped_to_its_run(self, monitors):
        monitors.record("ortho.loss", 1e-3, detail="stale-before")
        system = make_benchmark("ckt1", "laptop")
        rom, _, _ = bdsm_reduce(system, 4)
        assert all(c.detail != "stale-before" for c in rom.health.checks)


# --------------------------------------------------------------------- #
# Trace profiles and the regression gate
# --------------------------------------------------------------------- #
def _profile(phases: dict[str, float], total: float | None = None) -> dict:
    return {"schema": 1, "kind": "trace_profile",
            "total_s": total if total is not None
            else sum(t for p, t in phases.items() if "/" not in p),
            "phases": {p: {"count": 1, "total_s": t}
                       for p, t in phases.items()}}


class TestProfiles:
    def test_span_rollup_builds_parent_paths(self):
        spans = [
            {"name": "reduce", "span_id": "a", "parent_id": None,
             "duration": 1.0},
            {"name": "ortho", "span_id": "b", "parent_id": "a",
             "duration": 0.25},
            {"name": "ortho", "span_id": "c", "parent_id": "a",
             "duration": 0.25},
            {"name": "orphan", "span_id": "d", "parent_id": "gone",
             "duration": 0.1},
        ]
        rollup = span_rollup(spans)
        assert rollup["reduce"]["count"] == 1
        assert rollup["reduce/ortho"] == {"count": 2, "total_s": 0.5}
        assert rollup["orphan"]["count"] == 1  # missing parent -> root

    def test_trace_profile_total_counts_roots_only(self):
        spans = [
            {"name": "reduce", "span_id": "a", "parent_id": None,
             "duration": 2.0},
            {"name": "ortho", "span_id": "b", "parent_id": "a",
             "duration": 1.5},
        ]
        assert trace_profile(spans)["total_s"] == pytest.approx(2.0)

    def test_load_profile_accepts_all_three_shapes(self, tmp_path):
        spans = [{"name": "reduce", "span_id": "a", "parent_id": None,
                  "duration": 2.0}]
        profile_path = write_profile(spans, tmp_path / "profile.json")
        spans_path = tmp_path / "spans.json"
        spans_path.write_text(json.dumps(spans))
        chrome_path = tmp_path / "chrome.json"
        chrome_path.write_text(json.dumps({"traceEvents": [
            {"name": "reduce", "ph": "X", "dur": 2e6,
             "args": {"span_id": "a"}},
            {"name": "thread_name", "ph": "M"},
        ]}))
        for path in (profile_path, spans_path, chrome_path):
            profile = load_profile(path)
            assert profile["kind"] == "trace_profile"
            assert profile["total_s"] == pytest.approx(2.0)

    def test_load_profile_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_profile(bad)
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"schema": 1}))
        with pytest.raises(ValueError, match="neither"):
            load_profile(wrong)


class TestBudgetGate:
    def test_parse_budget(self):
        assert parse_budget("20%") == pytest.approx(0.2)
        assert parse_budget("0.2") == pytest.approx(0.2)
        with pytest.raises(ValueError, match="not a percentage"):
            parse_budget("fast")
        with pytest.raises(ValueError, match="positive"):
            parse_budget("-5%")

    def test_seeded_regression_trips_time_mode(self):
        base = _profile({"reduce": 1.0, "reduce/ortho": 0.4,
                         "reduce/solve": 0.3})
        current = _profile({"reduce": 1.3, "reduce/ortho": 0.7,
                            "reduce/solve": 0.3})
        deltas = diff_profiles(base, current)
        failures = check_budget(deltas, budget=0.2, mode="time")
        assert any("reduce/ortho" in f for f in failures)
        assert not any("reduce/solve" in f for f in failures)

    def test_within_budget_passes(self):
        base = _profile({"reduce": 1.0, "reduce/ortho": 0.4})
        current = _profile({"reduce": 1.05, "reduce/ortho": 0.42})
        assert check_budget(diff_profiles(base, current),
                            budget=0.2, mode="time") == []

    def test_share_mode_divides_out_hardware(self):
        base = _profile({"reduce": 1.0, "reduce/ortho": 0.4,
                         "reduce/solve": 0.3})
        # A uniformly 3x slower machine: time mode would scream about
        # every phase; share mode sees the same profile.
        slower = _profile({p: 3 * t for p, t in
                           (("reduce", 1.0), ("reduce/ortho", 0.4),
                            ("reduce/solve", 0.3))})
        deltas = diff_profiles(base, slower)
        assert check_budget(deltas, budget=0.2, mode="share") == []
        assert check_budget(deltas, budget=0.2, mode="time")

    def test_share_mode_catches_real_shift(self):
        base = _profile({"reduce": 1.0, "reduce/ortho": 0.2})
        current = _profile({"reduce": 1.0, "reduce/ortho": 0.5})
        failures = check_budget(diff_profiles(base, current),
                                budget=0.2, mode="share")
        assert any("reduce/ortho" in f for f in failures)

    def test_min_share_floor_skips_noise_phases(self):
        base = _profile({"reduce": 1.0, "reduce/tiny": 0.001})
        current = _profile({"reduce": 1.0, "reduce/tiny": 0.01})
        assert check_budget(diff_profiles(base, current),
                            budget=0.2, mode="time") == []

    def test_bad_mode_raises(self):
        with pytest.raises(ValueError, match="mode"):
            check_budget([], budget=0.2, mode="both")

    def test_new_phase_gates_in_time_mode(self):
        deltas = diff_profiles(_profile({"reduce": 1.0}),
                               _profile({"reduce": 1.0, "extra": 0.5}))
        new = next(d for d in deltas if d.path == "extra")
        assert isinstance(new, PhaseDelta)
        assert new.time_ratio == float("inf")
        # base_share is 0 -> below min_share, so not gated until it has
        # baseline presence; documented behaviour.
        assert check_budget([new], budget=0.2, mode="time") == []


# --------------------------------------------------------------------- #
# The run flight recorder
# --------------------------------------------------------------------- #
class TestLedger:
    def test_record_round_trip(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        record = RunLedger(path).record(
            "reduce", config={"benchmark": "ckt1", "moments": 4},
            duration_s=1.25, metrics={"counters": [
                {"name": "solve.calls", "labels": {"backend": "splu"},
                 "value": 3}]},
            health={"status": "ok", "checks": []},
            extra={"exit_code": 0})
        (loaded,) = read_ledger(path)
        assert loaded["kind"] == "reduce"
        assert loaded["duration_s"] == pytest.approx(1.25)
        assert loaded["config_fingerprint"] == record["config_fingerprint"]
        assert loaded["counters"] == {'solve.calls{backend=splu}': 3.0}
        assert loaded["health"]["status"] == "ok"
        assert loaded["extra"]["exit_code"] == 0

    def test_fingerprint_is_order_insensitive(self):
        assert (config_fingerprint({"a": 1, "b": 2})
                == config_fingerprint({"b": 2, "a": 1}))
        assert (config_fingerprint({"a": 1})
                != config_fingerprint({"a": 2}))

    def test_corrupt_lines_are_skipped(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path)
        ledger.record("reduce", duration_s=1.0)
        with path.open("a") as fh:
            fh.write("{torn write\n\n[1, 2]\n")
        ledger.record("reduce", duration_s=2.0)
        records = read_ledger(path)
        assert [r["duration_s"] for r in records] == [1.0, 2.0]

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_ledger(tmp_path / "absent.jsonl") == []

    def test_summary_trends_same_config_runs(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path)
        ledger.record("reduce", config={"benchmark": "ckt1"},
                      duration_s=1.0)
        ledger.record("reduce", config={"benchmark": "ckt2"},
                      duration_s=5.0)
        ledger.record("reduce", config={"benchmark": "ckt1"},
                      duration_s=1.5,
                      health={"status": "fail",
                              "checks": [{"monitor": "ortho.loss",
                                          "value": 1.0, "status": "fail"}]})
        rows = summarize_ledger(read_ledger(path))
        assert rows[0]["trend"] == ""
        assert rows[1]["trend"] == ""  # different config fingerprint
        assert rows[2]["trend"] == "+50%"
        assert rows[2]["health"] == "fail" and rows[2]["fails"] == 1

    def test_summary_last_window(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path)
        for i in range(6):
            ledger.record("bench", duration_s=float(i + 1))
        rows = summarize_ledger(read_ledger(path), last=2)
        assert [r["duration (s)"] for r in rows] == [5.0, 6.0]


# --------------------------------------------------------------------- #
# The telemetry endpoint
# --------------------------------------------------------------------- #
def _get(url: str):
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, response.read().decode()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode()


class TestTelemetryEndpoint:
    def test_metrics_and_health_endpoints(self):
        metrics = MetricsRegistry()
        metrics.increment("store.fetch", result="hit")
        report = {"status": "warn", "checks": [
            {"monitor": "serve.p99_seconds", "value": 0.9,
             "status": "warn"}]}
        with TelemetryServer(port=0, metrics_fn=metrics.snapshot,
                             health_fn=lambda: report) as server:
            status, body = _get(f"{server.url}/metrics")
            assert status == 200
            assert 'repro_store_fetch_total{result="hit"} 1' in body
            status, body = _get(f"{server.url}/healthz")
            assert status == 200  # warn is alive, only fail is 503
            assert json.loads(body)["status"] == "warn"
            status, _ = _get(f"{server.url}/nope")
            assert status == 404

    def test_healthz_fails_closed_on_fail_verdict(self):
        report = {"status": "fail", "checks": []}
        with TelemetryServer(port=0, health_fn=lambda: report) as server:
            status, body = _get(f"{server.url}/healthz")
            assert status == 503
            assert json.loads(body)["status"] == "fail"

    def test_live_server_healthz_reflects_serving_stats(self, tmp_path):
        system = make_benchmark("ckt1", "laptop")
        rom, _, _ = bdsm_reduce(system, 3)
        with ModelServer(metrics_port=0) as server:
            server.register("ckt1/bdsm", rom)
            # The queued front end is what records per-kind latency;
            # direct method calls bypass the stats recorder.
            server.serve([
                QueryRequest("transfer", "ckt1/bdsm",
                             {"s_values": np.array([1j * omega])})
                for omega in (1e6, 1e7, 1e8)])
            assert server.telemetry is not None
            status, body = _get(f"{server.telemetry.url}/healthz")
            assert status == 200
            payload = json.loads(body)
            assert payload["status"] == "ok"
            monitored = {c["monitor"] for c in payload["checks"]}
            assert "serve.p99_seconds" in monitored
            assert "serve.error_rate" in monitored
            status, body = _get(f"{server.telemetry.url}/metrics")
            assert status == 200
        # After close the sidecar is gone.
        assert server.telemetry is None


# --------------------------------------------------------------------- #
# Committed acceptance artifacts
# --------------------------------------------------------------------- #
class TestHealthOverheadArtifact:
    def test_committed_overhead_within_budget(self):
        from pathlib import Path
        root = Path(__file__).resolve().parents[1] / "benchmarks" \
            / "results"
        payload = json.loads((root / "health_overhead.json").read_text())
        assert payload["schema"] == 1
        assert payload["scales"], "no recorded scales"
        for scale, entry in payload["scales"].items():
            assert entry["overhead_budget"] <= 0.05
            assert entry["enabled_overhead_fraction"] \
                <= entry["overhead_budget"], scale
            assert entry["health_checks"] > 0
            assert entry["health_status"] in ("ok", "warn")
        report = json.loads((root / "health_report.json").read_text())
        assert report["workload"] == "health_overhead"
        assert report["report"]["status"] in ("ok", "warn")
        assert report["checks_by_monitor"]
