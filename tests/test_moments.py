"""Unit tests for repro.linalg.moments."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.linalg.moments import system_moments, transfer_moments


def _dense_moments_by_series(C, G, B, L, n_moments, s0):
    """Reference computation: Taylor coefficients via repeated solves."""
    A = np.linalg.solve(s0 * C - G, C)
    R = np.linalg.solve(s0 * C - G, B)
    moments = []
    current = R
    for _ in range(n_moments):
        moments.append(L @ current)
        current = -A @ current
    return moments


class TestSystemMoments:
    def test_matches_dense_reference(self, rng):
        n = 8
        Gm = np.diag(3.0 * np.ones(n)) + rng.normal(scale=0.1, size=(n, n))
        Gm = -(Gm + Gm.T) / 2
        C = np.diag(rng.uniform(0.5, 1.5, size=n))
        B = rng.normal(size=(n, 2))
        L = rng.normal(size=(3, n))
        got = system_moments(sp.csr_matrix(C), sp.csr_matrix(Gm),
                             sp.csr_matrix(B), sp.csr_matrix(L), 4, s0=0.0)
        want = _dense_moments_by_series(C, Gm, B, L, 4, s0=0.0)
        for g, w in zip(got, want):
            assert np.allclose(g, w)

    def test_nonzero_expansion_point(self, rng):
        n = 6
        Gm = -np.diag(np.arange(1.0, n + 1.0))
        C = np.eye(n)
        B = rng.normal(size=(n, 1))
        L = rng.normal(size=(1, n))
        s0 = 2.5
        got = system_moments(C, Gm, B, L, 3, s0=s0)
        want = _dense_moments_by_series(C, Gm, B, L, 3, s0=s0)
        for g, w in zip(got, want):
            assert np.allclose(g, w)

    def test_moments_reconstruct_taylor_series(self, rng):
        # For small (s - s0), H(s) ~= sum_k M_k (s - s0)^k.
        n = 5
        Gm = -(np.diag(2.0 * np.ones(n)) + 0.1 * np.eye(n, k=1)
               + 0.1 * np.eye(n, k=-1))
        C = np.diag(rng.uniform(0.5, 1.0, size=n))
        B = rng.normal(size=(n, 1))
        L = rng.normal(size=(1, n))
        s0, ds = 1.0, 1e-3
        moments = system_moments(C, Gm, B, L, 6, s0=s0)
        series = sum(M * ds ** k for k, M in enumerate(moments))
        exact = L @ np.linalg.solve((s0 + ds) * C - Gm, B)
        assert np.allclose(series, exact, rtol=1e-10)

    def test_requires_positive_count(self):
        with pytest.raises(ValueError):
            system_moments(np.eye(2), -np.eye(2), np.ones((2, 1)),
                           np.ones((1, 2)), 0)


class _PoisonedToarray(sp.csr_matrix):
    """CSR matrix whose densification is forbidden."""

    def toarray(self, *args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("toarray() must not be called on L")

    todense = toarray


class TestSparseOutputMatrix:
    def test_sparse_L_is_never_densified(self, rng):
        # Regression: system_moments used to call L.toarray() on every
        # invocation; the sparse output matrix must now flow through the
        # sparse matmul untouched.
        n = 6
        G = -(np.diag(2.0 * np.ones(n)) + 0.1 * np.eye(n, k=1)
              + 0.1 * np.eye(n, k=-1))
        C = np.diag(rng.uniform(0.5, 1.0, size=n))
        B = rng.normal(size=(n, 2))
        L = _PoisonedToarray(sp.csr_matrix(rng.normal(size=(2, n))))
        moments = system_moments(C, G, B, L, 3)
        assert len(moments) == 3
        assert all(isinstance(M, np.ndarray) and M.shape == (2, 2)
                   for M in moments)

    def test_sparse_and_dense_L_agree(self, rng):
        n = 5
        G = -np.diag(rng.uniform(1.0, 2.0, size=n))
        C = np.diag(rng.uniform(0.5, 1.0, size=n))
        B = rng.normal(size=(n, 1))
        L = rng.normal(size=(2, n))
        dense = system_moments(C, G, B, L, 4)
        sparse = system_moments(C, G, B, sp.csr_matrix(L), 4)
        for M_dense, M_sparse in zip(dense, sparse):
            assert np.allclose(M_dense, M_sparse)


class TestTransferMoments:
    def test_works_on_descriptor_like_objects(self, rc_ladder_system):
        moments = transfer_moments(rc_ladder_system, 3)
        assert len(moments) == 3
        assert moments[0].shape == (rc_ladder_system.n_outputs,
                                    rc_ladder_system.n_ports)

    def test_dc_moment_equals_transfer_at_zero(self, rc_ladder_system):
        moments = transfer_moments(rc_ladder_system, 1, s0=0.0)
        H0 = rc_ladder_system.transfer_function(0.0)
        assert np.allclose(moments[0], np.real(H0))
