"""Property-based tests (hypothesis) for BDSM invariants.

Each example builds a random small power grid, reduces it, and checks the
structural and accuracy invariants the paper's derivation rests on:

* ``H(s) = sum_i H_i(s)`` after input-matrix splitting;
* the ROM is block-diagonal with one block per port;
* the ROM matches the full model closely near the expansion point;
* the ROM never has more stored non-zeros than the paper's ``2 m l^2 + m l``.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import PowerGridSpec, assemble_mna, build_power_grid
from repro.core import bdsm_reduce
from repro.core.splitting import split_system
from repro.validation import count_matched_moments

SETTINGS = settings(max_examples=10, deadline=None)


@st.composite
def small_systems(draw):
    rows = draw(st.integers(min_value=3, max_value=6))
    cols = draw(st.integers(min_value=3, max_value=6))
    n_ports = draw(st.integers(min_value=2,
                               max_value=min(5, rows * cols)))
    seed = draw(st.integers(min_value=0, max_value=10 ** 5))
    package = draw(st.sampled_from([0.0, 1e-12]))
    spec = PowerGridSpec(rows=rows, cols=cols, n_ports=n_ports, n_pads=2,
                         package_inductance=package, seed=seed)
    return assemble_mna(build_power_grid(spec))


class TestSplittingProperties:
    @SETTINGS
    @given(small_systems(), st.floats(min_value=5.0, max_value=9.0))
    def test_transfer_sum_identity(self, system, log_omega):
        s = 1j * 10.0 ** log_omega
        H = system.transfer_function(s)
        total = np.zeros_like(H)
        for i in range(system.n_ports):
            total += split_system(system, i).transfer_function(s)
        assert np.allclose(total, H, rtol=1e-9, atol=1e-12)


class TestBdsmProperties:
    @SETTINGS
    @given(small_systems(), st.integers(min_value=1, max_value=4))
    def test_block_structure_and_size(self, system, l):
        rom, _, _ = bdsm_reduce(system, l)
        assert rom.n_blocks == system.n_ports
        assert rom.size <= system.n_ports * l
        assert rom.nnz <= 2 * system.n_ports * l * l + system.n_ports * l

    @SETTINGS
    @given(small_systems(), st.integers(min_value=2, max_value=4))
    def test_moment_matching_invariant(self, system, l):
        rom, _, _ = bdsm_reduce(system, l)
        assert count_matched_moments(system, rom, l, tolerance=1e-5) >= l

    @SETTINGS
    @given(small_systems(), st.integers(min_value=2, max_value=4))
    def test_dc_transfer_matrix_reproduced(self, system, l):
        rom, _, _ = bdsm_reduce(system, l)
        H0 = system.transfer_function(0.0)
        H0_rom = rom.transfer_function(0.0)
        assert np.allclose(H0_rom, H0, rtol=1e-6, atol=1e-12)

    @SETTINGS
    @given(small_systems())
    def test_congruence_preserves_symmetry_of_rc_blocks(self, system):
        rom, _, _ = bdsm_reduce(system, 3)
        from repro.linalg.sparse_utils import is_symmetric
        if is_symmetric(system.C) and is_symmetric(system.G):
            for block in rom.blocks:
                assert np.allclose(block.C, block.C.T, atol=1e-9)
                assert np.allclose(block.G, block.G.T, atol=1e-9)
