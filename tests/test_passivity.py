"""Unit tests for repro.passivity (state space, Hamiltonian, Laguerre,
enforcement)."""

import numpy as np
import pytest

from repro.core import bdsm_reduce
from repro.exceptions import PassivityError
from repro.passivity import (
    StateSpaceModel,
    descriptor_to_state_space,
    diagonalize_state_space,
    enforce_passivity,
    hamiltonian_passivity_test,
    laguerre_passivity_scan,
    rom_block_to_state_space,
)
from repro.passivity.laguerre import laguerre_frequency_grid


def _passive_rc_model():
    """1-port RC driving-point admittance-like model (passive)."""
    A = np.array([[-1.0]])
    B = np.array([[1.0]])
    C = np.array([[1.0]])
    D = np.array([[0.5]])
    return StateSpaceModel(A=A, B=B, C=C, D=D)


def _nonpassive_model():
    """A model whose Hermitian part goes negative at low frequency."""
    A = np.array([[-1.0]])
    B = np.array([[1.0]])
    C = np.array([[-2.0]])
    D = np.array([[0.5]])
    return StateSpaceModel(A=A, B=B, C=C, D=D)


class TestStateSpaceModel:
    def test_dimensions_and_validation(self):
        model = _passive_rc_model()
        assert model.order == 1
        assert model.n_inputs == model.n_outputs == 1
        with pytest.raises(PassivityError):
            StateSpaceModel(A=np.ones((2, 3)), B=np.ones((2, 1)),
                            C=np.ones((1, 2)))

    def test_transfer_function(self):
        model = _passive_rc_model()
        s = 1j * 2.0
        expected = 1.0 / (s + 1.0) + 0.5
        assert model.transfer_function(s)[0, 0] == pytest.approx(expected)

    def test_stability_check(self):
        assert _passive_rc_model().is_stable()
        unstable = StateSpaceModel(A=[[1.0]], B=[[1.0]], C=[[1.0]])
        assert not unstable.is_stable()


class TestDescriptorConversion:
    def test_conversion_preserves_transfer_function(self, rc_grid_system):
        rom, _, _ = bdsm_reduce(rc_grid_system, 3)
        block = rom.blocks[0]
        model = rom_block_to_state_space(block)
        s = 1j * 1e8
        assert np.allclose(model.transfer_function(s).reshape(-1),
                           block.transfer_column(s))

    def test_singular_c_rejected(self):
        with pytest.raises(PassivityError):
            descriptor_to_state_space(np.zeros((2, 2)), -np.eye(2),
                                      np.ones((2, 1)), np.ones((1, 2)))

    def test_diagonalization_preserves_transfer_function(self, rc_grid_system):
        rom, _, _ = bdsm_reduce(rc_grid_system, 3)
        model = rom_block_to_state_space(rom.blocks[1])
        diag = diagonalize_state_space(model)
        assert np.allclose(np.diag(np.diag(diag.A)), diag.A)
        s = 1j * 1e7
        assert np.allclose(diag.transfer_function(s),
                           model.transfer_function(s))


class TestHamiltonianTest:
    def test_passive_model_passes(self):
        report = hamiltonian_passivity_test(_passive_rc_model())
        assert report.is_passive
        assert report.worst_eigenvalue >= -1e-10

    def test_nonpassive_model_detected(self):
        report = hamiltonian_passivity_test(_nonpassive_model())
        assert not report.is_passive
        assert report.worst_eigenvalue < 0.0

    def test_non_square_rejected(self):
        model = StateSpaceModel(A=[[-1.0]], B=[[1.0]], C=[[1.0], [2.0]])
        with pytest.raises(PassivityError):
            hamiltonian_passivity_test(model)

    def test_zero_feedthrough_regularised(self):
        model = StateSpaceModel(A=[[-1.0]], B=[[1.0]], C=[[1.0]])
        report = hamiltonian_passivity_test(model)
        assert "regularised" in report.notes
        assert report.is_passive


class TestLaguerreScan:
    def test_grid_is_positive_and_sorted(self):
        grid = laguerre_frequency_grid(10, time_scale=1e-9)
        assert np.all(grid > 0.0)
        assert np.all(np.diff(grid) > 0.0)

    def test_invalid_grid_arguments(self):
        with pytest.raises(PassivityError):
            laguerre_frequency_grid(0)
        with pytest.raises(PassivityError):
            laguerre_frequency_grid(5, time_scale=0.0)

    def test_power_grid_rom_nearly_passive(self, rc_grid_system):
        # Driving-point (port-to-port) RC grid impedance reduced by BDSM.
        # Our sign convention makes H = -Z, so flip the output sign before
        # scanning.  The paper notes BDSM ROMs "may be (weakly) non-passive"
        # but that violations are rare and small; assert exactly that: any
        # violation is tiny relative to the impedance scale.
        rom, _, _ = bdsm_reduce(rc_grid_system, 3)
        for block in rom.blocks:
            block.L = -block.L
        report = laguerre_passivity_scan(rom, n_points=16)
        scale = float(np.max(np.abs(np.diag(rom.transfer_function(0.0)))))
        assert report.worst_eigenvalue > -1e-3 * scale
        assert len(report.sampled_frequencies) == 16

    def test_non_square_rom_rejected(self, rc_grid_system):
        rom, _, _ = bdsm_reduce(rc_grid_system, 2)
        rom.n_outputs_ = rom.n_ports + 1  # force inconsistency
        with pytest.raises(PassivityError):
            laguerre_passivity_scan(rom)


class TestEnforcement:
    def test_passive_model_untouched(self):
        model = _passive_rc_model()
        report = hamiltonian_passivity_test(model)
        result = enforce_passivity(model, report)
        assert result.was_passive
        assert result.perturbation == 0.0
        assert result.model is model

    def test_nonpassive_model_repaired(self):
        model = _nonpassive_model()
        report = hamiltonian_passivity_test(model)
        result = enforce_passivity(model, report)
        assert not result.was_passive
        assert result.perturbation > 0.0
        repaired_report = hamiltonian_passivity_test(result.model)
        assert repaired_report.is_passive

    def test_non_square_rejected(self):
        model = StateSpaceModel(A=[[-1.0]], B=[[1.0]], C=[[1.0], [2.0]])
        report = hamiltonian_passivity_test(_passive_rc_model())
        with pytest.raises(PassivityError):
            enforce_passivity(model, report)
