"""Additional edge-case coverage across modules.

These tests target code paths the main per-module suites do not reach:
fallback branches, unusual but legal inputs, and defensive errors.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.analysis import FrequencyAnalysis
from repro.analysis.sources import ConstantSource, SourceBank, Waveform
from repro.analysis.transient import TransientAnalysis
from repro.circuit import Netlist, assemble_mna
from repro.core import bdsm_reduce
from repro.core.cost_model import compare_costs
from repro.linalg.moments import system_moments
from repro.linalg.sparse_utils import as_dense, frobenius_norm
from repro.mor.base import ReducedSystem


class TestFrequencyAnalysisFallback:
    def test_generic_evaluation_without_transfer_function(self,
                                                          rc_ladder_system):
        """Systems exposing only raw matrices are swept via the fallback."""

        class BareSystem:
            C = rc_ladder_system.C
            G = rc_ladder_system.G
            B = rc_ladder_system.B
            L = rc_ladder_system.L

        fa = FrequencyAnalysis(omega_min=1e4, omega_max=1e7, n_points=3)
        bare = fa.sweep(BareSystem())
        reference = fa.sweep(rc_ladder_system)
        assert np.allclose(bare.values, reference.values)


class TestTransientWithVddSources:
    def test_const_input_drives_outputs(self):
        # A grid held up by an ideal VDD source settles to VDD at the
        # observed node even with zero port current.
        net = Netlist(title="vdd-transient")
        net.add_voltage_source("V1", "a", "0", 1.0)
        net.add_resistor("R1", "a", "b", 1.0)
        net.add_capacitor("C1", "b", "0", 1e-9)
        net.add_current_source("I1", "b", "0", 0.0)
        system = assemble_mna(net)
        assert system.const_input is not None
        for method in ("backward_euler", "trapezoidal"):
            ta = TransientAnalysis(t_stop=2e-8, dt=1e-10, method=method)
            result = ta.run(system, SourceBank(1))
            assert result.output(0)[-1] == pytest.approx(1.0, rel=1e-3)


class TestWaveformBase:
    def test_abstract_call_raises(self):
        with pytest.raises(NotImplementedError):
            Waveform()(0.0)

    def test_custom_waveform_works_in_bank(self):
        class Ramp(Waveform):
            def __call__(self, t: float) -> float:
                return 2.0 * t

        bank = SourceBank.uniform(2, Ramp())
        assert np.allclose(bank(0.5), 1.0)


class TestSparseUtilsEdges:
    def test_as_dense_and_norm_on_sparse(self):
        m = sp.random(6, 6, density=0.3, random_state=0, format="csr")
        assert np.allclose(as_dense(m), m.toarray())
        assert frobenius_norm(m) == pytest.approx(np.linalg.norm(m.toarray()))


class TestMomentsAtComplexPoint:
    def test_complex_expansion_point(self, rc_ladder_system):
        s0 = 1j * 1e6
        moments = system_moments(rc_ladder_system.C, rc_ladder_system.G,
                                 rc_ladder_system.B, rc_ladder_system.L,
                                 2, s0=s0)
        # the zeroth moment equals H(s0)
        H = rc_ladder_system.transfer_function(s0)
        assert np.allclose(moments[0], H, rtol=1e-10)


class TestReducedSystemConstInput:
    def test_rom_with_const_input_simulates(self, rc_ladder_system):
        rom = ReducedSystem(
            C=np.eye(2), G=-np.eye(2), B=np.ones((2, 1)),
            L=np.ones((1, 2)), const_input=np.array([0.5, 0.0]))
        ta = TransientAnalysis(t_stop=10.0, dt=0.1)
        result = ta.run(rom, SourceBank(1))
        # steady state: -G x = const -> x = [0.5, 0]; y = 0.5
        assert result.output(0)[-1] == pytest.approx(0.5, rel=1e-2)


class TestCostModelRepresentation:
    def test_rows_are_json_friendly(self):
        row = compare_costs(25, 5).as_row()
        for value in row.values():
            assert isinstance(value, (int, float))


class TestBdsmOnSingleInputSystem:
    def test_single_port_grid(self, rc_ladder_system):
        # matching as many moments as the ladder has states makes the ROM an
        # exact realisation of the 1-port transfer function
        rom, _stats, _ = bdsm_reduce(rc_ladder_system, 3)
        assert rom.n_blocks == 1
        assert rom.size == 3
        s = 1j * 1e5
        assert np.allclose(rom.transfer_function(s),
                           rc_ladder_system.transfer_function(s), rtol=1e-8)
