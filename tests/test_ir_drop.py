"""Unit tests for repro.analysis.ir_drop."""

import math

import numpy as np
import pytest

from repro.analysis import IRDropResult, ir_drop_analysis
from repro.analysis.ir_drop import dynamic_ir_drop
from repro.analysis.sources import SourceBank, StepSource
from repro.circuit import Netlist, assemble_mna
from repro.core import bdsm_reduce
from repro.exceptions import SimulationError


class TestStaticIrDrop:
    def test_simple_resistive_drop(self):
        # 1 mA through 10 ohm to ground -> 10 mV drop at the node.
        net = Netlist(title="drop")
        net.add_resistor("R1", "a", "0", 10.0)
        net.add_capacitor("C1", "a", "0", 1e-12)
        net.add_current_source("I1", "a", "0", 1e-3)
        system = assemble_mna(net)
        result = ir_drop_analysis(system, np.array([1e-3]))
        assert result.drops[0] == pytest.approx(0.01)
        node, worst = result.worst()
        assert node == "v(a)"
        assert worst == pytest.approx(0.01)

    def test_drop_scales_linearly_with_current(self, rc_grid_system):
        m = rc_grid_system.n_ports
        small = ir_drop_analysis(rc_grid_system, np.full(m, 1e-3))
        large = ir_drop_analysis(rc_grid_system, np.full(m, 2e-3))
        assert np.allclose(large.drops, 2.0 * small.drops, rtol=1e-9)

    def test_rom_matches_full_model(self, rc_grid_system):
        m = rc_grid_system.n_ports
        loads = np.linspace(1e-3, 2e-3, m)
        rom, _, _ = bdsm_reduce(rc_grid_system, 3)
        full = ir_drop_analysis(rc_grid_system, loads)
        reduced = ir_drop_analysis(rom, loads)
        assert np.allclose(full.drops, reduced.drops, rtol=1e-6)

    def test_wrong_load_vector_length(self, rc_grid_system):
        with pytest.raises(SimulationError):
            ir_drop_analysis(rc_grid_system, np.ones(3))

    def test_table_rows(self, rc_grid_system):
        m = rc_grid_system.n_ports
        result = ir_drop_analysis(rc_grid_system, np.full(m, 1e-3))
        rows = result.as_table()
        assert len(rows) == rc_grid_system.n_outputs
        assert {"node", "drop_volts", "drop_percent"} <= set(rows[0])


class TestIrDropResultEdgeCases:
    def test_worst_with_empty_node_names(self):
        result = IRDropResult(node_names=[],
                              voltages=np.array([-0.1, -0.3, -0.2]))
        name, drop = result.worst()
        assert name == "output1"
        assert drop == pytest.approx(0.3)

    def test_as_table_with_empty_node_names(self):
        result = IRDropResult(node_names=[],
                              voltages=np.array([-0.05, 0.02]))
        rows = result.as_table()
        assert [row["node"] for row in rows] == ["output0", "output1"]
        assert rows[1]["drop_volts"] == 0.0  # positive deviation: no sag

    def test_as_table_with_zero_reference_voltage(self):
        result = IRDropResult(node_names=["a"],
                              voltages=np.array([-0.1]),
                              reference_voltage=0.0)
        rows = result.as_table()
        assert rows[0]["drop_volts"] == pytest.approx(0.1)
        assert math.isnan(rows[0]["drop_percent"])

    def test_worst_on_all_positive_voltages_reports_zero_drop(self):
        result = IRDropResult(node_names=["a", "b"],
                              voltages=np.array([0.2, 0.1]))
        name, drop = result.worst()
        assert drop == 0.0
        assert name in ("a", "b")


class TestDynamicIrDrop:
    def test_worst_case_dynamic_drop(self, rc_grid_system):
        m = rc_grid_system.n_ports
        bank = SourceBank.uniform(m, StepSource(1e-3, t0=1e-10))
        result = dynamic_ir_drop(rc_grid_system, bank,
                                 t_stop=2e-9, dt=1e-10)
        assert np.all(result.drops >= 0.0)
        assert result.worst()[1] > 0.0

    def test_dynamic_drop_bounded_by_settled_static(self, rc_grid_system):
        # After the step settles the dynamic worst case approaches the static
        # IR drop; it can never exceed it for a monotone RC response.
        m = rc_grid_system.n_ports
        static = ir_drop_analysis(rc_grid_system, np.full(m, 1e-3))
        bank = SourceBank.uniform(m, StepSource(1e-3, t0=0.0))
        dynamic = dynamic_ir_drop(rc_grid_system, bank,
                                  t_stop=5e-9, dt=5e-11)
        assert np.all(dynamic.drops <= static.drops * 1.01 + 1e-12)
        assert np.max(dynamic.drops) > 0.5 * np.max(static.drops)
