"""Unit tests for repro.mor.rational (multipoint PRIMA)."""

import numpy as np
import pytest

from repro.exceptions import ReductionError
from repro.mor import multipoint_prima_reduce, prima_reduce
from repro.validation import count_matched_moments, max_relative_error


class TestMultipointPrima:
    def test_single_point_equivalent_to_prima(self, rc_grid_system):
        omegas = np.logspace(5, 9, 5)
        mp_rom, _, _ = multipoint_prima_reduce(rc_grid_system, 3, [0.0])
        prima_rom, _, _ = prima_reduce(rc_grid_system, 3)
        err_mp = max_relative_error(rc_grid_system, mp_rom, omegas)
        err_prima = max_relative_error(rc_grid_system, prima_rom, omegas)
        assert err_mp < 1e-6
        assert err_prima < 1e-6

    def test_matches_moments_at_each_point(self, rc_grid_system):
        points = [0.0, 1e9]
        rom, _, _ = multipoint_prima_reduce(rc_grid_system, 2, points)
        for point in points:
            assert count_matched_moments(rc_grid_system, rom, 2,
                                         s0=point) >= 2

    def test_complex_points_give_real_rom(self, rc_grid_system):
        rom, _, _ = multipoint_prima_reduce(rc_grid_system, 2,
                                            [0.0, 1j * 1e8])
        assert np.isrealobj(rom.C)
        assert np.isrealobj(rom.G)

    def test_wideband_accuracy_improves(self, rc_grid_system):
        # Adding a high-frequency expansion point must not hurt, and should
        # improve the worst-case error high in the band.
        omegas = np.logspace(8, 11, 6)
        single, _, _ = multipoint_prima_reduce(rc_grid_system, 2, [0.0])
        double, _, _ = multipoint_prima_reduce(rc_grid_system, 2,
                                               [0.0, 1j * 1e10])
        err_single = max_relative_error(rc_grid_system, single, omegas)
        err_double = max_relative_error(rc_grid_system, double, omegas)
        # "not worse", with a floor because both can sit at machine precision
        assert err_double <= max(err_single * 1.5, 1e-10)

    def test_rom_size_bounded_by_points_times_ml(self, rc_grid_system):
        rom, _, _ = multipoint_prima_reduce(rc_grid_system, 2, [0.0, 1e9])
        assert rom.size <= 2 * 2 * rc_grid_system.n_ports

    def test_expansion_points_recorded(self, rc_grid_system):
        points = [0.0, 1e8]
        rom, _, _ = multipoint_prima_reduce(rc_grid_system, 2, points)
        assert rom.expansion_points == points

    def test_invalid_arguments(self, rc_grid_system):
        with pytest.raises(ReductionError):
            multipoint_prima_reduce(rc_grid_system, 2, [])
        with pytest.raises(ReductionError):
            multipoint_prima_reduce(rc_grid_system, 0, [0.0])
