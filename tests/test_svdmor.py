"""Unit tests for repro.mor.svdmor."""

import numpy as np
import pytest

from repro.exceptions import ReductionError, ResourceBudgetExceeded
from repro.mor import ResourceBudget, prima_reduce, svdmor_reduce
from repro.mor.svdmor import terminal_compression_basis
from repro.validation import count_matched_moments, max_relative_error


class TestTerminalCompression:
    def test_basis_shapes_and_orthonormality(self, rc_grid_system):
        U_l, U_r = terminal_compression_basis(rc_grid_system, alpha=0.5)
        p, m = rc_grid_system.n_outputs, rc_grid_system.n_ports
        assert U_l.shape == (p, max(1, round(0.5 * p)))
        assert U_r.shape == (m, max(1, round(0.5 * m)))
        assert np.allclose(U_l.T @ U_l, np.eye(U_l.shape[1]), atol=1e-10)
        assert np.allclose(U_r.T @ U_r, np.eye(U_r.shape[1]), atol=1e-10)

    def test_alpha_one_keeps_all_terminals(self, rc_grid_system):
        U_l, U_r = terminal_compression_basis(rc_grid_system, alpha=1.0)
        assert U_r.shape[1] == rc_grid_system.n_ports

    def test_invalid_alpha(self, rc_grid_system):
        with pytest.raises(ReductionError):
            terminal_compression_basis(rc_grid_system, alpha=0.0)
        with pytest.raises(ReductionError):
            terminal_compression_basis(rc_grid_system, alpha=1.5)


class TestSvdmorReduce:
    def test_rom_size_is_alpha_m_l(self, rc_grid_system):
        alpha, l = 0.6, 3
        rom, _, _ = svdmor_reduce(rc_grid_system, l, alpha=alpha)
        mhat = max(1, round(alpha * rc_grid_system.n_ports))
        assert rom.size == mhat * l

    def test_terminal_space_restored(self, rc_grid_system):
        rom, _, _ = svdmor_reduce(rc_grid_system, 3, alpha=0.6)
        H = rom.transfer_function(1j * 1e8)
        assert H.shape == (rc_grid_system.n_outputs,
                           rc_grid_system.n_ports)

    def test_less_accurate_than_prima(self, rc_grid_system):
        # Terminal reduction is error-prone (the paper's Fig. 5b): with a
        # compression ratio < 1 the error is orders above PRIMA's.
        omegas = np.logspace(5, 9, 5)
        prima_rom, _, _ = prima_reduce(rc_grid_system, 3)
        svd_rom, _, _ = svdmor_reduce(rc_grid_system, 3, alpha=0.5)
        err_prima = max_relative_error(rc_grid_system, prima_rom, omegas)
        err_svd = max_relative_error(rc_grid_system, svd_rom, omegas)
        assert err_svd > 10 * err_prima

    def test_does_not_match_true_moments(self, rc_grid_system):
        rom, _, _ = svdmor_reduce(rc_grid_system, 3, alpha=0.5)
        assert count_matched_moments(rc_grid_system, rom, 3) == 0

    def test_alpha_one_recovers_prima_accuracy(self, rc_grid_system):
        omegas = np.logspace(5, 9, 5)
        rom, _, _ = svdmor_reduce(rc_grid_system, 3, alpha=1.0)
        assert max_relative_error(rc_grid_system, rom, omegas) < 1e-6

    def test_budget_guard(self, rc_grid_system):
        budget = ResourceBudget(max_dense_bytes=512)
        with pytest.raises(ResourceBudgetExceeded):
            svdmor_reduce(rc_grid_system, 3, budget=budget)

    def test_invalid_moments(self, rc_grid_system):
        with pytest.raises(ReductionError):
            svdmor_reduce(rc_grid_system, 0)

    def test_records_terminal_bases(self, rc_grid_system):
        rom, _, _ = svdmor_reduce(rc_grid_system, 2, alpha=0.6)
        U_l, U_r = rom.terminal_bases
        assert U_l.shape[0] == rc_grid_system.n_outputs
        assert U_r.shape[0] == rc_grid_system.n_ports
