"""Tests of the top-level package surface (exports, exceptions, metadata)."""

import importlib
import inspect

import pytest

import repro
from repro import exceptions


class TestPackageSurface:
    def test_version_is_defined(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ lists missing name {name}"

    def test_all_is_sorted_and_unique(self):
        assert list(repro.__all__) == sorted(set(repro.__all__))

    @pytest.mark.parametrize("module", [
        "repro.circuit", "repro.core", "repro.mor", "repro.analysis",
        "repro.linalg", "repro.passivity", "repro.validation", "repro.io",
        "repro.cli", "repro.perf", "repro.perf.workloads",
    ])
    def test_subpackages_import_cleanly(self, module):
        assert importlib.import_module(module) is not None

    def test_public_callables_have_docstrings(self):
        undocumented = [
            name for name in repro.__all__
            if callable(getattr(repro, name))
            and not inspect.getdoc(getattr(repro, name))
        ]
        assert undocumented == []


class TestExceptionHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(exceptions):
            obj = getattr(exceptions, name)
            if (inspect.isclass(obj) and issubclass(obj, Exception)
                    and obj is not exceptions.ReproError):
                if obj.__module__ == "repro.exceptions":
                    assert issubclass(obj, exceptions.ReproError), name

    def test_netlist_parse_error_formats_location(self):
        err = exceptions.NetlistParseError("bad token", line_number=7,
                                           line="R1 a b oops")
        assert "line 7" in str(err)
        assert "R1 a b oops" in str(err)

    def test_budget_error_carries_sizes(self):
        err = exceptions.ResourceBudgetExceeded("too big",
                                                required_bytes=100,
                                                budget_bytes=10)
        assert err.required_bytes == 100
        assert err.budget_bytes == 10

    def test_catching_base_class_catches_all(self):
        with pytest.raises(exceptions.ReproError):
            raise exceptions.SingularSystemError("singular")
        with pytest.raises(exceptions.ReproError):
            raise exceptions.NetlistParseError("parse")
