"""Unit tests for repro.mor.base (ReducedSystem, ResourceBudget, summaries)."""

import numpy as np
import pytest

from repro.exceptions import ReductionError, ResourceBudgetExceeded
from repro.mor.base import ReducedSystem, ReductionSummary, ResourceBudget


def _tiny_rom():
    C = np.diag([1.0, 2.0])
    G = -np.diag([1.0, 1.0])
    B = np.array([[1.0], [0.0]])
    L = np.array([[1.0, 1.0]])
    return ReducedSystem(C=C, G=G, B=B, L=L, method="TEST", n_moments=2,
                         original_size=100, original_ports=1, name="tiny")


class TestResourceBudget:
    def test_unlimited_never_raises(self):
        ResourceBudget.unlimited().check_dense(10 ** 6, 10 ** 6, what="huge")

    def test_exceeding_budget_raises(self):
        budget = ResourceBudget(max_dense_bytes=1000, label="tiny budget")
        with pytest.raises(ResourceBudgetExceeded) as err:
            budget.check_dense(100, 100, what="basis")
        assert err.value.required_bytes == 100 * 100 * 8
        assert err.value.budget_bytes == 1000

    def test_within_budget_passes(self):
        ResourceBudget(max_dense_bytes=10 ** 6).check_dense(10, 10,
                                                            what="basis")

    def test_table_ii_preset(self):
        budget = ResourceBudget.table_ii()
        assert budget.max_dense_bytes == ResourceBudget.TABLE_II_DEFAULT_BYTES


class TestReducedSystem:
    def test_dimensions(self):
        rom = _tiny_rom()
        assert rom.size == 2
        assert rom.n_ports == 1
        assert rom.n_outputs == 1
        assert rom.nnz == 2 + 2 + 1

    def test_transfer_function_matches_manual(self):
        rom = _tiny_rom()
        s = 1j * 3.0
        pencil = s * rom.C - rom.G
        expected = rom.L @ np.linalg.solve(pencil, rom.B.astype(complex))
        assert np.allclose(rom.transfer_function(s), expected)
        assert rom.transfer_entry(s, 0, 0) == pytest.approx(expected[0, 0])

    def test_density(self):
        rom = _tiny_rom()
        density = rom.density()
        assert density["C"] == pytest.approx(0.5)
        assert density["B"] == pytest.approx(0.5)

    def test_reconstruct_state_requires_projection(self):
        rom = _tiny_rom()
        with pytest.raises(ReductionError):
            rom.reconstruct_state(np.ones(2))

    def test_reconstruct_state_with_projection(self):
        rom = _tiny_rom()
        rom.projection = np.vstack([np.eye(2), np.zeros((3, 2))])
        lifted = rom.reconstruct_state(np.array([1.0, 2.0]))
        assert lifted.shape == (5,)
        assert np.allclose(lifted[:2], [1.0, 2.0])

    def test_inconsistent_shapes_rejected(self):
        with pytest.raises(ReductionError):
            ReducedSystem(C=np.eye(2), G=np.eye(3), B=np.ones((2, 1)),
                          L=np.ones((1, 2)))
        with pytest.raises(ReductionError):
            ReducedSystem(C=np.eye(2), G=np.eye(2), B=np.ones((3, 1)),
                          L=np.ones((1, 2)))

    def test_summary_row(self):
        rom = _tiny_rom()
        summary = rom.summary(mor_seconds=1.25)
        row = summary.as_row()
        assert row["method"] == "TEST"
        assert row["ROM size"] == 2
        assert row["MOR time (s)"] == 1.25
        assert row["status"] == "ok"
        assert row["reusable"] == "yes"


class TestReductionSummary:
    def test_break_down_record(self):
        summary = ReductionSummary.break_down(
            "PRIMA", "ckt4", original_size=123_000, original_ports=315,
            reason="dense basis exceeds budget")
        row = summary.as_row()
        assert row["status"] == "break down"
        assert row["ROM size"] is None
        assert row["MOR time (s)"] is None
