"""Unit tests for repro.mor.base (ReducedSystem, ResourceBudget, summaries)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import ReductionError, ResourceBudgetExceeded
from repro.mor.base import ReducedSystem, ReductionSummary, ResourceBudget


def _tiny_rom():
    C = np.diag([1.0, 2.0])
    G = -np.diag([1.0, 1.0])
    B = np.array([[1.0], [0.0]])
    L = np.array([[1.0, 1.0]])
    return ReducedSystem(C=C, G=G, B=B, L=L, method="TEST", n_moments=2,
                         original_size=100, original_ports=1, name="tiny")


class TestResourceBudget:
    def test_unlimited_never_raises(self):
        ResourceBudget.unlimited().check_dense(10 ** 6, 10 ** 6, what="huge")

    def test_exceeding_budget_raises(self):
        budget = ResourceBudget(max_dense_bytes=1000, label="tiny budget")
        with pytest.raises(ResourceBudgetExceeded) as err:
            budget.check_dense(100, 100, what="basis")
        assert err.value.required_bytes == 100 * 100 * 8
        assert err.value.budget_bytes == 1000

    def test_within_budget_passes(self):
        ResourceBudget(max_dense_bytes=10 ** 6).check_dense(10, 10,
                                                            what="basis")

    def test_table_ii_preset(self):
        budget = ResourceBudget.table_ii()
        assert budget.max_dense_bytes == ResourceBudget.TABLE_II_DEFAULT_BYTES


class TestReducedSystem:
    def test_dimensions(self):
        rom = _tiny_rom()
        assert rom.size == 2
        assert rom.n_ports == 1
        assert rom.n_outputs == 1
        assert rom.nnz == 2 + 2 + 1

    def test_transfer_function_matches_manual(self):
        rom = _tiny_rom()
        s = 1j * 3.0
        pencil = s * rom.C - rom.G
        expected = rom.L @ np.linalg.solve(pencil, rom.B.astype(complex))
        assert np.allclose(rom.transfer_function(s), expected)
        assert rom.transfer_entry(s, 0, 0) == pytest.approx(expected[0, 0])

    def test_density(self):
        rom = _tiny_rom()
        density = rom.density()
        assert density["C"] == pytest.approx(0.5)
        assert density["B"] == pytest.approx(0.5)

    def test_reconstruct_state_requires_projection(self):
        rom = _tiny_rom()
        with pytest.raises(ReductionError):
            rom.reconstruct_state(np.ones(2))

    def test_reconstruct_state_with_projection(self):
        rom = _tiny_rom()
        rom.projection = np.vstack([np.eye(2), np.zeros((3, 2))])
        lifted = rom.reconstruct_state(np.array([1.0, 2.0]))
        assert lifted.shape == (5,)
        assert np.allclose(lifted[:2], [1.0, 2.0])

    def test_inconsistent_shapes_rejected(self):
        with pytest.raises(ReductionError):
            ReducedSystem(C=np.eye(2), G=np.eye(3), B=np.ones((2, 1)),
                          L=np.ones((1, 2)))
        with pytest.raises(ReductionError):
            ReducedSystem(C=np.eye(2), G=np.eye(2), B=np.ones((3, 1)),
                          L=np.ones((1, 2)))

    def test_summary_row(self):
        rom = _tiny_rom()
        summary = rom.summary(mor_seconds=1.25)
        row = summary.as_row()
        assert row["method"] == "TEST"
        assert row["ROM size"] == 2
        assert row["MOR time (s)"] == 1.25
        assert row["status"] == "ok"
        assert row["reusable"] == "yes"


class TestComplexReducedSystem:
    """Regression: the ndarray branch of ``_dense`` used to coerce to
    ``dtype=float``, silently dropping imaginary parts while the sparse
    branch preserved them."""

    def _complex_rom(self):
        C = np.diag([1.0 + 0.5j, 2.0 - 0.25j])
        G = -np.eye(2) + 0.125j * np.eye(2)
        B = np.array([[1.0 + 1.0j], [0.0]])
        L = np.array([[1.0, 1.0 - 2.0j]])
        return ReducedSystem(C=C, G=G, B=B, L=L, method="TEST",
                             n_moments=1, name="complex-tiny")

    def test_complex_pencil_round_trips_without_dropping_imag(self):
        rom = self._complex_rom()
        assert np.iscomplexobj(rom.C) and rom.C[0, 0] == 1.0 + 0.5j
        assert np.iscomplexobj(rom.G) and rom.G[1, 1] == -1.0 + 0.125j
        assert np.iscomplexobj(rom.B) and rom.B[0, 0] == 1.0 + 1.0j
        assert np.iscomplexobj(rom.L) and rom.L[0, 1] == 1.0 - 2.0j

    def test_dense_branch_matches_sparse_branch_dtype(self):
        C = np.diag([1.0 + 0.5j, 2.0 - 0.25j])
        dense = ReducedSystem._dense(C)
        sparse = ReducedSystem._dense(sp.csr_matrix(C))
        assert dense.dtype == sparse.dtype
        assert np.array_equal(dense, sparse)

    def test_real_and_int_inputs_still_become_float(self):
        assert ReducedSystem._dense(np.eye(2, dtype=int)).dtype == float
        assert ReducedSystem._dense(np.eye(2)).dtype == float

    def test_complex_transfer_function_evaluates(self):
        rom = self._complex_rom()
        s = 1j * 2.0
        expected = rom.L @ np.linalg.solve(s * rom.C - rom.G, rom.B)
        assert np.allclose(rom.transfer_function(s), expected)

    def test_b_complex_cache_reused_across_evaluations(self):
        rom = _tiny_rom()
        first = rom.B_complex
        rom.transfer_function(1j)
        rom.transfer_entry(2j, 0, 0)
        assert rom.B_complex is first
        assert first.dtype == complex


class TestReductionSummary:
    def test_break_down_record(self):
        summary = ReductionSummary.break_down(
            "PRIMA", "ckt4", original_size=123_000, original_ports=315,
            reason="dense basis exceeds budget")
        row = summary.as_row()
        assert row["status"] == "break down"
        assert row["ROM size"] is None
        assert row["MOR time (s)"] is None
