"""Tests for the unified observability layer (repro.obs).

Covers the span tracer (nesting/parent attribution, exception safety, the
disabled no-op path, bounded buffers), explicit context propagation across
``SweepEngine`` thread *and* process workers (with bit-identity of the
traced numerics), process-worker telemetry merging back into the parent
registries, the shared Reservoir/percentile core that both
``repro.perf.timers`` and ``repro.serve.stats`` build on, the three
exporters (Chrome trace-event JSON, Prometheus text exposition, span-tree
report), the serve-stack span topology of a coalesced batch, and the
committed ``obs_overhead`` acceptance JSON.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro import (
    FrequencyAnalysis,
    ModelServer,
    ModelStore,
    QueryRequest,
    SweepEngine,
    bdsm_reduce,
    make_benchmark,
)
from repro.obs import (
    MetricsRegistry,
    Reservoir,
    Span,
    Tracer,
    capture_context,
    default_metrics,
    disable_tracing,
    drain_spans,
    enable_tracing,
    percentile,
    span_tree_report,
    to_chrome_trace,
    to_prometheus,
    trace_span,
    traced,
    tracing_enabled,
)
from repro.obs.tracing import _NOOP_SPAN, attach_context
from repro.perf.timers import PerfRegistry, TimerStat, default_registry
from repro.serve.stats import KindStats


@pytest.fixture()
def tracing():
    """Enable tracing for one test, leaving the process clean after."""
    drain_spans()
    enable_tracing()
    yield
    drain_spans()
    disable_tracing()


def _by_name(spans, name):
    return [s for s in spans if s.name == name]


# --------------------------------------------------------------------- #
# Span lifecycle
# --------------------------------------------------------------------- #
class TestSpans:
    def test_nested_spans_share_trace_and_chain_parents(self, tracing):
        with trace_span("outer") as outer:
            with trace_span("middle") as middle:
                with trace_span("inner", depth=2) as inner:
                    pass
        spans = drain_spans()
        assert [s.name for s in spans] == ["inner", "middle", "outer"]
        assert inner.parent_id == middle.span_id
        assert middle.parent_id == outer.span_id
        assert outer.parent_id is None
        assert len({s.trace_id for s in spans}) == 1
        assert inner.tags == {"depth": 2}
        assert all(s.duration >= 0.0 for s in spans)

    def test_siblings_share_parent(self, tracing):
        with trace_span("parent") as parent:
            with trace_span("a"):
                pass
            with trace_span("b"):
                pass
        spans = {s.name: s for s in drain_spans()}
        assert spans["a"].parent_id == parent.span_id
        assert spans["b"].parent_id == parent.span_id

    def test_exception_closes_and_flags_span(self, tracing):
        with pytest.raises(ValueError, match="boom"):
            with trace_span("outer"):
                with trace_span("failing"):
                    raise ValueError("boom")
        spans = {s.name: s for s in drain_spans()}
        assert spans["failing"].status == "error"
        assert "boom" in spans["failing"].error
        # The exception propagated through the parent, flagging it too,
        # and both spans still closed with the context unwound.
        assert spans["outer"].status == "error"
        assert spans["outer"].duration >= spans["failing"].duration
        with trace_span("after") as after:
            pass
        assert after.parent_id is None

    def test_disabled_path_is_shared_noop(self):
        disable_tracing()
        assert not tracing_enabled()
        span = trace_span("ignored", tag=1)
        assert span is _NOOP_SPAN
        with span as s:
            s.set_tag("still", "ignored")
        assert drain_spans() == []

    def test_traced_decorator_wraps_calls(self, tracing):
        @traced("unit.work", flavor="test")
        def work(x):
            return x + 1

        assert work(41) == 42
        assert work.__name__ == "work"
        (span,) = drain_spans()
        assert span.name == "unit.work"
        assert span.tags == {"flavor": "test"}

    def test_buffer_bounds_and_drops(self):
        tracer = Tracer(buffer_size=2)
        for k in range(4):
            with tracer.span(f"s{k}"):
                pass
        assert len(tracer.spans()) == 2
        assert tracer.dropped == 2
        tracer.reset()
        assert tracer.spans() == [] and tracer.dropped == 0

    def test_span_dict_round_trip(self, tracing):
        with pytest.raises(RuntimeError):
            with trace_span("rt", a=1):
                raise RuntimeError("x")
        (span,) = drain_spans()
        clone = Span.from_dict(json.loads(json.dumps(span.as_dict())))
        assert clone == span


# --------------------------------------------------------------------- #
# Cross-worker propagation
# --------------------------------------------------------------------- #
class TestContextPropagation:
    def test_capture_attach_reparents(self, tracing):
        with trace_span("submitter") as parent:
            ctx = capture_context()
        with attach_context(ctx):
            with trace_span("worker.side"):
                pass
        worker = _by_name(drain_spans(), "worker.side")[0]
        assert worker.parent_id == parent.span_id
        assert worker.trace_id == parent.trace_id

    def test_attach_none_is_inert(self, tracing):
        with attach_context(None):
            with trace_span("rootless"):
                pass
        assert _by_name(drain_spans(), "rootless")[0].parent_id is None

    def test_thread_workers_attach_to_submitting_span(
            self, tracing, smoke_benchmark):
        serial = FrequencyAnalysis(n_points=8).sweep(smoke_benchmark)
        drain_spans()
        with trace_span("sweep.root") as root:
            parallel = FrequencyAnalysis(
                n_points=8,
                engine=SweepEngine(jobs=2)).sweep(smoke_benchmark)
        assert np.array_equal(serial.values, parallel.values)
        chunks = _by_name(drain_spans(), "engine.chunk")
        assert len(chunks) >= 2
        assert all(c.parent_id == root.span_id for c in chunks)
        assert {c.tags["executor"] for c in chunks} == {"thread"}

    def test_process_workers_ship_spans_home(
            self, tracing, smoke_benchmark):
        serial = FrequencyAnalysis(n_points=6).sweep(smoke_benchmark)
        drain_spans()
        with trace_span("sweep.root") as root:
            with SweepEngine(jobs=2, executor="process") as engine:
                parallel = FrequencyAnalysis(
                    n_points=6, engine=engine).sweep(smoke_benchmark)
        assert np.array_equal(serial.values, parallel.values)
        chunks = _by_name(drain_spans(), "engine.chunk")
        assert len(chunks) >= 2
        assert all(c.parent_id == root.span_id for c in chunks)
        assert all(c.pid != os.getpid() for c in chunks)

    def test_serial_engine_never_wraps(self, tracing, smoke_benchmark):
        FrequencyAnalysis(n_points=5,
                          engine=SweepEngine(jobs=1)).sweep(smoke_benchmark)
        assert _by_name(drain_spans(), "engine.chunk") == []


def _instrumented_scenario(k: int) -> int:
    """Module-level (picklable) worker body carrying telemetry."""
    from repro.obs import default_metrics
    from repro.perf import scoped_timer

    with scoped_timer("worker.payload"):
        default_metrics().increment("worker.calls", parity=str(k % 2))
    return k * k


class TestWorkerTelemetryMerge:
    def test_process_worker_counters_and_timers_merge(self):
        registry = default_registry()
        metrics = default_metrics()
        registry.reset()
        metrics.reset()
        with SweepEngine(jobs=2, executor="process") as engine:
            out = engine.map_scenarios(_instrumented_scenario,
                                       list(range(6)))
        assert out == [k * k for k in range(6)]
        stat = registry.timers()["worker.payload"]
        assert stat.count == 6
        assert stat.total_seconds > 0.0
        assert stat.p99_seconds >= stat.p50_seconds >= 0.0
        counts = {tuple(sorted(e["labels"].items())): e["value"]
                  for e in metrics.snapshot()["counters"]
                  if e["name"] == "worker.calls"}
        assert counts[(("parity", "0"),)] == 3
        assert counts[(("parity", "1"),)] == 3
        registry.reset()
        metrics.reset()


# --------------------------------------------------------------------- #
# Metrics core
# --------------------------------------------------------------------- #
class TestReservoir:
    def test_empty_percentiles_pinned_to_zero(self):
        assert percentile([], 50) == 0.0
        r = Reservoir()
        assert r.p50 == 0.0 and r.p99 == 0.0

    def test_percentile_interpolates(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert percentile(samples, 50) == pytest.approx(2.5)
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 100) == 4.0

    def test_window_is_bounded_but_count_is_lifetime(self):
        r = Reservoir(maxlen=4)
        for v in range(10):
            r.observe(float(v))
        assert r.count == 10
        assert len(r.samples()) == 4
        assert r.min == 0.0 and r.max == 9.0

    def test_extend_window_leaves_lifetime_scalars(self):
        r = Reservoir()
        r.observe(1.0)
        r.extend_window([5.0, 6.0])
        assert r.count == 1
        assert r.total == 1.0
        assert sorted(r.samples()) == [1.0, 5.0, 6.0]

    def test_merge_combines_everything(self):
        a, b = Reservoir(), Reservoir()
        a.observe(1.0)
        b.observe(3.0)
        a.merge(b)
        assert a.count == 2 and a.total == 4.0 and a.max == 3.0


class TestMetricsRegistry:
    def test_counters_keyed_by_labels(self):
        reg = MetricsRegistry()
        reg.increment("hits", kind="a")
        reg.increment("hits", kind="a")
        reg.increment("hits", kind="b")
        snap = {tuple(sorted(e["labels"].items())): e["value"]
                for e in reg.snapshot()["counters"]}
        assert snap[(("kind", "a"),)] == 2
        assert snap[(("kind", "b"),)] == 1

    def test_merge_snapshot_adds_counters_and_replays_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.increment("n")
        b.increment("n", 4)
        b.observe("lat", 0.25)
        b.set_gauge("depth", 7)
        a.merge_snapshot(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"][0]["value"] == 5
        (hist,) = snap["histograms"]
        assert hist["count"] == 1 and hist["p50"] == pytest.approx(0.25)
        (gauge,) = snap["gauges"]
        assert gauge["value"] == 7


class TestFacades:
    def test_timer_stat_exposes_percentiles(self):
        stat = TimerStat()
        for v in (0.1, 0.2, 0.3):
            stat.record(v)
        d = stat.as_dict()
        assert d["p50_seconds"] == pytest.approx(0.2)
        assert d["p99_seconds"] == pytest.approx(0.3, rel=0.02)
        assert TimerStat().as_dict()["p50_seconds"] == 0.0

    def test_perf_registry_merge_snapshot(self):
        a, b = PerfRegistry(), PerfRegistry()
        with b.timer("phase"):
            pass
        b.increment("widgets", 3)
        a.merge_snapshot(b.snapshot(include_samples=True))
        stat = a.timers()["phase"]
        assert stat.count == 1
        assert len(stat.reservoir.samples()) == 1
        assert a.counters()["widgets"] == 3

    def test_kind_stats_empty_percentiles_are_zero(self):
        stats = KindStats()
        assert stats.p50 == 0.0
        assert stats.p99 == 0.0


# --------------------------------------------------------------------- #
# Exporters
# --------------------------------------------------------------------- #
class TestExporters:
    def _spans(self):
        tracer = Tracer()
        with tracer.span("root", phase="x") as root:
            with tracer.span("child"):
                pass
        return tracer.drain(), root

    def test_chrome_trace_round_trips_hierarchy(self, tmp_path):
        spans, root = self._spans()
        doc = json.loads(json.dumps(to_chrome_trace(spans)))
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in events} == {"root", "child"}
        child = next(e for e in events if e["name"] == "child")
        assert child["args"]["parent_id"] == root.span_id
        assert all(e["dur"] >= 0 for e in events)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert meta and meta[0]["name"] == "thread_name"

    def test_chrome_trace_accepts_dicts(self):
        spans, _ = self._spans()
        from_dicts = to_chrome_trace([s.as_dict() for s in spans])
        assert from_dicts == to_chrome_trace(spans)

    def test_prometheus_exposition_shape(self):
        metrics = MetricsRegistry()
        metrics.increment("store.fetch", result="hit")
        metrics.set_gauge("queue.depth", 3)
        metrics.observe("latency", 0.5)
        perf = PerfRegistry()
        with perf.timer("bdsm.project"):
            pass
        text = to_prometheus(metrics.snapshot(), perf.snapshot())
        assert '# TYPE repro_store_fetch_total counter' in text
        assert 'repro_store_fetch_total{result="hit"} 1' in text
        assert 'repro_queue_depth 3' in text
        assert 'repro_latency{quantile="0.5"} 0.5' in text
        assert 'repro_latency_count 1' in text
        assert 'repro_timer_calls_total{scope="bdsm.project"} 1' in text
        # every sample line's metric name was TYPE-declared
        declared = {line.split()[2] for line in text.splitlines()
                    if line.startswith("# TYPE")}
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name = line.split("{")[0].split(" ")[0]
            base = name
            for suffix in ("_sum", "_count"):
                if base.endswith(suffix) and base[:-len(suffix)] in declared:
                    base = base[:-len(suffix)]
            assert base in declared

    def test_span_tree_report_indents_and_flags(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("root"):
                with tracer.span("bad"):
                    raise RuntimeError("nope")
        report = span_tree_report(tracer.drain())
        lines = report.splitlines()
        root_line = next(line for line in lines if "root" in line)
        bad_line = next(line for line in lines if "bad" in line)
        assert bad_line.startswith("  ")
        assert not root_line.startswith(" ")
        assert "!! error" in bad_line

    def test_span_tree_report_empty(self):
        assert span_tree_report([]) == "(no spans recorded)\n"

    def test_prometheus_empty_snapshots_are_empty(self):
        assert to_prometheus(None, None) == ""
        assert to_prometheus({}, {}) == ""
        assert to_prometheus(MetricsRegistry().snapshot(),
                             PerfRegistry().snapshot()) == ""

    def test_prometheus_escapes_label_newlines(self):
        # Regression: an unescaped newline in a label value splits the
        # sample line and corrupts every sample after it.
        metrics = MetricsRegistry()
        metrics.increment("store.fetch", detail='line1\nline2"quoted"\\')
        text = to_prometheus(metrics.snapshot())
        sample_lines = [line for line in text.splitlines()
                        if not line.startswith("#")]
        assert len(sample_lines) == 1
        assert '\\n' in sample_lines[0]
        assert '\\"quoted\\"' in sample_lines[0]
        assert sample_lines[0].endswith(" 1")

    def test_prometheus_type_lines_deduplicated(self):
        metrics = MetricsRegistry()
        metrics.increment("store.fetch", result="hit")
        metrics.increment("store.fetch", result="miss")
        metrics.set_gauge("queue.depth", 1, kind="a")
        metrics.set_gauge("queue.depth", 2, kind="b")
        text = to_prometheus(metrics.snapshot())
        type_lines = [line for line in text.splitlines()
                      if line.startswith("# TYPE")]
        assert len(type_lines) == len(set(type_lines)) == 2

    def test_span_tree_pruning_keeps_parents_of_slow_children(self):
        def span(name, span_id, parent_id, duration):
            return {"name": name, "trace_id": "t", "span_id": span_id,
                    "parent_id": parent_id, "duration": duration}

        report = span_tree_report(
            [span("root", "a", None, 0.001),
             span("slow", "b", "a", 0.5),
             span("fast", "c", "a", 0.001)],
            min_duration=0.1)
        # The fast root survives because its slow child does; the fast
        # leaf is pruned.
        assert "root" in report
        assert "slow" in report
        assert "fast" not in report


# --------------------------------------------------------------------- #
# Serve-stack topology
# --------------------------------------------------------------------- #
class TestServeSpans:
    def test_coalesced_batch_has_plan_step_lock_eval_scatter(
            self, tracing, tmp_path):
        system = make_benchmark("ckt1", scale="smoke")
        store = ModelStore(tmp_path / "store")
        bdsm_reduce(system, 3, store=store)
        drain_spans()
        with ModelServer(store) as server:
            server.warm()
            (name,) = server.registry.known_names()
            requests = [
                QueryRequest("transfer", name,
                             {"s_values": [1e6j * (k + 1)]})
                for k in range(3)]
            server.serve(requests)
        spans = drain_spans()
        by_name = {s.name: s for s in spans}
        plan = by_name["serve.plan"]
        assert plan.tags["n_requests"] == 3
        steps = _by_name(spans, "serve.step")
        assert steps and all(s.parent_id == plan.span_id for s in steps)
        # Coalescing folded the per-model transfers into one step.
        assert any(s.tags.get("n_requests", 0) == 3 for s in steps)
        step_ids = {s.span_id for s in steps}
        assert by_name["serve.lock_wait"].parent_id in step_ids
        assert by_name["serve.engine_eval"].parent_id in step_ids
        assert by_name["serve.scatter"].parent_id == plan.span_id

    def test_warm_set_metrics_counted(self, tmp_path):
        metrics = default_metrics()
        metrics.reset()
        system = make_benchmark("ckt1", scale="smoke")
        store = ModelStore(tmp_path / "store")
        bdsm_reduce(system, 3, store=store)
        with ModelServer(store) as server:
            server.warm()
            (name,) = server.registry.known_names()
            server.transfer(name, np.array([1e6j]))
            server.transfer(name, np.array([1e7j]))
        hits = [e for e in metrics.snapshot()["counters"]
                if e["name"] == "serve.warm_set"
                and e["labels"].get("result") == "hit"]
        assert hits and hits[0]["value"] >= 2
        metrics.reset()


# --------------------------------------------------------------------- #
# Committed acceptance artifact
# --------------------------------------------------------------------- #
class TestObsOverheadArtifact:
    def test_committed_overhead_within_budget(self):
        path = Path(__file__).resolve().parents[1] / "benchmarks" \
            / "results" / "obs_overhead.json"
        payload = json.loads(path.read_text())
        assert payload["schema"] == 1
        assert payload["scales"], "no recorded scales"
        for scale, entry in payload["scales"].items():
            budget = entry["overhead_budget"]
            assert budget <= 0.03
            assert entry["disabled_overhead_fraction"] <= budget, scale
            assert entry["spans_per_run"] > 0
            assert entry["seconds"] > 0.0
