"""Tests for the parallel batched sweep engine (repro.analysis.engine)."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro import (
    FrequencyAnalysis,
    SourceBank,
    SweepEngine,
    TransientAnalysis,
    bdsm_reduce,
    dynamic_ir_drop,
    dynamic_ir_drop_batch,
    ir_drop_analysis,
    ir_drop_batch,
)
from repro.analysis.engine import _accepts_solver
from repro.analysis.sources import PulseSource, StepSource
from repro.exceptions import SimulationError
from repro.linalg.backends import (
    FactorizationCache,
    SolverOptions,
    default_cache,
    process_worker_init,
    set_default_cache,
    temporary_default_cache,
)


@pytest.fixture(scope="module")
def bdsm_rom(smoke_benchmark):
    rom, _, _ = bdsm_reduce(smoke_benchmark, 3)
    return rom


class TestSweepEngineConfig:
    def test_defaults_are_serial_threads(self):
        engine = SweepEngine()
        assert engine.jobs == 1
        assert engine.executor == "thread"
        assert engine.resolved_jobs() == 1

    def test_jobs_zero_resolves_to_cpu_count(self):
        import os
        assert SweepEngine(jobs=0).resolved_jobs() == (os.cpu_count() or 1)

    def test_negative_jobs_rejected(self):
        with pytest.raises(SimulationError):
            SweepEngine(jobs=-1)

    def test_unknown_executor_rejected(self):
        with pytest.raises(SimulationError):
            SweepEngine(executor="fiber")

    def test_negative_cache_capacity_rejected(self):
        with pytest.raises(SimulationError):
            SweepEngine(worker_cache_capacity=-1)

    def test_chunk_bounds_cover_range_contiguously(self):
        bounds = SweepEngine._chunk_bounds(13, 4)
        assert bounds[0] == 0 and bounds[-1] == 13
        assert np.all(np.diff(bounds) >= 0)

    def test_empty_grid_rejected(self, rc_grid_system):
        engine = SweepEngine()
        with pytest.raises(SimulationError):
            engine.sample_matrix(rc_grid_system, [])
        with pytest.raises(SimulationError):
            engine.sample_entry(rc_grid_system, [], 0, 0)

    def test_pool_persists_across_dispatches_and_closes(self):
        with SweepEngine(jobs=2) as engine:
            assert engine._pool is None  # lazy: no dispatch yet
            engine.map_scenarios(lambda x: x + 1, [1, 2, 3])
            pool = engine._pool
            assert pool is not None
            engine.map_scenarios(lambda x: x * 2, [1, 2, 3])
            assert engine._pool is pool  # reused, not respawned
        assert engine._pool is None  # context exit shut it down
        # the engine stays usable after close()
        assert engine.map_scenarios(lambda x: -x, [4, 5]) == [-4, -5]
        engine.close()


class TestParallelBitIdentity:
    """Parallel sweeps must be bit-identical to the serial path."""

    def test_full_matrix_sweep_threads(self, smoke_benchmark, bdsm_rom):
        serial = FrequencyAnalysis(n_points=13)
        parallel = FrequencyAnalysis(n_points=13,
                                     engine=SweepEngine(jobs=3))
        for system in (smoke_benchmark, bdsm_rom):
            assert np.array_equal(serial.sweep(system).values,
                                  parallel.sweep(system).values)

    def test_entry_sweep_threads(self, smoke_benchmark, bdsm_rom):
        serial = FrequencyAnalysis(n_points=11)
        parallel = FrequencyAnalysis(n_points=11,
                                     engine=SweepEngine(jobs=4))
        for system in (smoke_benchmark, bdsm_rom):
            assert np.array_equal(
                serial.sweep_entry(system, 0, 1).values,
                parallel.sweep_entry(system, 0, 1).values)

    def test_full_matrix_sweep_processes(self, smoke_benchmark):
        serial = FrequencyAnalysis(n_points=6)
        parallel = FrequencyAnalysis(
            n_points=6, engine=SweepEngine(jobs=2, executor="process"))
        assert np.array_equal(serial.sweep(smoke_benchmark).values,
                              parallel.sweep(smoke_benchmark).values)

    def test_more_jobs_than_points(self, rc_grid_system):
        serial = FrequencyAnalysis(n_points=3)
        parallel = FrequencyAnalysis(n_points=3,
                                     engine=SweepEngine(jobs=16))
        assert np.array_equal(serial.sweep(rc_grid_system).values,
                              parallel.sweep(rc_grid_system).values)

    def test_generic_path_without_transfer_function(self, rc_grid_system):
        """Systems exposing only C/G/B/L go through the batched solve."""
        class Bare:
            pass

        bare = Bare()
        bare.C, bare.G = rc_grid_system.C, rc_grid_system.G
        bare.B, bare.L = rc_grid_system.B, rc_grid_system.L
        serial = FrequencyAnalysis(n_points=8).sweep(bare).values
        parallel = FrequencyAnalysis(
            n_points=8, engine=SweepEngine(jobs=3)).sweep(bare).values
        assert np.array_equal(serial, parallel)
        # and the generic path agrees with the system's own evaluator
        own = FrequencyAnalysis(n_points=8).sweep(rc_grid_system).values
        assert np.allclose(serial, own, rtol=1e-9)
        # the generic entry sweep (single-column solve) agrees too
        entry_serial = FrequencyAnalysis(
            n_points=8).sweep_entry(bare, 0, 1).values
        entry_parallel = FrequencyAnalysis(
            n_points=8, engine=SweepEngine(jobs=3)).sweep_entry(
                bare, 0, 1).values
        assert np.array_equal(entry_serial, entry_parallel)
        assert np.allclose(entry_serial, serial[:, 0, 1], rtol=1e-9)

    def test_generic_entry_sweep_accepts_coo_matrices(self, rc_grid_system):
        """Duck-typed systems may carry non-subscriptable sparse formats
        (COO); the single-column entry path must handle them like the old
        full-densify path did."""
        import scipy.sparse as sp

        class Bare:
            pass

        bare = Bare()
        bare.C = sp.coo_matrix(rc_grid_system.C)
        bare.G = sp.coo_matrix(rc_grid_system.G)
        bare.B = sp.coo_matrix(rc_grid_system.B)
        bare.L = sp.coo_matrix(rc_grid_system.L)
        fa = FrequencyAnalysis(n_points=4)
        entry = fa.sweep_entry(bare, 0, 1).values
        full = fa.sweep(bare).values
        assert np.allclose(entry, full[:, 0, 1], rtol=1e-12)

    def test_worker_caches_leave_default_cache_alone(self, rc_grid_system):
        """Parallel generic-path workers use per-worker caches, not the
        default."""
        class Bare:
            pass

        bare = Bare()
        bare.C, bare.G = rc_grid_system.C, rc_grid_system.G
        bare.B, bare.L = rc_grid_system.B, rc_grid_system.L
        fa = FrequencyAnalysis(
            n_points=6, solver=SolverOptions(backend="splu"),
            engine=SweepEngine(jobs=2))
        with temporary_default_cache(FactorizationCache(capacity=8)) as cache:
            fa.sweep(bare)
            stats = cache.stats()
        assert stats.hits == 0 and stats.misses == 0

    def test_serial_sweep_reuses_default_cache(self, rc_grid_system):
        """Serial sweeps keep the documented ``set_default_cache`` reuse
        workflow: a repeated sweep of the same grid hits the cache."""
        class Bare:
            pass

        bare = Bare()
        bare.C, bare.G = rc_grid_system.C, rc_grid_system.G
        bare.B, bare.L = rc_grid_system.B, rc_grid_system.L
        fa = FrequencyAnalysis(n_points=5,
                               solver=SolverOptions(backend="splu"))
        with temporary_default_cache(
                FactorizationCache(capacity=16)) as cache:
            first = fa.sweep(bare)
            assert cache.stats().misses == 5
            second = fa.sweep(bare)
            stats = cache.stats()
        assert stats.hits == 5
        assert stats.misses == 5
        assert np.array_equal(first.values, second.values)


class TestMapScenarios:
    def test_preserves_order(self):
        engine = SweepEngine(jobs=4)
        out = engine.map_scenarios(lambda x: x * x, list(range(17)))
        assert out == [x * x for x in range(17)]


class TestAdaptiveSweep:
    def test_adaptive_compare_matches_exact_where_evaluated(
            self, smoke_benchmark, bdsm_rom):
        fa = FrequencyAnalysis(n_points=40)
        exact = fa.compare(smoke_benchmark, {"BDSM": bdsm_rom},
                           output=0, port=1)
        adaptive = fa.compare(smoke_benchmark, {"BDSM": bdsm_rom},
                              output=0, port=1, adaptive=True,
                              target_error=1e-4)
        info = adaptive["adaptive"]
        mask = info["evaluated"]
        assert info["n_points"] == 40
        assert 2 <= info["n_evaluated"] <= 40
        assert np.array_equal(
            adaptive["BDSM"]["relative_error"][mask],
            exact["BDSM"]["relative_error"][mask])
        assert np.array_equal(
            adaptive["reference"]["magnitude"][mask],
            exact["reference"]["magnitude"][mask])

    def test_adaptive_saves_factorizations_on_accurate_rom(
            self, smoke_benchmark, bdsm_rom):
        fa = FrequencyAnalysis(n_points=48)
        report = fa.compare(smoke_benchmark, {"BDSM": bdsm_rom},
                            output=0, port=1, adaptive=True,
                            target_error=1.0)
        info = report["adaptive"]
        assert info["n_evaluated"] < info["n_points"]
        assert info["evaluations_saved"] > 0

    def test_interpolated_error_close_to_exact(self, smoke_benchmark,
                                               bdsm_rom):
        fa = FrequencyAnalysis(n_points=40)
        exact = fa.compare(smoke_benchmark, {"BDSM": bdsm_rom},
                           output=0, port=1)["BDSM"]["relative_error"]
        adaptive = fa.compare(smoke_benchmark, {"BDSM": bdsm_rom},
                              output=0, port=1, adaptive=True,
                              target_error=1e-4)["BDSM"]["relative_error"]
        # Interpolated estimates may deviate, but never by orders of
        # magnitude near or above the target accuracy.
        above = exact > 1e-5
        if np.any(above):
            ratio = adaptive[above] / exact[above]
            assert np.all((ratio > 0.1) & (ratio < 10.0))

    def test_bad_target_error_rejected(self, smoke_benchmark, bdsm_rom):
        fa = FrequencyAnalysis(n_points=8)
        with pytest.raises(SimulationError):
            fa.compare(smoke_benchmark, {"BDSM": bdsm_rom}, output=0,
                       port=1, adaptive=True, target_error=0.0)

    def test_adaptive_engine_api_direct(self, smoke_benchmark, bdsm_rom):
        engine = SweepEngine(jobs=2)
        omegas = np.logspace(5, 10, 24)
        result = engine.adaptive_entry_sweep(
            smoke_benchmark, {"rom": bdsm_rom}, omegas, 0, 1,
            target_error=1e-3)
        assert result.omegas.shape == (24,)
        assert result.reference.shape == (24,)
        assert result.candidates["rom"].shape == (24,)
        assert result.evaluated.dtype == bool
        assert result.n_evaluated == int(result.evaluated.sum())


class TestTransientBatch:
    @pytest.fixture()
    def banks(self, rc_grid_system):
        m = rc_grid_system.B.shape[1]
        return [SourceBank.uniform(m, StepSource(1e-3)),
                SourceBank.uniform(m, PulseSource(1e-3, 4e-6, 2e-6)),
                SourceBank.uniform(m, StepSource(-5e-4))]

    @staticmethod
    def _assert_machine_close(a: np.ndarray, b: np.ndarray) -> None:
        """Stacked block kernels reassociate sums: allow last-ULP jitter."""
        scale = max(float(np.max(np.abs(a))), 1e-300)
        assert np.allclose(a, b, rtol=1e-12, atol=1e-12 * scale)

    def test_stacked_batch_matches_individual_runs(self, rc_grid_system,
                                                   banks):
        ta = TransientAnalysis(t_stop=1e-5, dt=1e-6)
        singles = [ta.run(rc_grid_system, bank) for bank in banks]
        batch = ta.run_batch(rc_grid_system, banks)
        assert len(batch) == len(banks)
        for single, batched in zip(singles, batch):
            self._assert_machine_close(single.outputs, batched.outputs)

    def test_pooled_batch_matches_individual_runs(self, rc_grid_system,
                                                  banks):
        ta = TransientAnalysis(t_stop=1e-5, dt=1e-6)
        singles = [ta.run(rc_grid_system, bank) for bank in banks]
        pooled = ta.run_batch(rc_grid_system, banks, mode="pooled",
                              engine=SweepEngine(jobs=2))
        for single, batched in zip(singles, pooled):
            assert np.array_equal(single.outputs, batched.outputs)

    def test_pooled_batch_shares_pencil_factorization(self, rc_grid_system,
                                                      banks):
        """The stepping pencil is factorized once (parent warm-up), not
        once per concurrently started worker."""
        ta = TransientAnalysis(t_stop=5e-6, dt=1e-6)
        with temporary_default_cache(FactorizationCache(capacity=4)) as cache:
            ta.run_batch(rc_grid_system, banks, mode="pooled",
                         engine=SweepEngine(jobs=2))
            stats = cache.stats()
        assert stats.misses == 1
        assert stats.hits >= len(banks)

    def test_trapezoidal_batch(self, rc_grid_system, banks):
        ta = TransientAnalysis(t_stop=1e-5, dt=1e-6, method="trapezoidal")
        singles = [ta.run(rc_grid_system, bank) for bank in banks]
        batch = ta.run_batch(rc_grid_system, banks)
        for single, batched in zip(singles, batch):
            self._assert_machine_close(single.outputs, batched.outputs)

    def test_batch_with_states_and_x0(self, rc_grid_system, banks):
        n = rc_grid_system.size
        x0 = np.linspace(0.0, 1e-3, n)
        ta = TransientAnalysis(t_stop=5e-6, dt=1e-6, store_states=True)
        single = ta.run(rc_grid_system, banks[0], x0=x0)
        batch = ta.run_batch(rc_grid_system, banks[:2], x0s=[x0, None])
        self._assert_machine_close(single.states, batch[0].states)
        assert batch[1].states is not None

    def test_batch_labels(self, rc_grid_system, banks):
        ta = TransientAnalysis(t_stop=5e-6, dt=1e-6)
        batch = ta.run_batch(rc_grid_system, banks[:2],
                             labels=["fast", None])
        assert batch[0].label == "fast"
        assert batch[1].label == rc_grid_system.name

    def test_empty_batch_rejected(self, rc_grid_system):
        ta = TransientAnalysis(t_stop=5e-6, dt=1e-6)
        with pytest.raises(SimulationError):
            ta.run_batch(rc_grid_system, [])

    def test_mismatched_lengths_rejected(self, rc_grid_system, banks):
        ta = TransientAnalysis(t_stop=5e-6, dt=1e-6)
        with pytest.raises(SimulationError):
            ta.run_batch(rc_grid_system, banks, x0s=[None])

    def test_unknown_mode_rejected(self, rc_grid_system, banks):
        ta = TransientAnalysis(t_stop=5e-6, dt=1e-6)
        with pytest.raises(SimulationError):
            ta.run_batch(rc_grid_system, banks, mode="magic")

    def test_port_mismatch_rejected(self, rc_grid_system):
        ta = TransientAnalysis(t_stop=5e-6, dt=1e-6)
        with pytest.raises(SimulationError):
            ta.run_batch(rc_grid_system,
                         [SourceBank.uniform(1, StepSource(1e-3))])


class TestIrDropBatch:
    def test_batch_matches_individual_solves(self, rc_grid_system):
        m = rc_grid_system.B.shape[1]
        base = np.linspace(1e-3, 2e-3, m)
        scenarios = np.vstack([base, 2.0 * base, 0.25 * base])
        batch = ir_drop_batch(rc_grid_system, scenarios)
        assert len(batch) == 3
        for j in range(3):
            single = ir_drop_analysis(rc_grid_system, scenarios[j])
            assert np.allclose(batch[j].voltages, single.voltages,
                               rtol=1e-12, atol=1e-15)

    def test_single_vector_accepted(self, rc_grid_system):
        m = rc_grid_system.B.shape[1]
        batch = ir_drop_batch(rc_grid_system, np.full(m, 1e-3))
        assert len(batch) == 1

    def test_wrong_width_rejected(self, rc_grid_system):
        with pytest.raises(SimulationError):
            ir_drop_batch(rc_grid_system, np.ones((2, 3)))

    def test_empty_batch_rejected(self, rc_grid_system):
        m = rc_grid_system.B.shape[1]
        with pytest.raises(SimulationError):
            ir_drop_batch(rc_grid_system, np.empty((0, m)))

    def test_dynamic_batch_matches_individual(self, rc_grid_system):
        m = rc_grid_system.B.shape[1]
        banks = [SourceBank.uniform(m, StepSource(1e-3)),
                 SourceBank.uniform(m, StepSource(2e-3))]
        stacked = dynamic_ir_drop_batch(rc_grid_system, banks,
                                        t_stop=1e-5, dt=1e-6)
        pooled = dynamic_ir_drop_batch(rc_grid_system, banks,
                                       t_stop=1e-5, dt=1e-6, mode="pooled")
        for bank, st, po in zip(banks, stacked, pooled):
            single = dynamic_ir_drop(rc_grid_system, bank,
                                     t_stop=1e-5, dt=1e-6)
            # pooled runs the plain integrator: bit-identical
            assert np.array_equal(po.voltages, single.voltages)
            scale = max(float(np.max(np.abs(single.voltages))), 1e-300)
            assert np.allclose(st.voltages, single.voltages,
                               rtol=1e-12, atol=1e-12 * scale)


class TestProcessWorkerPlumbing:
    def test_solver_options_pickle_round_trip(self):
        opts = SolverOptions(backend="cg", tol=1e-10, max_iterations=123,
                             preconditioner="ilu", use_cache=False)
        clone = pickle.loads(pickle.dumps(opts))
        assert clone == opts

    def test_process_worker_init_installs_fresh_cache(self):
        before = default_cache()
        try:
            process_worker_init(capacity=5)
            installed = default_cache()
            assert installed is not before
            assert installed.capacity == 5
            assert len(installed) == 0
        finally:
            set_default_cache(before)

    def test_accepts_solver_memoized_per_function(self):
        def probe(x, *, solver=None):
            return x

        import repro.analysis.engine as engine_mod
        real = engine_mod._accepts_solver_uncached
        assert _accepts_solver(probe)  # prime
        # A second call must be served from the lru cache.
        info_before = real.cache_info()
        assert _accepts_solver(probe)
        info_after = real.cache_info()
        assert info_after.hits == info_before.hits + 1
        assert info_after.misses == info_before.misses
