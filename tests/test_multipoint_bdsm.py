"""Unit tests for repro.core.multipoint (multi-point BDSM)."""

import numpy as np
import pytest

from repro.core import BDSMOptions, bdsm_reduce, multipoint_bdsm_reduce
from repro.core.structured_rom import BlockDiagonalROM
from repro.exceptions import ReductionError
from repro.validation import count_matched_moments, max_relative_error


class TestMultipointBdsm:
    def test_single_point_matches_bdsm(self, rc_grid_system):
        single, _, _ = bdsm_reduce(rc_grid_system, 3)
        multi, _, _ = multipoint_bdsm_reduce(rc_grid_system, 3, [0.0])
        s = 1j * 1e8
        assert np.allclose(single.transfer_function(s),
                           multi.transfer_function(s), rtol=1e-8)

    def test_block_structure_preserved(self, rc_grid_system):
        rom, _, _ = multipoint_bdsm_reduce(rc_grid_system, 2, [0.0, 1e9])
        assert isinstance(rom, BlockDiagonalROM)
        assert rom.n_blocks == rc_grid_system.n_ports
        # each block has at most 2 * 2 columns (two points, two moments)
        assert all(size <= 4 for size in rom.layout.sizes)

    def test_matches_moments_at_each_real_point(self, rc_grid_system):
        points = [0.0, 1e9]
        rom, _, _ = multipoint_bdsm_reduce(rc_grid_system, 2, points)
        for point in points:
            assert count_matched_moments(rc_grid_system, rom, 2,
                                         s0=point) >= 2

    def test_complex_point_gives_real_blocks(self, rc_grid_system):
        rom, _, _ = multipoint_bdsm_reduce(rc_grid_system, 2,
                                           [0.0, 1j * 1e9])
        for block in rom.blocks:
            assert np.isrealobj(block.C)
            assert np.isrealobj(block.G)

    def test_wideband_accuracy_not_worse(self, rc_grid_system):
        omegas = np.logspace(8, 11, 5)
        single, _, _ = multipoint_bdsm_reduce(rc_grid_system, 2, [0.0])
        double, _, _ = multipoint_bdsm_reduce(rc_grid_system, 2,
                                              [0.0, 1j * 1e10])
        err_single = max_relative_error(rc_grid_system, single, omegas)
        err_double = max_relative_error(rc_grid_system, double, omegas)
        # "not worse", with a floor because both can sit at machine precision
        assert err_double <= max(err_single * 1.5, 1e-10)

    def test_chunking_equivalence(self, rc_grid_system):
        a, _, _ = multipoint_bdsm_reduce(rc_grid_system, 2, [0.0, 1e9])
        b, _, _ = multipoint_bdsm_reduce(
            rc_grid_system, 2, [0.0, 1e9],
            options=BDSMOptions(port_chunk_size=3))
        s = 1j * 1e7
        assert np.allclose(a.transfer_function(s), b.transfer_function(s))

    def test_keep_projection(self, rc_grid_system):
        rom, _, _ = multipoint_bdsm_reduce(
            rc_grid_system, 2, [0.0],
            options=BDSMOptions(keep_projection=True))
        assert all(block.basis is not None for block in rom.blocks)

    def test_invalid_arguments(self, rc_grid_system):
        with pytest.raises(ReductionError):
            multipoint_bdsm_reduce(rc_grid_system, 2, [])
        with pytest.raises(ReductionError):
            multipoint_bdsm_reduce(rc_grid_system, 0, [0.0])
        with pytest.raises(ReductionError):
            multipoint_bdsm_reduce(rc_grid_system, 2, [0.0],
                                   options=BDSMOptions(port_chunk_size=-1))
