"""Property-based tests (hypothesis) for the analysis substrate.

The key invariant exploited throughout the paper is *linearity*: the power
grid and every ROM of it are LTI systems, so responses superpose and scale.
These properties must hold for the full descriptor model, for the dense
PRIMA ROM and for the block-diagonal BDSM ROM alike — they are what makes
"reduce once, reuse for any excitation" sound.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import SourceBank, TransientAnalysis
from repro.analysis.sources import (
    ConstantSource,
    PiecewiseLinearSource,
    PulseSource,
    StepSource,
)
from repro.circuit import PowerGridSpec, assemble_mna, build_power_grid
from repro.core import bdsm_reduce

SETTINGS = settings(max_examples=10, deadline=None)


def _small_system(seed: int):
    spec = PowerGridSpec(rows=4, cols=4, n_ports=3, n_pads=2,
                         package_inductance=0.0, seed=seed,
                         name=f"prop-grid-{seed}")
    return assemble_mna(build_power_grid(spec))


@st.composite
def waveforms(draw):
    kind = draw(st.sampled_from(["constant", "step", "pulse", "pwl"]))
    amplitude = draw(st.floats(min_value=1e-4, max_value=5e-3))
    if kind == "constant":
        return ConstantSource(amplitude)
    if kind == "step":
        return StepSource(amplitude, t0=draw(
            st.floats(min_value=0.0, max_value=5e-10)))
    if kind == "pulse":
        return PulseSource(amplitude, period=1e-9, width=3e-10,
                           rise=1e-10, fall=1e-10)
    return PiecewiseLinearSource([(0.0, 0.0), (5e-10, amplitude),
                                  (1.5e-9, amplitude / 2)])


class TestLinearityProperties:
    @SETTINGS
    @given(st.integers(min_value=0, max_value=50), waveforms(),
           st.floats(min_value=0.5, max_value=3.0))
    def test_scaling_of_transient_response(self, seed, waveform, factor):
        """Scaling every input by a factor scales the output by the same."""
        system = _small_system(seed)
        transient = TransientAnalysis(t_stop=1e-9, dt=1e-10)
        base_bank = SourceBank.uniform(system.n_ports, waveform)

        scaled_bank = SourceBank(system.n_ports)
        for port in range(system.n_ports):
            original = base_bank.waveform(port)
            scaled_bank.assign(port, _wrap_scaled(original, factor))

        base = transient.run(system, base_bank)
        scaled = transient.run(system, scaled_bank)
        assert np.allclose(scaled.outputs, factor * base.outputs,
                           rtol=1e-9, atol=1e-15)

    @SETTINGS
    @given(st.integers(min_value=0, max_value=50), waveforms(), waveforms())
    def test_superposition_on_full_model(self, seed, wave_a, wave_b):
        """Response to (a + b) equals response to a plus response to b."""
        system = _small_system(seed)
        transient = TransientAnalysis(t_stop=1e-9, dt=1e-10)
        bank_a = SourceBank(system.n_ports)
        bank_a.assign(0, wave_a)
        bank_b = SourceBank(system.n_ports)
        bank_b.assign(1 % system.n_ports, wave_b)
        bank_sum = SourceBank(system.n_ports)
        bank_sum.assign(0, wave_a)
        if system.n_ports > 1:
            bank_sum.assign(1, wave_b)
        else:
            bank_sum.assign(0, _wrap_sum(wave_a, wave_b))

        resp_a = transient.run(system, bank_a)
        resp_b = transient.run(system, bank_b)
        resp_sum = transient.run(system, bank_sum)
        assert np.allclose(resp_sum.outputs,
                           resp_a.outputs + resp_b.outputs,
                           rtol=1e-9, atol=1e-15)

    @SETTINGS
    @given(st.integers(min_value=0, max_value=50), waveforms())
    def test_rom_inherits_linearity(self, seed, waveform):
        """The BDSM ROM obeys the same scaling law as the full model."""
        system = _small_system(seed)
        rom, _, _ = bdsm_reduce(system, 3)
        transient = TransientAnalysis(t_stop=1e-9, dt=1e-10)
        bank = SourceBank.uniform(system.n_ports, waveform)
        doubled = SourceBank(system.n_ports)
        for port in range(system.n_ports):
            doubled.assign(port, _wrap_scaled(waveform, 2.0))
        base = transient.run(rom, bank)
        twice = transient.run(rom, doubled)
        assert np.allclose(twice.outputs, 2.0 * base.outputs,
                           rtol=1e-9, atol=1e-15)


def _wrap_scaled(waveform, factor):
    """A waveform equal to ``factor * waveform(t)``."""
    from repro.analysis.sources import Waveform

    class _ScaledWaveform(Waveform):
        def __call__(self, t: float) -> float:
            return factor * waveform(t)

    return _ScaledWaveform()


def _wrap_sum(wave_a, wave_b):
    """A waveform equal to ``wave_a(t) + wave_b(t)``."""
    from repro.analysis.sources import Waveform

    class _SumWaveform(Waveform):
        def __call__(self, t: float) -> float:
            return wave_a(t) + wave_b(t)

    return _SumWaveform()
