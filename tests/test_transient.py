"""Unit tests for repro.analysis.transient."""

import numpy as np
import pytest

from repro.analysis import SourceBank, TransientAnalysis
from repro.analysis.sources import ConstantSource, StepSource
from repro.circuit import assemble_mna
from repro.exceptions import SimulationError


class TestTransientSetup:
    def test_time_grid(self):
        ta = TransientAnalysis(t_stop=1.0, dt=0.25)
        assert np.allclose(ta.times, [0.0, 0.25, 0.5, 0.75, 1.0])

    @pytest.mark.parametrize("kwargs", [
        {"t_stop": 0.0, "dt": 0.1},
        {"t_stop": 1.0, "dt": 0.0},
        {"t_stop": 1.0, "dt": 2.0},
        {"t_stop": 1.0, "dt": 0.1, "method": "forward_euler"},
    ])
    def test_invalid_setup_rejected(self, kwargs):
        with pytest.raises(SimulationError):
            TransientAnalysis(**kwargs)


class TestAnalyticRC:
    @pytest.fixture()
    def rc_system(self, single_rc_netlist):
        return assemble_mna(single_rc_netlist)

    @pytest.mark.parametrize("method", ["backward_euler", "trapezoidal"])
    def test_step_response_matches_analytic(self, rc_system, method):
        # v(t) = -I*R*(1 - exp(-t/RC)) with R=100, C=1e-6, I=1e-3
        R, Cval, I = 100.0, 1e-6, 1e-3
        tau = R * Cval
        ta = TransientAnalysis(t_stop=5 * tau, dt=tau / 200, method=method)
        bank = SourceBank.uniform(1, ConstantSource(I))
        result = ta.run(rc_system, bank)
        expected = -I * R * (1.0 - np.exp(-result.times / tau))
        tol = 5e-3 * I * R
        assert np.max(np.abs(result.output(0) - expected)) < tol

    def test_trapezoidal_more_accurate_than_backward_euler(self, rc_system):
        R, Cval, I = 100.0, 1e-6, 1e-3
        tau = R * Cval
        bank = SourceBank.uniform(1, ConstantSource(I))
        exact = None
        errors = {}
        for method in ("backward_euler", "trapezoidal"):
            ta = TransientAnalysis(t_stop=3 * tau, dt=tau / 20, method=method)
            result = ta.run(rc_system, bank)
            exact = -I * R * (1.0 - np.exp(-result.times / tau))
            errors[method] = np.max(np.abs(result.output(0) - exact))
        assert errors["trapezoidal"] < errors["backward_euler"]

    def test_zero_input_stays_at_zero(self, rc_system):
        ta = TransientAnalysis(t_stop=1e-4, dt=1e-6)
        result = ta.run(rc_system, SourceBank(1))
        assert np.allclose(result.outputs, 0.0)

    def test_initial_condition_decays(self, rc_system):
        R, Cval = 100.0, 1e-6
        tau = R * Cval
        ta = TransientAnalysis(t_stop=3 * tau, dt=tau / 100)
        result = ta.run(rc_system, SourceBank(1), x0=np.array([1.0]))
        expected = np.exp(-result.times / tau)
        assert np.max(np.abs(result.output(0) - expected)) < 2e-2


class TestTransientInterface:
    def test_store_states(self, rc_grid_system):
        ta = TransientAnalysis(t_stop=1e-9, dt=1e-10, store_states=True)
        result = ta.run(rc_grid_system,
                        SourceBank(rc_grid_system.n_ports))
        assert result.states is not None
        assert result.states.shape == (rc_grid_system.size, result.n_steps)

    def test_port_count_mismatch(self, rc_grid_system):
        ta = TransientAnalysis(t_stop=1e-9, dt=1e-10)
        with pytest.raises(SimulationError):
            ta.run(rc_grid_system, SourceBank(rc_grid_system.n_ports + 1))

    def test_wrong_initial_state_length(self, rc_grid_system):
        ta = TransientAnalysis(t_stop=1e-9, dt=1e-10)
        with pytest.raises(SimulationError):
            ta.run(rc_grid_system, SourceBank(rc_grid_system.n_ports),
                   x0=np.ones(3))

    def test_error_metrics_between_results(self, rc_grid_system):
        ta = TransientAnalysis(t_stop=1e-9, dt=1e-10)
        bank = SourceBank.uniform(rc_grid_system.n_ports,
                                  StepSource(1e-3, t0=2e-10))
        a = ta.run(rc_grid_system, bank)
        b = ta.run(rc_grid_system, bank)
        assert a.max_abs_error_to(b) == 0.0
        assert a.rms_error_to(b) == 0.0

    def test_error_metrics_shape_check(self, rc_grid_system, rc_ladder_system):
        ta = TransientAnalysis(t_stop=1e-9, dt=1e-10)
        a = ta.run(rc_grid_system, SourceBank(rc_grid_system.n_ports))
        b = ta.run(rc_ladder_system, SourceBank(1))
        with pytest.raises(SimulationError):
            a.max_abs_error_to(b)
