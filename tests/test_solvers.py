"""Unit tests for repro.analysis.solvers (iterative DC solvers)."""

import numpy as np
import pytest

from repro.analysis.solvers import (
    ilu_preconditioner,
    jacobi_preconditioner,
    solve_dc_iterative,
)
from repro.exceptions import SimulationError
from repro.linalg.krylov import ShiftedOperator


class TestPreconditioners:
    def test_jacobi_inverts_diagonal(self, rc_grid_system):
        A = -rc_grid_system.G
        M = jacobi_preconditioner(A)
        v = np.ones(A.shape[0])
        assert np.allclose(M @ v, 1.0 / A.diagonal())

    def test_jacobi_rejects_zero_diagonal(self):
        import scipy.sparse as sp
        A = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(SimulationError):
            jacobi_preconditioner(A)

    def test_ilu_approximates_inverse(self, rc_grid_system):
        A = -rc_grid_system.G
        M = ilu_preconditioner(A, drop_tol=0.0)
        rng = np.random.default_rng(0)
        b = rng.normal(size=A.shape[0])
        x = M @ b
        assert np.allclose(A @ x, b, rtol=1e-6, atol=1e-9)


class TestSolveDcIterative:
    @pytest.mark.parametrize("preconditioner", ["jacobi", "ilu", "none"])
    def test_matches_direct_solve(self, rc_grid_system, preconditioner):
        loads = np.linspace(1e-3, 2e-3, rc_grid_system.n_ports)
        rhs = np.asarray(rc_grid_system.B @ loads).reshape(-1)
        direct = ShiftedOperator(rc_grid_system.C, rc_grid_system.G,
                                 s0=0.0).solve(rhs)
        result = solve_dc_iterative(rc_grid_system, rhs,
                                    preconditioner=preconditioner)
        assert result.converged
        assert result.residual_norm < 1e-8
        assert np.allclose(result.x, direct, rtol=1e-6, atol=1e-12)

    def test_symmetric_grid_uses_cg(self, rc_grid_system):
        rhs = np.asarray(rc_grid_system.B @ np.ones(
            rc_grid_system.n_ports)).reshape(-1)
        result = solve_dc_iterative(rc_grid_system, rhs)
        assert result.method == "cg"
        assert result.iterations > 0

    def test_rlc_grid_uses_gmres(self, rlc_grid_system):
        rhs = np.asarray(rlc_grid_system.B @ np.ones(
            rlc_grid_system.n_ports)).reshape(-1)
        result = solve_dc_iterative(rlc_grid_system, rhs,
                                    preconditioner="ilu")
        assert result.method == "gmres"
        assert result.residual_norm < 1e-8

    def test_wrong_rhs_length(self, rc_grid_system):
        with pytest.raises(SimulationError):
            solve_dc_iterative(rc_grid_system, np.ones(3))

    def test_unknown_preconditioner(self, rc_grid_system):
        rhs = np.zeros(rc_grid_system.size)
        with pytest.raises(SimulationError):
            solve_dc_iterative(rc_grid_system, rhs, preconditioner="magic")
