"""Unit tests for repro.analysis.solvers (iterative DC solvers)."""

import numpy as np
import pytest

from repro.analysis.solvers import (
    ilu_preconditioner,
    jacobi_preconditioner,
    solve_dc_iterative,
)
from repro.exceptions import SimulationError
from repro.linalg.krylov import ShiftedOperator


class TestPreconditioners:
    def test_jacobi_inverts_diagonal(self, rc_grid_system):
        A = -rc_grid_system.G
        M = jacobi_preconditioner(A)
        v = np.ones(A.shape[0])
        assert np.allclose(M @ v, 1.0 / A.diagonal())

    def test_jacobi_tolerates_zero_diagonal(self):
        import scipy.sparse as sp
        A = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 2.0]]))
        M = jacobi_preconditioner(A)
        v = np.array([3.0, 4.0])
        # Zero-diagonal rows pass through with unit scale; the rest invert.
        assert np.allclose(M @ v, [3.0, 2.0])

    def test_jacobi_empty_matrix(self):
        import scipy.sparse as sp
        M = jacobi_preconditioner(sp.csr_matrix((0, 0)))
        assert (M @ np.zeros(0)).shape == (0,)

    def test_jacobi_on_grid_with_zero_conductance_node(self):
        """A cap-only node has a zero G diagonal; jacobi must stay defined."""
        from repro.circuit import Netlist, assemble_mna
        net = Netlist(title="zero-conductance-node")
        net.add_resistor("R1", "n1", "0", 1.0)
        net.add_resistor("R2", "n1", "n2", 2.0)
        net.add_capacitor("C1", "n2", "n3", 1e-6)  # n3 only sees this cap
        net.add_capacitor("C2", "n3", "0", 1e-6)
        net.add_current_source("I1", "n1", "0", 1e-3)
        net.set_output_nodes(["n1"])
        system = assemble_mna(net)
        A = -system.G
        diag = np.asarray(A.diagonal())
        assert np.any(diag == 0.0), "test grid must have a zero-G-diag node"
        M = jacobi_preconditioner(A)
        v = np.ones(A.shape[0])
        out = M @ v
        assert np.all(np.isfinite(out))
        nz = diag != 0.0
        assert np.allclose(out[nz], 1.0 / diag[nz])
        assert np.allclose(out[~nz], 1.0)

    def test_ilu_approximates_inverse(self, rc_grid_system):
        A = -rc_grid_system.G
        M = ilu_preconditioner(A, drop_tol=0.0)
        rng = np.random.default_rng(0)
        b = rng.normal(size=A.shape[0])
        x = M @ b
        assert np.allclose(A @ x, b, rtol=1e-6, atol=1e-9)


class TestSolveDcIterative:
    @pytest.mark.parametrize("preconditioner", ["jacobi", "ilu", "none"])
    def test_matches_direct_solve(self, rc_grid_system, preconditioner):
        loads = np.linspace(1e-3, 2e-3, rc_grid_system.n_ports)
        rhs = np.asarray(rc_grid_system.B @ loads).reshape(-1)
        direct = ShiftedOperator(rc_grid_system.C, rc_grid_system.G,
                                 s0=0.0).solve(rhs)
        result = solve_dc_iterative(rc_grid_system, rhs,
                                    preconditioner=preconditioner)
        assert result.converged
        assert result.residual_norm < 1e-8
        assert np.allclose(result.x, direct, rtol=1e-6, atol=1e-12)

    def test_symmetric_grid_uses_cg(self, rc_grid_system):
        rhs = np.asarray(rc_grid_system.B @ np.ones(
            rc_grid_system.n_ports)).reshape(-1)
        result = solve_dc_iterative(rc_grid_system, rhs)
        assert result.method == "cg"
        assert result.iterations > 0

    def test_rlc_grid_uses_gmres(self, rlc_grid_system):
        rhs = np.asarray(rlc_grid_system.B @ np.ones(
            rlc_grid_system.n_ports)).reshape(-1)
        result = solve_dc_iterative(rlc_grid_system, rhs,
                                    preconditioner="ilu")
        assert result.method == "gmres"
        assert result.residual_norm < 1e-8

    def test_rlc_grid_jacobi_handles_branch_rows(self, rlc_grid_system):
        """RLC branch rows have zero G diagonal; jacobi used to raise here."""
        rhs = np.asarray(rlc_grid_system.B @ np.ones(
            rlc_grid_system.n_ports)).reshape(-1)
        result = solve_dc_iterative(rlc_grid_system, rhs,
                                    preconditioner="jacobi",
                                    max_iterations=20000)
        assert result.residual_norm < 1e-8

    def test_wrong_rhs_length(self, rc_grid_system):
        with pytest.raises(SimulationError):
            solve_dc_iterative(rc_grid_system, np.ones(3))

    def test_unknown_preconditioner(self, rc_grid_system):
        rhs = np.zeros(rc_grid_system.size)
        with pytest.raises(SimulationError):
            solve_dc_iterative(rc_grid_system, rhs, preconditioner="magic")
