"""Unit tests for repro.circuit.benchmarks."""

import pytest

from repro.circuit import BENCHMARKS, benchmark_names, make_benchmark
from repro.circuit.benchmarks import make_benchmark_netlist
from repro.exceptions import CircuitError


class TestRegistry:
    def test_all_five_benchmarks_registered(self):
        assert benchmark_names() == ["ckt1", "ckt2", "ckt3", "ckt4", "ckt5"]

    def test_paper_port_counts_recorded(self):
        assert BENCHMARKS["ckt1"].paper_ports == 51
        assert BENCHMARKS["ckt5"].paper_ports == 1429
        assert BENCHMARKS["ckt5"].paper_nodes == 1_700_000

    def test_every_benchmark_has_all_scales(self):
        for spec in BENCHMARKS.values():
            assert set(spec.grids) == {"smoke", "laptop", "paper"}

    def test_grid_spec_unknown_scale(self):
        with pytest.raises(CircuitError):
            BENCHMARKS["ckt1"].grid_spec("huge")

    def test_port_counts_increase_across_benchmarks(self):
        laptop_ports = [BENCHMARKS[name].grids["laptop"][2]
                        for name in benchmark_names()]
        assert laptop_ports == sorted(laptop_ports)


class TestMakeBenchmark:
    def test_unknown_name_rejected(self):
        with pytest.raises(CircuitError):
            make_benchmark("ckt9")

    def test_unknown_scale_rejected(self):
        with pytest.raises(CircuitError):
            make_benchmark("ckt1", scale="gigantic")

    def test_smoke_benchmark_properties(self, smoke_benchmark):
        rows, cols, ports, _pads = BENCHMARKS["ckt1"].grids["smoke"]
        assert smoke_benchmark.n_ports == ports
        # mesh nodes plus package/pad nodes plus inductor branch currents
        assert smoke_benchmark.size > rows * cols
        assert smoke_benchmark.name == "ckt1-smoke"

    def test_netlist_validates(self):
        net = make_benchmark_netlist("ckt2", scale="smoke")
        net.validate()

    def test_seed_override_changes_values(self):
        a = make_benchmark_netlist("ckt1", scale="smoke", seed=1)
        b = make_benchmark_netlist("ckt1", scale="smoke", seed=2)
        assert [e.spice_line() for e in a] != [e.spice_line() for e in b]

    def test_deterministic_by_default(self):
        a = make_benchmark_netlist("ckt1", scale="smoke")
        b = make_benchmark_netlist("ckt1", scale="smoke")
        assert [e.spice_line() for e in a] == [e.spice_line() for e in b]
