"""Integration tests: full pipeline from netlist text to ROM-based analysis."""

import numpy as np
import pytest

from repro import (
    FrequencyAnalysis,
    SourceBank,
    TransientAnalysis,
    assemble_mna,
    bdsm_reduce,
    eks_reduce,
    ir_drop_analysis,
    make_benchmark,
    parse_netlist,
    prima_reduce,
    svdmor_reduce,
    write_netlist,
)
from repro.analysis.sources import PulseSource, StepSource
from repro.circuit.benchmarks import make_benchmark_netlist
from repro.core import BDSMOptions


class TestNetlistToRomPipeline:
    def test_spice_text_to_bdsm_rom(self):
        # netlist generation -> SPICE text -> parse -> MNA -> BDSM -> sweep
        netlist = make_benchmark_netlist("ckt1", scale="smoke")
        text = write_netlist(netlist)
        system = assemble_mna(parse_netlist(text))
        rom, _, _ = bdsm_reduce(system, 4)
        fa = FrequencyAnalysis(omega_min=1e6, omega_max=1e10, n_points=5)
        full = fa.sweep_entry(system, 0, 1)
        reduced = fa.sweep_entry(rom, 0, 1)
        assert np.max(reduced.relative_error_to(full)) < 1e-6

    def test_all_reducers_run_on_smoke_benchmark(self, smoke_benchmark):
        l = 4
        roms = {
            "BDSM": bdsm_reduce(smoke_benchmark, l)[0],
            "PRIMA": prima_reduce(smoke_benchmark, l)[0],
            "SVDMOR": svdmor_reduce(smoke_benchmark, l, alpha=0.6)[0],
            "EKS": eks_reduce(smoke_benchmark, l)[0],
        }
        s = 1j * 1e8
        H = smoke_benchmark.transfer_function(s)
        errors = {name: np.linalg.norm(rom.transfer_function(s) - H)
                  / np.linalg.norm(H) for name, rom in roms.items()}
        # moment-matched methods are far more accurate than the
        # terminal-reduced / input-dependent ones (Fig. 5 ordering)
        assert errors["BDSM"] < 1e-8
        assert errors["PRIMA"] < 1e-8
        assert errors["SVDMOR"] > 1e-4
        assert errors["EKS"] > 1e-4
        # ROM sizes follow Table I: BDSM/PRIMA m*l, SVDMOR ~alpha*m*l, EKS ~l
        m = smoke_benchmark.n_ports
        assert roms["BDSM"].size == m * l
        assert roms["PRIMA"].size == m * l
        assert roms["SVDMOR"].size < m * l
        assert roms["EKS"].size <= l


class TestTransientOnRoms:
    def test_bdsm_transient_matches_full_model(self, rc_grid_system):
        m = rc_grid_system.n_ports
        bank = SourceBank.uniform(m, StepSource(1e-3, t0=1e-10,
                                                rise_time=2e-10))
        transient = TransientAnalysis(t_stop=3e-9, dt=5e-11)
        full = transient.run(rc_grid_system, bank)
        rom, _, _ = bdsm_reduce(rc_grid_system, 4)
        reduced = transient.run(rom, bank)
        scale = np.max(np.abs(full.outputs))
        assert reduced.max_abs_error_to(full) < 1e-4 * scale

    def test_rom_reusable_across_waveforms(self, rc_grid_system):
        # The same BDSM ROM (built once, input-independent) tracks the full
        # model under two completely different excitations.
        m = rc_grid_system.n_ports
        rom, _, _ = bdsm_reduce(rc_grid_system, 4)
        transient = TransientAnalysis(t_stop=2e-9, dt=5e-11)
        for waveform in (StepSource(1e-3, t0=2e-10),
                         PulseSource(2e-3, period=1e-9, width=3e-10,
                                     rise=1e-10, fall=1e-10)):
            bank = SourceBank.uniform(m, waveform)
            full = transient.run(rc_grid_system, bank)
            reduced = transient.run(rom, bank)
            scale = max(np.max(np.abs(full.outputs)), 1e-12)
            assert reduced.max_abs_error_to(full) < 1e-3 * scale

    def test_ir_drop_pipeline_on_rom(self, rc_grid_system):
        m = rc_grid_system.n_ports
        loads = np.full(m, 1.5e-3)
        rom, _, _ = bdsm_reduce(rc_grid_system, 3,
                                options=BDSMOptions(port_chunk_size=2))
        full = ir_drop_analysis(rc_grid_system, loads)
        reduced = ir_drop_analysis(rom, loads)
        assert full.worst()[1] == pytest.approx(reduced.worst()[1], rel=1e-6)


class TestBenchmarkScales:
    @pytest.mark.parametrize("name", ["ckt1", "ckt2", "ckt3"])
    def test_smoke_benchmarks_reduce_cleanly(self, name):
        system = make_benchmark(name, scale="smoke")
        rom, _, _ = bdsm_reduce(system, 3)
        assert rom.size == system.n_ports * 3
        s = 1j * 1e8
        H = system.transfer_function(s)
        Hr = rom.transfer_function(s)
        assert np.linalg.norm(Hr - H) / np.linalg.norm(H) < 1e-8
