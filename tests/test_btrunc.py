"""Unit tests for repro.mor.btrunc (Poor Man's TBR)."""

import numpy as np
import pytest

from repro.exceptions import ReductionError
from repro.mor import pmtbr_reduce
from repro.validation import max_relative_error


class TestPmtbrReduce:
    def test_reduces_to_requested_order(self, rc_grid_system):
        rom, _, _ = pmtbr_reduce(rc_grid_system, order=12, n_samples=8)
        assert rom.size <= 12
        assert rom.method == "PMTBR"

    def test_accuracy_inside_sampled_band(self, rc_grid_system):
        rom, _, _ = pmtbr_reduce(rc_grid_system, order=20,
                                 omega_min=1e5, omega_max=1e10, n_samples=10)
        omegas = np.logspace(6, 9, 5)
        assert max_relative_error(rc_grid_system, rom, omegas) < 1e-3

    def test_singular_values_monotone(self, rc_grid_system):
        rom, _, _ = pmtbr_reduce(rc_grid_system, order=10, n_samples=6)
        sigma = rom.singular_values
        assert np.all(np.diff(sigma) <= 1e-12)

    def test_order_larger_than_samples_is_capped(self, rc_grid_system):
        rom, _, _ = pmtbr_reduce(rc_grid_system, order=10 ** 4, n_samples=4)
        # at most 2 * m * n_samples columns can be produced
        assert rom.size <= 2 * rc_grid_system.n_ports * 4

    def test_more_order_not_less_accurate(self, rc_grid_system):
        omegas = np.logspace(6, 9, 4)
        small, _, _ = pmtbr_reduce(rc_grid_system, order=6, n_samples=8)
        large, _, _ = pmtbr_reduce(rc_grid_system, order=24, n_samples=8)
        err_small = max_relative_error(rc_grid_system, small, omegas)
        err_large = max_relative_error(rc_grid_system, large, omegas)
        assert err_large <= err_small * 1.001

    @pytest.mark.parametrize("kwargs", [
        {"order": 0},
        {"order": 4, "n_samples": 0},
        {"order": 4, "omega_min": 0.0},
        {"order": 4, "omega_min": 1e9, "omega_max": 1e5},
    ])
    def test_invalid_arguments(self, rc_grid_system, kwargs):
        with pytest.raises(ReductionError):
            pmtbr_reduce(rc_grid_system, **kwargs)
