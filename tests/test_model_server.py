"""Tests for the concurrent model-serving front end (repro.store.server)."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import (
    FrequencyAnalysis,
    ModelServer,
    ModelStore,
    QueryRequest,
    SweepEngine,
    TransientAnalysis,
    bdsm_reduce,
    ir_drop_analysis,
    make_benchmark,
    prima_reduce,
    save_artifact,
)
from repro.analysis.sources import SourceBank, StepSource
from repro.exceptions import ValidationError


@pytest.fixture(scope="module")
def system():
    return make_benchmark("ckt1", scale="smoke")


@pytest.fixture(scope="module")
def bdsm_rom(system):
    rom, _, _ = bdsm_reduce(system, 3)
    return rom


@pytest.fixture()
def warm_server(system, bdsm_rom, tmp_path):
    store = ModelStore(tmp_path / "store")
    bdsm_reduce(system, 3, store=store)
    prima_reduce(system, 3, store=store)
    server = ModelServer(store)
    server.warm()
    yield server
    server.close()


class TestRegistry:
    def test_register_and_models(self, bdsm_rom):
        server = ModelServer()
        server.register("rom", bdsm_rom)
        assert server.models() == ["rom"]

    def test_empty_name_rejected(self, bdsm_rom):
        with pytest.raises(ValidationError):
            ModelServer().register("", bdsm_rom)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValidationError, match="no model"):
            ModelServer().transfer("ghost", [1j * 1e6])

    def test_warm_names_entries(self, warm_server):
        assert warm_server.models() == ["ckt1-smoke/BDSM",
                                        "ckt1-smoke/PRIMA"]
        assert warm_server.stats().models_loaded == 2

    def test_load_by_path(self, bdsm_rom, tmp_path):
        path = save_artifact(bdsm_rom, tmp_path / "rom.npz")
        server = ModelServer()
        server.load("from-file", path=path)
        assert "from-file" in server.models()

    def test_load_by_key_needs_store(self):
        with pytest.raises(ValidationError, match="no backing store"):
            ModelServer().load("x", key="abc")

    def test_load_needs_exactly_one_source(self, tmp_path):
        with pytest.raises(ValidationError, match="exactly one"):
            ModelServer().load("x")


class TestQueries:
    def test_transfer_matches_direct_evaluation(self, bdsm_rom):
        server = ModelServer()
        server.register("rom", bdsm_rom)
        s_values = 1j * np.logspace(5, 9, 4)
        H = server.transfer("rom", s_values)
        direct = np.stack([bdsm_rom.transfer_function(s) for s in s_values])
        assert np.array_equal(H, direct)

    def test_sweep_entry_matches_frequency_analysis(self, bdsm_rom):
        server = ModelServer()
        server.register("rom", bdsm_rom)
        served = server.sweep("rom", n_points=5, output=0, port=1)
        direct = FrequencyAnalysis(n_points=5).sweep_entry(bdsm_rom, 0, 1)
        assert np.array_equal(served.values, direct.values)

    def test_transient_matches_direct_run(self, system, bdsm_rom):
        server = ModelServer()
        server.register("rom", bdsm_rom)
        sources = SourceBank.uniform(system.n_ports, StepSource(1e-3))
        served = server.transient("rom", sources, t_stop=1e-9, dt=2e-10)
        direct = TransientAnalysis(t_stop=1e-9, dt=2e-10).run(bdsm_rom,
                                                              sources)
        assert np.array_equal(served.outputs, direct.outputs)

    def test_ir_drop_matches_direct_call(self, system, bdsm_rom):
        server = ModelServer()
        server.register("rom", bdsm_rom)
        loads = np.full(system.n_ports, 1e-3)
        served = server.ir_drop("rom", loads)
        direct = ir_drop_analysis(bdsm_rom, loads)
        assert np.array_equal(served.voltages, direct.voltages)

    def test_sweep_rejects_half_specified_entry(self, bdsm_rom):
        server = ModelServer()
        server.register("rom", bdsm_rom)
        with pytest.raises(ValidationError, match="both output= and port="):
            server.sweep("rom", n_points=5, output=0)
        with pytest.raises(ValidationError, match="both output= and port="):
            server.sweep("rom", n_points=5, port=1)

    def test_sweep_models_matches_individual_sweeps(self, warm_server):
        names = warm_server.models()
        batched = warm_server.sweep_models(names, n_points=5)
        for name in names:
            single = warm_server.sweep(name, n_points=5)
            assert np.array_equal(batched[name].values, single.values)

    def test_sweep_many_parallel_engine_identical(self, bdsm_rom, system):
        analysis_serial = FrequencyAnalysis(n_points=5)
        with SweepEngine(jobs=2) as engine:
            analysis_parallel = FrequencyAnalysis(n_points=5, engine=engine)
            models = {"bdsm": bdsm_rom, "full": system}
            serial = analysis_serial.sweep_many(models)
            parallel = analysis_parallel.sweep_many(models)
        for label in models:
            assert np.array_equal(serial[label].values,
                                  parallel[label].values)
            assert serial[label].label == label


class TestConcurrentServing:
    def test_serve_batch_preserves_order_and_results(self, warm_server,
                                                     system):
        s_values = 1j * np.logspace(5, 9, 3)
        requests = []
        for _ in range(4):
            for name in warm_server.models():
                requests.append(QueryRequest("transfer", name,
                                             {"s_values": s_values}))
        results = warm_server.serve(requests)
        assert len(results) == len(requests)
        for request, result in zip(requests, results):
            direct = warm_server.transfer(request.model, s_values)
            assert np.array_equal(result, direct)
        assert warm_server.stats().requests == len(requests)

    def test_many_threads_one_model(self, bdsm_rom):
        """Concurrent queries against a single model must serialize through
        its lock without corrupting the lazily-assembled matrix cache."""
        server = ModelServer(max_workers=8)
        server.register("rom", bdsm_rom)
        s_values = 1j * np.logspace(5, 9, 3)
        reference = server.transfer("rom", s_values)
        errors: list[Exception] = []

        def hammer():
            try:
                for _ in range(5):
                    assert np.array_equal(
                        server.transfer("rom", s_values), reference)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        server.close()

    def test_overlapping_sweep_models_cannot_deadlock(self, warm_server):
        """Concurrent sweep_models calls naming the same models in opposite
        order must both complete (locks are taken in canonical order)."""
        names = warm_server.models()
        reversed_names = list(reversed(names))
        results: dict[str, dict] = {}

        def run(label, order):
            for _ in range(5):
                results[label] = warm_server.sweep_models(order, n_points=4)

        t1 = threading.Thread(target=run, args=("fwd", names))
        t2 = threading.Thread(target=run, args=("rev", reversed_names))
        t1.start()
        t2.start()
        t1.join(timeout=60)
        t2.join(timeout=60)
        assert not t1.is_alive() and not t2.is_alive(), (
            "sweep_models deadlocked on overlapping model sets")
        for name in names:
            assert np.array_equal(results["fwd"][name].values,
                                  results["rev"][name].values)

    def test_unknown_kind_rejected(self, warm_server):
        with pytest.raises(ValidationError, match="unknown request kind"):
            warm_server.submit(QueryRequest("divine", "ckt1-smoke/BDSM"))

    def test_failed_request_counts_error(self, warm_server):
        future = warm_server.submit(
            QueryRequest("transfer", "nope", {"s_values": [1j]}))
        with pytest.raises(ValidationError):
            future.result()
        assert warm_server.stats().errors == 1

    def test_context_manager_closes_pool(self, bdsm_rom):
        with ModelServer() as server:
            server.register("rom", bdsm_rom)
            future = server.submit(
                QueryRequest("transfer", "rom", {"s_values": [1j * 1e6]}))
            assert future.result().shape == (1, bdsm_rom.n_outputs,
                                             bdsm_rom.n_ports)
