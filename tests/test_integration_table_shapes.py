"""Integration tests checking the *shape* of the paper's headline results.

These are the assertions EXPERIMENTS.md leans on: not absolute CPU seconds,
but the orderings and ratios the paper reports —

* Table I: ROM sizes and reusability per method;
* Table II: BDSM needs (far) fewer orthonormalisation operations than PRIMA
  and SVDMOR; EKS is the cheapest but not reusable;
* Fig. 4: BDSM ROM sparsity around 1/m versus PRIMA's dense ROM;
* Fig. 5: relative-error ordering BDSM ~ PRIMA << SVDMOR < EKS.
"""

import numpy as np
import pytest

from repro import (
    bdsm_reduce,
    eks_reduce,
    make_benchmark,
    prima_reduce,
    svdmor_reduce,
)
from repro.core.cost_model import compare_costs
from repro.validation import max_relative_error, rom_structure_report


@pytest.fixture(scope="module")
def ckt1_smoke():
    return make_benchmark("ckt1", scale="smoke")


@pytest.fixture(scope="module")
def all_roms(ckt1_smoke):
    l = 4
    return {
        "BDSM": bdsm_reduce(ckt1_smoke, l),
        "PRIMA": prima_reduce(ckt1_smoke, l),
        "SVDMOR": svdmor_reduce(ckt1_smoke, l, alpha=0.6),
        "EKS": eks_reduce(ckt1_smoke, l),
    }


class TestTableIShapes:
    def test_rom_sizes(self, ckt1_smoke, all_roms):
        m, l = ckt1_smoke.n_ports, 4
        assert all_roms["BDSM"][0].size == m * l
        assert all_roms["PRIMA"][0].size == m * l
        assert all_roms["SVDMOR"][0].size == round(0.6 * m) * l
        assert all_roms["EKS"][0].size <= l

    def test_reusability_flags(self, all_roms):
        assert all_roms["BDSM"][0].reusable
        assert all_roms["PRIMA"][0].reusable
        assert all_roms["SVDMOR"][0].reusable
        assert not all_roms["EKS"][0].reusable

    def test_rom_patterns(self, all_roms):
        bdsm_report = rom_structure_report(all_roms["BDSM"][0])
        prima_report = rom_structure_report(all_roms["PRIMA"][0])
        assert bdsm_report.block_sizes            # block-diagonal
        assert not prima_report.block_sizes       # full dense


class TestTableIIShapes:
    def test_orthonormalisation_ordering(self, all_roms):
        ops = {name: stats.inner_products
               for name, (_, stats, _) in all_roms.items()}
        assert ops["BDSM"] < ops["SVDMOR"] < ops["PRIMA"]
        assert ops["EKS"] <= ops["BDSM"]

    def test_measured_ratio_tracks_cost_model(self, ckt1_smoke, all_roms):
        m, l = ckt1_smoke.n_ports, 4
        predicted = compare_costs(m, l).ortho_speedup
        measured = (all_roms["PRIMA"][1].inner_products
                    / all_roms["BDSM"][1].inner_products)
        # both counts include re-orthogonalisation; the ratio should sit
        # within a factor ~3 of the idealised prediction
        assert predicted / 3 < measured < predicted * 3

    def test_rom_nnz_ordering(self, all_roms):
        assert all_roms["BDSM"][0].nnz < all_roms["SVDMOR"][0].nnz \
            <= all_roms["PRIMA"][0].nnz


class TestFig4Shapes:
    def test_bdsm_density_is_one_over_m(self, ckt1_smoke, all_roms):
        m = ckt1_smoke.n_ports
        density = all_roms["BDSM"][0].density()
        assert density["G"] <= 1 / m + 1e-9
        assert density["B"] <= 1 / m + 1e-9
        assert all_roms["PRIMA"][0].density()["G"] > 0.95


class TestFig5Shapes:
    def test_relative_error_ordering(self, ckt1_smoke, all_roms):
        omegas = np.logspace(5, 9, 6)
        errors = {name: max_relative_error(ckt1_smoke, rom, omegas,
                                           output=0, port=1)
                  for name, (rom, _, _) in all_roms.items()}
        assert errors["BDSM"] < 1e-6
        assert errors["PRIMA"] < 1e-6
        assert errors["SVDMOR"] > 100 * max(errors["BDSM"], errors["PRIMA"])
        assert errors["EKS"] > errors["BDSM"]
        assert errors["EKS"] > 1e-2
