"""Unit tests for repro.analysis.sources."""

import numpy as np
import pytest

from repro.analysis.sources import (
    ConstantSource,
    PiecewiseLinearSource,
    PulseSource,
    SourceBank,
    StepSource,
    UnitImpulseSource,
)
from repro.exceptions import SimulationError


class TestConstantAndStep:
    def test_constant(self):
        w = ConstantSource(2.5)
        assert w(0.0) == 2.5
        assert w(1e9) == 2.5

    def test_step_without_rise(self):
        w = StepSource(1.0, t0=1e-9)
        assert w(0.0) == 0.0
        assert w(1e-9) == 1.0
        assert w(2e-9) == 1.0

    def test_step_with_rise(self):
        w = StepSource(2.0, t0=0.0, rise_time=1e-9)
        assert w(0.5e-9) == pytest.approx(1.0)
        assert w(2e-9) == 2.0

    def test_negative_rise_rejected(self):
        with pytest.raises(SimulationError):
            StepSource(1.0, rise_time=-1.0)

    def test_sample_vectorised(self):
        w = StepSource(1.0, t0=1.0)
        values = w.sample(np.array([0.0, 0.5, 1.0, 2.0]))
        assert np.allclose(values, [0.0, 0.0, 1.0, 1.0])


class TestPulse:
    def test_trapezoid_shape(self):
        w = PulseSource(amplitude=1.0, period=10.0, width=4.0,
                        rise=1.0, fall=1.0, delay=0.0)
        assert w(0.5) == pytest.approx(0.5)    # rising edge
        assert w(3.0) == 1.0                   # flat top
        assert w(5.5) == pytest.approx(0.5)    # falling edge
        assert w(8.0) == 0.0                   # off
        assert w(13.0) == 1.0                  # next period, flat top

    def test_delay(self):
        w = PulseSource(amplitude=1.0, period=5.0, width=1.0, delay=2.0)
        assert w(1.0) == 0.0
        assert w(2.5) == 1.0

    def test_invalid_parameters(self):
        with pytest.raises(SimulationError):
            PulseSource(1.0, period=0.0, width=1.0)
        with pytest.raises(SimulationError):
            PulseSource(1.0, period=2.0, width=1.0, rise=1.0, fall=1.0)


class TestPWL:
    def test_interpolation_and_clamping(self):
        w = PiecewiseLinearSource([(0.0, 0.0), (1.0, 2.0), (3.0, 2.0)])
        assert w(-1.0) == 0.0
        assert w(0.5) == pytest.approx(1.0)
        assert w(2.0) == 2.0
        assert w(10.0) == 2.0

    def test_needs_two_points(self):
        with pytest.raises(SimulationError):
            PiecewiseLinearSource([(0.0, 1.0)])

    def test_times_must_increase(self):
        with pytest.raises(SimulationError):
            PiecewiseLinearSource([(0.0, 1.0), (0.0, 2.0)])


class TestUnitImpulse:
    def test_integral_is_one(self):
        width = 1e-10
        w = UnitImpulseSource(width)
        dt = width / 100
        times = np.arange(0.0, 5 * width, dt)
        assert np.sum(w.sample(times)) * dt == pytest.approx(1.0, rel=0.05)

    def test_zero_outside_window(self):
        w = UnitImpulseSource(1e-9)
        assert w(2e-9) == 0.0
        assert w(-1e-12) == 0.0

    def test_positive_width_required(self):
        with pytest.raises(SimulationError):
            UnitImpulseSource(0.0)


class TestSourceBank:
    def test_default_is_zero(self):
        bank = SourceBank(3)
        assert np.allclose(bank(1.0), 0.0)

    def test_assign_and_evaluate(self):
        bank = SourceBank(3)
        bank.assign(1, ConstantSource(2.0))
        assert np.allclose(bank(0.0), [0.0, 2.0, 0.0])

    def test_uniform(self):
        bank = SourceBank.uniform(4, ConstantSource(1.5))
        assert np.allclose(bank(0.0), 1.5)

    def test_sample_shape(self):
        bank = SourceBank.uniform(2, StepSource(1.0, t0=1.0))
        U = bank.sample(np.array([0.0, 1.0, 2.0]))
        assert U.shape == (2, 3)
        assert np.allclose(U[:, 0], 0.0)
        assert np.allclose(U[:, 2], 1.0)

    def test_out_of_range_port(self):
        bank = SourceBank(2)
        with pytest.raises(SimulationError):
            bank.assign(5, ConstantSource(1.0))

    def test_non_waveform_rejected(self):
        bank = SourceBank(2)
        with pytest.raises(SimulationError):
            bank.assign(0, lambda t: 1.0)  # type: ignore[arg-type]

    def test_needs_positive_ports(self):
        with pytest.raises(SimulationError):
            SourceBank(0)
