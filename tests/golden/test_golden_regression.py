"""Golden-regression harness: every backend must reproduce stored outputs.

Two deterministic seed grids — a pure-RC mesh (symmetric SPD pencil) and the
RLC ``ckt1`` smoke benchmark (unsymmetric pencil) — are pushed through the
three analyses the paper's application section cares about:

* static IR-drop node voltages (a DC solve),
* BDSM ROM poles (generalized eigenvalues of the reduced block pencils),
* transfer-function samples over a log-spaced frequency band.

The reference values live in ``tests/golden/data/<grid>.json`` and are
(re)generated with the sparse-LU backend by running

    PYTHONPATH=src python -m pytest tests/golden -q --update-golden

Each registered solver backend that is applicable to a grid must reproduce
the goldens to tight tolerance, which pins down both the numerics of the
backends and any accidental behaviour change in the MOR/analysis stack.

Setting ``REPRO_GOLDEN_JOBS=N`` (the CI matrix exercises ``2``) routes all
frequency sweeps through a parallel
:class:`~repro.analysis.engine.SweepEngine` with ``N`` workers; the stored
goldens must still be reproduced, which pins the parallel sweep path
bit-identical to the serial one.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest
import scipy.linalg

from repro import (
    BDSMOptions,
    FrequencyAnalysis,
    SolverOptions,
    SweepEngine,
    bdsm_reduce,
    ir_drop_analysis,
    make_benchmark,
)
from repro.circuit import PowerGridSpec, assemble_mna, build_power_grid

GOLDEN_DIR = Path(__file__).parent / "data"

#: Backend used to (re)generate the stored reference values.
REFERENCE_BACKEND = "splu"

#: Moments matched by the BDSM ROM whose poles are pinned.
N_MOMENTS = 3

#: Relative tolerances per golden quantity (scaled by the golden magnitude).
RTOL = {"dc_voltages": 1e-6, "rom_poles": 1e-5, "tf_samples": 1e-6}

#: Sweep workers (CI matrix sets 2 to pin the parallel path to the goldens).
GOLDEN_JOBS = int(os.environ.get("REPRO_GOLDEN_JOBS", "1"))


def _sweep_engine() -> SweepEngine | None:
    return SweepEngine(jobs=GOLDEN_JOBS) if GOLDEN_JOBS != 1 else None


def _rc_mesh():
    spec = PowerGridSpec(rows=6, cols=6, n_ports=6, n_pads=4,
                         package_inductance=0.0, seed=7,
                         name="rc-mesh-6x6")
    return assemble_mna(build_power_grid(spec))


GRIDS = {
    "rc-mesh-6x6": _rc_mesh,
    "ckt1-smoke": lambda: make_benchmark("ckt1", scale="smoke"),
}

#: Backends applicable per grid ("cholesky"/"cg" need the symmetric pencil;
#: "iterative" resolves to CG on real symmetric pencils, GMRES otherwise).
BACKENDS = {
    "rc-mesh-6x6": ("auto", "splu", "cholesky", "dense", "iterative",
                    "gmres"),
    "ckt1-smoke": ("auto", "splu", "dense", "gmres"),
}

CASES = [(grid, backend) for grid in GRIDS for backend in BACKENDS[grid]]


def _solver_options(backend: str) -> SolverOptions:
    return SolverOptions(backend=backend, tol=1e-13,
                         max_iterations=50_000, preconditioner="ilu")


def _rom_poles(system, solver: SolverOptions) -> np.ndarray:
    """Spectrum summary of the BDSM ROM's block pencils.

    The generalized eigenvalues are collected over all blocks; their real
    and imaginary parts are then sorted *independently* and re-paired.  A
    lexicographic sort of the complex values would be fragile — conjugate
    pairs whose real parts agree to roundoff can swap order between
    backends — while each sorted 1-D array is stable under tiny jitter, so
    this pins the spectrum without pinning an arbitrary ordering.
    """
    rom, _, _ = bdsm_reduce(system, N_MOMENTS,
                            options=BDSMOptions(solver=solver))
    poles = []
    for block in rom.blocks:
        vals = scipy.linalg.eig(block.G, block.C, right=False)
        poles.extend(np.asarray(vals))
    poles = np.asarray(poles, dtype=complex)
    return np.sort(poles.real) + 1j * np.sort(poles.imag)


def compute_observables(system, backend: str) -> dict[str, np.ndarray]:
    """The golden quantities of one grid under one solver backend."""
    solver = _solver_options(backend)
    m = system.B.shape[1]
    loads = np.linspace(1e-3, 2e-3, m)
    dc = ir_drop_analysis(system, loads, solver=solver).voltages
    poles = _rom_poles(system, solver)
    sweep = FrequencyAnalysis(omega_min=1e5, omega_max=1e10, n_points=7,
                              solver=solver, engine=_sweep_engine())
    tf = sweep.sweep_entry(system, output=0, port=1).values
    return {"dc_voltages": np.asarray(dc, dtype=float),
            "rom_poles": poles,
            "tf_samples": np.asarray(tf, dtype=complex)}


def _to_json(values: dict[str, np.ndarray]) -> dict:
    out: dict[str, object] = {}
    for key, arr in values.items():
        if np.iscomplexobj(arr):
            out[key] = {"real": arr.real.tolist(), "imag": arr.imag.tolist()}
        else:
            out[key] = arr.tolist()
    return out


def _from_json(payload: dict) -> dict[str, np.ndarray]:
    out: dict[str, np.ndarray] = {}
    for key, value in payload.items():
        if isinstance(value, dict):
            out[key] = (np.asarray(value["real"])
                        + 1j * np.asarray(value["imag"]))
        else:
            out[key] = np.asarray(value, dtype=float)
    return out


def golden_path(grid: str) -> Path:
    return GOLDEN_DIR / f"{grid}.json"


@pytest.fixture(scope="module")
def systems():
    return {name: build() for name, build in GRIDS.items()}


@pytest.mark.parametrize("grid", sorted(GRIDS))
def test_update_golden(grid, systems, update_golden):
    """Regenerate the stored reference values (only with --update-golden)."""
    if not update_golden:
        pytest.skip("golden update not requested")
    values = compute_observables(systems[grid], REFERENCE_BACKEND)
    GOLDEN_DIR.mkdir(exist_ok=True)
    payload = {"grid": grid, "reference_backend": REFERENCE_BACKEND,
               "n_moments": N_MOMENTS, **_to_json(values)}
    golden_path(grid).write_text(json.dumps(payload, indent=2) + "\n")
    assert golden_path(grid).exists()


@pytest.mark.parametrize("grid,backend", CASES,
                         ids=[f"{g}-{b}" for g, b in CASES])
def test_backend_reproduces_golden(grid, backend, systems):
    """Every applicable backend must match the stored reference outputs."""
    path = golden_path(grid)
    if not path.exists():
        pytest.fail(f"golden file {path} missing; run "
                    "pytest tests/golden --update-golden")
    stored = _from_json({k: v for k, v in
                         json.loads(path.read_text()).items()
                         if k in RTOL})
    actual = compute_observables(systems[grid], backend)
    for key, golden in stored.items():
        got = actual[key]
        assert got.shape == golden.shape, key
        scale = float(np.max(np.abs(golden))) or 1.0
        rtol = RTOL[key]
        assert np.allclose(got, golden, rtol=rtol, atol=rtol * scale), (
            f"{grid}/{backend}: {key} deviates from golden by "
            f"{np.max(np.abs(got - golden)):.3e} "
            f"(allowed {rtol * scale:.3e})")


@pytest.mark.parametrize("grid", sorted(GRIDS))
def test_parallel_sweep_bit_identical_to_serial(grid, systems):
    """A ``--jobs 2`` sweep must reproduce the serial sweep bit-for-bit.

    This is the in-tree counterpart of the CI matrix entry that reruns the
    whole golden harness under ``REPRO_GOLDEN_JOBS=2``: chunking is
    deterministic and each worker runs the serial per-point kernel, so not
    a single ULP may differ.
    """
    system = systems[grid]
    solver = _solver_options(REFERENCE_BACKEND)
    serial = FrequencyAnalysis(omega_min=1e5, omega_max=1e10, n_points=7,
                               solver=solver)
    parallel = FrequencyAnalysis(omega_min=1e5, omega_max=1e10, n_points=7,
                                 solver=solver, engine=SweepEngine(jobs=2))
    assert np.array_equal(
        serial.sweep_entry(system, output=0, port=1).values,
        parallel.sweep_entry(system, output=0, port=1).values)
    assert np.array_equal(serial.sweep(system).values,
                          parallel.sweep(system).values)


@pytest.mark.parametrize("grid", sorted(GRIDS))
def test_stored_rom_reproduces_pole_goldens(grid, systems, tmp_path):
    """A ROM round-tripped through the artifact store must still pin the
    golden BDSM pole spectrum — and match the in-memory ROM bit-for-bit.

    This is the persistence counterpart of the backend matrix above: the
    store may not perturb a single ULP of the model, so the reloaded ROM's
    observables are *identical* to the in-memory ones, which in turn match
    the stored goldens.
    """
    from repro.store import ModelStore

    path = golden_path(grid)
    if not path.exists():
        pytest.fail(f"golden file {path} missing; run "
                    "pytest tests/golden --update-golden")
    system = systems[grid]
    solver = _solver_options(REFERENCE_BACKEND)
    rom, _, _ = bdsm_reduce(system, N_MOMENTS,
                            options=BDSMOptions(solver=solver))

    store = ModelStore(tmp_path / "store")
    key = store.key_for(system, "BDSM", {"n_moments": N_MOMENTS})
    store.put(key, rom, method="BDSM")
    loaded = store.load(key)

    def poles_of(model) -> np.ndarray:
        vals = []
        for block in model.blocks:
            vals.extend(np.asarray(
                scipy.linalg.eig(block.G, block.C, right=False)))
        vals = np.asarray(vals, dtype=complex)
        return np.sort(vals.real) + 1j * np.sort(vals.imag)

    in_memory = poles_of(rom)
    reloaded = poles_of(loaded)
    assert np.array_equal(in_memory, reloaded), (
        "store round-trip perturbed the ROM spectrum")

    stored = _from_json({k: v for k, v in
                         json.loads(path.read_text()).items()
                         if k in RTOL})
    golden = stored["rom_poles"]
    scale = float(np.max(np.abs(golden))) or 1.0
    rtol = RTOL["rom_poles"]
    assert np.allclose(reloaded, golden, rtol=rtol, atol=rtol * scale), (
        f"{grid}: reloaded ROM poles deviate from golden by "
        f"{np.max(np.abs(reloaded - golden)):.3e}")


@pytest.mark.parametrize("grid", sorted(GRIDS))
def test_partitioned_reduce_matches_goldens(grid, systems):
    """A k=2 partitioned reduce must pin the existing DC/TF goldens.

    The partitioned macromodel is a different approximation than the
    monolithic BDSM ROM (richer shard spaces, exactly-preserved interface
    states), so its poles are not comparable — but its DC solve and its
    transfer-function samples must track the *full-model* goldens tightly,
    which pins the subdomain extraction and the interface coupling
    assembly: any sign slip or dropped coupling block shows up here as a
    large TF deviation long before it would trip an accuracy test.
    """
    from repro.partition import partitioned_reduce

    path = golden_path(grid)
    if not path.exists():
        pytest.fail(f"golden file {path} missing; run "
                    "pytest tests/golden --update-golden")
    stored = _from_json({k: v for k, v in
                         json.loads(path.read_text()).items()
                         if k in RTOL})
    system = systems[grid]
    solver = _solver_options(REFERENCE_BACKEND)
    rom, _, _ = partitioned_reduce(
        system, N_MOMENTS, n_parts=2,
        options=BDSMOptions(solver=solver))

    # DC IR-drop voltages: moment 0 at s0=0 is matched exactly, so the
    # macromodel must reproduce the stored DC solve to golden tolerance.
    m = system.B.shape[1]
    loads = np.linspace(1e-3, 2e-3, m)
    dc = ir_drop_analysis(rom, loads).voltages
    golden_dc = stored["dc_voltages"]
    scale = float(np.max(np.abs(golden_dc))) or 1.0
    rtol = RTOL["dc_voltages"]
    assert np.allclose(dc, golden_dc, rtol=rtol, atol=rtol * scale), (
        f"{grid}: partitioned DC voltages deviate from golden by "
        f"{np.max(np.abs(dc - golden_dc)):.3e}")

    # Transfer samples over the golden band.
    sweep = FrequencyAnalysis(omega_min=1e5, omega_max=1e10, n_points=7,
                              engine=_sweep_engine())
    tf = sweep.sweep_entry(rom, output=0, port=1).values
    golden_tf = stored["tf_samples"]
    scale = float(np.max(np.abs(golden_tf))) or 1.0
    rtol = RTOL["tf_samples"]
    assert np.allclose(tf, golden_tf, rtol=rtol, atol=rtol * scale), (
        f"{grid}: partitioned TF samples deviate from golden by "
        f"{np.max(np.abs(tf - golden_tf)):.3e}")


@pytest.mark.parametrize("variant", ["interface-reduced", "two-level"])
@pytest.mark.parametrize("grid", sorted(GRIDS))
def test_interface_reduced_multilevel_matches_goldens(grid, variant,
                                                      systems):
    """Interface-reduced and 2-level reduces must pin the same goldens.

    The reduced separator basis and the recursive hierarchy are *extra*
    approximation stages on top of the k=2 partitioned reduce pinned
    above; on the golden grids their measured deviation from the stored
    DC/TF references is ~1e-13 (the shard + interface spans are
    numerically complete at this size), so passing at golden tolerance
    pins the whole interface-compression and recursion chain: any sign
    slip in ``W``-projected couplings or a mis-assembled child pencil
    shows up as a many-orders-of-magnitude jump."""
    from repro.partition import (
        PartitionedOptions,
        multilevel_reduce,
        partitioned_reduce,
    )

    path = golden_path(grid)
    if not path.exists():
        pytest.fail(f"golden file {path} missing; run "
                    "pytest tests/golden --update-golden")
    stored = _from_json({k: v for k, v in
                         json.loads(path.read_text()).items()
                         if k in RTOL})
    system = systems[grid]
    solver = _solver_options(REFERENCE_BACKEND)
    interface = PartitionedOptions(interface_order=N_MOMENTS,
                                   interface_tol=1e-8)
    if variant == "interface-reduced":
        rom, _, _ = partitioned_reduce(
            system, N_MOMENTS, n_parts=2, interface=interface,
            options=BDSMOptions(solver=solver))
        assert rom.is_interface_reduced
    else:
        rom, _, _ = multilevel_reduce(
            system, N_MOMENTS, levels=2, n_parts=2, interface=interface,
            options=BDSMOptions(solver=solver), min_states=16)
        assert rom.partition_info["levels"] == 2

    m = system.B.shape[1]
    loads = np.linspace(1e-3, 2e-3, m)
    dc = ir_drop_analysis(rom, loads).voltages
    golden_dc = stored["dc_voltages"]
    scale = float(np.max(np.abs(golden_dc))) or 1.0
    rtol = RTOL["dc_voltages"]
    assert np.allclose(dc, golden_dc, rtol=rtol, atol=rtol * scale), (
        f"{grid}/{variant}: DC voltages deviate from golden by "
        f"{np.max(np.abs(dc - golden_dc)):.3e}")

    sweep = FrequencyAnalysis(omega_min=1e5, omega_max=1e10, n_points=7,
                              engine=_sweep_engine())
    tf = sweep.sweep_entry(rom, output=0, port=1).values
    golden_tf = stored["tf_samples"]
    scale = float(np.max(np.abs(golden_tf))) or 1.0
    rtol = RTOL["tf_samples"]
    assert np.allclose(tf, golden_tf, rtol=rtol, atol=rtol * scale), (
        f"{grid}/{variant}: TF samples deviate from golden by "
        f"{np.max(np.abs(tf - golden_tf)):.3e}")


def test_goldens_match_reference_backend_exactly(systems):
    """The reference backend must reproduce its own goldens bit-tightly.

    Guards against accidental regeneration drift: if this fails while the
    backend comparisons pass, the seed grids or the analyses changed and the
    goldens need a reviewed ``--update-golden`` run.
    """
    for grid, system in systems.items():
        path = golden_path(grid)
        if not path.exists():
            pytest.fail(f"golden file {path} missing; run "
                        "pytest tests/golden --update-golden")
        stored = _from_json({k: v for k, v in
                             json.loads(path.read_text()).items()
                             if k in RTOL})
        actual = compute_observables(system, REFERENCE_BACKEND)
        for key, golden in stored.items():
            scale = float(np.max(np.abs(golden))) or 1.0
            assert np.allclose(actual[key], golden, rtol=1e-9,
                               atol=1e-9 * scale), (grid, key)
