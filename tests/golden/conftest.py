"""Fixtures shared by the golden-regression tests."""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def update_golden(request) -> bool:
    """True when the run was started with ``--update-golden``."""
    return bool(request.config.getoption("--update-golden"))
