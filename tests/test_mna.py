"""Unit tests for repro.circuit.mna (stamping and DescriptorSystem)."""

import numpy as np
import pytest

from repro.circuit import Netlist, assemble_mna
from repro.exceptions import StampingError
from repro.linalg.sparse_utils import is_symmetric


class TestStampingBasics:
    def test_dimensions(self, rc_ladder_system):
        sys = rc_ladder_system
        assert sys.size == 3                       # three nodes, no branches
        assert sys.n_ports == 1
        assert sys.n_outputs == 2
        assert sys.state_names == ["v(n1)", "v(n2)", "v(n3)"]

    def test_rc_grid_matrices_symmetric(self, rc_grid_system):
        # Pure RC grids stamp symmetric C and G (paper convention keeps it).
        assert is_symmetric(rc_grid_system.C)
        assert is_symmetric(rc_grid_system.G)

    def test_g_negative_semidefinite_in_paper_convention(self, rc_grid_system):
        # G = -G_mna with G_mna SPD for a grounded resistive grid.
        G = rc_grid_system.G.toarray()
        eigs = np.linalg.eigvalsh((G + G.T) / 2)
        assert np.all(eigs <= 1e-9)

    def test_inductors_add_branch_states(self, rlc_grid_system):
        names = rlc_grid_system.state_names
        assert any(name.startswith("i(Lpkg") for name in names)

    def test_output_matrix_selects_nodes(self, rc_ladder_system):
        L = rc_ladder_system.L.toarray()
        assert L.shape == (2, 3)
        assert np.allclose(L.sum(axis=1), 1.0)
        assert set(rc_ladder_system.output_names) == {"v(n1)", "v(n3)"}


class TestStampingValues:
    def test_resistive_divider_dc(self):
        # 1A into node a, a--1ohm--b, b--1ohm--gnd:  v_a = 2, v_b = 1 (sign:
        # the source draws current out of the node, so voltages are negative).
        net = Netlist(title="divider")
        net.add_resistor("R1", "a", "b", 1.0)
        net.add_resistor("R2", "b", "0", 1.0)
        net.add_capacitor("C1", "a", "0", 1e-12)
        net.add_current_source("I1", "a", "0", 1.0)
        net.set_output_nodes(["a", "b"])
        sys = assemble_mna(net)
        x = sys.dc_operating_point(np.array([1.0]))
        assert np.allclose(x, [-2.0, -1.0])

    def test_voltage_source_pins_node(self):
        net = Netlist(title="vdd")
        net.add_voltage_source("V1", "a", "0", 1.8)
        net.add_resistor("R1", "a", "b", 1.0)
        net.add_resistor("R2", "b", "0", 1.0)
        net.add_capacitor("C1", "b", "0", 1e-12)
        net.add_current_source("I1", "b", "0", 0.0)
        net.set_output_nodes(["a", "b"])
        sys = assemble_mna(net)
        x = sys.dc_operating_point()
        # node a is pinned at 1.8 V, node b sits at the divider midpoint
        assert x[0] == pytest.approx(1.8)
        assert x[1] == pytest.approx(0.9)

    def test_voltage_sources_as_inputs(self):
        net = Netlist(title="vdd-input")
        net.add_voltage_source("V1", "a", "0", 1.0)
        net.add_resistor("R1", "a", "0", 2.0)
        net.add_capacitor("C1", "a", "0", 1e-12)
        net.add_current_source("I1", "a", "0", 0.0)
        sys = assemble_mna(net, voltage_sources_as_inputs=True)
        assert sys.n_ports == 2
        assert sys.port_names == ["I1", "V1"]
        assert sys.const_input is None

    def test_transfer_function_of_rc_ladder(self, rc_ladder_system):
        # At DC the input impedance seen at n1 equals R0 (10 ohm): the series
        # chain into n2/n3 carries no DC current because nothing loads it.
        H0 = rc_ladder_system.transfer_function(0.0)
        assert H0.shape == (2, 1)
        assert H0[0, 0] == pytest.approx(-10.0)
        assert H0[1, 0] == pytest.approx(-10.0)

    def test_transfer_entry_matches_full(self, rc_grid_system):
        s = 1j * 1e8
        H = rc_grid_system.transfer_function(s)
        entry = rc_grid_system.transfer_entry(s, 2, 3)
        assert entry == pytest.approx(H[2, 3])


class TestDescriptorSystemInterface:
    def test_nnz_and_structure_report(self, rc_grid_system):
        report = rc_grid_system.structure_report()
        assert set(report) == {"C", "G", "B", "L"}
        assert rc_grid_system.nnz == sum(info.nnz for info in report.values())

    def test_with_outputs(self, rc_grid_system):
        import scipy.sparse as sp
        n = rc_grid_system.size
        new_L = sp.csr_matrix(np.ones((1, n)))
        other = rc_grid_system.with_outputs(new_L, ["sum"])
        assert other.n_outputs == 1
        assert other.output_names == ["sum"]
        assert other.n_ports == rc_grid_system.n_ports

    def test_dc_operating_point_wrong_length(self, rc_grid_system):
        with pytest.raises(StampingError):
            rc_grid_system.dc_operating_point(np.ones(3))

    def test_inconsistent_matrices_rejected(self):
        import scipy.sparse as sp
        from repro.circuit.mna import DescriptorSystem
        eye = sp.eye(3, format="csr")
        with pytest.raises(StampingError):
            DescriptorSystem(C=eye, G=sp.eye(4, format="csr"),
                             B=sp.csr_matrix((3, 1)), L=sp.csr_matrix((1, 3)))
        with pytest.raises(StampingError):
            DescriptorSystem(C=eye, G=eye, B=sp.csr_matrix((4, 1)),
                             L=sp.csr_matrix((1, 3)))
        with pytest.raises(StampingError):
            DescriptorSystem(C=eye, G=eye, B=sp.csr_matrix((3, 1)),
                             L=sp.csr_matrix((1, 4)))

    def test_netlist_without_sources_rejected(self):
        net = Netlist(title="no-input")
        net.add_resistor("R1", "a", "0", 1.0)
        net.add_capacitor("C1", "a", "0", 1e-12)
        with pytest.raises(Exception):
            assemble_mna(net)

    def test_transfer_paths_avoid_matrix_producing_todense(
            self, rc_grid_system, monkeypatch):
        """Hot paths use ``.toarray()`` (ndarray), never ``.todense()``
        (``np.matrix``); regression for the deprecated-API sweep."""
        import scipy.sparse as sp

        def banned(self, *args, **kwargs):
            raise AssertionError(".todense() called in a hot path")

        monkeypatch.setattr(sp.spmatrix, "todense", banned)
        H = rc_grid_system.transfer_function(1j * 1e7)
        assert type(H) is np.ndarray
        entry = rc_grid_system.transfer_entry(1j * 1e7, 0, 1)
        assert isinstance(entry, complex)
        assert entry == pytest.approx(H[0, 1])
