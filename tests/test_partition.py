"""Tests for the partitioned hierarchical reduction subsystem
(:mod:`repro.partition`): graph partitioning, subdomain extraction with
interface-port promotion, the parallel shard driver, and the coupled
:class:`~repro.partition.assemble.PartitionedROM` macromodel."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import make_benchmark
from repro.analysis import (
    FrequencyAnalysis,
    SourceBank,
    SweepEngine,
    TransientAnalysis,
    ir_drop_analysis,
)
from repro.analysis.sources import StepSource
from repro.circuit.mna import assemble_mna
from repro.circuit.powergrid import build_power_grid, make_multidomain_spec
from repro.core.bdsm import bdsm_reduce
from repro.exceptions import PartitionError
from repro.partition import (
    GridPartitioner,
    PartitionedROM,
    available_partitioners,
    extract_subdomains,
    partitioned_reduce,
    partitioned_store_options,
    register_partitioner,
    structure_adjacency,
)
from repro.partition.reduce import _project_subdomain
from repro.store import ModelStore
from repro.validation import max_relative_error, rom_agreement_report

OMEGAS = np.logspace(5, 9, 7)


@pytest.fixture(scope="module")
def multidomain_system():
    """A heterogeneous 24x24 grid: four R/C domains + a blockage void."""
    spec = make_multidomain_spec(24, 24, 10, seed=5, name="md-24x24")
    return assemble_mna(build_power_grid(spec))


# --------------------------------------------------------------------------- #
# Graph partitioning
# --------------------------------------------------------------------------- #
class TestGridPartitioner:
    def test_registry_lists_builtin_strategies(self):
        names = available_partitioners()
        assert "bfs" in names and "natural" in names

    @pytest.mark.parametrize("strategy", ["bfs", "natural"])
    def test_partition_covers_all_states(self, smoke_benchmark, strategy):
        result = GridPartitioner(k=4, strategy=strategy).partition(
            smoke_benchmark)
        n = smoke_benchmark.size
        covered = np.concatenate([*result.parts, result.interface])
        assert sorted(covered.tolist()) == list(range(n))
        assert result.k == 4 and len(result.parts) == 4
        assert result.strategy == strategy

    def test_internal_states_never_adjacent_across_parts(
            self, smoke_benchmark):
        result = GridPartitioner(k=3).partition(smoke_benchmark)
        adj = structure_adjacency(smoke_benchmark)
        owner = np.full(smoke_benchmark.size, -1)
        for part_idx, part in enumerate(result.parts):
            owner[part] = part_idx
        coo = adj.tocoo()
        for row, col in zip(coo.row, coo.col):
            if owner[row] >= 0 and owner[col] >= 0:
                assert owner[row] == owner[col], (
                    f"states {row} and {col} are adjacent but live in "
                    f"parts {owner[row]} and {owner[col]}")

    def test_bfs_parts_are_balanced(self, smoke_benchmark):
        result = GridPartitioner(k=4).partition(smoke_benchmark)
        assert result.balance < 2.0
        assert 0.0 < result.interface_fraction < 0.5

    def test_accepts_netlist_and_adjacency(self):
        from repro.circuit.benchmarks import make_benchmark_netlist

        netlist = make_benchmark_netlist("ckt1", scale="smoke")
        by_netlist = GridPartitioner(k=2).partition(netlist)
        system = assemble_mna(netlist)
        by_system = GridPartitioner(k=2).partition(system)
        assert by_netlist.n_states == by_system.n_states
        adj = structure_adjacency(system)
        by_adjacency = GridPartitioner(k=2).partition(adj)
        assert by_adjacency.n_states == system.size

    def test_describe_record(self, smoke_benchmark):
        info = GridPartitioner(k=2).partition(smoke_benchmark).describe()
        assert info["k"] == 2 and info["strategy"] == "bfs"
        assert info["interface"] > 0

    def test_k_validation(self):
        with pytest.raises(PartitionError):
            GridPartitioner(k=0)
        with pytest.raises(PartitionError):
            GridPartitioner(k=2, strategy="voronoi")

    def test_more_parts_than_states_rejected(self, rc_grid_system):
        with pytest.raises(PartitionError):
            GridPartitioner(k=10_000).partition(rc_grid_system)

    def test_custom_strategy_registration(self, rc_grid_system):
        @register_partitioner("_test_alternating")
        def alternating(adj, k):
            return np.arange(adj.shape[0]) % k

        try:
            result = GridPartitioner(
                k=2, strategy="_test_alternating").partition(rc_grid_system)
            assert result.strategy == "_test_alternating"
        finally:
            from repro.partition.graph import _STRATEGIES
            _STRATEGIES.pop("_test_alternating", None)

    def test_k1_has_empty_interface(self, rc_grid_system):
        result = GridPartitioner(k=1).partition(rc_grid_system)
        assert result.interface_size == 0
        assert result.parts[0].shape[0] == rc_grid_system.size


# --------------------------------------------------------------------------- #
# Extraction
# --------------------------------------------------------------------------- #
class TestExtraction:
    def test_shards_are_valid_descriptor_systems(self, smoke_benchmark):
        result = GridPartitioner(k=3).partition(smoke_benchmark)
        subdomains, separator = extract_subdomains(smoke_benchmark, result)
        assert len(subdomains) == 3
        for sub in subdomains:
            assert sub.system.size == sub.size
            assert sub.system.B.shape[1] >= sub.n_own_ports
            assert sub.n_interface_inputs > 0
        assert separator.size == result.interface_size
        assert separator.B.shape == (separator.size,
                                     smoke_benchmark.n_ports)

    def test_identity_bases_reassemble_exactly(self, smoke_benchmark):
        """With V_i = I the macromodel is a permutation of the original:
        the assembly/coupling path must reproduce the transfer function to
        machine precision for any k."""
        for k in (2, 4):
            result = GridPartitioner(k=k).partition(smoke_benchmark)
            subdomains, sep = extract_subdomains(smoke_benchmark, result)
            reduced = [_project_subdomain(sub, np.eye(sub.size))
                       for sub in subdomains]
            rom = PartitionedROM(reduced, C_ss=sep.C, G_ss=sep.G,
                                 B_s=sep.B, L_s=sep.L)
            s = 1j * 1e7
            H_full = smoke_benchmark.transfer_function(s)
            H_part = rom.transfer_function(s)
            scale = np.max(np.abs(H_full))
            assert np.max(np.abs(H_part - H_full)) / scale < 1e-12, k

    def test_partition_size_mismatch_rejected(self, smoke_benchmark,
                                              rc_grid_system):
        result = GridPartitioner(k=2).partition(rc_grid_system)
        with pytest.raises(PartitionError):
            extract_subdomains(smoke_benchmark, result)


# --------------------------------------------------------------------------- #
# Partitioned reduction driver
# --------------------------------------------------------------------------- #
class TestPartitionedReduce:
    @pytest.mark.parametrize("method", ["bdsm", "prima"])
    def test_matches_full_model(self, smoke_benchmark, method):
        rom, stats, seconds = partitioned_reduce(
            smoke_benchmark, 3, n_parts=3, method=method)
        assert max_relative_error(smoke_benchmark, rom, OMEGAS) < 1e-8
        assert stats.inner_products > 0
        assert seconds > 0.0
        assert rom.method == f"P-{method.upper()}"

    def test_dc_is_exact(self, smoke_benchmark):
        rom, _, _ = partitioned_reduce(smoke_benchmark, 2, n_parts=4)
        H0_full = smoke_benchmark.transfer_function(0.0)
        H0_rom = rom.transfer_function(0.0)
        scale = np.max(np.abs(H0_full))
        assert np.max(np.abs(H0_rom - H0_full)) / scale < 1e-10

    def test_parallel_shards_match_serial(self, smoke_benchmark):
        serial, _, _ = partitioned_reduce(smoke_benchmark, 3, n_parts=4)
        with SweepEngine(jobs=2) as engine:
            pooled, _, _ = partitioned_reduce(smoke_benchmark, 3,
                                              n_parts=4, engine=engine)
        via_workers, _, _ = partitioned_reduce(smoke_benchmark, 3,
                                              n_parts=4, n_workers=2)
        for other in (pooled, via_workers):
            assert other.size == serial.size
            for s in (0.0, 1j * 1e7, 1j * 1e9):
                assert np.allclose(other.transfer_function(s),
                                   serial.transfer_function(s),
                                   rtol=1e-12, atol=1e-300)

    def test_process_engine_rejected(self, smoke_benchmark):
        with SweepEngine(jobs=2, executor="process") as engine:
            with pytest.raises(PartitionError):
                partitioned_reduce(smoke_benchmark, 2, n_parts=2,
                                   engine=engine)

    def test_bad_arguments(self, smoke_benchmark):
        with pytest.raises(PartitionError):
            partitioned_reduce(smoke_benchmark, 0, n_parts=2)
        with pytest.raises(PartitionError):
            partitioned_reduce(smoke_benchmark, 2, method="svdmor")
        with pytest.raises(PartitionError):
            partitioned_reduce(smoke_benchmark, 2, n_parts=2, n_workers=0)

    def test_store_memoizes_shards(self, smoke_benchmark, tmp_path):
        store = ModelStore(tmp_path / "store")
        first, _, _ = partitioned_reduce(smoke_benchmark, 2, n_parts=3,
                                         store=store)
        assert store.stats().puts == 3
        assert store.stats().hits == 0
        second, _, _ = partitioned_reduce(smoke_benchmark, 2, n_parts=3,
                                          store=store)
        assert store.stats().hits == 3
        s = 1j * 1e8
        assert np.allclose(second.transfer_function(s),
                           first.transfer_function(s), rtol=1e-12)

    def test_store_keys_are_partition_aware(self, smoke_benchmark,
                                            tmp_path):
        store = ModelStore(tmp_path / "store")
        partitioned_reduce(smoke_benchmark, 2, n_parts=2, store=store)
        partitioned_reduce(smoke_benchmark, 2, n_parts=3, store=store)
        # Different layouts produce disjoint shard keys: no false hits.
        assert store.stats().hits == 0
        assert store.stats().puts == 5

    def test_store_options_record(self):
        options = partitioned_store_options(4, s0=0.0, method="bdsm")
        assert options["n_moments"] == 4
        assert options["keep_projection"] is True
        assert options["partition"]["scheme"] == "partitioned"
        with pytest.raises(PartitionError):
            partitioned_store_options(4, method="eks")

    def test_complex_output_matrix_preserved(self, rc_grid_system):
        """Complex ``L`` must survive partitioning (regression: the
        subdomain blocks used to float-coerce, silently dropping the
        imaginary part of every subdomain output row)."""
        rng = np.random.default_rng(0)
        L = rc_grid_system.L.toarray().astype(complex)
        L += 1j * rng.standard_normal(L.shape) * np.abs(L).max()
        system = rc_grid_system.with_outputs(sp.csr_matrix(L))
        rom, _, _ = partitioned_reduce(system, 3, n_parts=2)
        s = 1j * 1e7
        H_full = system.transfer_function(s)
        H_rom = rom.transfer_function(s)
        scale = np.max(np.abs(H_full))
        assert np.max(np.abs(H_rom - H_full)) / scale < 1e-8

    def test_keep_projection(self, rc_grid_system):
        rom, _, _ = partitioned_reduce(rc_grid_system, 2, n_parts=2,
                                       keep_projection=True)
        for sub in rom.subdomains:
            assert sub.basis is not None
            assert sub.basis.shape[1] == sub.order


# --------------------------------------------------------------------------- #
# The macromodel's query surface (analyses must be oblivious to sharding)
# --------------------------------------------------------------------------- #
class TestPartitionedROMQueries:
    @pytest.fixture(scope="class")
    def roms(self, multidomain_system):
        mono, _, _ = bdsm_reduce(multidomain_system, 3)
        part, _, _ = partitioned_reduce(multidomain_system, 3, n_parts=4)
        return mono, part

    def test_dimensions_and_structure(self, multidomain_system, roms):
        _, part = roms
        assert part.n_ports == multidomain_system.n_ports
        assert part.n_outputs == multidomain_system.n_outputs
        assert part.size == sum(s.order for s in part.subdomains) \
            + part.interface_size
        assert part.original_size == multidomain_system.size
        assert part.reusable
        # Assembled matrices are sparse and consistent.
        assert sp.issparse(part.C) and sp.issparse(part.G)
        assert part.C.shape == (part.size, part.size)
        assert part.B.shape == (part.size, part.n_ports)
        assert part.L.shape == (part.n_outputs, part.size)
        assert part.nnz > 0
        assert set(part.density()) == {"C", "G", "B", "L"}

    def test_transfer_entry_matches_matrix(self, roms):
        _, part = roms
        s = 1j * 3e7
        H = part.transfer_function(s)
        assert H.shape == (part.n_outputs, part.n_ports)
        for output, port in ((0, 0), (1, 2)):
            assert np.isclose(part.transfer_entry(s, output, port),
                              H[output, port], rtol=1e-10)
        with pytest.raises(PartitionError):
            part.transfer_entry(s, 0, part.n_ports)
        with pytest.raises(PartitionError):
            part.transfer_entry(s, part.n_outputs, 0)

    def test_schur_path_matches_assembled_dense(self, roms):
        """The hierarchical Schur evaluation must agree with a plain dense
        solve of the assembled bordered pencil."""
        _, part = roms
        dense = part.to_reduced_system()
        for s in (1j * 1e6, 1j * 1e9):
            assert np.allclose(part.transfer_function(s),
                               dense.transfer_function(s),
                               rtol=1e-8, atol=1e-300)

    def test_frequency_analysis_sweep(self, multidomain_system, roms):
        _, part = roms
        analysis = FrequencyAnalysis(omega_min=1e5, omega_max=1e9,
                                     n_points=5)
        sweep = analysis.sweep(part)
        reference = analysis.sweep(multidomain_system)
        assert np.max(sweep.relative_error_to(reference)) < 1e-8

    def test_ir_drop(self, multidomain_system, roms):
        _, part = roms
        loads = np.linspace(1e-3, 2e-3, multidomain_system.n_ports)
        full = ir_drop_analysis(multidomain_system, loads)
        reduced = ir_drop_analysis(part, loads)
        assert np.allclose(reduced.voltages, full.voltages, rtol=1e-8)
        assert reduced.worst()[1] >= 0.0

    def test_transient(self, multidomain_system, roms):
        _, part = roms
        bank = SourceBank.uniform(
            multidomain_system.n_ports,
            StepSource(amplitude=1e-3, rise_time=1e-12))
        transient = TransientAnalysis(t_stop=5e-12, dt=1e-12)
        full_run = transient.run(multidomain_system, bank)
        rom_run = transient.run(part, bank)
        assert rom_run.outputs.shape == full_run.outputs.shape
        scale = np.max(np.abs(full_run.outputs)) or 1.0
        assert np.max(np.abs(rom_run.outputs - full_run.outputs)) / scale \
            < 1e-6

    def test_summary_record(self, roms):
        _, part = roms
        summary = part.summary(mor_seconds=1.0)
        assert summary.method == "P-BDSM"
        assert summary.rom_size == part.size
        assert summary.extra["k"] == 4


# --------------------------------------------------------------------------- #
# Acceptance criterion: >= 64x64 multi-domain grid, <= 1e-6 agreement
# --------------------------------------------------------------------------- #
def test_acceptance_64x64_multidomain_matches_monolithic():
    """The PR's acceptance bar: on a >= 64x64 heterogeneous grid the
    partitioned macromodel must match the monolithic BDSM ROM's transfer
    function to <= 1e-6 relative error over the bench frequency grid."""
    spec = make_multidomain_spec(64, 64, 24, seed=3,
                                 name="multidomain-64x64")
    system = assemble_mna(build_power_grid(spec))
    assert system.size >= 64 * 64 * 0.9  # blockage voids remove some nodes
    mono, _, _ = bdsm_reduce(system, 4)
    part, _, _ = partitioned_reduce(system, 4, n_parts=4)
    report = rom_agreement_report(mono, part, OMEGAS)
    assert report["max_rel_error"] <= 1e-6, report
    # And both track the full model, so the agreement is not vacuous.
    assert max_relative_error(system, part, OMEGAS) < 1e-6


def test_partitioned_reduce_of_registered_benchmark():
    """Sharding composes with the registered ckt benchmarks as well."""
    system = make_benchmark("ckt2", scale="smoke")
    rom, _, _ = partitioned_reduce(system, 3, n_parts=4,
                                   partitioner="natural")
    assert max_relative_error(system, rom, OMEGAS) < 1e-8
    assert rom.partition_info["strategy"] == "natural"
