"""Unit tests for repro.analysis.frequency."""

import numpy as np
import pytest

from repro.analysis import FrequencyAnalysis
from repro.core import bdsm_reduce
from repro.exceptions import SimulationError
from repro.mor import prima_reduce


class TestFrequencyAnalysisSetup:
    def test_omega_grid_is_log_spaced(self):
        fa = FrequencyAnalysis(omega_min=1e3, omega_max=1e9, n_points=7)
        omegas = fa.omegas
        assert omegas.shape == (7,)
        ratios = omegas[1:] / omegas[:-1]
        assert np.allclose(ratios, ratios[0])

    def test_invalid_band_rejected(self):
        with pytest.raises(SimulationError):
            FrequencyAnalysis(omega_min=0.0, omega_max=1e9)
        with pytest.raises(SimulationError):
            FrequencyAnalysis(omega_min=1e9, omega_max=1e3)
        with pytest.raises(SimulationError):
            FrequencyAnalysis(omega_min=1e3, omega_max=1e9, n_points=1)


class TestSweeps:
    def test_full_sweep_shape(self, rc_grid_system):
        fa = FrequencyAnalysis(omega_min=1e6, omega_max=1e10, n_points=5)
        sweep = fa.sweep(rc_grid_system)
        assert sweep.values.shape == (5, rc_grid_system.n_outputs,
                                      rc_grid_system.n_ports)
        assert sweep.magnitude.shape == sweep.values.shape

    def test_entry_sweep_matches_full(self, rc_grid_system):
        fa = FrequencyAnalysis(omega_min=1e6, omega_max=1e10, n_points=4)
        full = fa.sweep(rc_grid_system)
        entry = fa.sweep_entry(rc_grid_system, output=0, port=1)
        assert np.allclose(entry.values, full.entry(0, 1))

    def test_relative_error_of_identical_sweeps_is_zero(self, rc_grid_system):
        fa = FrequencyAnalysis(omega_min=1e6, omega_max=1e10, n_points=4)
        sweep = fa.sweep_entry(rc_grid_system, 0, 0)
        assert np.allclose(sweep.relative_error_to(sweep), 0.0)

    def test_relative_error_shape_mismatch(self, rc_grid_system):
        fa = FrequencyAnalysis(omega_min=1e6, omega_max=1e10, n_points=4)
        a = fa.sweep_entry(rc_grid_system, 0, 0)
        b = fa.sweep(rc_grid_system)
        with pytest.raises(SimulationError):
            b.relative_error_to(a)

    def test_entry_extraction_errors(self, rc_grid_system):
        fa = FrequencyAnalysis(omega_min=1e6, omega_max=1e10, n_points=3)
        single = fa.sweep_entry(rc_grid_system, 0, 0)
        with pytest.raises(SimulationError):
            single.entry(1, 1)


class TestCompare:
    def test_compare_reports_all_candidates(self, rc_grid_system):
        fa = FrequencyAnalysis(omega_min=1e6, omega_max=1e10, n_points=4)
        bdsm_rom, _, _ = bdsm_reduce(rc_grid_system, 3)
        prima_rom, _, _ = prima_reduce(rc_grid_system, 3)
        report = fa.compare(rc_grid_system,
                            {"BDSM": bdsm_rom, "PRIMA": prima_rom},
                            output=0, port=1)
        assert set(report) == {"reference", "BDSM", "PRIMA"}
        assert "relative_error" in report["BDSM"]
        # moment-matched ROMs reproduce the low-frequency response closely
        assert report["BDSM"]["relative_error"][0] < 1e-6
        assert report["PRIMA"]["relative_error"][0] < 1e-6

    def test_rom_sweeps_track_full_model(self, rc_grid_system):
        fa = FrequencyAnalysis(omega_min=1e5, omega_max=1e9, n_points=5)
        rom, _, _ = bdsm_reduce(rc_grid_system, 4)
        full = fa.sweep_entry(rc_grid_system, 0, 0)
        reduced = fa.sweep_entry(rom, 0, 0)
        err = reduced.relative_error_to(full)
        assert np.max(err) < 1e-6
