"""Unit tests for repro.analysis.frequency."""

import inspect

import numpy as np
import pytest

from repro.analysis import FrequencyAnalysis
from repro.core import bdsm_reduce
from repro.exceptions import SimulationError
from repro.mor import prima_reduce


class TestFrequencyAnalysisSetup:
    def test_omega_grid_is_log_spaced(self):
        fa = FrequencyAnalysis(omega_min=1e3, omega_max=1e9, n_points=7)
        omegas = fa.omegas
        assert omegas.shape == (7,)
        ratios = omegas[1:] / omegas[:-1]
        assert np.allclose(ratios, ratios[0])

    def test_invalid_band_rejected(self):
        with pytest.raises(SimulationError):
            FrequencyAnalysis(omega_min=0.0, omega_max=1e9)
        with pytest.raises(SimulationError):
            FrequencyAnalysis(omega_min=1e9, omega_max=1e3)
        with pytest.raises(SimulationError):
            FrequencyAnalysis(omega_min=1e3, omega_max=1e9, n_points=1)


class TestSweeps:
    def test_full_sweep_shape(self, rc_grid_system):
        fa = FrequencyAnalysis(omega_min=1e6, omega_max=1e10, n_points=5)
        sweep = fa.sweep(rc_grid_system)
        assert sweep.values.shape == (5, rc_grid_system.n_outputs,
                                      rc_grid_system.n_ports)
        assert sweep.magnitude.shape == sweep.values.shape

    def test_entry_sweep_matches_full(self, rc_grid_system):
        fa = FrequencyAnalysis(omega_min=1e6, omega_max=1e10, n_points=4)
        full = fa.sweep(rc_grid_system)
        entry = fa.sweep_entry(rc_grid_system, output=0, port=1)
        assert np.allclose(entry.values, full.entry(0, 1))

    def test_relative_error_of_identical_sweeps_is_zero(self, rc_grid_system):
        fa = FrequencyAnalysis(omega_min=1e6, omega_max=1e10, n_points=4)
        sweep = fa.sweep_entry(rc_grid_system, 0, 0)
        assert np.allclose(sweep.relative_error_to(sweep), 0.0)

    def test_relative_error_shape_mismatch(self, rc_grid_system):
        fa = FrequencyAnalysis(omega_min=1e6, omega_max=1e10, n_points=4)
        a = fa.sweep_entry(rc_grid_system, 0, 0)
        b = fa.sweep(rc_grid_system)
        with pytest.raises(SimulationError):
            b.relative_error_to(a)

    def test_relative_error_different_grids_rejected(self, rc_grid_system):
        a = FrequencyAnalysis(omega_min=1e6, omega_max=1e10,
                              n_points=4).sweep_entry(rc_grid_system, 0, 0)
        b = FrequencyAnalysis(omega_min=1e5, omega_max=1e9,
                              n_points=4).sweep_entry(rc_grid_system, 0, 0)
        with pytest.raises(SimulationError, match="frequency grids"):
            a.relative_error_to(b)

    def test_relative_error_floor_handles_zero_reference(self):
        from repro.analysis import FrequencySweepResult
        omegas = np.array([1.0, 10.0])
        zero_ref = FrequencySweepResult(omegas=omegas,
                                        values=np.zeros(2, dtype=complex),
                                        output=0, port=0)
        other = FrequencySweepResult(omegas=omegas,
                                     values=np.ones(2, dtype=complex),
                                     output=0, port=0)
        err = other.relative_error_to(zero_ref, floor=1e-6)
        assert np.all(np.isfinite(err))
        assert np.allclose(err, 1e6)

    def test_full_matrix_relative_error_is_worst_entry(self, rc_grid_system):
        fa = FrequencyAnalysis(omega_min=1e6, omega_max=1e10, n_points=3)
        full = fa.sweep(rc_grid_system)
        perturbed = fa.sweep(rc_grid_system)
        perturbed.values = perturbed.values.copy()
        perturbed.values[1, 0, 0] *= 1.5
        err = perturbed.relative_error_to(full)
        assert err.shape == (3,)
        assert err[1] == pytest.approx(0.5)

    def test_entry_extraction_errors(self, rc_grid_system):
        fa = FrequencyAnalysis(omega_min=1e6, omega_max=1e10, n_points=3)
        single = fa.sweep_entry(rc_grid_system, 0, 0)
        with pytest.raises(SimulationError):
            single.entry(1, 1)


class TestCompare:
    def test_compare_reports_all_candidates(self, rc_grid_system):
        fa = FrequencyAnalysis(omega_min=1e6, omega_max=1e10, n_points=4)
        bdsm_rom, _, _ = bdsm_reduce(rc_grid_system, 3)
        prima_rom, _, _ = prima_reduce(rc_grid_system, 3)
        report = fa.compare(rc_grid_system,
                            {"BDSM": bdsm_rom, "PRIMA": prima_rom},
                            output=0, port=1)
        assert set(report) == {"reference", "BDSM", "PRIMA"}
        assert "relative_error" in report["BDSM"]
        # moment-matched ROMs reproduce the low-frequency response closely
        assert report["BDSM"]["relative_error"][0] < 1e-6
        assert report["PRIMA"]["relative_error"][0] < 1e-6

    def test_rom_sweeps_track_full_model(self, rc_grid_system):
        fa = FrequencyAnalysis(omega_min=1e5, omega_max=1e9, n_points=5)
        rom, _, _ = bdsm_reduce(rc_grid_system, 4)
        full = fa.sweep_entry(rc_grid_system, 0, 0)
        reduced = fa.sweep_entry(rom, 0, 0)
        err = reduced.relative_error_to(full)
        assert np.max(err) < 1e-6


class TestHotPathRegressions:
    def test_signature_not_probed_per_point(self, rc_grid_system,
                                            monkeypatch):
        """The ``solver`` keyword probe is memoized, not re-inspected on
        every frequency point of every sweep."""
        import repro.analysis.engine as engine_mod
        from repro.linalg.backends import SolverOptions

        calls = {"n": 0}
        real_signature = inspect.signature

        def counting_signature(fn, *args, **kwargs):
            calls["n"] += 1
            return real_signature(fn, *args, **kwargs)

        monkeypatch.setattr(inspect, "signature", counting_signature)
        engine_mod._accepts_solver_uncached.cache_clear()
        fa = FrequencyAnalysis(omega_min=1e6, omega_max=1e10, n_points=9,
                               solver=SolverOptions(backend="splu",
                                                    use_cache=False))
        fa.sweep(rc_grid_system)
        fa.sweep_entry(rc_grid_system, 0, 0)
        # one probe per distinct evaluator function, not one per point
        assert calls["n"] <= 2

    def test_rhs_densified_once_per_sweep(self, rc_grid_system):
        """The generic sweep path converts ``B`` to dense once, not once
        per frequency point."""
        calls = {"n": 0}
        dense_B = rc_grid_system.B.toarray()

        class CountingB:
            shape = rc_grid_system.B.shape

            def toarray(self):
                calls["n"] += 1
                return dense_B.copy()

        class Bare:
            C = rc_grid_system.C
            G = rc_grid_system.G
            L = rc_grid_system.L
            B = CountingB()

        fa = FrequencyAnalysis(omega_min=1e6, omega_max=1e10, n_points=7)
        sweep = fa.sweep(Bare())
        assert sweep.values.shape[0] == 7
        assert calls["n"] == 1
