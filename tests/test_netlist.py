"""Unit tests for repro.circuit.netlist."""

import pytest

from repro.circuit.elements import Resistor
from repro.circuit.netlist import Netlist
from repro.exceptions import CircuitError


def _minimal_netlist():
    net = Netlist(title="minimal")
    net.add_resistor("R1", "a", "0", 1.0)
    net.add_capacitor("C1", "a", "0", 1e-9)
    net.add_current_source("I1", "a", "0", 1e-3)
    return net


class TestConstruction:
    def test_convenience_adders(self):
        net = Netlist()
        net.add_resistor("R1", "a", "b", 2.0)
        net.add_capacitor("C1", "b", "0", 1e-12)
        net.add_inductor("L1", "a", "c", 1e-9)
        net.add_current_source("I1", "c", "0", 1.0)
        net.add_voltage_source("V1", "a", "0", 1.8)
        assert len(net) == 5
        assert net.summary() == {
            "nodes": 3, "resistors": 1, "capacitors": 1, "inductors": 1,
            "current_sources": 1, "voltage_sources": 1}

    def test_duplicate_names_rejected(self):
        net = Netlist()
        net.add_resistor("R1", "a", "0", 1.0)
        with pytest.raises(CircuitError):
            net.add_resistor("R1", "b", "0", 1.0)

    def test_only_elements_accepted(self):
        with pytest.raises(CircuitError):
            Netlist().add("not an element")  # type: ignore[arg-type]

    def test_contains_and_getitem(self):
        net = _minimal_netlist()
        assert "R1" in net
        assert isinstance(net["R1"], Resistor)
        with pytest.raises(KeyError):
            net["R99"]

    def test_iteration_order_preserved(self):
        net = _minimal_netlist()
        assert [e.name for e in net] == ["R1", "C1", "I1"]


class TestNodesAndPorts:
    def test_nodes_exclude_ground(self):
        net = _minimal_netlist()
        assert net.nodes() == ["a"]
        assert net.n_nodes == 1

    def test_n_ports_counts_current_sources(self):
        net = _minimal_netlist()
        net.add_current_source("I2", "a", "0", 1.0)
        assert net.n_ports == 2

    def test_default_output_nodes_are_port_nodes(self):
        net = _minimal_netlist()
        assert net.output_nodes == ["a"]

    def test_set_output_nodes(self):
        net = _minimal_netlist()
        net.add_resistor("R2", "a", "b", 1.0)
        net.add_capacitor("C2", "b", "0", 1e-9)
        net.set_output_nodes(["b"])
        assert net.output_nodes == ["b"]

    def test_set_unknown_output_node_rejected(self):
        net = _minimal_netlist()
        with pytest.raises(CircuitError):
            net.set_output_nodes(["zz"])


class TestValidation:
    def test_valid_netlist_passes(self):
        _minimal_netlist().validate()

    def test_empty_netlist_rejected(self):
        with pytest.raises(CircuitError):
            Netlist().validate()

    def test_missing_ground_rejected(self):
        net = Netlist()
        net.add_resistor("R1", "a", "b", 1.0)
        net.add_resistor("R2", "a", "b", 1.0)
        net.add_current_source("I1", "a", "b", 1.0)
        with pytest.raises(CircuitError, match="ground"):
            net.validate()

    def test_dangling_node_rejected(self):
        net = _minimal_netlist()
        net.add_resistor("R2", "a", "dangling", 1.0)
        with pytest.raises(CircuitError, match="dangling"):
            net.validate()

    def test_no_sources_rejected(self):
        net = Netlist()
        net.add_resistor("R1", "a", "0", 1.0)
        net.add_resistor("R2", "a", "0", 1.0)
        with pytest.raises(CircuitError, match="source"):
            net.validate()
