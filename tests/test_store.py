"""Tests for the ROM artifact layer and the fingerprint-keyed model store."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np
import pytest

from repro import (
    ModelStore,
    ReducedSystem,
    bdsm_reduce,
    load_artifact,
    make_benchmark,
    prima_reduce,
    save_artifact,
)
from repro.exceptions import ValidationError
from repro.mor.base import ReductionSummary
from repro.store import SCHEMA_VERSION, StoreStats, artifact_meta


@pytest.fixture(scope="module")
def system():
    return make_benchmark("ckt1", scale="smoke")


@pytest.fixture(scope="module")
def bdsm_rom(system):
    rom, _, _ = bdsm_reduce(system, 3)
    return rom


# --------------------------------------------------------------------------- #
# Artifact round-trips
# --------------------------------------------------------------------------- #
class TestArtifactRoundTrip:
    def test_bdsm_rom_bit_identical(self, bdsm_rom, tmp_path):
        path = save_artifact(bdsm_rom, tmp_path / "rom.npz")
        loaded = load_artifact(path)
        assert loaded.n_blocks == bdsm_rom.n_blocks
        assert loaded.size == bdsm_rom.size
        assert loaded.s0 == bdsm_rom.s0
        assert loaded.n_moments == bdsm_rom.n_moments
        assert loaded.original_size == bdsm_rom.original_size
        assert loaded.name == bdsm_rom.name
        for got, want in zip(loaded.blocks, bdsm_rom.blocks):
            assert got.index == want.index
            assert np.array_equal(got.C, want.C)
            assert np.array_equal(got.G, want.G)
            assert np.array_equal(got.b, want.b)
            assert np.array_equal(got.L, want.L)
        for s in (1j * 1e6, 1j * 1e9):
            assert np.array_equal(loaded.transfer_function(s),
                                  bdsm_rom.transfer_function(s))

    def test_bdsm_rom_with_bases(self, system, tmp_path):
        from repro import BDSMOptions
        rom, _, _ = bdsm_reduce(system, 2,
                                options=BDSMOptions(keep_projection=True))
        loaded = load_artifact(save_artifact(rom, tmp_path / "rom.npz"))
        for got, want in zip(loaded.blocks, rom.blocks):
            assert got.basis is not None
            assert np.array_equal(got.basis, want.basis)
        z = np.linspace(0.0, 1.0, rom.size)
        assert np.array_equal(loaded.reconstruct_state(z),
                              rom.reconstruct_state(z))

    def test_reduced_system_roundtrip(self, system, tmp_path):
        rom, _, _ = prima_reduce(system, 2, keep_projection=True)
        loaded = load_artifact(save_artifact(rom, tmp_path / "prima.npz"))
        assert isinstance(loaded, ReducedSystem)
        for name in ("C", "G", "B", "L", "projection"):
            assert np.array_equal(getattr(loaded, name), getattr(rom, name))
        assert loaded.const_input is None or np.array_equal(
            loaded.const_input, rom.const_input)
        assert loaded.method == "PRIMA"
        assert loaded.s0 == rom.s0
        s = 1j * 1e8
        assert np.array_equal(loaded.transfer_function(s),
                              rom.transfer_function(s))

    def test_complex_s0_roundtrip(self, system, tmp_path):
        """A complex-s0 PRIMA ROM (real rational-Arnoldi split) must stay
        accurate near its expansion point and round-trip losslessly."""
        import warnings
        s0 = 1e6 + 2e6j
        with warnings.catch_warnings():
            # The split basis keeps the model real without discarding the
            # imaginary part, so no ComplexWarning may fire.
            warnings.simplefilter("error")
            rom, _, _ = prima_reduce(system, 2, s0=s0)
        H_rom = rom.transfer_function(s0)
        H_full = system.transfer_function(s0)
        scale = float(np.max(np.abs(H_full)))
        assert np.max(np.abs(H_rom - H_full)) <= 1e-6 * scale
        loaded = load_artifact(save_artifact(rom, tmp_path / "c.npz"))
        assert loaded.s0 == s0
        assert np.array_equal(loaded.transfer_function(s0), H_rom)

    def test_summary_roundtrip(self, tmp_path):
        summary = ReductionSummary(
            method="BDSM", benchmark="ckt1", original_size=156,
            original_ports=12, rom_size=36, rom_nnz=252, matched_moments=3,
            reusable=True, mor_seconds=0.01, ortho_inner_products=72,
            status="ok", notes="", extra={"scale": "smoke"})
        loaded = load_artifact(save_artifact(summary, tmp_path / "s.npz"))
        assert loaded == summary

    def test_unsupported_type_rejected(self, tmp_path):
        with pytest.raises(ValidationError, match="cannot serialize"):
            save_artifact(object(), tmp_path / "x.npz")

    def test_artifact_meta_reports_schema_and_kind(self, bdsm_rom, tmp_path):
        path = save_artifact(bdsm_rom, tmp_path / "rom.npz")
        meta = artifact_meta(path)
        assert meta["schema"] == SCHEMA_VERSION
        assert meta["kind"] == "bdsm_rom"
        assert meta["fingerprint"]


class TestArtifactRejection:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ValidationError, match="no such artifact"):
            load_artifact(tmp_path / "missing.npz")

    def test_truncated_artifact(self, bdsm_rom, tmp_path):
        path = save_artifact(bdsm_rom, tmp_path / "rom.npz")
        raw = path.read_bytes()
        path.write_bytes(raw[:len(raw) // 2])
        with pytest.raises(ValidationError):
            load_artifact(path)

    def test_corrupted_payload_fails_integrity_check(self, bdsm_rom,
                                                     tmp_path):
        # Rewrite the container with one payload array perturbed but the
        # original fingerprint kept: only the integrity check can catch it.
        path = save_artifact(bdsm_rom, tmp_path / "rom.npz")
        with np.load(path, allow_pickle=False) as data:
            arrays = {key: data[key] for key in data.files}
        arrays["block0_C"] = arrays["block0_C"] + 1e-9
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValidationError, match="integrity check"):
            load_artifact(path)

    def test_garbage_bytes_rejected(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(ValidationError):
            load_artifact(path)

    def test_schema_version_mismatch(self, bdsm_rom, tmp_path):
        path = save_artifact(bdsm_rom, tmp_path / "rom.npz")
        with np.load(path, allow_pickle=False) as data:
            arrays = {key: data[key] for key in data.files}
        meta = json.loads(str(arrays["__meta__"][0]))
        meta["schema"] = SCHEMA_VERSION + 1
        arrays["__meta__"] = np.asarray([json.dumps(meta)])
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValidationError, match="schema version"):
            load_artifact(path)

    def test_npz_without_metadata_rejected(self, tmp_path):
        path = tmp_path / "plain.npz"
        np.savez_compressed(path, foo=np.ones(3))
        with pytest.raises(ValidationError, match="missing metadata"):
            load_artifact(path)


# --------------------------------------------------------------------------- #
# ModelStore
# --------------------------------------------------------------------------- #
class TestModelStore:
    def test_memoized_reduce_hits_across_instances(self, system, tmp_path):
        root = tmp_path / "store"
        first = ModelStore(root)
        rom_cold, stats_cold, _ = bdsm_reduce(system, 3, store=first)
        assert first.stats().misses == 1 and first.stats().puts == 1
        # A separate instance over the same directory emulates a fresh
        # process: it must hit without re-reducing.
        second = ModelStore(root)
        rom_warm, stats_warm, _ = bdsm_reduce(system, 3, store=second)
        assert second.stats().hits == 1 and second.stats().puts == 0
        assert stats_warm.inner_products == 0  # nothing was orthogonalized
        s = 1j * 1e7
        assert np.array_equal(rom_warm.transfer_function(s),
                              rom_cold.transfer_function(s))

    def test_key_sensitivity(self, system, tmp_path):
        store = ModelStore(tmp_path / "store")
        base = store.key_for(system, "BDSM", {"n_moments": 3})
        assert store.key_for(system, "BDSM", {"n_moments": 4}) != base
        assert store.key_for(system, "PRIMA", {"n_moments": 3}) != base
        other = make_benchmark("ckt2", scale="smoke")
        assert store.key_for(other, "BDSM", {"n_moments": 3}) != base
        # method casing and option ordering must not matter
        assert store.key_for(system, "bdsm", {"n_moments": 3}) == base

    def test_prima_memoization(self, system, tmp_path):
        store = ModelStore(tmp_path / "store")
        rom_cold, _, _ = prima_reduce(system, 2, store=store)
        rom_warm, _, _ = prima_reduce(system, 2, store=store)
        assert store.stats().hits == 1
        assert np.array_equal(rom_warm.C, rom_cold.C)

    def test_missing_root_rejected_without_create(self, tmp_path):
        with pytest.raises(ValidationError, match="no model store"):
            ModelStore(tmp_path / "absent", create=False)

    def test_root_collision_with_file_rejected(self, tmp_path):
        stray = tmp_path / "stray"
        stray.write_text("not a directory")
        with pytest.raises(ValidationError, match="not a directory"):
            ModelStore(stray)

    def test_strict_load_raises_for_unknown_key(self, tmp_path):
        store = ModelStore(tmp_path / "store")
        with pytest.raises(ValidationError, match="no entry"):
            store.load("feedfacedeadbeef")

    def test_corrupted_entry_counts_as_miss(self, system, tmp_path):
        store = ModelStore(tmp_path / "store")
        bdsm_reduce(system, 3, store=store)
        entry = store.entries()[0]
        entry.path.write_bytes(b"corrupted")
        assert store.fetch_key(entry.key) is None
        assert store.stats().misses == 2  # initial miss + corrupted fetch
        # ...and the memoized path transparently rebuilds and overwrites.
        rom, _, _ = bdsm_reduce(system, 3, store=store)
        assert rom.size > 0
        assert store.fetch_key(entry.key) is not None

    def test_lru_eviction_by_size_budget(self, tmp_path):
        systems = [make_benchmark(name, scale="smoke")
                   for name in ("ckt1", "ckt2", "ckt3")]
        probe = ModelStore(tmp_path / "probe")
        sizes = []
        for sysm in systems:
            rom, _, _ = bdsm_reduce(sysm, 2)
            key = probe.key_for(sysm, "BDSM", {"n_moments": 2})
            path = probe.put(key, rom, method="BDSM")
            sizes.append(path.stat().st_size)
        # Budget fits roughly two of the three artifacts.
        budget = sizes[1] + sizes[2] + sizes[0] // 2
        store = ModelStore(tmp_path / "store", max_bytes=budget)
        for sysm in systems:
            bdsm_reduce(sysm, 2, store=store)
        assert store.stats().evictions >= 1
        assert store.total_bytes() <= budget
        # The most recently stored entry must have survived.
        key3 = store.key_for(systems[2], "BDSM",
                             {"n_moments": 2, "s0": complex(0.0),
                              "deflation_tol": 1e-12,
                              "keep_projection": False})
        assert store.contains(key3)

    def test_hit_refreshes_lru_order(self, tmp_path):
        store = ModelStore(tmp_path / "store")
        systems = [make_benchmark(name, scale="smoke")
                   for name in ("ckt1", "ckt2")]
        keys = []
        for sysm in systems:
            rom, _, _ = bdsm_reduce(sysm, 2)
            key = store.key_for(sysm, "BDSM", {"n_moments": 2})
            store.put(key, rom, method="BDSM")
            keys.append(key)
        # Touch the older entry; it must become most-recently-used.
        os.utime(store.artifact_path(keys[0]),
                 (os.path.getatime(store.artifact_path(keys[0])),
                  os.path.getmtime(store.artifact_path(keys[1])) + 10))
        assert store.entries()[-1].key == keys[0]

    def test_clear_removes_everything(self, system, tmp_path):
        store = ModelStore(tmp_path / "store")
        bdsm_reduce(system, 2, store=store)
        assert store.clear() == 1
        assert store.entries() == []
        assert store.total_bytes() == 0

    def test_stats_snapshot_is_isolated(self, tmp_path):
        store = ModelStore(tmp_path / "store")
        snap = store.stats()
        snap.hits = 99
        assert store.stats().hits == 0
        assert isinstance(snap, StoreStats)

    def test_concurrent_get_or_reduce_is_safe(self, system, tmp_path):
        """Hammer one key from many threads: no torn artifacts, every
        caller gets a usable, numerically identical ROM."""
        store = ModelStore(tmp_path / "store")

        def build():
            rom, _, _ = bdsm_reduce(system, 2)
            return rom

        def task(_):
            model, from_store = store.get_or_reduce(
                system, "BDSM", {"n_moments": 2}, build)
            return model.transfer_function(1j * 1e7)

        with ThreadPoolExecutor(max_workers=8) as pool:
            samples = list(pool.map(task, range(16)))
        for H in samples[1:]:
            assert np.array_equal(H, samples[0])
        stats = store.stats()
        assert stats.hits + stats.misses == 16
        assert stats.hits >= 1
        assert len(store.entries()) == 1

    def test_concurrent_writers_last_writer_wins_cleanly(self, tmp_path):
        """Concurrent puts to one key must never produce a torn artifact."""
        store = ModelStore(tmp_path / "store")
        system = make_benchmark("ckt1", scale="smoke")
        rom, _, _ = bdsm_reduce(system, 2)
        key = "0123456789abcdef"

        def write(_):
            store.put(key, rom, method="BDSM")
            return store.load(key)

        with ThreadPoolExecutor(max_workers=6) as pool:
            loaded = list(pool.map(write, range(12)))
        for model in loaded:
            assert np.array_equal(model.transfer_function(1j * 1e7),
                                  rom.transfer_function(1j * 1e7))


# --------------------------------------------------------------------------- #
# Acceptance: fresh-process reload is bit-identical
# --------------------------------------------------------------------------- #
_CHILD_SCRIPT = textwrap.dedent("""
    import json, sys
    import numpy as np
    from repro.store import load_artifact

    rom = load_artifact(sys.argv[1])
    omegas = np.logspace(5, 9, 5)
    H = np.stack([rom.transfer_function(1j * w) for w in omegas])
    json.dump({"re": H.real.tolist(), "im": H.imag.tolist()}, sys.stdout)
""")


def test_fresh_process_reload_reproduces_samples_bit_identically(
        bdsm_rom, tmp_path):
    """A ROM saved to the store and reloaded in a *fresh process* must
    reproduce transfer-function samples bit-identically (JSON float
    round-trips are exact, so the comparison really is bitwise)."""
    store = ModelStore(tmp_path / "store")
    key = "a" * 32
    store.put(key, bdsm_rom, method="BDSM")
    artifact = store.artifact_path(key)

    omegas = np.logspace(5, 9, 5)
    parent = np.stack([bdsm_rom.transfer_function(1j * w) for w in omegas])

    src_dir = Path(__file__).resolve().parents[1] / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(src_dir) + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else str(src_dir))
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT, str(artifact)],
        capture_output=True, text=True, env=env, timeout=120)
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(proc.stdout)
    child = np.asarray(payload["re"]) + 1j * np.asarray(payload["im"])
    assert np.array_equal(parent, child)
