"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import (
    Netlist,
    PowerGridSpec,
    assemble_mna,
    build_power_grid,
    make_benchmark,
)


@pytest.fixture(scope="session")
def rc_grid_system():
    """A small pure-RC power grid (no package inductance), ~40 states."""
    spec = PowerGridSpec(rows=6, cols=6, n_ports=6, n_pads=4,
                         package_inductance=0.0, seed=7, name="rc-grid")
    return assemble_mna(build_power_grid(spec))


@pytest.fixture(scope="session")
def rlc_grid_system():
    """A small RLC power grid with package inductance, ~60 states."""
    spec = PowerGridSpec(rows=7, cols=7, n_ports=8, n_pads=4,
                         package_inductance=1e-12, seed=11, name="rlc-grid")
    return assemble_mna(build_power_grid(spec))


@pytest.fixture(scope="session")
def smoke_benchmark():
    """The ckt1 benchmark at smoke scale (~150 states, 12 ports)."""
    return make_benchmark("ckt1", scale="smoke")


@pytest.fixture()
def rc_ladder_netlist():
    """A 3-stage RC ladder with one current-source port, built by hand.

    Node chain: in -> n1 -> n2 -> n3, each stage 1 ohm / 1 uF to ground,
    driven by a 1 mA current source at n1.  Small enough for analytic
    cross-checks.
    """
    net = Netlist(title="rc-ladder")
    net.add_resistor("R0", "n1", "0", 10.0)
    net.add_resistor("R1", "n1", "n2", 1.0)
    net.add_resistor("R2", "n2", "n3", 1.0)
    net.add_capacitor("C1", "n1", "0", 1e-6)
    net.add_capacitor("C2", "n2", "0", 1e-6)
    net.add_capacitor("C3", "n3", "0", 1e-6)
    net.add_current_source("I1", "n1", "0", 1e-3)
    net.set_output_nodes(["n1", "n3"])
    return net


@pytest.fixture()
def rc_ladder_system(rc_ladder_netlist):
    """Descriptor system of the hand-built RC ladder."""
    return assemble_mna(rc_ladder_netlist)


@pytest.fixture()
def single_rc_netlist():
    """A single parallel RC driven by one current source (analytic model).

    v(t) for a current step I is I*R*(1 - exp(-t/(R*C))).
    """
    net = Netlist(title="single-rc")
    net.add_resistor("R1", "n1", "0", 100.0)
    net.add_capacitor("C1", "n1", "0", 1e-6)
    net.add_current_source("I1", "n1", "0", 1e-3)
    net.set_output_nodes(["n1"])
    return net


@pytest.fixture()
def rng():
    """Deterministic RNG for tests that need random data."""
    return np.random.default_rng(12345)
