"""Blocked vs. column-wise orthogonalisation parity at the reducer level.

The blocked BLAS-3 kernel must be a drop-in for the column-wise reference:
same deflation decisions, same spans (hence ROM poles and transfer samples
equal within roundoff — the bases differ only by an orthogonal change of
reduced coordinates), and the same :class:`OrthoStats` counters so the
paper's Fig. 2 cost comparison is kernel-independent.
"""

import numpy as np
import pytest
import scipy.linalg

from repro.analysis.engine import SweepEngine
from repro.core.bdsm import BDSMOptions, bdsm_reduce
from repro.exceptions import DeflationError, ReductionError
from repro.linalg.krylov import (
    ShiftedOperator,
    block_krylov_basis,
    column_clustered_krylov_bases,
)
from repro.mor.prima import prima_reduce

N_MOMENTS = 3


def _stats_tuple(stats):
    return (stats.inner_products, stats.axpy_updates,
            stats.normalizations, stats.deflations)


def _sorted_poles(rom) -> np.ndarray:
    """Block-pencil spectrum, real/imag parts sorted independently
    (conjugate pairs may swap order under roundoff)."""
    poles = []
    for block in rom.blocks:
        vals = scipy.linalg.eig(block.G, block.C, right=False)
        poles.extend(np.asarray(vals))
    poles = np.asarray(poles, dtype=complex)
    return np.sort(poles.real) + 1j * np.sort(poles.imag)


def _same_span(a: np.ndarray, b: np.ndarray, atol: float = 1e-8) -> bool:
    if a.shape != b.shape:
        return False
    return (np.allclose(a @ (a.conj().T @ b), b, atol=atol)
            and np.allclose(b @ (b.conj().T @ a), a, atol=atol))


GRID_FIXTURES = ["rc_grid_system", "rlc_grid_system"]


@pytest.mark.parametrize("grid", GRID_FIXTURES)
class TestKrylovKernelParity:
    def test_block_krylov_basis(self, grid, request):
        system = request.getfixturevalue(grid)
        results = {}
        for kernel in ("blocked", "columnwise"):
            operator = ShiftedOperator(system.C, system.G, s0=0.0)
            results[kernel] = block_krylov_basis(
                operator, system.B, N_MOMENTS, kernel=kernel)
        blocked, columnwise = results["blocked"], results["columnwise"]
        assert blocked.size == columnwise.size
        assert blocked.deflated == columnwise.deflated
        assert _stats_tuple(blocked.stats) == _stats_tuple(columnwise.stats)
        assert _same_span(blocked.basis, columnwise.basis)

    def test_column_clustered_bases(self, grid, request):
        system = request.getfixturevalue(grid)
        results = {}
        for kernel in ("blocked", "columnwise"):
            operator = ShiftedOperator(system.C, system.G, s0=0.0)
            results[kernel] = column_clustered_krylov_bases(
                operator, system.B, N_MOMENTS, kernel=kernel)
        bases_b, stats_b, deflated_b = results["blocked"]
        bases_c, stats_c, deflated_c = results["columnwise"]
        assert deflated_b == deflated_c
        assert _stats_tuple(stats_b) == _stats_tuple(stats_c)
        assert len(bases_b) == len(bases_c)
        for group_b, group_c in zip(bases_b, bases_c):
            assert group_b.shape == group_c.shape
            assert _same_span(group_b, group_c)


@pytest.mark.parametrize("grid", GRID_FIXTURES)
class TestReducerKernelParity:
    def test_bdsm_poles_and_transfer(self, grid, request):
        system = request.getfixturevalue(grid)
        roms = {}
        for kernel in ("blocked", "columnwise"):
            options = BDSMOptions(ortho_kernel=kernel)
            roms[kernel], _, _ = bdsm_reduce(system, N_MOMENTS,
                                             options=options)
        blocked, columnwise = roms["blocked"], roms["columnwise"]
        assert [b.order for b in blocked.blocks] == \
            [b.order for b in columnwise.blocks]
        poles_b, poles_c = _sorted_poles(blocked), _sorted_poles(columnwise)
        scale = np.max(np.abs(poles_c))
        assert np.allclose(poles_b, poles_c, rtol=1e-6, atol=1e-6 * scale)
        for s in (0.0, 1j * 1e6, 1j * 1e9):
            assert np.allclose(blocked.transfer_function(s),
                               columnwise.transfer_function(s),
                               rtol=1e-8, atol=1e-12)

    def test_prima_poles_and_transfer(self, grid, request):
        system = request.getfixturevalue(grid)
        roms = {}
        for kernel in ("blocked", "columnwise"):
            roms[kernel], _, _ = prima_reduce(system, N_MOMENTS,
                                              ortho_kernel=kernel)
        blocked, columnwise = roms["blocked"], roms["columnwise"]
        assert blocked.size == columnwise.size
        eig_b = scipy.linalg.eig(blocked.G, blocked.C, right=False)
        eig_c = scipy.linalg.eig(columnwise.G, columnwise.C, right=False)
        poles_b = np.sort(eig_b.real) + 1j * np.sort(eig_b.imag)
        poles_c = np.sort(eig_c.real) + 1j * np.sort(eig_c.imag)
        scale = np.max(np.abs(poles_c))
        assert np.allclose(poles_b, poles_c, rtol=1e-6, atol=1e-6 * scale)
        for s in (0.0, 1j * 1e6, 1j * 1e9):
            assert np.allclose(blocked.transfer_function(s),
                               columnwise.transfer_function(s),
                               rtol=1e-8, atol=1e-12)


class TestRequireFullRankParity:
    def test_blocked_kernel_raises_on_dependent_candidates(
            self, rc_grid_system):
        # Requesting more moments than the reachable subspace supports
        # must deflate; with require_full_rank the blocked kernel raises
        # the same DeflationError the column-wise kernel does.
        system = rc_grid_system
        order = system.size  # guaranteed to exhaust the subspace
        for kernel in ("blocked", "columnwise"):
            operator = ShiftedOperator(system.C, system.G, s0=0.0)
            with pytest.raises(DeflationError):
                block_krylov_basis(operator, system.B, order,
                                   require_full_rank=True, kernel=kernel)

    def test_unknown_kernel_rejected(self, rc_grid_system):
        operator = ShiftedOperator(rc_grid_system.C, rc_grid_system.G,
                                   s0=0.0)
        with pytest.raises(ValueError, match="kernel"):
            block_krylov_basis(operator, rc_grid_system.B, 2,
                               kernel="magic")
        with pytest.raises(ValueError, match="kernel"):
            column_clustered_krylov_bases(operator, rc_grid_system.B, 2,
                                          kernel="magic")


class TestPooledClusterParity:
    def test_engine_pooled_chunks_match_serial(self, rlc_grid_system):
        serial, serial_stats, _ = bdsm_reduce(
            rlc_grid_system, N_MOMENTS,
            options=BDSMOptions(port_chunk_size=3))
        with SweepEngine(jobs=2) as engine:
            pooled, pooled_stats, _ = bdsm_reduce(
                rlc_grid_system, N_MOMENTS,
                options=BDSMOptions(port_chunk_size=3, engine=engine))
        assert _stats_tuple(serial_stats) == _stats_tuple(pooled_stats)
        assert len(serial.blocks) == len(pooled.blocks)
        for blk_s, blk_p in zip(serial.blocks, pooled.blocks):
            assert blk_s.index == blk_p.index
            assert np.array_equal(blk_s.C, blk_p.C)
            assert np.array_equal(blk_s.G, blk_p.G)
            assert np.array_equal(blk_s.b, blk_p.b)
            assert np.array_equal(blk_s.L, blk_p.L)

    def test_engine_auto_chunking_matches_serial(self, rlc_grid_system):
        # With no explicit port_chunk_size the reducer chunks the ports
        # itself when a pool is in play; the result must stay identical.
        serial, _, _ = bdsm_reduce(rlc_grid_system, N_MOMENTS)
        with SweepEngine(jobs=2) as engine:
            pooled, _, _ = bdsm_reduce(
                rlc_grid_system, N_MOMENTS,
                options=BDSMOptions(engine=engine))
        assert len(serial.blocks) == len(pooled.blocks)
        for blk_s, blk_p in zip(serial.blocks, pooled.blocks):
            assert np.array_equal(blk_s.C, blk_p.C)
            assert np.array_equal(blk_s.G, blk_p.G)
            assert np.array_equal(blk_s.b, blk_p.b)

    def test_n_workers_fallback_matches_serial(self, rlc_grid_system):
        serial, _, _ = bdsm_reduce(rlc_grid_system, N_MOMENTS,
                                   options=BDSMOptions(port_chunk_size=3))
        pooled, _, _ = bdsm_reduce(
            rlc_grid_system, N_MOMENTS,
            options=BDSMOptions(port_chunk_size=3, n_workers=2))
        for blk_s, blk_p in zip(serial.blocks, pooled.blocks):
            assert np.array_equal(blk_s.C, blk_p.C)
            assert np.array_equal(blk_s.G, blk_p.G)

    def test_process_engine_rejected(self, rc_grid_system):
        engine = SweepEngine(jobs=2, executor="process")
        with pytest.raises(ReductionError, match="thread"):
            bdsm_reduce(rc_grid_system, 2,
                        options=BDSMOptions(port_chunk_size=2,
                                            engine=engine))
