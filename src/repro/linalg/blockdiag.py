"""Block-diagonal matrix assembly and bookkeeping.

BDSM's reduced matrices ``C_r`` and ``G_r`` are block-diagonal with one
``l x l`` block per input port (paper Eq. 14).  This module provides the
layout object that records where each block lives, assembly of the sparse
block-diagonal matrix, and the inverse operation of slicing blocks back out —
all of which the structured-ROM simulator and the Fig. 4 structure report
rely on.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ValidationError

__all__ = [
    "BlockLayout",
    "block_diag_sparse",
    "block_view",
    "blocks_from_matrix",
    "stack_block_columns",
]


@dataclass(frozen=True)
class BlockLayout:
    """Row/column partition of a block-diagonal matrix.

    Attributes
    ----------
    sizes:
        Size of each diagonal block, in order.
    """

    sizes: tuple[int, ...]

    def __post_init__(self) -> None:
        if any(s <= 0 for s in self.sizes):
            raise ValidationError("block sizes must be positive")

    @classmethod
    def uniform(cls, n_blocks: int, block_size: int) -> "BlockLayout":
        """Layout with ``n_blocks`` equal blocks of ``block_size``."""
        if n_blocks <= 0 or block_size <= 0:
            raise ValidationError("n_blocks and block_size must be positive")
        return cls(tuple([block_size] * n_blocks))

    @classmethod
    def from_blocks(cls, blocks: Sequence[np.ndarray]) -> "BlockLayout":
        """Layout inferred from a sequence of square blocks."""
        sizes = []
        for i, block in enumerate(blocks):
            arr = np.asarray(block)
            if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
                raise ValidationError(
                    f"block {i} is not square (shape {arr.shape})"
                )
            sizes.append(arr.shape[0])
        return cls(tuple(sizes))

    @property
    def n_blocks(self) -> int:
        """Number of diagonal blocks."""
        return len(self.sizes)

    @property
    def total(self) -> int:
        """Total matrix dimension (sum of block sizes)."""
        return int(sum(self.sizes))

    @property
    def offsets(self) -> tuple[int, ...]:
        """Starting row/column index of each block."""
        offsets = [0]
        for size in self.sizes[:-1]:
            offsets.append(offsets[-1] + size)
        return tuple(offsets)

    def block_slice(self, index: int) -> slice:
        """Slice of the global index range covered by block ``index``."""
        if not 0 <= index < self.n_blocks:
            raise IndexError(
                f"block index {index} out of range (n_blocks={self.n_blocks})"
            )
        start = self.offsets[index]
        return slice(start, start + self.sizes[index])

    def block_of_index(self, global_index: int) -> int:
        """Return which block a global row/column index belongs to."""
        if not 0 <= global_index < self.total:
            raise IndexError(
                f"index {global_index} out of range (total={self.total})"
            )
        for block, (start, size) in enumerate(zip(self.offsets, self.sizes)):
            if start <= global_index < start + size:
                return block
        raise AssertionError("unreachable")  # pragma: no cover

    def __iter__(self):
        return iter(self.sizes)


def block_diag_sparse(blocks: Iterable[np.ndarray],
                      fmt: str = "csr") -> sp.spmatrix:
    """Assemble a sparse block-diagonal matrix from dense/sparse blocks.

    Equivalent to the MATLAB ``blkdiag`` call the paper's Eq. (14) uses, but
    returning a scipy sparse matrix so that the ``1/m`` sparsity of the BDSM
    ROM is actually realised in storage.
    """
    block_list = [
        b if sp.issparse(b) else np.atleast_2d(np.asarray(b, dtype=float))
        for b in blocks
    ]
    if not block_list:
        raise ValidationError("cannot build a block-diagonal matrix from "
                              "an empty block list")
    return sp.block_diag(block_list, format=fmt)


def blocks_from_matrix(matrix, layout: BlockLayout) -> list[np.ndarray]:
    """Slice the diagonal blocks of ``matrix`` according to ``layout``."""
    n = layout.total
    if matrix.shape != (n, n):
        raise ValidationError(
            f"matrix shape {matrix.shape} does not match layout total {n}"
        )
    dense = matrix.toarray() if sp.issparse(matrix) else np.asarray(matrix)
    return [np.array(dense[layout.block_slice(i), layout.block_slice(i)])
            for i in range(layout.n_blocks)]


def block_view(matrix, layout: BlockLayout, row: int, col: int) -> np.ndarray:
    """Return the dense ``(row, col)`` block of ``matrix`` under ``layout``."""
    r = layout.block_slice(row)
    c = layout.block_slice(col)
    if sp.issparse(matrix):
        return matrix.tocsr()[r, c].toarray()
    return np.asarray(matrix)[r, c]


def stack_block_columns(columns: Sequence[np.ndarray],
                        layout: BlockLayout,
                        n_cols: int) -> sp.csr_matrix:
    """Build the block-structured input matrix ``B_r`` of Eq. (14).

    ``columns[i]`` is the length-``l_i`` vector ``(V^(i))^T b_i``; the result
    is an ``(Σ l_i) x n_cols`` sparse matrix whose block-row ``i`` contains
    that vector in column ``i`` and zeros elsewhere.
    """
    if len(columns) != layout.n_blocks:
        raise ValidationError(
            f"{len(columns)} column vectors for {layout.n_blocks} blocks"
        )
    if n_cols < layout.n_blocks:
        raise ValidationError(
            "n_cols must be at least the number of blocks"
        )
    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    for i, vec in enumerate(columns):
        v = np.asarray(vec, dtype=float).reshape(-1)
        if v.shape[0] != layout.sizes[i]:
            raise ValidationError(
                f"column vector {i} has length {v.shape[0]}, expected "
                f"{layout.sizes[i]}"
            )
        offset = layout.offsets[i]
        for k, value in enumerate(v):
            if value != 0.0:
                rows.append(offset + k)
                cols.append(i)
                data.append(float(value))
    return sp.csr_matrix((data, (rows, cols)),
                         shape=(layout.total, n_cols))
