"""Pluggable linear-solver backends with factorization caching.

Every hot path in the library — BDSM's shifted-pencil solves, PRIMA/EKS
moment generation, transient stepping, frequency sweeps and IR-drop
analysis — ultimately solves ``A x = b`` for the same handful of matrices
over and over.  This module centralises those solves behind a small
subsystem so that

* the *method* can be swapped per matrix (sparse LU, SPD Cholesky-style
  factorisation, preconditioned CG/GMRES for grids too large to factor —
  the approach of the paper's reference [2] — or dense LAPACK for the tiny
  reduced pencils), either explicitly or through per-matrix auto-selection;
* *factorisations are shared*: an LRU :class:`FactorizationCache` keyed on
  ``(matrix fingerprint, shift s0, backend)`` lets BDSM, multipoint
  reduction, transient integration and repeated frequency sweeps reuse a
  pencil factorisation instead of re-factoring it;
* *multi-RHS solves are first-class*: every backend accepts an ``(n, k)``
  block of right-hand sides, which is what the paper's ``O(m l^3)``
  block-diagonal simulation argument depends on.

The design follows the operator/solver-registry pattern of pyMOR: concrete
backends register themselves under a short name in a module-level registry,
:func:`select_backend` implements the auto-selection heuristics (size and
symmetry probes from :mod:`repro.linalg.sparse_utils`), and
:func:`get_solver` is the single entry point the rest of the library uses.

Quick use
---------
>>> from repro.linalg.backends import get_solver, SolverOptions
>>> solver = get_solver(A)                       # auto-selected, cached
>>> x = solver.solve(b)                          # b may be (n,) or (n, k)
>>> solver = get_solver(A, options=SolverOptions(backend="cg", tol=1e-12))
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from collections.abc import Callable, Hashable
from dataclasses import dataclass

import numpy as np
import scipy.linalg
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.exceptions import SingularSystemError, SolverBackendError
from repro.obs.health import default_health, health_enabled
from repro.obs.metrics import default_metrics
from repro.obs.tracing import trace_span
from repro.linalg.sparse_utils import (
    as_dense,
    is_symmetric,
    splu_factor,
    to_csc,
    to_csr,
)

__all__ = [
    "SolverOptions",
    "LinearSolver",
    "SpluSolver",
    "CholeskySolver",
    "DenseSolver",
    "IterativeSolver",
    "FactorizationCache",
    "CacheStats",
    "register_backend",
    "available_backends",
    "select_backend",
    "get_solver",
    "solve",
    "matrix_fingerprint",
    "default_cache",
    "set_default_cache",
    "temporary_default_cache",
    "clear_default_cache",
    "process_worker_init",
]


# --------------------------------------------------------------------------- #
# Options
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SolverOptions:
    """Tuning knobs for backend selection, caching and iterative solves.

    Attributes
    ----------
    backend:
        ``"auto"`` (default) picks a backend per matrix via
        :func:`select_backend`; otherwise one of
        :func:`available_backends` (``"splu"``, ``"cholesky"``,
        ``"dense"``, ``"cg"``, ``"gmres"``) or the alias ``"iterative"``
        which resolves to CG for symmetric matrices and GMRES otherwise.
    use_cache:
        Whether factorisations go through the :class:`FactorizationCache`.
        Cache hits return the *same* solver object, so results are
        bit-identical to the cold solve.
    dense_threshold:
        Auto-selection sends matrices of order ``<= dense_threshold`` to the
        dense LAPACK backend (right-sized for reduced ROM pencils).
    iterative_threshold:
        Auto-selection sends real matrices of order ``>= iterative_threshold``
        to CG/GMRES instead of factoring them (the reference-[2] regime).
    tol:
        Relative residual tolerance of the iterative backends.
    max_iterations:
        Iteration cap of the iterative backends.
    preconditioner:
        ``"jacobi"``, ``"ilu"`` or ``"none"`` for the iterative backends.
    check_finite:
        Reject matrices with NaN/Inf entries early.
    """

    backend: str = "auto"
    use_cache: bool = True
    dense_threshold: int = 128
    iterative_threshold: int = 200_000
    tol: float = 1e-12
    max_iterations: int = 5000
    preconditioner: str = "jacobi"
    check_finite: bool = True

    def cache_signature(self, backend: str) -> tuple:
        """Part of the cache key: options that change what ``backend`` builds.

        Direct factorisations (splu/cholesky/dense) are identical under any
        iterative knobs, so keying them on ``tol``/``preconditioner`` would
        only duplicate factors in the cache.
        """
        if backend in ("cg", "gmres"):
            return (self.tol, self.max_iterations, self.preconditioner)
        return ()


# --------------------------------------------------------------------------- #
# Fingerprinting
# --------------------------------------------------------------------------- #
def matrix_fingerprint(matrix) -> str:
    """Content hash of a dense or sparse matrix (stable across processes).

    Sparse matrices are normalised to CSR so CSC/CSR/COO inputs holding the
    same values produce the same fingerprint; dense arrays hash their raw
    bytes under a distinct tag so a dense matrix never collides with its
    sparse counterpart.
    """
    h = hashlib.blake2b(digest_size=16)
    if sp.issparse(matrix):
        m = matrix.tocsr()
        if not m.has_canonical_format:
            if m is matrix:  # tocsr() was a no-op; don't mutate the caller
                m = m.copy()
            m.sum_duplicates()
        h.update(b"csr")
        h.update(np.asarray(m.shape, dtype=np.int64).tobytes())
        h.update(str(m.dtype).encode())
        h.update(np.ascontiguousarray(m.indptr).tobytes())
        h.update(np.ascontiguousarray(m.indices).tobytes())
        h.update(np.ascontiguousarray(m.data).tobytes())
    else:
        arr = np.asarray(matrix)
        h.update(b"dense")
        h.update(np.asarray(arr.shape, dtype=np.int64).tobytes())
        h.update(str(arr.dtype).encode())
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


# --------------------------------------------------------------------------- #
# Solver protocol and concrete backends
# --------------------------------------------------------------------------- #
class LinearSolver:
    """A prepared solver for one square matrix ``A``.

    Subclasses do whatever preparation they need (factorisation, building a
    preconditioner) in ``__init__`` and then answer ``solve`` calls for one
    or many right-hand sides.  Instances are what the
    :class:`FactorizationCache` stores, so they must be reusable and
    thread-safe for concurrent ``solve`` calls.
    """

    #: Registry name of the backend (set by subclasses).
    name: str = "abstract"
    #: Whether preparation produced a (reusable) factorisation.
    factorized: bool = False

    def __init__(self, matrix, options: SolverOptions) -> None:
        shape = matrix.shape
        if len(shape) != 2 or shape[0] != shape[1]:
            raise SolverBackendError(
                f"linear solver needs a square matrix, got shape {shape}")
        self.shape = (int(shape[0]), int(shape[1]))
        self.n = self.shape[0]
        self.options = options
        self.dtype = np.dtype(complex if np.iscomplexobj(
            matrix.data if sp.issparse(matrix) else matrix) else float)
        # Residual health probe: only solvers built while the monitors
        # are enabled keep a matrix reference (so the disabled path pays
        # nothing and holds nothing alive).  Cached solvers constructed
        # before enabling therefore never probe — clear the cache when
        # switching monitoring on mid-process.
        self._solves = 0
        self._health_matrix = matrix if health_enabled() else None

    # -- helpers ---------------------------------------------------------- #
    def _prepare_rhs(self, rhs) -> tuple[np.ndarray, bool]:
        """Return ``(dense 2-D rhs cast to the solver dtype, was_1d)``."""
        dense = rhs.toarray() if sp.issparse(rhs) else np.asarray(rhs)
        single = dense.ndim == 1
        if single:
            dense = dense.reshape(-1, 1)
        if dense.shape[0] != self.n:
            raise SolverBackendError(
                f"right-hand side has {dense.shape[0]} rows, "
                f"expected {self.n}")
        dense = np.ascontiguousarray(dense, dtype=self.dtype)
        return dense, single

    def _record_residual(self, rhs: np.ndarray,
                         solution: np.ndarray) -> None:
        """Sampled relative-residual probe of the health monitors.

        Costs one SpMM per sampled solve (the first, then every
        :data:`RESIDUAL_SAMPLE_EVERY`-th), nothing at all when the
        monitors were off at construction time.
        """
        self._solves += 1
        A = self._health_matrix
        if A is None or (self._solves - 1) % RESIDUAL_SAMPLE_EVERY:
            return
        residual = np.asarray(A @ solution) - rhs
        denom = float(np.linalg.norm(rhs))
        value = (float(np.linalg.norm(residual)) / denom
                 if denom > 0.0 else 0.0)
        default_health().record(
            "solve.residual", value, backend=self.name,
            detail=f"n={self.n} nrhs={rhs.shape[1]} solve={self._solves}")

    def solve(self, rhs) -> np.ndarray:
        """Solve ``A x = rhs`` for a vector or an ``(n, k)`` block."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n})"


#: Solve-call sampling stride of the residual health probe (the first
#: solve after factorisation is always probed — that is where a bad
#: factorisation shows up — then every Nth).
RESIDUAL_SAMPLE_EVERY = 16

_BACKENDS: dict[str, type[LinearSolver]] = {}


def register_backend(name: str) -> Callable[[type], type]:
    """Class decorator adding a :class:`LinearSolver` to the registry."""
    def wrap(cls: type) -> type:
        cls.name = name
        _BACKENDS[name] = cls
        return cls
    return wrap


def available_backends() -> list[str]:
    """Names of all registered backends, sorted."""
    return sorted(_BACKENDS)


@register_backend("splu")
class SpluSolver(LinearSolver):
    """General sparse LU (SuperLU) — the workhorse direct backend."""

    factorized = True

    def __init__(self, matrix, options: SolverOptions) -> None:
        super().__init__(matrix, options)
        self._factor = splu_factor(to_csc(matrix),
                                   check_finite=options.check_finite)

    def solve(self, rhs) -> np.ndarray:
        dense, single = self._prepare_rhs(rhs)
        out = self._factor.solve(dense)
        self._record_residual(dense, out)
        return out[:, 0] if single else out


@register_backend("cholesky")
class CholeskySolver(LinearSolver):
    """SPD-oriented factorisation for the symmetric RC-grid case.

    SciPy ships no sparse Cholesky, so this uses the documented SuperLU
    approximation: symmetric-mode ordering (``MMD_AT_PLUS_A``) with diagonal
    pivoting disabled, which preserves the symmetric fill pattern and is the
    standard drop-in for SPD conductance pencils.  Requesting it for an
    unsymmetric matrix raises :class:`SolverBackendError`; if the
    symmetric-mode factorisation fails numerically the solver falls back to
    plain sparse LU rather than failing the solve.
    """

    factorized = True

    def __init__(self, matrix, options: SolverOptions) -> None:
        super().__init__(matrix, options)
        if not is_symmetric(matrix):
            raise SolverBackendError(
                "cholesky backend requires a (numerically) symmetric matrix; "
                "use 'splu' or 'gmres' for unsymmetric pencils")
        csc = to_csc(matrix)
        csc.sort_indices()
        if (options.check_finite and csc.nnz
                and not np.all(np.isfinite(csc.data))):
            raise SingularSystemError("matrix contains non-finite entries")
        try:
            factor = spla.splu(csc, permc_spec="MMD_AT_PLUS_A",
                               diag_pivot_thresh=0.0,
                               options={"SymmetricMode": True})
            probe = factor.solve(np.ones(self.n, dtype=self.dtype))
            if not np.all(np.isfinite(probe)):
                raise RuntimeError("non-finite probe solution")
        except RuntimeError:
            # Symmetric but indefinite/ill-conditioned: LU still applies.
            factor = splu_factor(csc, check_finite=options.check_finite)
        self._factor = factor

    def solve(self, rhs) -> np.ndarray:
        dense, single = self._prepare_rhs(rhs)
        out = self._factor.solve(dense)
        self._record_residual(dense, out)
        return out[:, 0] if single else out


@register_backend("dense")
class DenseSolver(LinearSolver):
    """Dense LAPACK LU — right-sized for small reduced (ROM) pencils."""

    factorized = True

    def __init__(self, matrix, options: SolverOptions) -> None:
        super().__init__(matrix, options)
        A = np.ascontiguousarray(as_dense(matrix), dtype=self.dtype)
        if options.check_finite and A.size and not np.all(np.isfinite(A)):
            raise SingularSystemError("matrix contains non-finite entries")
        try:
            self._lu, self._piv = scipy.linalg.lu_factor(
                A, check_finite=False)
        except (ValueError, scipy.linalg.LinAlgError) as exc:
            raise SingularSystemError(
                f"dense LU factorisation failed: {exc}") from exc
        if not np.all(np.isfinite(self._lu)):
            raise SingularSystemError(
                "dense LU produced non-finite factors; the matrix is "
                "singular")

    def solve(self, rhs) -> np.ndarray:
        dense, single = self._prepare_rhs(rhs)
        out = scipy.linalg.lu_solve((self._lu, self._piv), dense,
                                    check_finite=False)
        if not np.all(np.isfinite(out)):
            raise SingularSystemError(
                "dense LU solve produced non-finite values; the matrix is "
                "singular")
        self._record_residual(dense, out)
        return out[:, 0] if single else out


class IterativeSolver(LinearSolver):
    """Preconditioned Krylov iteration (CG / GMRES).

    This is the lineage of the paper's reference [2]: before MOR, large
    power grids were solved with preconditioned Krylov methods, and grids
    too large to factorise still are.  The "factorisation" that the cache
    reuses is the preconditioner (ILU or the Jacobi diagonal).
    """

    factorized = False
    _method = "cg"

    def __init__(self, matrix, options: SolverOptions) -> None:
        super().__init__(matrix, options)
        if self.dtype == np.dtype(complex) and self._method == "cg":
            raise SolverBackendError(
                "cg backend supports real symmetric matrices only; use "
                "'gmres' for complex pencils")
        self._A = to_csr(matrix)
        if (options.check_finite and self._A.nnz
                and not np.all(np.isfinite(self._A.data))):
            raise SingularSystemError("matrix contains non-finite entries")
        self._M = self._build_preconditioner(options)

    def _build_preconditioner(self, options: SolverOptions):
        # Local import: analysis.solvers sits one layer above linalg, so the
        # dependency is resolved lazily to keep the linalg layer import-clean.
        from repro.analysis import solvers as _solvers
        kind = options.preconditioner
        if kind == "jacobi":
            return _solvers.jacobi_preconditioner(self._A)
        if kind == "ilu":
            return _solvers.ilu_preconditioner(self._A)
        if kind == "none":
            return None
        raise SolverBackendError(f"unknown preconditioner {kind!r}")

    def _solve_column(self, b: np.ndarray) -> np.ndarray:
        opts = self.options
        if self._method == "cg":
            x, info = spla.cg(self._A, b, rtol=opts.tol,
                              maxiter=opts.max_iterations, M=self._M)
        else:
            x, info = spla.gmres(self._A, b, rtol=opts.tol,
                                 maxiter=opts.max_iterations, M=self._M)
        if info != 0:
            raise SolverBackendError(
                f"{self._method} failed to converge within "
                f"{opts.max_iterations} iterations (info={info})")
        return x

    def solve(self, rhs) -> np.ndarray:
        dense, single = self._prepare_rhs(rhs)
        out = np.empty_like(dense)
        for j in range(dense.shape[1]):
            out[:, j] = self._solve_column(dense[:, j])
        self._record_residual(dense, out)
        return out[:, 0] if single else out


@register_backend("cg")
class CGSolver(IterativeSolver):
    """Conjugate gradients — the canonical SPD grid solver (reference [2])."""

    _method = "cg"


@register_backend("gmres")
class GMRESSolver(IterativeSolver):
    """GMRES — the iterative fallback for unsymmetric/complex pencils."""

    _method = "gmres"


# --------------------------------------------------------------------------- #
# Auto-selection
# --------------------------------------------------------------------------- #
def select_backend(matrix, options: SolverOptions | None = None) -> str:
    """Pick a backend name for ``matrix``.

    Explicit choices are honoured (with ``"iterative"`` resolved to CG or
    GMRES by a symmetry probe).  ``"auto"`` applies the size/symmetry
    heuristics:

    * order ``<= dense_threshold``  → ``"dense"``  (tiny ROM pencils),
    * order ``>= iterative_threshold``, real, symmetric with positive
      diagonal (the SPD RC-grid pencil shape) → ``"cg"`` (grids too large
      to factor — the regime of the paper's reference [2]),
    * symmetric with positive diagonal below the threshold → ``"cholesky"``,
    * everything else → ``"splu"``.

    Auto-selection never picks GMRES: an unsymmetric or indefinite pencil
    carries no convergence guarantee at the default tolerance, so very
    large RLC grids stay on sparse LU unless the caller opts into
    ``backend="gmres"``/``"iterative"`` explicitly.
    """
    opts = options or SolverOptions()
    n = int(matrix.shape[0])
    complex_valued = np.iscomplexobj(
        matrix.data if sp.issparse(matrix) else matrix)

    if opts.backend != "auto":
        if opts.backend == "iterative":
            if not complex_valued and is_symmetric(matrix):
                return "cg"
            return "gmres"
        if opts.backend not in _BACKENDS:
            raise SolverBackendError(
                f"unknown solver backend {opts.backend!r}; available: "
                f"{available_backends()} (or 'auto'/'iterative')")
        return opts.backend

    if n <= opts.dense_threshold:
        return "dense"
    if not complex_valued and is_symmetric(matrix):
        diag = matrix.diagonal() if sp.issparse(matrix) \
            else np.diagonal(np.asarray(matrix))
        if diag.size and np.all(np.real(diag) > 0.0):
            if n >= opts.iterative_threshold:
                return "cg"
            return "cholesky"
    return "splu"


# --------------------------------------------------------------------------- #
# Factorization cache
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class CacheStats:
    """Counters of a :class:`FactorizationCache`."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class FactorizationCache:
    """Thread-safe LRU cache of prepared :class:`LinearSolver` objects.

    Keys combine the matrix fingerprint (or a caller-provided key such as
    ``(pencil fingerprint, shift s0)``), the backend name and the
    result-relevant solver options.  A hit returns the *same* solver object
    that was stored, so repeated solves are bit-identical to the cold run;
    eviction merely forces a re-factorisation, which is deterministic and
    therefore also changes nothing numerically.
    """

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise SolverBackendError("cache capacity must be >= 1")
        self.capacity = int(capacity)
        self._entries: OrderedDict[Hashable, LinearSolver] = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable) -> LinearSolver | None:
        """Return the cached solver for ``key`` (LRU-refreshing), or None."""
        with self._lock:
            solver = self._entries.get(key)
            if solver is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return solver

    def put(self, key: Hashable, solver: LinearSolver) -> None:
        """Insert ``solver`` under ``key``, evicting the LRU entry if full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = solver
                return
            while len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
            self._entries[key] = solver

    def get_or_build(self, key: Hashable,
                     builder: Callable[[], LinearSolver]) -> LinearSolver:
        """Return the cached solver or build, insert and return a new one.

        The builder runs outside the lock (factorisation can be slow); if a
        concurrent thread built the same key first, its solver wins so all
        callers share one object.
        """
        solver = self.get(key)
        if solver is not None:
            return solver
        built = builder()
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self._entries.move_to_end(key)
                return existing
        self.put(key, built)
        return built

    def clear(self) -> None:
        """Drop all entries (counters are kept; see :meth:`reset_stats`)."""
        with self._lock:
            self._entries.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters."""
        with self._lock:
            self._hits = self._misses = self._evictions = 0

    def stats(self) -> CacheStats:
        """Snapshot of the cache counters."""
        with self._lock:
            return CacheStats(hits=self._hits, misses=self._misses,
                              evictions=self._evictions,
                              size=len(self._entries),
                              capacity=self.capacity)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (f"FactorizationCache(size={s.size}/{s.capacity}, "
                f"hits={s.hits}, misses={s.misses})")


_DEFAULT_CACHE = FactorizationCache(capacity=32)
_DEFAULT_CACHE_LOCK = threading.Lock()


def default_cache() -> FactorizationCache:
    """The process-wide cache used when no explicit cache is passed."""
    return _DEFAULT_CACHE


def set_default_cache(cache: FactorizationCache) -> FactorizationCache:
    """Swap the process-wide cache; returns the previous one."""
    global _DEFAULT_CACHE
    with _DEFAULT_CACHE_LOCK:
        previous = _DEFAULT_CACHE
        _DEFAULT_CACHE = cache
    return previous


class temporary_default_cache:
    """Context manager installing ``cache`` as the default, then restoring.

    Used by benchmarks and tests that want isolated hit/miss accounting:

    >>> with temporary_default_cache(FactorizationCache(capacity=4)) as c:
    ...     ...  # solves in here populate c
    """

    def __init__(self, cache: FactorizationCache) -> None:
        self.cache = cache
        self._previous: FactorizationCache | None = None

    def __enter__(self) -> FactorizationCache:
        self._previous = set_default_cache(self.cache)
        return self.cache

    def __exit__(self, *exc_info) -> None:
        assert self._previous is not None
        set_default_cache(self._previous)


def clear_default_cache() -> None:
    """Drop all entries of the process-wide cache and zero its counters."""
    _DEFAULT_CACHE.clear()
    _DEFAULT_CACHE.reset_stats()


def process_worker_init(capacity: int = 32) -> None:
    """Install a fresh default cache in a worker process.

    Passed as the ``initializer`` of a ``ProcessPoolExecutor`` (e.g. by
    :class:`repro.analysis.engine.SweepEngine`) so each worker process gets
    its own empty :class:`FactorizationCache` instead of a fork-copied
    snapshot of the parent's: solver objects hold SuperLU handles that must
    not be shared across a fork, and a private cache keeps per-worker
    hit/miss accounting meaningful.  :class:`SolverOptions` instances are
    plain frozen dataclasses of scalars, so task payloads pickle safely.
    """
    set_default_cache(FactorizationCache(capacity=max(int(capacity), 1)))


# --------------------------------------------------------------------------- #
# Entry points
# --------------------------------------------------------------------------- #
def get_solver(matrix, *, options: SolverOptions | None = None,
               cache: FactorizationCache | None = None,
               key: Hashable | None = None) -> LinearSolver:
    """Return a (possibly cached) :class:`LinearSolver` for ``matrix``.

    Parameters
    ----------
    matrix:
        Square dense or sparse matrix.
    options:
        Optional :class:`SolverOptions` controlling backend choice, caching
        and iterative parameters.
    cache:
        Explicit cache to use; defaults to :func:`default_cache`.  Caching is
        skipped entirely when ``options.use_cache`` is False.
    key:
        Optional caller-provided cache key identifying the matrix (e.g.
        ``(pencil fingerprint, shift s0)`` for shifted pencils); when absent
        the content fingerprint of ``matrix`` is used.  The backend name and
        the result-relevant options are always appended to the key.
    """
    opts = options or SolverOptions()
    backend = select_backend(matrix, opts)
    factory = _BACKENDS[backend]
    if not opts.use_cache:
        with trace_span("linalg.factorize", backend=backend, cache="off"):
            return factory(matrix, opts)
    store = cache if cache is not None else default_cache()
    base = key if key is not None else matrix_fingerprint(matrix)
    full_key = (base, backend, opts.cache_signature(backend))
    built_here = False

    def _build() -> LinearSolver:
        # Runs only on a cache miss (get_or_build's internal get() already
        # counted it), so the span and metric label stay miss-accurate.
        nonlocal built_here
        built_here = True
        default_metrics().increment("linalg.factorize.cache",
                                    backend=backend, result="miss")
        with trace_span("linalg.factorize", backend=backend, cache="miss"):
            return factory(matrix, opts)

    solver = store.get_or_build(full_key, _build)
    if not built_here:
        default_metrics().increment("linalg.factorize.cache",
                                    backend=backend, result="hit")
    return solver


def solve(matrix, rhs, *, options: SolverOptions | None = None,
          cache: FactorizationCache | None = None,
          key: Hashable | None = None) -> np.ndarray:
    """One-shot convenience: ``get_solver(matrix, ...).solve(rhs)``."""
    return get_solver(matrix, options=options, cache=cache,
                      key=key).solve(rhs)
