"""Transfer-matrix moment computation.

The accuracy claim of both PRIMA and BDSM is phrased in terms of *moments*:
the Taylor coefficients of the transfer matrix around the expansion point,

    H(s) = L (s C - G)^{-1} B
         = sum_k  M_k (s - s0)^k,
    M_k = L * (-A)^k * R,   A = (s0 C - G)^{-1} C,   R = (s0 C - G)^{-1} B.

(The sign convention follows from expanding ``(sC - G)^{-1}`` around ``s0``:
``( (s0 C - G)(I + (s - s0) A) )^{-1} = (I + (s-s0) A)^{-1} (s0 C - G)^{-1}``.)

These routines are used by the validation package and the tests to verify
that a ROM really matches the first ``l`` moments of the full model.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.linalg.krylov import ShiftedOperator

__all__ = ["transfer_moments", "system_moments"]


def system_moments(C, G, B, L, n_moments: int, s0: complex = 0.0,
                   ) -> list[np.ndarray]:
    """Compute the first ``n_moments`` moment matrices of ``L (sC - G)^{-1} B``.

    Parameters
    ----------
    C, G:
        ``n x n`` descriptor matrices.
    B:
        ``n x m`` input matrix.
    L:
        ``p x n`` output matrix.
    n_moments:
        Number of moments to return (``M_0 .. M_{n_moments-1}``).
    s0:
        Expansion point.

    Returns
    -------
    list of numpy.ndarray
        Moment matrices, each of shape ``p x m``.

    Notes
    -----
    The cost is one sparse LU plus ``n_moments`` solves with ``m``
    right-hand sides, so this is only meant for validation on small-to-medium
    systems, not as a production path.
    """
    if n_moments < 1:
        raise ValueError("n_moments must be >= 1")
    op = ShiftedOperator(C, G, s0)
    # A sparse L is applied directly (CSR @ dense block is a sparse BLAS
    # product returning an ndarray) — no densification of the p x n output
    # matrix, which for wide grids used to dominate the memory of repeated
    # moment computations.
    if sp.issparse(L):
        L_mat = L.tocsr()
    else:
        L_mat = np.asarray(L, dtype=float)
        if L_mat.ndim == 1:
            L_mat = L_mat.reshape(1, -1)

    moments: list[np.ndarray] = []
    # R_0 = (s0 C - G)^{-1} B ;  R_{k+1} = -A R_k
    current = np.asarray(op.starting_block(B))
    if current.ndim == 1:
        current = current.reshape(-1, 1)
    for _ in range(n_moments):
        moments.append(np.asarray(L_mat @ current))
        current = -np.asarray(op.apply(current))
        if current.ndim == 1:
            current = current.reshape(-1, 1)
    return moments


def transfer_moments(system, n_moments: int, s0: complex = 0.0,
                     ) -> list[np.ndarray]:
    """Moments of any object exposing ``C, G, B, L`` descriptor matrices.

    Works uniformly for the full :class:`~repro.circuit.mna.DescriptorSystem`
    and for reduced models, so validation code can compare them directly.
    """
    return system_moments(system.C, system.G, system.B, system.L,
                          n_moments, s0)
