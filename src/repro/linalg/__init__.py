"""Low-level linear-algebra substrate used by every other subpackage.

The routines here are deliberately free of any circuit or MOR semantics:
they operate on plain numpy arrays and scipy sparse matrices.

Contents
--------
``backends``
    Pluggable linear-solver backends (sparse LU, SPD Cholesky-style, dense
    LAPACK, preconditioned CG/GMRES) behind a registry with per-matrix
    auto-selection, plus the LRU factorization cache every hot path shares.
``orthogonalization``
    Modified Gram-Schmidt with re-orthogonalisation and deflation detection,
    plus an operation counter used by the cost model.
``krylov``
    (Block) Krylov subspace construction around a shifted descriptor pencil,
    shared by PRIMA, EKS and BDSM.
``recycle``
    Basis recycling across expansion points (solve-skipping screening
    against the accumulated basis) and fingerprint-keyed shard-basis reuse.
``blockdiag``
    Assembly and bookkeeping of block-diagonal sparse matrices.
``sparse_utils``
    Sparsity statistics, symmetry checks, and safe sparse factorisations.
``moments``
    Transfer-matrix moment computation for moment-matching verification.
"""

from repro.linalg.backends import (
    CacheStats,
    FactorizationCache,
    LinearSolver,
    SolverOptions,
    available_backends,
    clear_default_cache,
    default_cache,
    get_solver,
    matrix_fingerprint,
    process_worker_init,
    select_backend,
    set_default_cache,
    solve,
    temporary_default_cache,
)
from repro.linalg.blockdiag import (
    BlockLayout,
    block_diag_sparse,
    block_view,
    blocks_from_matrix,
)
from repro.linalg.krylov import (
    ORTHO_KERNELS,
    KrylovResult,
    ShiftedOperator,
    block_krylov_basis,
    column_clustered_krylov_bases,
)
from repro.linalg.moments import system_moments, transfer_moments
from repro.linalg.recycle import (
    DEFAULT_RECYCLE_TOL,
    RecycleStats,
    RecycleWorkspace,
    ShardBasisCache,
    recycled_block_krylov_basis,
    recycled_clustered_krylov_bases,
)
from repro.linalg.orthogonalization import (
    OrthoStats,
    block_orthonormalize,
    modified_gram_schmidt,
    orthonormalize_against,
)
from repro.linalg.sparse_utils import (
    SparsityInfo,
    is_symmetric,
    nnz_density,
    sparsity_info,
    splu_factor,
    to_csc,
    to_csr,
)

__all__ = [
    "BlockLayout",
    "CacheStats",
    "DEFAULT_RECYCLE_TOL",
    "FactorizationCache",
    "KrylovResult",
    "LinearSolver",
    "OrthoStats",
    "RecycleStats",
    "RecycleWorkspace",
    "ShardBasisCache",
    "ShiftedOperator",
    "SolverOptions",
    "SparsityInfo",
    "ORTHO_KERNELS",
    "available_backends",
    "block_diag_sparse",
    "block_krylov_basis",
    "block_orthonormalize",
    "block_view",
    "blocks_from_matrix",
    "clear_default_cache",
    "column_clustered_krylov_bases",
    "default_cache",
    "get_solver",
    "is_symmetric",
    "matrix_fingerprint",
    "modified_gram_schmidt",
    "nnz_density",
    "orthonormalize_against",
    "process_worker_init",
    "recycled_block_krylov_basis",
    "recycled_clustered_krylov_bases",
    "select_backend",
    "set_default_cache",
    "solve",
    "sparsity_info",
    "splu_factor",
    "system_moments",
    "temporary_default_cache",
    "to_csc",
    "to_csr",
    "transfer_moments",
]
