"""Low-level linear-algebra substrate used by every other subpackage.

The routines here are deliberately free of any circuit or MOR semantics:
they operate on plain numpy arrays and scipy sparse matrices.

Contents
--------
``orthogonalization``
    Modified Gram-Schmidt with re-orthogonalisation and deflation detection,
    plus an operation counter used by the cost model.
``krylov``
    (Block) Krylov subspace construction around a shifted descriptor pencil,
    shared by PRIMA, EKS and BDSM.
``blockdiag``
    Assembly and bookkeeping of block-diagonal sparse matrices.
``sparse_utils``
    Sparsity statistics, symmetry checks, and safe sparse factorisations.
``moments``
    Transfer-matrix moment computation for moment-matching verification.
"""

from repro.linalg.blockdiag import (
    BlockLayout,
    block_diag_sparse,
    block_view,
    blocks_from_matrix,
)
from repro.linalg.krylov import (
    KrylovResult,
    ShiftedOperator,
    block_krylov_basis,
    column_clustered_krylov_bases,
)
from repro.linalg.moments import system_moments, transfer_moments
from repro.linalg.orthogonalization import (
    OrthoStats,
    modified_gram_schmidt,
    orthonormalize_against,
)
from repro.linalg.sparse_utils import (
    SparsityInfo,
    is_symmetric,
    nnz_density,
    sparsity_info,
    splu_factor,
    to_csc,
    to_csr,
)

__all__ = [
    "BlockLayout",
    "KrylovResult",
    "OrthoStats",
    "ShiftedOperator",
    "SparsityInfo",
    "block_diag_sparse",
    "block_krylov_basis",
    "block_view",
    "blocks_from_matrix",
    "column_clustered_krylov_bases",
    "is_symmetric",
    "modified_gram_schmidt",
    "nnz_density",
    "orthonormalize_against",
    "sparsity_info",
    "splu_factor",
    "system_moments",
    "to_csc",
    "to_csr",
    "transfer_moments",
]
