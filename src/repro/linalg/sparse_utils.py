"""Sparse-matrix helpers shared across the library.

These wrap scipy.sparse so the rest of the code can assume a consistent
format (CSC for factorisation, CSR for products) and get uniform sparsity
statistics for the Fig. 4 style structure reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.exceptions import SingularSystemError

__all__ = [
    "SparsityInfo",
    "is_symmetric",
    "nnz_density",
    "sparsity_info",
    "splu_factor",
    "to_csc",
    "to_csr",
    "as_dense",
    "frobenius_norm",
    "estimate_dense_bytes",
]


def to_csr(matrix) -> sp.csr_matrix:
    """Return ``matrix`` as a CSR sparse matrix (no copy when already CSR)."""
    if sp.issparse(matrix):
        return matrix.tocsr()
    return sp.csr_matrix(np.asarray(matrix))


def to_csc(matrix) -> sp.csc_matrix:
    """Return ``matrix`` as a CSC sparse matrix (no copy when already CSC)."""
    if sp.issparse(matrix):
        return matrix.tocsc()
    return sp.csc_matrix(np.asarray(matrix))


def as_dense(matrix) -> np.ndarray:
    """Return a dense ndarray view/copy of ``matrix``."""
    if sp.issparse(matrix):
        return matrix.toarray()
    return np.asarray(matrix)


def nnz_density(matrix) -> float:
    """Fraction of structurally non-zero entries in ``matrix``.

    For a dense array, entries exactly equal to zero are not counted, so the
    value is comparable between a dense ROM (PRIMA) and a sparse ROM (BDSM).
    """
    if sp.issparse(matrix):
        total = matrix.shape[0] * matrix.shape[1]
        return matrix.nnz / total if total else 0.0
    arr = np.asarray(matrix)
    if arr.size == 0:
        return 0.0
    return float(np.count_nonzero(arr)) / arr.size


def frobenius_norm(matrix) -> float:
    """Frobenius norm that works for both dense and sparse inputs."""
    if sp.issparse(matrix):
        return float(spla.norm(matrix))
    return float(np.linalg.norm(np.asarray(matrix)))


def is_symmetric(matrix, tol: float = 1e-10) -> bool:
    """Check whether ``matrix`` is (numerically) symmetric.

    RC power-grid conductance and capacitance matrices stamped by MNA are
    symmetric; this is used both in tests and to pick symmetric-aware code
    paths.
    """
    m = to_csr(matrix)
    if m.shape[0] != m.shape[1]:
        return False
    diff = (m - m.T).tocoo()
    if diff.nnz == 0:
        return True
    scale = max(frobenius_norm(m), 1.0)
    return float(np.max(np.abs(diff.data))) <= tol * scale


@dataclass(frozen=True)
class SparsityInfo:
    """Structure statistics of a matrix (used for the Fig. 4 reproduction)."""

    shape: tuple[int, int]
    nnz: int
    density: float
    bandwidth: int
    symmetric: bool

    @property
    def density_percent(self) -> float:
        """Density expressed in percent, as quoted in the paper (1.9 %, 0.3 %)."""
        return 100.0 * self.density


def sparsity_info(matrix, tol: float = 1e-12) -> SparsityInfo:
    """Compute :class:`SparsityInfo` for a dense or sparse matrix."""
    m = to_csr(matrix)
    m.eliminate_zeros()
    coo = m.tocoo()
    if coo.nnz:
        bandwidth = int(np.max(np.abs(coo.row - coo.col)))
    else:
        bandwidth = 0
    square = m.shape[0] == m.shape[1]
    return SparsityInfo(
        shape=(int(m.shape[0]), int(m.shape[1])),
        nnz=int(m.nnz),
        density=nnz_density(m),
        bandwidth=bandwidth,
        symmetric=bool(square and is_symmetric(m, tol=max(tol, 1e-10))),
    )


def estimate_dense_bytes(rows: int, cols: int, itemsize: int = 8) -> int:
    """Memory needed to store a dense ``rows x cols`` matrix of floats."""
    return int(rows) * int(cols) * int(itemsize)


def splu_factor(matrix, *, check_finite: bool = True):
    """Sparse LU factorisation of ``matrix`` with a library-specific error.

    Parameters
    ----------
    matrix:
        Square sparse (or dense) matrix to factorise.
    check_finite:
        When ``True``, reject matrices containing NaN/Inf entries early with a
        clear error instead of letting SuperLU fail obscurely.

    Returns
    -------
    scipy.sparse.linalg.SuperLU
        Factor object exposing ``solve``.

    Raises
    ------
    SingularSystemError
        If the matrix is singular (or numerically singular) at this shift.
    """
    csc = to_csc(matrix)
    csc.sort_indices()
    if not csc.data.flags.c_contiguous:
        csc = sp.csc_matrix(
            (np.ascontiguousarray(csc.data), csc.indices, csc.indptr),
            shape=csc.shape)
    if csc.shape[0] != csc.shape[1]:
        raise SingularSystemError(
            f"cannot LU-factorise a non-square matrix of shape {csc.shape}"
        )
    if check_finite and csc.nnz and not np.all(np.isfinite(csc.data)):
        raise SingularSystemError("matrix contains non-finite entries")
    try:
        factor = spla.splu(csc)
    except RuntimeError as exc:  # SuperLU signals singularity this way
        raise SingularSystemError(
            f"sparse LU factorisation failed: {exc}"
        ) from exc
    # SuperLU may succeed but produce a factor with an exactly-zero pivot for
    # structurally singular matrices; probe with a solve to catch that.
    probe = factor.solve(np.ones(csc.shape[0], dtype=csc.dtype))
    if not np.all(np.isfinite(probe)):
        raise SingularSystemError(
            "sparse LU produced non-finite solution; the pencil is singular "
            "at this expansion point"
        )
    return factor
