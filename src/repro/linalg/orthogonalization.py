"""Orthonormalisation kernels with deflation and cost accounting.

The whole cost argument of the BDSM paper (Sec. III-B) is about how many
*long vector-vector products* the orthonormalisation step needs:

* PRIMA orthonormalises all ``m*l`` candidate vectors against each other,
  costing ``m*l*(m*l - 1)/2`` inner products of length-``n`` vectors.
* BDSM clusters the candidates into ``m`` groups of ``l`` vectors and
  orthonormalises each group independently, costing ``m * l*(l-1)/2``.

Two kernels implement that step:

:func:`modified_gram_schmidt`
    The column-at-a-time reference: each candidate is orthogonalised
    against the basis built so far with modified Gram-Schmidt (one BLAS-2
    projection per column, one optional re-orthogonalisation sweep).  This
    is the kernel the paper's operation counts are phrased in, kept as the
    ground truth for parity tests and the cost model.

:func:`block_orthonormalize`
    The blocked BLAS-3 production kernel: the whole candidate block is
    projected against the existing basis with two classical Gram-Schmidt
    sweeps (``Q^H W`` / ``Q S`` GEMMs — CGS2, the "twice is enough" rule),
    then deflated intra-block with an *unpivoted* Householder QR whose
    ``R`` diagonal reveals each candidate's residual in input order
    (pivoting would permute the diagonal and break the per-candidate
    deflation test — see the comment in the implementation).  Deflating
    blocks are handled by a rank-revealing *survivor re-QR*
    (:func:`_rank_revealing_qr`): only the first failing column is
    dropped, and the remaining candidates are re-factored in the tiny
    reduced coordinates of the surviving ``R`` block, so each deflation
    costs one ``k x k``-sized QR instead of a column-wise rerun of the
    whole block.  It spans the same space and makes the same deflation
    decisions as the column-wise kernel (up to roundoff on genuinely
    borderline candidates) but runs entirely inside LAPACK/BLAS-3, which
    is what makes large reductions CPU-bound instead of Python-bound.

To reproduce the paper's argument quantitatively
(``benchmarks/bench_cost_model.py``) every routine counts the *logical*
long-vector operations it performs and returns them in :class:`OrthoStats`;
the blocked kernel reports the same counts the column-wise kernel would
have produced for the same deflation decisions, so Fig. 2 style cost
comparisons read off the same counters regardless of the kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.linalg

from repro.exceptions import DeflationError
from repro.obs.health import default_health, health_enabled

__all__ = [
    "OrthoStats",
    "block_orthonormalize",
    "modified_gram_schmidt",
    "orthogonality_loss",
    "orthonormalize_against",
]

#: Default tolerance below which a candidate vector is considered linearly
#: dependent on the existing basis ("deflated" in Krylov terminology).
DEFAULT_DEFLATION_TOL = 1e-12

#: Column cap of the :func:`orthogonality_loss` health probe: the Gram
#: subsample costs ``n * cap^2`` flops per merge, which keeps the
#: monitors-enabled reduce within the ``health_overhead`` 5% budget.
HEALTH_LOSS_COLUMNS = 32

#: Fresh QR factorisations (no ``init`` basis) are probed one-in-N;
#: cross-basis merges are always probed.  See :func:`_should_probe`.
HEALTH_FRESH_PROBE_EVERY = 8

_fresh_probe_count = 0


def orthogonality_loss(basis: np.ndarray, *,
                       max_columns: int = HEALTH_LOSS_COLUMNS) -> float:
    """``||Q^T Q - I||_max`` of (a deterministic subsample of) ``basis``.

    The health monitors' orthogonality probe: for wide bases only an
    evenly spaced subsample of ``max_columns`` columns enters the Gram
    matrix, bounding the probe at ``n * max_columns^2`` flops while still
    catching a basis whose columns have drifted from orthonormality
    (drift from a broken merge contaminates every later column, so a
    spread subsample sees it).
    """
    Q = np.asarray(basis)
    if Q.ndim != 2 or Q.shape[1] == 0:
        return 0.0
    k = Q.shape[1]
    if k > max_columns:
        idx = np.linspace(0, k - 1, max_columns).round().astype(int)
        Q = Q[:, np.unique(idx)]
    gram = Q.conj().T @ Q
    return float(np.max(np.abs(gram - np.eye(gram.shape[0]))))


@dataclass
class OrthoStats:
    """Operation counts accumulated during orthonormalisation.

    Attributes
    ----------
    inner_products:
        Number of long (length-``n``) vector-vector inner products performed.
        This is the quantity the paper's cost comparison is phrased in.
    axpy_updates:
        Number of length-``n`` ``y -= alpha * x`` updates performed.
    normalizations:
        Number of vector normalisations.
    deflations:
        Number of candidate vectors dropped because they were (numerically)
        linearly dependent on the basis built so far.
    """

    inner_products: int = 0
    axpy_updates: int = 0
    normalizations: int = 0
    deflations: int = 0

    def merge(self, other: "OrthoStats") -> None:
        """Accumulate the counts of ``other`` into this object in place."""
        self.inner_products += other.inner_products
        self.axpy_updates += other.axpy_updates
        self.normalizations += other.normalizations
        self.deflations += other.deflations

    def __add__(self, other: "OrthoStats") -> "OrthoStats":
        merged = OrthoStats(
            self.inner_products, self.axpy_updates,
            self.normalizations, self.deflations,
        )
        merged.merge(other)
        return merged


@dataclass
class _Workspace:
    """Internal mutable basis being grown column by column."""

    columns: list[np.ndarray] = field(default_factory=list)

    def matrix(self) -> np.ndarray:
        if not self.columns:
            return np.empty((0, 0))
        return np.column_stack(self.columns)


def orthonormalize_against(
    vector: np.ndarray,
    basis: np.ndarray | None,
    *,
    stats: OrthoStats | None = None,
    deflation_tol: float = DEFAULT_DEFLATION_TOL,
    reorthogonalize: bool = True,
) -> np.ndarray | None:
    """Orthonormalise one vector against an existing orthonormal basis.

    Uses modified Gram-Schmidt with one optional re-orthogonalisation pass
    (classical "twice is enough" rule), which is what a careful PRIMA/BDSM
    implementation does to keep the basis orthonormal to machine precision.

    Parameters
    ----------
    vector:
        Candidate vector of length ``n``.
    basis:
        ``n x k`` matrix with orthonormal columns (or ``None`` / empty for an
        empty basis).
    stats:
        Optional :class:`OrthoStats` accumulator updated in place.
    deflation_tol:
        Relative tolerance under which the remainder is declared deflated.
    reorthogonalize:
        Perform a second MGS sweep for numerical robustness.

    Returns
    -------
    numpy.ndarray or None
        The orthonormalised vector, or ``None`` when the candidate was
        (numerically) linearly dependent on the basis.
    """
    v = np.array(vector, copy=True).reshape(-1)
    if not np.iscomplexobj(v):
        v = v.astype(float)
    original_norm = float(np.linalg.norm(v))
    if stats is None:
        stats = OrthoStats()
    if original_norm == 0.0:
        stats.deflations += 1
        return None

    if basis is None or (hasattr(basis, "size") and basis.size == 0):
        basis_mat = None
    else:
        basis_mat = np.asarray(basis)
        if basis_mat.ndim == 1:
            basis_mat = basis_mat.reshape(-1, 1)

    # The projection is computed against all basis columns at once (a single
    # BLAS-2 call) but the *accounting* stays per column: each basis column
    # contributes one long inner product and one axpy update, which is the
    # quantity the paper's cost comparison counts.
    passes = 2 if (reorthogonalize and basis_mat is not None) else 1
    if basis_mat is not None:
        n_cols = basis_mat.shape[1]
        for _ in range(passes):
            coeffs = basis_mat.conj().T @ v
            v = v - basis_mat @ coeffs
            stats.inner_products += n_cols
            stats.axpy_updates += n_cols

    norm = float(np.linalg.norm(v))
    if norm <= deflation_tol * original_norm:
        stats.deflations += 1
        return None
    stats.normalizations += 1
    return v / norm


def modified_gram_schmidt(
    candidates: np.ndarray,
    *,
    initial_basis: np.ndarray | None = None,
    deflation_tol: float = DEFAULT_DEFLATION_TOL,
    reorthogonalize: bool = True,
    require_full_rank: bool = False,
) -> tuple[np.ndarray, OrthoStats]:
    """Orthonormalise the columns of ``candidates`` (optionally against a basis).

    Parameters
    ----------
    candidates:
        ``n x k`` matrix whose columns are to be orthonormalised in order.
    initial_basis:
        Optional ``n x j`` matrix of already-orthonormal columns the new
        vectors must also be orthogonal to.  The returned basis *excludes*
        these initial columns.
    deflation_tol:
        Relative deflation tolerance.
    reorthogonalize:
        Run a second MGS sweep per vector.
    require_full_rank:
        When ``True``, raise :class:`DeflationError` if any candidate deflates
        instead of silently dropping it.

    Returns
    -------
    (numpy.ndarray, OrthoStats)
        The new orthonormal columns (``n x r`` with ``r <= k``) and the
        accumulated operation counts.
    """
    cand = np.asarray(candidates)
    if not np.iscomplexobj(cand):
        cand = cand.astype(float)
    if cand.ndim == 1:
        cand = cand.reshape(-1, 1)
    n, k = cand.shape
    stats = OrthoStats()

    init = None
    n_existing = 0
    if initial_basis is not None and np.asarray(initial_basis).size:
        init = np.asarray(initial_basis)
        if init.ndim == 1:
            init = init.reshape(-1, 1)
        if init.shape[0] != n:
            raise ValueError(
                f"initial basis has {init.shape[0]} rows, candidates have {n}"
            )
        n_existing = init.shape[1]

    # Grow the basis inside one preallocated array so each candidate is
    # orthogonalised against a *view* of the accepted columns (no copies).
    dtype = complex if (np.iscomplexobj(cand)
                        or (init is not None and np.iscomplexobj(init))) \
        else float
    workspace = np.empty((n, n_existing + k), dtype=dtype)
    if init is not None:
        workspace[:, :n_existing] = init
    count = n_existing

    for j in range(k):
        basis_view = workspace[:, :count] if count else None
        q = orthonormalize_against(
            cand[:, j], basis_view,
            stats=stats,
            deflation_tol=deflation_tol,
            reorthogonalize=reorthogonalize,
        )
        if q is None:
            if require_full_rank:
                raise DeflationError(
                    f"candidate column {j} is linearly dependent on the basis"
                )
            continue
        workspace[:, count] = q
        count += 1

    basis = np.array(workspace[:, n_existing:count])
    return basis, stats


def _columnwise_equivalent_stats(orig_norms: np.ndarray,
                                 deflated: np.ndarray,
                                 n_existing: int,
                                 reorthogonalize: bool) -> OrthoStats:
    """The :class:`OrthoStats` the column-wise kernel would have produced.

    Given the per-candidate deflation decisions, the column-wise operation
    counts are pure integer arithmetic: candidate ``j`` (in input order)
    pays ``passes * basis_size`` inner products and axpy updates against
    the ``n_existing + accepted_so_far`` basis columns, except zero
    candidates which deflate before any projection.  Replaying that
    arithmetic keeps the paper's Fig. 2 cost comparison readable off the
    same counters whichever kernel actually ran.
    """
    stats = OrthoStats()
    accepted = 0
    for j in range(orig_norms.shape[0]):
        if orig_norms[j] == 0.0:
            stats.deflations += 1
            continue
        basis_size = n_existing + accepted
        if basis_size:
            passes = 2 if reorthogonalize else 1
            stats.inner_products += passes * basis_size
            stats.axpy_updates += passes * basis_size
        if deflated[j]:
            stats.deflations += 1
        else:
            stats.normalizations += 1
            accepted += 1
    return stats


def _rank_revealing_qr(
    W: np.ndarray,
    orig_norms: np.ndarray,
    deflation_tol: float,
    *,
    require_full_rank: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Blocked rank-revealing orthonormalisation with survivor re-QR.

    Factors the (already basis-projected) candidate block ``W`` with an
    unpivoted Householder QR and replays the column-wise deflation
    decisions in input order: ``|R[j, j]|`` is candidate ``j``'s residual
    against its *predecessors*, so every decision up to the first failing
    diagonal is exactly the column-wise one.  When a column deflates,
    only that column is dropped — the remaining candidates' components
    orthogonal to the accepted span are, by the factorisation itself,
    ``Q[:, j:] @ R[j:, j+1:]``, so the next round re-QRs the *tiny*
    reduced matrix ``R[j:, j+1:]`` (at most ``k x k``) in the coordinate
    frame ``Q[:, j:]`` instead of touching length-``n`` vectors again
    (sharpy's block-Arnoldi idiom).  The deflated column's numerically
    arbitrary residual direction never joins the accepted basis; it
    survives only as a coordinate direction later candidates may still
    have genuine components along — exactly the column-wise semantics,
    where the deflated remainder is discarded but its direction is not
    subtracted from anybody.

    Parameters
    ----------
    W:
        ``n x k`` candidate block, already projected against any initial
        basis (columns need not be normalised).
    orig_norms:
        Per-candidate norms *before* the initial-basis projection — the
        reference scale of the relative deflation test.
    deflation_tol:
        Relative deflation tolerance.
    require_full_rank:
        Raise :class:`DeflationError` (naming the first deflated input
        column) instead of dropping columns.

    Returns
    -------
    (numpy.ndarray, numpy.ndarray)
        The ``n x r`` orthonormal basis of the accepted candidates and a
        length-``k`` boolean mask flagging the deflated columns, in input
        order.
    """
    n, k = W.shape
    deflated = np.zeros(k, dtype=bool)
    if k == 0:
        return np.empty((n, 0), dtype=W.dtype), deflated

    # One length-n QR judges the whole block; everything after the first
    # deflation happens in the factorisation's own (<= k-dimensional)
    # coordinates, so extra deflations cost tiny QRs, not vector work.
    Q1, R1 = scipy.linalg.qr(W, mode="economic", check_finite=False)
    j1 = min(n, k)
    diag = np.abs(np.diag(R1))
    failing = np.flatnonzero(diag <= deflation_tol * orig_norms[:j1])
    if failing.size == 0:
        if k > j1:
            # More candidates than rows with the first j1 all accepted:
            # the space is full, the overflow columns deflate exactly.
            if require_full_rank:
                raise DeflationError(
                    f"candidate column {j1} is linearly dependent on "
                    "the basis")
            deflated[j1:] = True
        return np.ascontiguousarray(Q1[:, :j1]), deflated

    first = int(failing[0])
    if require_full_rank:
        raise DeflationError(
            f"candidate column {first} is linearly dependent on the basis")
    # Deflations confirmed this round: the first failing column (all its
    # predecessors just got accepted), plus every later failing column
    # whose residual against the accepted span *alone* — rows first..j1
    # of R, i.e. the component orthogonal to all accepted directions —
    # is already below tolerance.  That subset test is sound (the true
    # accepted-predecessor span is a superset, so the true residual is
    # smaller still) and collapses the common deflation runs into one
    # round instead of one round per deflated column.
    tail = np.linalg.norm(R1[first:j1, :], axis=0)
    certain = failing[tail[failing] <= deflation_tol * orig_norms[failing]]
    deflated[certain] = True
    # Small-coordinate state: the undecided candidates' components
    # orthogonal to the accepted prefix are Q1[:, first:j1] @ M.
    # ``small_frame`` tracks the current reduced frame inside those j1
    # coordinates; accepted later columns are collected in j1
    # coordinates and lifted with one final GEMM.
    prefix = first                      # leading Q1 columns accepted
    small_frame = np.eye(j1, dtype=W.dtype)[:, first:j1]
    keep = np.flatnonzero(~deflated[first:k]) + first
    M = R1[first:j1, keep]
    cols = keep
    small_accepted: list[np.ndarray] = []
    while M.shape[1]:
        r_dim, kk = M.shape
        if r_dim == 0:
            # The ambient space is exhausted: every remaining candidate
            # lies in the accepted span and deflates.
            deflated[cols] = True
            break
        Qs, Rs = scipy.linalg.qr(M, mode="economic", check_finite=False)
        judged = min(r_dim, kk)
        diag = np.abs(np.diag(Rs))
        failing = np.flatnonzero(
            diag <= deflation_tol * orig_norms[cols[:judged]])
        if failing.size == 0:
            small_accepted.append(small_frame @ Qs[:, :judged])
            if kk > judged:
                deflated[cols[judged:]] = True
            break
        f = int(failing[0])
        tail = np.linalg.norm(Rs[f:judged, :], axis=0)
        certain = failing[
            tail[failing] <= deflation_tol * orig_norms[cols[failing]]]
        deflated[cols[f]] = True
        deflated[cols[certain]] = True
        if f:
            small_accepted.append(small_frame @ Qs[:, :f])
        small_frame = small_frame @ Qs[:, f:judged]
        keep_mask = np.ones(kk, dtype=bool)
        keep_mask[:f + 1] = False
        keep_mask[certain] = False
        M = Rs[f:judged, keep_mask]
        cols = cols[keep_mask]

    parts: list[np.ndarray] = []
    if prefix:
        parts.append(Q1[:, :prefix])
    if small_accepted:
        S = (small_accepted[0] if len(small_accepted) == 1
             else np.hstack(small_accepted))
        parts.append(Q1[:, :j1] @ S)
    if not parts:
        return np.empty((n, 0), dtype=W.dtype), deflated
    basis = parts[0] if len(parts) == 1 else np.hstack(parts)
    return np.ascontiguousarray(basis), deflated


def block_orthonormalize(
    candidates: np.ndarray,
    *,
    initial_basis: np.ndarray | None = None,
    deflation_tol: float = DEFAULT_DEFLATION_TOL,
    reorthogonalize: bool = True,
    require_full_rank: bool = False,
) -> tuple[np.ndarray, OrthoStats]:
    """Orthonormalise a whole candidate block with BLAS-3 kernels.

    The blocked counterpart of :func:`modified_gram_schmidt`: the entire
    block is projected against ``initial_basis`` with two classical
    Gram-Schmidt sweeps (each sweep is two GEMMs, ``S = Q^H W`` and
    ``W -= Q S``), then screened for linear dependence with an *unpivoted*
    Householder QR — ``|R[j, j]|`` is candidate ``j``'s residual against
    its predecessors in input order, which is exactly the column-wise
    remainder test (column pivoting must NOT be added here: it would
    permute the diagonal out of input order).  When no diagonal entry
    falls below the deflation floor — the overwhelmingly common case for
    healthy Krylov blocks — the economic ``Q`` *is* the result: same
    decisions, same operation counts, pure LAPACK/BLAS-3 instead of a
    Python loop of BLAS-2 calls.

    When the screen finds a deflation, only the deflated column is
    dropped (:func:`_rank_revealing_qr`): every decision before the first
    failing diagonal is exactly the column-wise one, and a single QR of a
    deflating block cannot be trusted *past* that point — the deflated
    candidate's numerically arbitrary residual direction contaminates
    every later diagonal entry.  So the survivors are re-judged in the
    reduced coordinates the factorisation already provides
    (``R[j:, j+1:]`` in the frame ``Q[:, j:]``): each additional
    deflation costs one at-most-``k x k`` QR, never another pass over
    length-``n`` vectors.  That reproduces the column-wise kernel's
    decisions, deflation counts, spans and ROM sizes (up to roundoff on
    genuinely borderline candidates, the same caveat the deflation-free
    fast path always had) while staying entirely inside LAPACK — the
    deflation-heavy merges of multipoint and partitioned reductions keep
    the blocked speedup instead of falling back to a column-wise rerun.

    Parameters
    ----------
    candidates:
        ``n x k`` matrix whose columns are to be orthonormalised.
    initial_basis:
        Optional ``n x j`` matrix of already-orthonormal columns the new
        vectors must also be orthogonal to.  The returned basis *excludes*
        these columns.
    deflation_tol:
        Relative deflation tolerance (residual vs. original column norm).
    reorthogonalize:
        Run the second CGS sweep against ``initial_basis`` ("twice is
        enough"); the intra-block Householder QR needs no second sweep.
    require_full_rank:
        Raise :class:`DeflationError` if any candidate deflates.

    Returns
    -------
    (numpy.ndarray, OrthoStats)
        The new orthonormal columns (``n x r`` with ``r <= k``) and
        operation counts equivalent to the column-wise kernel's (see
        module docstring).
    """
    cand = np.asarray(candidates)
    if not np.iscomplexobj(cand):
        cand = cand.astype(float)
    if cand.ndim == 1:
        cand = cand.reshape(-1, 1)
    n, k = cand.shape

    init = None
    n_existing = 0
    if initial_basis is not None and np.asarray(initial_basis).size:
        init = np.asarray(initial_basis)
        if init.ndim == 1:
            init = init.reshape(-1, 1)
        if init.shape[0] != n:
            raise ValueError(
                f"initial basis has {init.shape[0]} rows, candidates have {n}"
            )
        n_existing = init.shape[1]

    dtype = complex if (np.iscomplexobj(cand)
                        or (init is not None and np.iscomplexobj(init))) \
        else float
    if k == 0:
        return np.empty((n, 0), dtype=dtype), OrthoStats()

    orig_norms = np.linalg.norm(cand, axis=0)
    if n_existing:
        W = np.array(cand, dtype=dtype)
        passes = 2 if reorthogonalize else 1
        for _ in range(passes):
            W -= init @ (init.conj().T @ W)
    else:
        # No projection to apply: the QR below never mutates its input,
        # so the candidates need no defensive copy.
        W = np.asarray(cand, dtype=dtype)

    basis, deflated = _rank_revealing_qr(
        W, orig_norms, deflation_tol, require_full_rank=require_full_rank)
    stats = _columnwise_equivalent_stats(orig_norms, deflated, n_existing,
                                         reorthogonalize)
    basis = np.asarray(basis, dtype=dtype)
    if health_enabled() and basis.shape[1] and _should_probe(init):
        # Probe the *merged* basis — new columns must stay orthogonal to
        # the initial basis too, which is exactly what a broken CGS2
        # projection loses.  Every blocked merge funnels through here
        # (PRIMA splits, BDSM cluster merges, recycle absorbs), so this
        # one hook covers them all.  Subsample before stacking so wide
        # merges never pay a full-basis copy for the probe.
        total = n_existing + basis.shape[1]
        if init is None:
            merged = basis
        elif total <= HEALTH_LOSS_COLUMNS:
            merged = np.hstack([init, basis])
        else:
            idx = np.unique(np.linspace(0, total - 1, HEALTH_LOSS_COLUMNS)
                            .round().astype(int))
            merged = np.column_stack(
                [init[:, i] if i < n_existing else basis[:, i - n_existing]
                 for i in idx])
        default_health().record(
            "ortho.loss", orthogonality_loss(merged),
            detail=f"n={n} columns={total} "
                   f"deflated={stats.deflations}")
    return basis, stats


def _should_probe(init) -> bool:
    """Sampling policy of the ortho.loss probe (monitors enabled only).

    Merges against an existing basis (``init`` given) are always probed:
    cross-basis CGS2 is where orthogonality actually breaks, and those
    merges are few (multipoint points, recycle absorptions).  Fresh QR
    factorisations (``init is None`` — e.g. one per BDSM port cluster)
    rarely drift, so only every :data:`HEALTH_FRESH_PROBE_EVERY`-th is
    probed; this is what keeps the monitors-enabled reduce inside the
    ``health_overhead`` 5% budget on cluster-heavy reduces.
    """
    if init is not None:
        return True
    global _fresh_probe_count
    _fresh_probe_count += 1
    return (_fresh_probe_count - 1) % HEALTH_FRESH_PROBE_EVERY == 0


def theoretical_inner_products(m: int, l: int, *, clustered: bool) -> int:
    """Long-vector inner-product count predicted by the paper (Sec. III-B).

    Parameters
    ----------
    m:
        Number of input ports.
    l:
        Number of matched moments (Krylov order).
    clustered:
        ``True`` for the BDSM clustered orthonormalisation
        (``m * l * (l - 1) / 2``), ``False`` for PRIMA's global
        orthonormalisation (``m * l * (m * l - 1) / 2``).

    Notes
    -----
    The counts ignore re-orthogonalisation sweeps; the measured counts in
    :class:`OrthoStats` are therefore roughly twice these values when
    re-orthogonalisation is enabled.  The *ratio* between PRIMA and BDSM,
    which is the paper's claim, is unaffected.
    """
    if m < 0 or l < 0:
        raise ValueError("m and l must be non-negative")
    if clustered:
        return m * (l * (l - 1)) // 2
    q = m * l
    return (q * (q - 1)) // 2
