"""Krylov basis recycling across expansion points and shards.

Multipoint reduction rebuilds a Krylov basis at every expansion point, and
partitioned reduction rebuilds one per shard, even though neighbouring
shifts (and content-identical shards) span heavily overlapping subspaces.
The :class:`~repro.linalg.backends.FactorizationCache` already shares LU
factors; this module shares the *subspace*:

:class:`RecycleWorkspace`
    Carries the orthonormal basis accumulated at shifts ``s_1 .. s_j`` into
    the build at ``s_{j+1}``.  Candidate blocks at the new shift are
    CGS2-projected against the recycled basis *first*; a candidate whose
    residual falls below ``recycle_tol`` is already captured and leaves the
    Krylov recursion immediately — its remaining shifted solves are
    skipped, not just its re-orthonormalisation.  Hits, misses and skipped
    solves are tallied in :class:`RecycleStats` and mirrored to the
    ``krylov.recycle`` metric.

:func:`recycled_block_krylov_basis` / :func:`recycled_clustered_krylov_bases`
    Recycling-aware counterparts of
    :func:`~repro.linalg.krylov.block_krylov_basis` (PRIMA's global basis)
    and :func:`~repro.linalg.krylov.column_clustered_krylov_bases` (BDSM's
    per-port groups).  At the first shift the workspace is empty, screening
    is a no-op and the construction matches the from-scratch kernels.

:class:`ShardBasisCache`
    Fingerprint-keyed reuse of whole shard projection bases.  Sibling
    shards live in disjoint coordinate spaces, so cross-shard *projection*
    is unsound in general — but regular grids produce many
    content-identical shards (same pencil, ports and interface footprint),
    and those can soundly share one basis.  The cache is thread-safe
    (shards fan out over a thread pool) and is threaded down the
    multilevel recursion so child-level reductions reuse it too.

Screening against a recycled basis is span-*approximate*: dropping a
candidate also drops its image under the Krylov operator, which the
recycled basis is not guaranteed to contain.  For clustered or repeated
shifts — the regime where recycling pays — the omitted directions are
higher-order cross terms; parity is therefore checked in transfer-function
/ pole tolerance, and recycling stays opt-in (off = bit-identical to the
from-scratch path).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.linalg.backends import matrix_fingerprint
from repro.linalg.orthogonalization import (
    DEFAULT_DEFLATION_TOL,
    OrthoStats,
    block_orthonormalize,
)
from repro.obs.metrics import default_metrics

__all__ = [
    "DEFAULT_RECYCLE_TOL",
    "RecycleStats",
    "RecycleWorkspace",
    "ShardBasisCache",
    "recycled_block_krylov_basis",
    "recycled_clustered_krylov_bases",
]

#: Default relative tolerance for deflating a candidate against a recycled
#: basis.  Looser than the intra-block ``DEFAULT_DEFLATION_TOL`` (1e-12):
#: Krylov spaces at *distinct* shifts rarely coincide to machine precision,
#: but for clustered shifts the overlap is strong well before that — and a
#: direction captured to 1e-8 contributes nothing a congruence projection
#: can resolve.
DEFAULT_RECYCLE_TOL = 1e-8


@dataclass
class RecycleStats:
    """Hit/skip accounting for basis recycling.

    Attributes
    ----------
    screened:
        Candidate columns tested against a (non-empty) recycled basis.
    hits:
        Candidates deflated by the recycled basis — directions already
        captured at an earlier shift.
    solves_skipped:
        Shifted-solve right-hand-side columns avoided because a hit left
        the Krylov recursion before its remaining moments were computed.
        Comparable unit to :attr:`ShiftedOperator.solve_count`.
    shard_hits / shard_misses:
        :class:`ShardBasisCache` lookups that did / did not find a
        content-identical shard basis.
    """

    screened: int = 0
    hits: int = 0
    solves_skipped: int = 0
    shard_hits: int = 0
    shard_misses: int = 0

    def merge(self, other: "RecycleStats") -> None:
        self.screened += other.screened
        self.hits += other.hits
        self.solves_skipped += other.solves_skipped
        self.shard_hits += other.shard_hits
        self.shard_misses += other.shard_misses

    def as_dict(self) -> dict:
        return {
            "screened": int(self.screened),
            "hits": int(self.hits),
            "solves_skipped": int(self.solves_skipped),
            "shard_hits": int(self.shard_hits),
            "shard_misses": int(self.shard_misses),
        }


class RecycleWorkspace:
    """Orthonormal basis carried from one shift's build into the next.

    The workspace distinguishes *recycled* columns (accumulated at earlier
    shifts, frozen at :meth:`begin_shift`) from columns absorbed during the
    current shift.  :meth:`screen` deflates candidates only against the
    frozen prefix with the loose ``recycle_tol``; :meth:`absorb`
    orthonormalises survivors against the *whole* basis with the strict
    ``deflation_tol``.  The split keeps the first shift exactly equivalent
    to a from-scratch build (nothing is frozen yet, so nothing screens)
    while later shifts deflate already-captured directions before their
    solves are spent.
    """

    def __init__(self, n: int, *,
                 recycle_tol: float = DEFAULT_RECYCLE_TOL,
                 deflation_tol: float = DEFAULT_DEFLATION_TOL,
                 stats: RecycleStats | None = None) -> None:
        if recycle_tol <= 0.0:
            raise ValueError("recycle_tol must be positive")
        self.n = int(n)
        self.recycle_tol = float(recycle_tol)
        self.deflation_tol = float(deflation_tol)
        self.basis = np.empty((self.n, 0))
        self.stats = stats if stats is not None else RecycleStats()
        self._frozen = 0

    @property
    def size(self) -> int:
        """Total number of columns held (recycled + current shift)."""
        return int(self.basis.shape[1])

    @property
    def frozen_size(self) -> int:
        """Columns frozen as the recycled prefix for the current shift."""
        return self._frozen

    def begin_shift(self) -> int:
        """Freeze the accumulated basis as the recycled prefix.

        Everything absorbed so far becomes screening material for the
        shift about to start.  Returns the frozen column count.
        """
        self._frozen = self.size
        return self._frozen

    def screen(self, candidates: np.ndarray) -> np.ndarray:
        """Boolean keep-mask for ``candidates`` against the recycled prefix.

        Each column is CGS2-projected ("twice is enough") against the
        frozen recycled columns; a column whose residual norm falls below
        ``recycle_tol`` times its original norm is a *hit* — its direction
        was captured at an earlier shift — and is marked for removal from
        the Krylov recursion.  Complex candidates are screened in complex
        arithmetic against the real basis (``v`` lies in the complex span
        of a real ``Q`` iff both its real and imaginary parts lie in the
        real span, and the residual norms agree).

        The candidates themselves are not modified.
        """
        W = candidates if candidates.ndim == 2 else candidates.reshape(-1, 1)
        k = W.shape[1]
        if k == 0:
            return np.zeros(0, dtype=bool)
        Q = self.basis[:, :self._frozen]
        if Q.shape[1] == 0:
            return np.ones(k, dtype=bool)
        orig = np.linalg.norm(W, axis=0)
        R = W.copy()
        for _ in range(2):
            R -= Q @ (Q.T @ R)
        residual = np.linalg.norm(R, axis=0)
        keep = residual > self.recycle_tol * orig
        # Zero candidates carry no direction at all; they are not recycled
        # hits, just degenerate inputs the absorb step will deflate.
        keep |= orig == 0.0
        hits = int(k - np.count_nonzero(keep))
        self.stats.screened += k
        self.stats.hits += hits
        metrics = default_metrics()
        if hits:
            metrics.increment("krylov.recycle", amount=float(hits),
                              result="hit")
        if k - hits:
            metrics.increment("krylov.recycle", amount=float(k - hits),
                              result="miss")
        return keep

    def absorb(self, candidates: np.ndarray, stats: OrthoStats) -> int:
        """Orthonormalise ``candidates`` against the basis and append.

        Complex blocks are split into real and imaginary parts first (the
        workspace basis stays real so downstream ROMs stay real — the
        standard real rational-Arnoldi trick).  Returns the number of
        columns actually added; deflation counts accrue to ``stats``.
        """
        W = candidates if candidates.ndim == 2 else candidates.reshape(-1, 1)
        if W.shape[1] == 0:
            return 0
        if np.iscomplexobj(W):
            W = np.hstack([np.real(W), np.imag(W)])
        W = np.asarray(W, dtype=float)
        new_cols, merge_stats = block_orthonormalize(
            W, initial_basis=self.basis if self.size else None,
            deflation_tol=self.deflation_tol)
        stats.merge(merge_stats)
        if new_cols.size:
            self.basis = (np.hstack([self.basis, new_cols])
                          if self.size else new_cols)
        return int(new_cols.shape[1])


def recycled_block_krylov_basis(operator, B, order: int, *,
                                workspace: RecycleWorkspace,
                                ) -> tuple[OrthoStats, int, bool]:
    """One shift of a PRIMA-style block Krylov build, recycling-aware.

    Mirrors :func:`~repro.linalg.krylov.block_krylov_basis` — the operator
    is applied to the *raw* surviving candidates each step — but every
    step block is screened against the workspace's recycled prefix first.
    Hits leave the recursion, so each one saves ``order - 1 - step``
    shifted solves; survivors are absorbed directly into the workspace
    (no separate per-shift basis + merge pass).

    Returns ``(ortho_stats, columns_added, deflated)``.  Call
    :meth:`RecycleWorkspace.begin_shift` before each shift.
    """
    if order < 1:
        raise ValueError("Krylov order must be >= 1")
    stats = OrthoStats()
    added = 0
    deflated = False
    current = np.asarray(operator.starting_block(B))
    if current.ndim == 1:
        current = current.reshape(-1, 1)
    for step in range(order):
        keep = workspace.screen(current)
        skipped = int(current.shape[1] - np.count_nonzero(keep))
        if skipped:
            deflated = True
            workspace.stats.solves_skipped += skipped * (order - 1 - step)
            current = current[:, keep]
        if current.shape[1]:
            n_new = workspace.absorb(current, stats)
            added += n_new
            if n_new < (current.shape[1] *
                        (2 if np.iscomplexobj(current) else 1)):
                deflated = True
        if step == order - 1 or current.shape[1] == 0:
            break
        current = np.asarray(operator.apply(current))
        if current.ndim == 1:
            current = current.reshape(-1, 1)
    return stats, added, deflated


def recycled_clustered_krylov_bases(operator, B_dense: np.ndarray,
                                    order: int, *,
                                    workspaces: list[RecycleWorkspace],
                                    columns: list[int],
                                    ) -> tuple[OrthoStats, bool]:
    """One shift of BDSM's per-port clustered build, recycling-aware.

    Mirrors :func:`~repro.linalg.krylov.column_clustered_krylov_bases`:
    the candidate recursion is shared across all selected columns (one
    shifted solve block per step), but each column screens and absorbs
    against *its own port's* workspace.  A port whose candidate deflates
    against its recycled basis drops out of the shared recursion — the
    solve-skipping is per column, so one captured port does not stall the
    others.

    ``workspaces[i]`` accumulates the combined multi-point group basis
    for ``columns[i]``; read ``workspace.basis`` after the last shift.
    Call :meth:`RecycleWorkspace.begin_shift` on each before each shift.
    """
    if order < 1:
        raise ValueError("Krylov order must be >= 1")
    if len(workspaces) != len(columns):
        raise ValueError("need exactly one workspace per selected column")
    stats = OrthoStats()
    deflated = False
    active = list(range(len(columns)))
    current = np.asarray(operator.starting_block(B_dense[:, columns]))
    if current.ndim == 1:
        current = current.reshape(-1, 1)
    for step in range(order):
        survivors: list[int] = []
        kept_positions: list[int] = []
        for pos, local_idx in enumerate(active):
            ws = workspaces[local_idx]
            col = current[:, pos]
            if not bool(ws.screen(col)[0]):
                # Recycled hit: this port's direction is already captured;
                # skip its remaining moments' solves.
                deflated = True
                ws.stats.solves_skipped += order - 1 - step
                continue
            n_new = ws.absorb(col, stats)
            if n_new < (2 if np.iscomplexobj(col) else 1):
                deflated = True
            survivors.append(local_idx)
            kept_positions.append(pos)
        if step == order - 1 or not survivors:
            break
        active = survivors
        current = np.asarray(operator.apply(current[:, kept_positions]))
        if current.ndim == 1:
            current = current.reshape(-1, 1)
    return stats, deflated


class ShardBasisCache:
    """Thread-safe fingerprint-keyed reuse of shard projection bases.

    Partitioned reduction keys its :class:`~repro.store.ModelStore`
    entries on the shard *index* (two different subdomains must never
    collide), so content-identical sibling shards — ubiquitous on regular
    grids — still each pay a full Krylov build.  This cache keys on
    content alone: the fingerprints of the shard's ``C, G, B, L`` plus
    every numerically relevant knob.  A hit returns the exact basis the
    identical shard produced, which is sound because a congruence
    projection depends on the shard only through those matrices.

    One instance is shared across the shard thread fan-out and passed
    down the multilevel recursion, so sibling shards *and* child-level
    shards at any depth all draw from the same pool.
    """

    def __init__(self, stats: RecycleStats | None = None) -> None:
        self._lock = threading.Lock()
        self._entries: dict[tuple, np.ndarray] = {}
        self.stats = stats if stats is not None else RecycleStats()

    @staticmethod
    def key_for(system, **params) -> tuple:
        """Content key for one shard reduction.

        ``params`` must carry every knob that changes the basis
        (``n_moments``, ``s0``, ``method``, ``deflation_tol``,
        ``ortho_kernel``, interface description, ...).
        """
        return (
            matrix_fingerprint(system.C),
            matrix_fingerprint(system.G),
            matrix_fingerprint(system.B),
            matrix_fingerprint(system.L),
            tuple(sorted((str(k), repr(v)) for k, v in params.items())),
        )

    def fetch(self, key: tuple) -> np.ndarray | None:
        """Basis for ``key`` or ``None``; counts the hit/miss."""
        with self._lock:
            basis = self._entries.get(key)
            if basis is None:
                self.stats.shard_misses += 1
            else:
                self.stats.shard_hits += 1
        default_metrics().increment(
            "partition.shard_basis_cache", result="miss" if basis is None
            else "hit")
        return basis

    def store(self, key: tuple, basis: np.ndarray) -> None:
        """Record ``basis`` for ``key`` (first writer wins)."""
        with self._lock:
            self._entries.setdefault(key, basis)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def describe(self) -> dict:
        """Hit/miss/entry summary for partition_info records."""
        with self._lock:
            entries = len(self._entries)
        return {"entries": entries,
                "hits": int(self.stats.shard_hits),
                "misses": int(self.stats.shard_misses)}
