"""(Block) Krylov subspace construction for descriptor systems.

All moment-matching reducers in this library (PRIMA, EKS, BDSM) build bases
of the Krylov subspace

    K_l(A, R) = span{R, A R, A^2 R, ..., A^{l-1} R},
    A = (s0*C - G)^{-1} C,     R = (s0*C - G)^{-1} B,

around an expansion point ``s0``.  The expensive pieces — one sparse LU of
``(s0*C - G)`` and repeated triangular solves — are shared here through
:class:`ShiftedOperator` so the reducers differ only in *how the candidate
vectors are orthonormalised* (globally for PRIMA, clustered per input column
for BDSM), which is exactly the distinction the paper draws in Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.exceptions import DeflationError, ReductionError
from repro.obs.tracing import trace_span
from repro.linalg.backends import (
    FactorizationCache,
    SolverOptions,
    get_solver,
    matrix_fingerprint,
)
from repro.linalg.orthogonalization import (
    DEFAULT_DEFLATION_TOL,
    OrthoStats,
    block_orthonormalize,
    modified_gram_schmidt,
    orthonormalize_against,
)
from repro.linalg.sparse_utils import to_csr

__all__ = [
    "ShiftedOperator",
    "KrylovResult",
    "ORTHO_KERNELS",
    "block_krylov_basis",
    "column_clustered_krylov_bases",
    "krylov_candidate_blocks",
]

#: Orthonormalisation kernels selectable by the basis constructors:
#: ``"blocked"`` (BLAS-3 CGS2 + rank-revealing QR, the default production
#: path) and ``"columnwise"`` (the modified-Gram-Schmidt reference the
#: paper's operation counts are phrased in).
ORTHO_KERNELS = ("blocked", "columnwise")


def _orthonormalize_block(candidates, initial_basis, *, kernel: str,
                          deflation_tol: float,
                          require_full_rank: bool = False,
                          ) -> tuple[np.ndarray, OrthoStats]:
    """Dispatch one whole-block orthonormalisation to the chosen kernel."""
    if kernel == "blocked":
        return block_orthonormalize(
            candidates, initial_basis=initial_basis,
            deflation_tol=deflation_tol,
            require_full_rank=require_full_rank)
    if kernel == "columnwise":
        return modified_gram_schmidt(
            candidates, initial_basis=initial_basis,
            deflation_tol=deflation_tol,
            require_full_rank=require_full_rank)
    raise ValueError(
        f"unknown orthonormalisation kernel {kernel!r}; "
        f"choose from {ORTHO_KERNELS}")


class ShiftedOperator:
    """Applies ``(s0*C - G)^{-1}`` and ``(s0*C - G)^{-1} C`` efficiently.

    Parameters
    ----------
    C, G:
        The descriptor matrices (sparse or dense, ``n x n``).
    s0:
        Expansion point.  Real non-negative values are typical for power-grid
        reduction (the paper uses a single real point); complex values are
        supported for multipoint/rational extensions.
    solver:
        Optional :class:`~repro.linalg.backends.SolverOptions` choosing the
        backend used for the pencil (auto-selected by default).
    cache:
        Optional explicit :class:`~repro.linalg.backends.FactorizationCache`;
        by default the process-wide cache is consulted, keyed on
        ``(pencil fingerprint, s0)``, so operators built repeatedly on the
        same pencil (multipoint sweeps, repeated reductions, IR-drop after a
        reduction) share one factorisation.

    Notes
    -----
    The shifted pencil is prepared once through the backend registry
    (sparse LU for a generic pencil, Cholesky-style for SPD RC pencils,
    dense LAPACK for tiny reduced pencils, CG/GMRES above the iterative
    threshold).  ``solve`` then handles whole right-hand-side blocks at
    once, matching Algorithm 1 step 2/4.1 of the paper.
    """

    def __init__(self, C, G, s0: complex = 0.0, *,
                 solver: SolverOptions | None = None,
                 cache: FactorizationCache | None = None) -> None:
        self.C = to_csr(C)
        self.G = to_csr(G)
        if self.C.shape != self.G.shape:
            raise ReductionError(
                f"C and G must have identical shapes, got {self.C.shape} "
                f"and {self.G.shape}"
            )
        if self.C.shape[0] != self.C.shape[1]:
            raise ReductionError("C and G must be square")
        self.s0 = complex(s0)
        self.n = self.C.shape[0]
        self._real = self.s0.imag == 0.0
        if self._real:
            pencil = (self.s0.real * self.C - self.G).tocsc()
        else:
            pencil = (self.s0 * self.C.astype(complex)
                      - self.G.astype(complex)).tocsc()
        self.solver_options = solver or SolverOptions()
        self._solver = get_solver(
            pencil, options=self.solver_options, cache=cache,
            key=(matrix_fingerprint(pencil), self.s0))
        self._solve_count = 0

    @property
    def solve_count(self) -> int:
        """Number of right-hand-side columns solved so far."""
        return self._solve_count

    @property
    def backend_name(self) -> str:
        """Registry name of the backend solving this pencil."""
        return self._solver.name

    def solve(self, rhs) -> np.ndarray:
        """Solve ``(s0*C - G) X = rhs`` for a vector or a whole block.

        The backend handles densification and dtype casting; only the row
        check happens here so shape mistakes keep raising the library's
        :class:`ReductionError`.
        """
        if not hasattr(rhs, "shape"):
            rhs = np.asarray(rhs)
        if rhs.shape[0] != self.n:
            raise ReductionError(
                f"right-hand side has {rhs.shape[0]} rows, expected {self.n}"
            )
        with trace_span("linalg.solve", backend=self._solver.name,
                        columns=1 if rhs.ndim == 1 else rhs.shape[1]):
            out = self._solver.solve(rhs)
        self._solve_count += 1 if out.ndim == 1 else out.shape[1]
        return out

    def apply(self, X) -> np.ndarray:
        """Apply the Krylov operator ``A = (s0*C - G)^{-1} C`` to ``X``."""
        product = self.C @ (X.toarray() if sp.issparse(X) else np.asarray(X))
        return self.solve(product)

    def starting_block(self, B) -> np.ndarray:
        """Return the normalised starting block ``(s0*C - G)^{-1} B``."""
        return self.solve(B)


@dataclass
class KrylovResult:
    """Result of a Krylov basis construction.

    Attributes
    ----------
    basis:
        ``n x q`` matrix with orthonormal columns spanning the subspace.
    stats:
        Orthonormalisation operation counts (see :class:`OrthoStats`).
    moments_requested:
        Krylov order ``l`` that was requested.
    deflated:
        ``True`` when at least one candidate vector was dropped.
    per_block_sizes:
        For clustered construction, the number of columns retained per input
        column; for block construction, a single-element list.
    """

    basis: np.ndarray
    stats: OrthoStats
    moments_requested: int
    deflated: bool = False
    per_block_sizes: list[int] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Number of columns in the basis (the eventual ROM order share)."""
        return int(self.basis.shape[1])


def krylov_candidate_blocks(operator: ShiftedOperator, B, order: int,
                            ) -> list[np.ndarray]:
    """Return the raw candidate blocks ``M_j`` of Fig. 2 (unorthogonalised).

    ``M_1 = (s0 C - G)^{-1} B`` and ``M_{j+1} = (s0 C - G)^{-1} C M_j``.
    Mostly useful for tests and for illustrating the clustering step.
    """
    if order < 1:
        raise ValueError("Krylov order must be >= 1")
    blocks = [np.asarray(operator.starting_block(B))]
    for _ in range(order - 1):
        blocks.append(np.asarray(operator.apply(blocks[-1])))
    return blocks


def block_krylov_basis(
    operator: ShiftedOperator,
    B,
    order: int,
    *,
    deflation_tol: float = DEFAULT_DEFLATION_TOL,
    require_full_rank: bool = False,
    kernel: str = "blocked",
) -> KrylovResult:
    """Construct an orthonormal basis of the block Krylov subspace (PRIMA-style).

    All candidate vectors are orthonormalised against *every* previously
    accepted vector, which is the global (unclustered) scheme whose cost the
    paper attributes to PRIMA.

    Parameters
    ----------
    operator:
        Pre-factorised :class:`ShiftedOperator`.
    B:
        ``n x m`` input matrix (dense or sparse).
    order:
        Number of moments ``l`` to match.
    deflation_tol:
        Relative tolerance for dropping linearly dependent candidates.
    require_full_rank:
        Raise :class:`DeflationError` instead of dropping candidates.
    kernel:
        Orthonormalisation kernel (see :data:`ORTHO_KERNELS`): ``"blocked"``
        (default) runs each step block through the BLAS-3 kernel;
        ``"columnwise"`` is the modified-Gram-Schmidt reference.  Both span
        the same subspace, so the ROM is identical up to an orthogonal
        change of reduced coordinates.
    """
    if order < 1:
        raise ValueError("Krylov order must be >= 1")
    stats = OrthoStats()
    n = operator.n

    current = np.asarray(operator.starting_block(B))
    if current.ndim == 1:
        current = current.reshape(-1, 1)

    basis = np.empty((n, 0))
    deflated = False
    for step in range(order):
        new_cols, step_stats = _orthonormalize_block(
            current,
            basis if basis.size else None,
            kernel=kernel,
            deflation_tol=deflation_tol,
            require_full_rank=require_full_rank,
        )
        stats.merge(step_stats)
        if step_stats.deflations:
            deflated = True
        if new_cols.size:
            basis = np.hstack([basis, new_cols]) if basis.size else new_cols
        if step == order - 1:
            break
        if not basis.size:
            raise DeflationError(
                "Krylov construction produced an empty basis; the input "
                "matrix B is (numerically) zero"
            )
        current = np.asarray(operator.apply(current))
        if current.ndim == 1:
            current = current.reshape(-1, 1)

    if not basis.size:
        raise DeflationError("block Krylov basis is empty")
    return KrylovResult(
        basis=basis,
        stats=stats,
        moments_requested=order,
        deflated=deflated,
        per_block_sizes=[int(basis.shape[1])],
    )


def column_clustered_krylov_bases(
    operator: ShiftedOperator,
    B,
    order: int,
    *,
    deflation_tol: float = DEFAULT_DEFLATION_TOL,
    columns: list[int] | None = None,
    kernel: str = "blocked",
) -> tuple[list[np.ndarray], OrthoStats, bool]:
    """Construct one thin Krylov basis per input column (BDSM clustering).

    This is the "cluster vectors, then orthonormalise each group" flow of
    Fig. 2 and Algorithm 1: the candidate blocks ``M_j`` are computed for the
    whole input matrix at once (sharing the sparse solves), but column ``i``
    of every ``M_j`` is orthonormalised only against the previous vectors of
    *its own* group ``V^(i)``.

    Parameters
    ----------
    operator:
        Pre-factorised :class:`ShiftedOperator`.
    B:
        ``n x m`` input matrix.
    order:
        Number of moments ``l`` per column.
    deflation_tol:
        Relative deflation tolerance inside each group.
    columns:
        Optional subset of column indices to build bases for (default: all).
    kernel:
        Orthonormalisation kernel (see :data:`ORTHO_KERNELS`).  The default
        ``"blocked"`` path gathers each group's ``l`` candidates (column
        ``i`` of every ``M_j``) into one ``n x l`` block and orthonormalises
        it with a single BLAS-3 call; ``"columnwise"`` is the per-vector
        reference loop.  The blocked path holds all candidate blocks at
        once (``n x len(columns) x l`` floats) — chunk the columns (as
        :func:`~repro.core.bdsm.bdsm_reduce` does) to bound memory on very
        wide systems.

    Returns
    -------
    (bases, stats, deflated)
        ``bases[i]`` is the ``n x l_i`` orthonormal basis for the selected
        column ``i`` (``l_i <= order`` if deflation occurred), ``stats``
        aggregates the orthonormalisation counts over all groups, and
        ``deflated`` flags whether any group lost a vector.
    """
    if order < 1:
        raise ValueError("Krylov order must be >= 1")
    if kernel not in ORTHO_KERNELS:
        raise ValueError(
            f"unknown orthonormalisation kernel {kernel!r}; "
            f"choose from {ORTHO_KERNELS}")
    B_dense = B.toarray() if sp.issparse(B) else np.asarray(B, dtype=float)
    if B_dense.ndim == 1:
        B_dense = B_dense.reshape(-1, 1)
    m = B_dense.shape[1]
    selected = list(range(m)) if columns is None else list(columns)
    for i in selected:
        if not 0 <= i < m:
            raise ValueError(f"column index {i} out of range for m={m}")

    stats = OrthoStats()
    deflated = False

    # Shared candidate recursion over all selected columns at once: this is
    # what makes BDSM no more expensive than PRIMA in solves (Algorithm 1).
    current = np.asarray(
        operator.starting_block(B_dense[:, selected]))
    if current.ndim == 1:
        current = current.reshape(-1, 1)

    bases: list[np.ndarray] = [np.empty((operator.n, 0)) for _ in selected]
    if kernel == "blocked":
        # Gather the candidate blocks M_1..M_l first (the recursion applies
        # the operator to the *raw* blocks either way, so the candidates are
        # identical to the column-wise path), then orthonormalise each
        # group's n x l block with one BLAS-3 call.
        candidate_blocks = [current]
        for _ in range(order - 1):
            current = np.asarray(operator.apply(current))
            if current.ndim == 1:
                current = current.reshape(-1, 1)
            candidate_blocks.append(current)
        for local_idx in range(len(selected)):
            group = np.column_stack(
                [blk[:, local_idx] for blk in candidate_blocks])
            basis_i, group_stats = block_orthonormalize(
                group, deflation_tol=deflation_tol)
            stats.merge(group_stats)
            if group_stats.deflations:
                deflated = True
            bases[local_idx] = basis_i
    else:
        for step in range(order):
            for local_idx in range(len(selected)):
                candidate = current[:, local_idx]
                existing = bases[local_idx] if bases[local_idx].size else None
                q = orthonormalize_against(
                    candidate, existing,
                    stats=stats, deflation_tol=deflation_tol,
                )
                if q is None:
                    deflated = True
                    continue
                if bases[local_idx].size:
                    bases[local_idx] = np.column_stack([bases[local_idx], q])
                else:
                    bases[local_idx] = q.reshape(-1, 1)
            if step == order - 1:
                break
            current = np.asarray(operator.apply(current))
            if current.ndim == 1:
                current = current.reshape(-1, 1)

    for local_idx, basis in enumerate(bases):
        if basis.shape[1] == 0:
            raise DeflationError(
                f"input column {selected[local_idx]} produced an empty Krylov "
                "basis (zero column in B?)"
            )
    return bases, stats, deflated
