"""Unified metrics core: counters, gauges and reservoir histograms.

This module is the single home of the percentile arithmetic that used to
be duplicated between :mod:`repro.perf.timers` (flat timers without
percentiles at all) and :mod:`repro.serve.stats` (a per-kind latency
window with its own interpolation code).  Both now delegate here:

* :func:`percentile` — linear-interpolated percentile of a sample list,
  pinned to ``0.0`` for the empty sample (serving dashboards expect a
  number, not an exception, before the first request lands);
* :class:`Reservoir` — a bounded sliding window of observations with
  ``p50``/``p99`` accessors built on :func:`percentile`;
* :class:`Counter` / :class:`Gauge` / :class:`Histogram` — the classic
  metric trio, keyed by name + label tuple;
* :class:`MetricsRegistry` — a thread-safe bag of the above with
  ``snapshot()`` / ``merge_snapshot()`` so worker-process metrics can be
  shipped back to the parent (see ``SweepEngine``).

Everything here is stdlib-only so any layer of the library can import it
without cycles.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Reservoir",
    "default_metrics",
    "percentile",
]

#: Default bound of a :class:`Reservoir`; matches the serving layer's
#: historical latency window so percentiles stay O(window log window).
DEFAULT_RESERVOIR_SIZE = 4096


def percentile(samples, q: float) -> float:
    """Linear-interpolated ``q``-th percentile of ``samples``.

    The empty sample is pinned to ``0.0`` (not an error): callers render
    dashboards and report lines before the first observation arrives.
    ``q`` is clamped to ``[0, 100]``.
    """
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    q = min(100.0, max(0.0, float(q)))
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class Reservoir:
    """Bounded sliding window of float observations with percentiles.

    Keeps the most recent ``maxlen`` observations (older ones roll off)
    plus lifetime count/total/min/max, so means stay exact even after the
    window wraps.  Not thread-safe on its own — owners lock around it.
    """

    __slots__ = ("_window", "count", "total", "min", "max")

    def __init__(self, maxlen: int = DEFAULT_RESERVOIR_SIZE,
                 samples=None) -> None:
        self._window = deque(maxlen=maxlen)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0
        if samples:
            for value in samples:
                self.observe(value)

    def observe(self, value: float) -> None:
        value = float(value)
        self._window.append(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def percentile(self, q: float) -> float:
        return percentile(self._window, q)

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def samples(self) -> list[float]:
        """The current window, oldest first."""
        return list(self._window)

    @property
    def maxlen(self) -> int:
        return self._window.maxlen

    def copy(self) -> "Reservoir":
        dup = Reservoir(maxlen=self._window.maxlen)
        dup._window.extend(self._window)
        dup.count = self.count
        dup.total = self.total
        dup.min = self.min
        dup.max = self.max
        return dup

    def extend_window(self, samples) -> None:
        """Append ``samples`` to the percentile window only — lifetime
        count/total/min/max are untouched (used when scalars were merged
        separately from a snapshot)."""
        self._window.extend(float(v) for v in samples)

    def merge(self, other: "Reservoir") -> None:
        """Fold ``other`` into this reservoir (window + lifetime stats)."""
        self._window.extend(other._window)
        self.count += other.count
        self.total += other.total
        if other.count:
            if other.min < self.min:
                self.min = other.min
            if other.max > self.max:
                self.max = other.max

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max,
            "mean": self.mean,
            "p50": self.p50,
            "p99": self.p99,
        }


def _label_key(labels: dict | None) -> tuple:
    return tuple(sorted((labels or {}).items()))


@dataclass
class Counter:
    """Monotonic counter (one name, one label set)."""

    name: str
    labels: dict = field(default_factory=dict)
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


@dataclass
class Gauge:
    """Set-to-current-value metric (queue depths, warm-set bytes, ...)."""

    name: str
    labels: dict = field(default_factory=dict)
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Reservoir-backed distribution metric (one name, one label set)."""

    __slots__ = ("name", "labels", "reservoir")

    def __init__(self, name: str, labels: dict | None = None,
                 maxlen: int = DEFAULT_RESERVOIR_SIZE) -> None:
        self.name = name
        self.labels = dict(labels or {})
        self.reservoir = Reservoir(maxlen=maxlen)

    def observe(self, value: float) -> None:
        self.reservoir.observe(value)


class MetricsRegistry:
    """Thread-safe bag of counters, gauges and histograms.

    Metrics are identified by ``(name, sorted label items)``; the helpers
    create on first touch.  ``snapshot()`` returns a plain picklable dict
    (what crosses process boundaries) and ``merge_snapshot()`` folds such
    a dict back in — counters and histogram lifetimes add, gauges take
    the incoming value (last writer wins, which is the only sane merge
    for a point-in-time reading).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}

    # -- write side ---------------------------------------------------- #
    def counter(self, name: str, **labels) -> Counter:
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._counters.get(key)
            if metric is None:
                metric = self._counters[key] = Counter(name, dict(labels))
        return metric

    def gauge(self, name: str, **labels) -> Gauge:
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._gauges.get(key)
            if metric is None:
                metric = self._gauges[key] = Gauge(name, dict(labels))
        return metric

    def histogram(self, name: str, **labels) -> Histogram:
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._histograms.get(key)
            if metric is None:
                metric = self._histograms[key] = Histogram(name, dict(labels))
        return metric

    def increment(self, name: str, amount: float = 1.0, **labels) -> None:
        with self._lock:
            key = (name, _label_key(labels))
            metric = self._counters.get(key)
            if metric is None:
                metric = self._counters[key] = Counter(name, dict(labels))
            metric.value += amount

    def observe(self, name: str, value: float, **labels) -> None:
        histogram = self.histogram(name, **labels)
        with self._lock:
            histogram.observe(value)

    def set_gauge(self, name: str, value: float, **labels) -> None:
        with self._lock:
            key = (name, _label_key(labels))
            metric = self._gauges.get(key)
            if metric is None:
                metric = self._gauges[key] = Gauge(name, dict(labels))
            metric.value = float(value)

    # -- read side ----------------------------------------------------- #
    def snapshot(self) -> dict:
        """Picklable point-in-time view of every metric."""
        with self._lock:
            return {
                "counters": [
                    {"name": c.name, "labels": dict(c.labels),
                     "value": c.value}
                    for c in self._counters.values()
                ],
                "gauges": [
                    {"name": g.name, "labels": dict(g.labels),
                     "value": g.value}
                    for g in self._gauges.values()
                ],
                "histograms": [
                    {"name": h.name, "labels": dict(h.labels),
                     **h.reservoir.as_dict(),
                     "samples": h.reservoir.samples()}
                    for h in self._histograms.values()
                ],
            }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` dict (e.g. from a worker process) in."""
        with self._lock:
            for entry in snapshot.get("counters", ()):
                key = (entry["name"], _label_key(entry.get("labels")))
                metric = self._counters.get(key)
                if metric is None:
                    metric = self._counters[key] = Counter(
                        entry["name"], dict(entry.get("labels") or {}))
                metric.value += entry["value"]
            for entry in snapshot.get("gauges", ()):
                key = (entry["name"], _label_key(entry.get("labels")))
                metric = self._gauges.get(key)
                if metric is None:
                    metric = self._gauges[key] = Gauge(
                        entry["name"], dict(entry.get("labels") or {}))
                metric.value = entry["value"]
            for entry in snapshot.get("histograms", ()):
                key = (entry["name"], _label_key(entry.get("labels")))
                metric = self._histograms.get(key)
                if metric is None:
                    metric = self._histograms[key] = Histogram(
                        entry["name"], dict(entry.get("labels") or {}))
                incoming = Reservoir(maxlen=metric.reservoir.maxlen,
                                     samples=entry.get("samples") or ())
                # Lifetime stats come from the snapshot, not the window
                # replay (the window may have rolled off observations).
                incoming.count = entry.get("count", incoming.count)
                incoming.total = entry.get("total", incoming.total)
                if incoming.count:
                    incoming.min = entry.get("min", incoming.min)
                    incoming.max = entry.get("max", incoming.max)
                metric.reservoir.merge(incoming)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


_DEFAULT_METRICS = MetricsRegistry()


def default_metrics() -> MetricsRegistry:
    """The process-wide metrics registry instrumentation writes into."""
    return _DEFAULT_METRICS
