"""Unified observability layer: hierarchical spans + metrics core.

``repro.obs`` is the library's single source of truth for "where did the
time go".  It has two halves:

* :mod:`repro.obs.tracing` — a hierarchical span tracer with contextvar
  parent propagation, explicit capture/attach hand-off across
  ``SweepEngine`` thread and process workers, exception-safe closing,
  and a near-zero-cost disabled path (gated by the ``obs_overhead``
  perf workload);
* :mod:`repro.obs.metrics` — counters, gauges and bounded-reservoir
  histograms, including the one shared percentile implementation that
  :mod:`repro.perf.timers` and :mod:`repro.serve.stats` both build on.

Exporters (:mod:`repro.obs.export`) render either half as Chrome
trace-event JSON (Perfetto), Prometheus text exposition, or an indented
span-tree report; the ``repro trace`` / ``repro stats`` subcommands and
the ``--trace-out`` flags are thin wrappers over them.

The *consume* side sits on top of those producers:

* :mod:`repro.obs.health` — numerical-health monitors with threshold
  watchdogs (:class:`HealthMonitors`), emitting structured
  :class:`HealthReport` verdicts that reducers attach to ``rom.health``;
* :mod:`repro.obs.ledger` — the append-only JSONL run flight recorder
  behind ``--ledger`` / ``repro obs report``;
* :mod:`repro.obs.diff` — trace profiles and the phase-attributed
  trace diff gating ``repro trace --diff BASELINE --budget 20%``;
* :mod:`repro.obs.endpoint` — the stdlib ``/metrics`` + ``/healthz``
  HTTP sidecar a live ``ModelServer`` exposes via ``--metrics-port``.

This package deliberately imports nothing from the rest of the library
(stdlib only), so every layer — linalg, mor, partition, analysis, store,
serve, perf — can instrument itself without import cycles.
"""

from repro.obs.diff import (
    PhaseDelta,
    check_budget,
    diff_profiles,
    format_diff,
    load_profile,
    parse_budget,
    span_rollup,
    trace_profile,
    write_profile,
)
from repro.obs.endpoint import TelemetryServer
from repro.obs.export import (
    span_tree_report,
    to_chrome_trace,
    to_prometheus,
    write_chrome_trace,
)
from repro.obs.health import (
    HealthCheck,
    HealthMonitors,
    HealthReport,
    begin_reduce_health,
    classify,
    default_health,
    disable_health_monitors,
    enable_health_monitors,
    finish_reduce_health,
    health_enabled,
)
from repro.obs.ledger import (
    RunLedger,
    config_fingerprint,
    read_ledger,
    summarize_ledger,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Reservoir,
    default_metrics,
    percentile,
)
from repro.obs.tracing import (
    Span,
    TraceContext,
    Tracer,
    attach_context,
    capture_context,
    current_span,
    default_tracer,
    disable_tracing,
    drain_spans,
    enable_tracing,
    trace_span,
    traced,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "Gauge",
    "HealthCheck",
    "HealthMonitors",
    "HealthReport",
    "Histogram",
    "MetricsRegistry",
    "PhaseDelta",
    "Reservoir",
    "RunLedger",
    "Span",
    "TelemetryServer",
    "TraceContext",
    "Tracer",
    "attach_context",
    "begin_reduce_health",
    "capture_context",
    "check_budget",
    "classify",
    "finish_reduce_health",
    "config_fingerprint",
    "current_span",
    "default_health",
    "default_metrics",
    "default_tracer",
    "diff_profiles",
    "disable_health_monitors",
    "disable_tracing",
    "drain_spans",
    "enable_health_monitors",
    "enable_tracing",
    "format_diff",
    "health_enabled",
    "load_profile",
    "parse_budget",
    "percentile",
    "read_ledger",
    "span_rollup",
    "span_tree_report",
    "summarize_ledger",
    "to_chrome_trace",
    "to_prometheus",
    "trace_profile",
    "trace_span",
    "traced",
    "tracing_enabled",
    "write_chrome_trace",
    "write_profile",
]
