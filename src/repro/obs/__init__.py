"""Unified observability layer: hierarchical spans + metrics core.

``repro.obs`` is the library's single source of truth for "where did the
time go".  It has two halves:

* :mod:`repro.obs.tracing` — a hierarchical span tracer with contextvar
  parent propagation, explicit capture/attach hand-off across
  ``SweepEngine`` thread and process workers, exception-safe closing,
  and a near-zero-cost disabled path (gated by the ``obs_overhead``
  perf workload);
* :mod:`repro.obs.metrics` — counters, gauges and bounded-reservoir
  histograms, including the one shared percentile implementation that
  :mod:`repro.perf.timers` and :mod:`repro.serve.stats` both build on.

Exporters (:mod:`repro.obs.export`) render either half as Chrome
trace-event JSON (Perfetto), Prometheus text exposition, or an indented
span-tree report; the ``repro trace`` / ``repro stats`` subcommands and
the ``--trace-out`` flags are thin wrappers over them.

This package deliberately imports nothing from the rest of the library
(stdlib only), so every layer — linalg, mor, partition, analysis, store,
serve, perf — can instrument itself without import cycles.
"""

from repro.obs.export import (
    span_tree_report,
    to_chrome_trace,
    to_prometheus,
    write_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Reservoir,
    default_metrics,
    percentile,
)
from repro.obs.tracing import (
    Span,
    TraceContext,
    Tracer,
    attach_context,
    capture_context,
    current_span,
    default_tracer,
    disable_tracing,
    drain_spans,
    enable_tracing,
    trace_span,
    traced,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Reservoir",
    "Span",
    "TraceContext",
    "Tracer",
    "attach_context",
    "capture_context",
    "current_span",
    "default_metrics",
    "default_tracer",
    "disable_tracing",
    "drain_spans",
    "enable_tracing",
    "percentile",
    "span_tree_report",
    "to_chrome_trace",
    "to_prometheus",
    "trace_span",
    "traced",
    "tracing_enabled",
    "write_chrome_trace",
]
