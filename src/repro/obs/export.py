"""Exporters for traces and metrics.

Three output formats, matching the three audiences:

* :func:`to_chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event JSON format, loadable in Perfetto (https://ui.perfetto.dev)
  or ``chrome://tracing`` for interactive flame-chart inspection of a
  reduce or a serve-bench run;
* :func:`to_prometheus` — the Prometheus text exposition format, for
  scraping counters/gauges/histograms (plus the legacy perf timers) into
  a monitoring stack;
* :func:`span_tree_report` — a human-readable indented span tree for
  terminals, the quickest "where did the time go" view.

Everything operates on plain :class:`~repro.obs.tracing.Span` lists and
snapshot dicts, so exporters work identically on live tracers and on
spans shipped home from worker processes.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from repro.obs.tracing import Span

__all__ = [
    "span_tree_report",
    "to_chrome_trace",
    "to_prometheus",
    "write_chrome_trace",
]

_METRIC_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _as_span(span) -> Span:
    return span if isinstance(span, Span) else Span.from_dict(span)


def to_chrome_trace(spans) -> dict:
    """Render spans as a Chrome trace-event JSON document (dict).

    Spans become complete (``"ph": "X"``) events with microsecond
    timestamps; thread-name metadata events make the Perfetto track
    labels readable.  ``args`` carries the span/parent ids, tags and
    error status so the hierarchy survives into the UI.
    """
    events = []
    tids: dict[tuple[int, str], int] = {}
    for raw in spans:
        span = _as_span(raw)
        tid_key = (span.pid, span.thread)
        tid = tids.get(tid_key)
        if tid is None:
            tid = tids[tid_key] = len(tids) + 1
            events.append({
                "name": "thread_name", "ph": "M", "pid": span.pid,
                "tid": tid, "args": {"name": span.thread or f"tid{tid}"},
            })
        args = {"span_id": span.span_id, "trace_id": span.trace_id}
        if span.parent_id:
            args["parent_id"] = span.parent_id
        if span.tags:
            args.update({str(k): v for k, v in span.tags.items()})
        if span.status != "ok":
            args["status"] = span.status
            if span.error:
                args["error"] = span.error
        events.append({
            "name": span.name,
            "cat": span.name.split(".", 1)[0],
            "ph": "X",
            "ts": span.start_time * 1e6,
            "dur": span.duration * 1e6,
            "pid": span.pid,
            "tid": tid,
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans, path) -> Path:
    """Write :func:`to_chrome_trace` output to ``path`` and return it."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_chrome_trace(spans), default=str,
                               indent=1))
    return path


def _metric_name(name: str) -> str:
    name = _METRIC_NAME_RE.sub("_", name)
    return name if name.startswith("repro_") else f"repro_{name}"


def _labels_text(labels: dict) -> str:
    if not labels:
        return ""
    parts = []
    for key in sorted(labels):
        # Exposition-format escapes: backslash, quote AND newline — an
        # unescaped newline in a label value splits the sample line and
        # corrupts everything after it.
        value = (str(labels[key]).replace("\\", "\\\\")
                 .replace('"', '\\"').replace("\n", "\\n"))
        parts.append(f'{_LABEL_NAME_RE.sub("_", str(key))}="{value}"')
    return "{" + ",".join(parts) + "}"


def to_prometheus(metrics_snapshot: dict | None = None,
                  perf_snapshot: dict | None = None) -> str:
    """Render snapshots in the Prometheus text exposition format.

    ``metrics_snapshot`` is a :meth:`MetricsRegistry.snapshot
    <repro.obs.metrics.MetricsRegistry.snapshot>` dict; histograms come
    out as summaries (quantiles + ``_sum``/``_count``).
    ``perf_snapshot`` is a legacy :meth:`PerfRegistry.snapshot
    <repro.perf.timers.PerfRegistry.snapshot>` dict; timers come out as
    ``repro_timer_*{scope="..."}`` series so existing instrumentation is
    scrapeable without renaming.
    """
    lines: list[str] = []
    snapshot = metrics_snapshot or {}
    typed: set[str] = set()

    def declare(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for entry in snapshot.get("counters", ()):
        name = _metric_name(entry["name"]) + "_total"
        declare(name, "counter")
        lines.append(
            f"{name}{_labels_text(entry.get('labels') or {})}"
            f" {entry['value']:g}")
    for entry in snapshot.get("gauges", ()):
        name = _metric_name(entry["name"])
        declare(name, "gauge")
        lines.append(
            f"{name}{_labels_text(entry.get('labels') or {})}"
            f" {entry['value']:g}")
    for entry in snapshot.get("histograms", ()):
        name = _metric_name(entry["name"])
        declare(name, "summary")
        labels = dict(entry.get("labels") or {})
        for q, value in (("0.5", entry.get("p50", 0.0)),
                         ("0.99", entry.get("p99", 0.0))):
            lines.append(
                f"{name}{_labels_text({**labels, 'quantile': q})}"
                f" {value:g}")
        lines.append(f"{name}_sum{_labels_text(labels)}"
                     f" {entry.get('total', 0.0):g}")
        lines.append(f"{name}_count{_labels_text(labels)}"
                     f" {entry.get('count', 0):g}")

    perf = perf_snapshot or {}
    for scope, stat in sorted((perf.get("timers") or {}).items()):
        labels = _labels_text({"scope": scope})
        for suffix, kind, key in (
                ("repro_timer_seconds_total", "counter", "total_seconds"),
                ("repro_timer_calls_total", "counter", "count")):
            declare(suffix, kind)
            lines.append(f"{suffix}{labels} {stat.get(key, 0):g}")
        for key in ("p50_seconds", "p99_seconds"):
            if key in stat:
                name = f"repro_timer_{key}"
                declare(name, "gauge")
                lines.append(f"{name}{labels} {stat[key]:g}")
    for scope, value in sorted((perf.get("counters") or {}).items()):
        declare("repro_counter_total", "counter")
        lines.append(
            f"repro_counter_total{_labels_text({'scope': scope})}"
            f" {value:g}")
    return "\n".join(lines) + "\n" if lines else ""


def span_tree_report(spans, *, min_duration: float = 0.0) -> str:
    """Human-readable indented tree of spans (roots first, children by
    start time).  ``min_duration`` (seconds) prunes noise spans."""
    records = [_as_span(s) for s in spans]
    by_id = {s.span_id: s for s in records}
    children: dict[str | None, list[Span]] = {}
    roots: list[Span] = []
    for span in records:
        if span.parent_id and span.parent_id in by_id:
            children.setdefault(span.parent_id, []).append(span)
        else:
            roots.append(span)
    roots.sort(key=lambda s: s.start_time)

    lines: list[str] = []

    def survives(span: Span) -> bool:
        """A span stays when it (or any descendant) beats the floor —
        pruning a fast parent must not orphan its slow children."""
        if span.duration >= min_duration:
            return True
        return any(survives(child)
                   for child in children.get(span.span_id, ()))

    def render(span: Span, depth: int) -> None:
        if not survives(span):
            return
        tags = " ".join(f"{k}={v}" for k, v in sorted(span.tags.items()))
        flag = "" if span.status == "ok" else f"  !! {span.status}"
        suffix = f"  [{tags}]" if tags else ""
        lines.append(f"{'  ' * depth}{span.name:<{max(1, 40 - 2 * depth)}}"
                     f" {span.duration * 1e3:10.3f} ms{suffix}{flag}")
        for child in sorted(children.get(span.span_id, ()),
                            key=lambda s: s.start_time):
            render(child, depth + 1)

    for root in roots:
        render(root, 0)
    if not lines:
        return "(no spans recorded)\n"
    header = f"{'span':<40} {'duration':>13}"
    return "\n".join([header, "-" * len(header), *lines]) + "\n"
