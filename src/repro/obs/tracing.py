"""Hierarchical span tracer with cross-thread/process propagation.

A *span* is a named, timed section of work with a parent: PRIMA's Krylov
phase is a child of the reduce call that ran it, a solver factorization
is a child of whatever phase needed the factor, a serve step is a child
of the ``serve.plan`` request that scheduled it.  Parenthood is tracked
through a :class:`contextvars.ContextVar`, so ordinary nested ``with``
blocks produce the right tree with no plumbing.

Three properties drive the design:

* **Near-zero overhead when disabled.**  ``trace_span()`` checks one
  module-global boolean and returns a shared no-op singleton — no
  allocation, no clock read, no contextvar touch.  The ``obs_overhead``
  perf workload gates this (disabled-tracing overhead must stay <= 3 %
  on a cold PRIMA reduce).
* **Exception safety.**  The span context manager always closes the span
  and flags ``status="error"`` (with the exception repr) on the way out
  of a raising block; the original exception propagates untouched.
* **Explicit cross-worker propagation.**  Contextvars do not follow work
  onto pool threads or worker processes, so the submitting side calls
  :func:`capture_context` (a tiny picklable :class:`TraceContext`) and
  the worker re-attaches with :func:`attach_context`; worker spans then
  carry the submitting span as parent.  Process workers additionally
  ship their finished spans home as dicts for :meth:`Tracer.ingest`
  (see ``SweepEngine``).

Stdlib-only; any layer of the library may import this module.
"""

from __future__ import annotations

import functools
import itertools
import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "TraceContext",
    "Tracer",
    "attach_context",
    "capture_context",
    "current_span",
    "default_tracer",
    "disable_tracing",
    "drain_spans",
    "enable_tracing",
    "trace_span",
    "traced",
    "tracing_enabled",
]

#: Finished spans kept in a tracer buffer before the oldest are dropped.
#: Big enough for a full serve-bench run, small enough to never matter.
DEFAULT_SPAN_BUFFER = 65536

_id_counter = itertools.count(1)


def _new_id() -> str:
    return f"{os.getpid():x}-{next(_id_counter):x}"


@dataclass
class Span:
    """One finished (or in-flight) section of traced work."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None = None
    start_time: float = 0.0       # wall clock (time.time), cross-process
    duration: float = 0.0         # seconds, from perf_counter
    tags: dict = field(default_factory=dict)
    status: str = "ok"
    error: str | None = None
    pid: int = 0
    thread: str = ""
    _t0: float = field(default=0.0, repr=False, compare=False)

    def set_tag(self, key: str, value) -> None:
        self.tags[key] = value

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_time": self.start_time,
            "duration": self.duration,
            "tags": dict(self.tags),
            "status": self.status,
            "error": self.error,
            "pid": self.pid,
            "thread": self.thread,
        }

    @staticmethod
    def from_dict(data: dict) -> "Span":
        return Span(name=data["name"], trace_id=data["trace_id"],
                    span_id=data["span_id"],
                    parent_id=data.get("parent_id"),
                    start_time=data.get("start_time", 0.0),
                    duration=data.get("duration", 0.0),
                    tags=dict(data.get("tags") or {}),
                    status=data.get("status", "ok"),
                    error=data.get("error"),
                    pid=data.get("pid", 0),
                    thread=data.get("thread", ""))


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set_tag(self, key: str, value) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


@dataclass(frozen=True)
class TraceContext:
    """Picklable handle to the current span, for cross-worker hand-off."""

    trace_id: str | None = None
    span_id: str | None = None
    enabled: bool = False


class Tracer:
    """Span factory + bounded buffer of finished spans."""

    def __init__(self, buffer_size: int = DEFAULT_SPAN_BUFFER) -> None:
        self._current: ContextVar[Span | None] = ContextVar(
            "repro_obs_current_span", default=None)
        self._lock = threading.Lock()
        self._finished: list[Span] = []
        self._buffer_size = buffer_size
        self.dropped = 0

    # -- span lifecycle ------------------------------------------------ #
    @contextmanager
    def span(self, name: str, **tags):
        parent = self._current.get()
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = _new_id(), None
        record = Span(name=name, trace_id=trace_id, span_id=_new_id(),
                      parent_id=parent_id, start_time=time.time(),
                      tags=dict(tags), pid=os.getpid(),
                      thread=threading.current_thread().name)
        record._t0 = time.perf_counter()
        token = self._current.set(record)
        try:
            yield record
        except BaseException as exc:
            record.status = "error"
            record.error = repr(exc)
            raise
        finally:
            record.duration = time.perf_counter() - record._t0
            self._current.reset(token)
            self._store(record)

    def _store(self, record: Span) -> None:
        with self._lock:
            if len(self._finished) >= self._buffer_size:
                self.dropped += 1
            else:
                self._finished.append(record)

    # -- context hand-off ---------------------------------------------- #
    def current(self) -> Span | None:
        return self._current.get()

    def capture_context(self) -> TraceContext:
        span = self._current.get()
        if span is None:
            return TraceContext(enabled=tracing_enabled())
        return TraceContext(trace_id=span.trace_id, span_id=span.span_id,
                            enabled=tracing_enabled())

    @contextmanager
    def attach(self, context: TraceContext | None):
        """Re-parent spans opened in this block under ``context``."""
        if context is None or context.span_id is None:
            yield
            return
        # A synthetic, never-stored anchor standing in for the remote
        # parent: children link to its ids, it is not itself a span.
        anchor = Span(name="<attached>", trace_id=context.trace_id,
                      span_id=context.span_id)
        token = self._current.set(anchor)
        try:
            yield
        finally:
            self._current.reset(token)

    # -- buffer management --------------------------------------------- #
    def drain(self) -> list[Span]:
        """Return and clear the finished-span buffer (oldest first)."""
        with self._lock:
            spans, self._finished = self._finished, []
            return spans

    def spans(self) -> list[Span]:
        """Finished spans without clearing the buffer."""
        with self._lock:
            return list(self._finished)

    def ingest(self, span_dicts) -> None:
        """Fold spans shipped home from a worker (as dicts) into the
        buffer."""
        for data in span_dicts:
            self._store(Span.from_dict(data))

    def reset(self) -> None:
        with self._lock:
            self._finished.clear()
            self.dropped = 0


_DEFAULT_TRACER = Tracer()
_TRACING_ENABLED = False


def default_tracer() -> Tracer:
    """The process-wide tracer instrumentation writes into."""
    return _DEFAULT_TRACER


def enable_tracing() -> None:
    """Turn span recording on process-wide."""
    global _TRACING_ENABLED
    _TRACING_ENABLED = True


def disable_tracing() -> None:
    """Turn span recording off (``trace_span`` reverts to the no-op)."""
    global _TRACING_ENABLED
    _TRACING_ENABLED = False


def tracing_enabled() -> bool:
    """Whether spans are currently being recorded."""
    return _TRACING_ENABLED


def trace_span(name: str, **tags):
    """Open a span on the default tracer — or a shared no-op when
    tracing is disabled.  This is the one call sprinkled through hot
    paths, so the disabled branch does no allocation and reads no clock.
    """
    if not _TRACING_ENABLED:
        return _NOOP_SPAN
    return _DEFAULT_TRACER.span(name, **tags)


def current_span() -> Span | None:
    """The span currently open in this context, if any."""
    return _DEFAULT_TRACER.current()


def capture_context() -> TraceContext:
    """Picklable handle to the current span (for worker hand-off)."""
    return _DEFAULT_TRACER.capture_context()


def attach_context(context: TraceContext | None):
    """Context manager re-parenting spans in the block under
    ``context`` (captured on the submitting side).  Also re-enables
    tracing inside a worker process when the submitter had it on."""
    if context is not None and context.enabled and not _TRACING_ENABLED:
        enable_tracing()
    return _DEFAULT_TRACER.attach(context)


def drain_spans() -> list[Span]:
    """Drain the default tracer's finished spans."""
    return _DEFAULT_TRACER.drain()


def traced(name: str, **tags):
    """Decorator opening a :func:`trace_span` named ``name`` around every
    call — the idiom for root spans on public entry points
    (``bdsm.reduce``, ``prima.reduce``, ...).  Costs one boolean check
    per call while tracing is disabled."""
    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with trace_span(name, **tags):
                return fn(*args, **kwargs)
        return wrapper
    return decorate
