"""Run flight recorder: an append-only JSONL ledger of observed runs.

Every ``reduce`` / ``bench`` / ``serve-bench`` / ``query`` invocation
that passes ``--ledger PATH`` appends one JSON line describing the run:
when it ran and on what code (git SHA, dirty flag), what it was asked to
do (a config fingerprint plus the config itself), what the telemetry saw
(span-path rollups, metric counters), and how healthy it was (the
:class:`~repro.obs.health.HealthReport` verdict).  The file is plain
JSONL — greppable, diffable, appendable from concurrent runs (one
``write`` per record), and ``repro obs report`` summarizes trends across
it.

Corrupt lines (a crashed writer, a merge artifact) are skipped on read,
never fatal: a flight recorder that refuses to play back because one
frame is torn is useless.

Stdlib-only, like the rest of :mod:`repro.obs`.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import time
from pathlib import Path

from repro.obs.diff import span_rollup

__all__ = [
    "RunLedger",
    "config_fingerprint",
    "read_ledger",
    "summarize_ledger",
]

LEDGER_SCHEMA = 1


def config_fingerprint(config: dict | None) -> str:
    """Short stable digest of a run configuration.

    Runs with the same fingerprint asked for the same thing, so their
    durations and counters are comparable across the ledger.
    """
    canonical = json.dumps(config or {}, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def _git_revision(cwd: Path) -> dict:
    """Best-effort ``{"sha": ..., "dirty": ...}`` of the repo at ``cwd``."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True,
            text=True, timeout=5, check=True).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"], cwd=cwd, capture_output=True,
            text=True, timeout=5, check=True).stdout.strip()
        return {"sha": sha, "dirty": bool(status)}
    except (OSError, subprocess.SubprocessError):
        return {"sha": None, "dirty": None}


def _counter_rollup(metrics_snapshot: dict | None) -> dict[str, float]:
    """Flatten a metrics snapshot's counters to ``name{labels}: value``."""
    out: dict[str, float] = {}
    for entry in (metrics_snapshot or {}).get("counters", ()):
        labels = ",".join(f"{k}={v}" for k, v in
                          sorted((entry.get("labels") or {}).items()))
        key = entry["name"] + (f"{{{labels}}}" if labels else "")
        out[key] = out.get(key, 0.0) + float(entry["value"])
    return out


class RunLedger:
    """Appender for one ledger file."""

    def __init__(self, path) -> None:
        self.path = Path(path)

    def record(self, kind: str, *, config: dict | None = None,
               duration_s: float | None = None,
               results: dict | None = None,
               metrics: dict | None = None,
               spans=None,
               health=None,
               extra: dict | None = None) -> dict:
        """Build, append and return one run record.

        ``health`` is a :class:`~repro.obs.health.HealthReport` (or its
        ``as_dict`` form); ``metrics`` a ``MetricsRegistry.snapshot``
        dict; ``spans`` a span list to roll up by path.
        """
        record: dict = {
            "schema": LEDGER_SCHEMA,
            "kind": str(kind),
            "time": time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime()),
            "unix_time": round(time.time(), 3),
            # The revision of the code that *ran*, so cwd — not the
            # ledger's directory, which may live outside any repo.
            "git": _git_revision(Path.cwd()),
            "config_fingerprint": config_fingerprint(config),
        }
        if config is not None:
            record["config"] = {k: v for k, v in sorted(config.items())}
        if duration_s is not None:
            record["duration_s"] = float(duration_s)
        if results:
            record["results"] = results
        if spans:
            record["span_rollup"] = span_rollup(spans)
        counters = _counter_rollup(metrics)
        if counters:
            record["counters"] = counters
        if health is not None:
            report = health if isinstance(health, dict) else health.as_dict()
            record["health"] = report
        if extra:
            record["extra"] = extra
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        with self.path.open("a") as fh:
            fh.write(line)
        return record


def read_ledger(path) -> list[dict]:
    """All parseable records of a ledger file, oldest first."""
    path = Path(path)
    if not path.exists():
        return []
    records = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict):
            records.append(record)
    return records


def summarize_ledger(records: list[dict], *, last: int = 20) -> list[dict]:
    """Table rows summarizing the most recent ``last`` records.

    Each row carries the run's identity (time, kind, git SHA, config
    fingerprint), its health verdict, its duration, and the duration
    *trend* against the previous record with the same kind and config
    fingerprint — the across-runs comparison the flight recorder exists
    for.
    """
    previous: dict[tuple, float] = {}
    rows = []
    for record in records:
        key = (record.get("kind"), record.get("config_fingerprint"))
        duration = record.get("duration_s")
        trend = ""
        if duration is not None:
            prior = previous.get(key)
            if prior and prior > 0:
                change = duration / prior - 1.0
                trend = f"{change:+.0%}"
            previous[key] = float(duration)
        health = record.get("health") or {}
        sha = (record.get("git") or {}).get("sha") or ""
        rows.append({
            "time": record.get("time", "?"),
            "kind": record.get("kind", "?"),
            "git": sha[:10] + ("*" if (record.get("git") or {}).get("dirty")
                               else ""),
            "config": record.get("config_fingerprint", "")[:8],
            "duration (s)": (round(float(duration), 3)
                             if duration is not None else ""),
            "trend": trend,
            "health": health.get("status", ""),
            "fails": len([c for c in health.get("checks", ())
                          if c.get("status") == "fail"]),
        })
    return rows[-last:]
