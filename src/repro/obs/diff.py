"""Trace-diff: align two span dumps by span path and gate regressions.

A *trace profile* is the phase rollup of one traced run: every span is
assigned a path (its parent-chain names joined with ``/``), and the
profile records per-path call counts and total seconds plus the run's
root total.  Profiles are small, stable JSON documents — the committed
``benchmarks/baselines/trace_profile.json`` is one — and
:func:`diff_profiles` attributes the total-time delta between two of
them to phases.

Two gating modes (:func:`check_budget`):

* ``"time"`` — a phase regressed when its absolute seconds grew more
  than ``budget`` (e.g. ``0.2`` = 20%).  Right for before/after runs on
  the *same* machine (``repro trace --diff old_trace.json``).
* ``"share"`` — a phase regressed when its *share of the run total*
  grew more than ``budget`` relative.  Total wall-clock divides out, so
  this is the mode CI uses against the committed baseline profile:
  runner hardware shifts every phase together, a real regression shifts
  one phase against the others.

Phases below ``min_share`` of the baseline total are never gated —
microsecond spans jitter by integer factors without meaning anything.

Inputs are forgiving: :func:`load_profile` accepts a profile JSON, a
Chrome trace-event JSON (as written by ``--trace-out``), or a raw list
of span dicts, so ``repro trace --diff A --from B`` works on whatever
was saved.  Stdlib only, like the rest of :mod:`repro.obs`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "PhaseDelta",
    "check_budget",
    "diff_profiles",
    "format_diff",
    "load_profile",
    "parse_budget",
    "span_rollup",
    "trace_profile",
    "write_profile",
]

#: Baseline share below which a phase is too small to gate.
DEFAULT_MIN_SHARE = 0.05


def _span_fields(raw) -> dict:
    """Normalise a Span object or span dict to the fields we need."""
    if isinstance(raw, dict):
        return {"name": raw.get("name", "?"),
                "span_id": raw.get("span_id"),
                "parent_id": raw.get("parent_id"),
                "duration": float(raw.get("duration", 0.0))}
    return {"name": raw.name, "span_id": raw.span_id,
            "parent_id": raw.parent_id, "duration": float(raw.duration)}


def span_rollup(spans) -> dict[str, dict]:
    """Per-path ``{"count", "total_s"}`` rollup of a span list.

    A span's path is its parent-chain names joined with ``/``; spans
    whose parent is absent from the dump (pool workers whose submitting
    span was not captured, truncated buffers) roll up as roots.
    """
    records = [_span_fields(s) for s in spans]
    by_id = {r["span_id"]: r for r in records if r["span_id"]}

    def path(record: dict) -> str:
        names = [record["name"]]
        seen = {record["span_id"]}
        parent = by_id.get(record["parent_id"])
        while parent is not None and parent["span_id"] not in seen:
            names.append(parent["name"])
            seen.add(parent["span_id"])
            parent = by_id.get(parent["parent_id"])
        return "/".join(reversed(names))

    rollup: dict[str, dict] = {}
    for record in records:
        entry = rollup.setdefault(path(record), {"count": 0, "total_s": 0.0})
        entry["count"] += 1
        entry["total_s"] += record["duration"]
    return rollup


def trace_profile(spans) -> dict:
    """Build a profile document from a span list."""
    rollup = span_rollup(spans)
    total = sum(entry["total_s"] for p, entry in rollup.items()
                if "/" not in p)
    return {"schema": 1, "kind": "trace_profile", "total_s": total,
            "phases": rollup}


def _chrome_trace_spans(document: dict) -> list[dict]:
    """Recover span dicts from a Chrome trace-event JSON document."""
    spans = []
    for event in document.get("traceEvents", ()):
        if event.get("ph") != "X":
            continue
        args = event.get("args") or {}
        spans.append({
            "name": event.get("name", "?"),
            "span_id": args.get("span_id"),
            "parent_id": args.get("parent_id"),
            "duration": float(event.get("dur", 0.0)) / 1e6,
        })
    return spans


def load_profile(path) -> dict:
    """Load a profile from a profile JSON, Chrome trace, or span list."""
    path = Path(path)
    try:
        document = json.loads(path.read_text())
    except ValueError as exc:
        raise ValueError(f"{path} is not valid JSON: {exc}") from exc
    if isinstance(document, dict) and document.get("kind") == "trace_profile":
        return document
    if isinstance(document, dict) and "traceEvents" in document:
        return trace_profile(_chrome_trace_spans(document))
    if isinstance(document, list):
        return trace_profile(document)
    raise ValueError(
        f"{path} is neither a trace profile, a Chrome trace-event "
        f"document nor a span list")


def write_profile(spans, path) -> Path:
    """Write :func:`trace_profile` of ``spans`` to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trace_profile(spans), indent=1,
                               sort_keys=True) + "\n")
    return path


@dataclass
class PhaseDelta:
    """One phase's contribution to the difference of two profiles."""

    path: str
    base_s: float
    cur_s: float
    base_share: float
    cur_share: float

    @property
    def delta_s(self) -> float:
        return self.cur_s - self.base_s

    @property
    def time_ratio(self) -> float:
        return self.cur_s / self.base_s if self.base_s > 0 else float("inf")

    @property
    def share_ratio(self) -> float:
        return (self.cur_share / self.base_share
                if self.base_share > 0 else float("inf"))


def diff_profiles(base: dict, current: dict) -> list[PhaseDelta]:
    """Per-phase deltas between two profiles, largest time delta first.

    Phases present in only one profile appear with zero seconds on the
    other side (new phases gate like regressions from nothing in time
    mode, and are skipped by the ``min_share`` floor in share mode until
    they matter).
    """
    base_phases = base.get("phases") or {}
    cur_phases = current.get("phases") or {}
    base_total = float(base.get("total_s") or
                       sum(e["total_s"] for e in base_phases.values()) or 0.0)
    cur_total = float(current.get("total_s") or
                      sum(e["total_s"] for e in cur_phases.values()) or 0.0)
    deltas = []
    for path in sorted(set(base_phases) | set(cur_phases)):
        base_s = float(base_phases.get(path, {}).get("total_s", 0.0))
        cur_s = float(cur_phases.get(path, {}).get("total_s", 0.0))
        deltas.append(PhaseDelta(
            path=path, base_s=base_s, cur_s=cur_s,
            base_share=base_s / base_total if base_total > 0 else 0.0,
            cur_share=cur_s / cur_total if cur_total > 0 else 0.0))
    deltas.sort(key=lambda d: -abs(d.delta_s))
    return deltas


def parse_budget(text: str) -> float:
    """Parse a regression budget: ``"20%"`` or ``"0.2"`` -> ``0.2``."""
    text = str(text).strip()
    try:
        value = (float(text[:-1]) / 100.0 if text.endswith("%")
                 else float(text))
    except ValueError:
        raise ValueError(
            f"budget {text!r} is not a percentage (like '20%') or a "
            f"fraction (like '0.2')") from None
    if value <= 0:
        raise ValueError(f"budget must be positive, got {text!r}")
    return value


def check_budget(deltas: list[PhaseDelta], *, budget: float,
                 mode: str = "time",
                 min_share: float = DEFAULT_MIN_SHARE) -> list[str]:
    """Return one failure message per phase that blew the budget."""
    if mode not in ("time", "share"):
        raise ValueError(f"mode must be 'time' or 'share', got {mode!r}")
    failures = []
    for delta in deltas:
        if delta.base_share < min_share:
            continue
        if mode == "time":
            if delta.base_s > 0 and delta.time_ratio - 1.0 > budget:
                failures.append(
                    f"{delta.path}: {delta.base_s:.4f}s -> "
                    f"{delta.cur_s:.4f}s "
                    f"(+{(delta.time_ratio - 1.0):.0%} > "
                    f"{budget:.0%} budget)")
        else:
            if delta.base_share > 0 and delta.share_ratio - 1.0 > budget:
                failures.append(
                    f"{delta.path}: share {delta.base_share:.1%} -> "
                    f"{delta.cur_share:.1%} "
                    f"(+{(delta.share_ratio - 1.0):.0%} > "
                    f"{budget:.0%} budget)")
    return failures


def format_diff(deltas: list[PhaseDelta], *, limit: int = 20) -> list[dict]:
    """Table rows (for :func:`repro.io.format_table`) of the top deltas."""
    rows = []
    for delta in deltas[:limit]:
        rows.append({
            "phase": delta.path,
            "base (s)": round(delta.base_s, 4),
            "current (s)": round(delta.cur_s, 4),
            "delta (s)": round(delta.delta_s, 4),
            "time": (f"{delta.time_ratio:.2f}x" if delta.base_s > 0
                     else "new"),
            "share": f"{delta.base_share:.1%} -> {delta.cur_share:.1%}",
        })
    return rows
