"""Stdlib HTTP telemetry endpoint: ``/metrics`` and ``/healthz``.

:class:`TelemetryServer` is a tiny :mod:`http.server`-based sidecar a
live :class:`~repro.store.server.ModelServer` (or anything else) can
attach to:

* ``GET /metrics`` — the Prometheus text exposition of the injected
  metrics/perf snapshots, scrapeable by a real monitoring stack;
* ``GET /healthz`` — the watchdog verdict as JSON, HTTP 200 while the
  injected :class:`~repro.obs.health.HealthReport` is ``ok``/``warn``
  and 503 on ``fail`` — the shape load balancers and k8s probes expect;
* ``GET /`` — a plain-text index of the two.

Data sources are injected as zero-argument callables so the endpoint
stays decoupled (and this module stays a stdlib-only leaf): the caller
decides which registry, which perf snapshot and which health report a
scrape sees, and each request pulls a fresh snapshot.

The server binds a daemon thread; ``port=0`` picks a free port (the
bound one is on :attr:`TelemetryServer.port`).  Use as a context manager
or call :meth:`close`.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.export import to_prometheus

__all__ = ["TelemetryServer"]


class _Handler(BaseHTTPRequestHandler):
    server: "_TelemetryHTTPServer"

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/metrics":
                self._respond_metrics()
            elif path == "/healthz":
                self._respond_health()
            elif path == "/":
                self._respond(200, "text/plain",
                              "repro telemetry\n/metrics\n/healthz\n")
            else:
                self._respond(404, "text/plain", "not found\n")
        except Exception as exc:  # noqa: BLE001 - a probe must not kill
            self._respond(500, "text/plain", f"error: {exc}\n")

    def _respond_metrics(self) -> None:
        owner = self.server.owner
        metrics = owner.metrics_fn() if owner.metrics_fn else None
        perf = owner.perf_fn() if owner.perf_fn else None
        text = to_prometheus(metrics, perf)
        self._respond(200, "text/plain; version=0.0.4", text)

    def _respond_health(self) -> None:
        owner = self.server.owner
        if owner.health_fn is None:
            self._respond(200, "application/json",
                          json.dumps({"status": "ok", "checks": []}) + "\n")
            return
        report = owner.health_fn()
        payload = report if isinstance(report, dict) else report.as_dict()
        status = 503 if payload.get("status") == "fail" else 200
        self._respond(status, "application/json",
                      json.dumps(payload, sort_keys=True) + "\n")

    def _respond(self, code: int, content_type: str, body: str) -> None:
        data = body.encode()
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, fmt, *args) -> None:  # pragma: no cover
        pass  # probes every few seconds would spam stderr


class _TelemetryHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    owner: "TelemetryServer"


class TelemetryServer:
    """Background HTTP server exposing ``/metrics`` and ``/healthz``."""

    def __init__(self, *, host: str = "127.0.0.1", port: int = 0,
                 metrics_fn=None, perf_fn=None, health_fn=None) -> None:
        self.metrics_fn = metrics_fn
        self.perf_fn = perf_fn
        self.health_fn = health_fn
        self._httpd = _TelemetryHTTPServer((host, port), _Handler)
        self._httpd.owner = self
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (the chosen one when constructed with 0)."""
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "TelemetryServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-telemetry", daemon=True)
            self._thread.start()
        return self

    def close(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
