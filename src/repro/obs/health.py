"""Numerical-health monitors: threshold watchdogs over the metrics core.

The tracing/metrics layer answers *where did the time go*; this module
answers *are the numerics (and the service) still healthy*.  Call sites
throughout the library — the blocked orthonormalisation kernel, the
solver backends, the reducers, the interface-reduction SVD, the serving
stats — compute a cheap scalar (orthogonality loss, relative residual,
deflation rate, SVD tail energy, p99 latency) and hand it to
:meth:`HealthMonitors.record`, which

* classifies it against per-monitor warn/fail thresholds into a
  structured :class:`HealthCheck`,
* publishes it as a ``health.<monitor>`` gauge in the default metrics
  registry (so ``/metrics`` and ``repro stats`` expose the latest
  value), and
* appends it to a bounded in-memory log from which :meth:`report`
  assembles a :class:`HealthReport` — the object reducers attach to
  ``rom.health`` and ``/healthz`` serves as its verdict.

Monitoring is **off by default** (:func:`health_enabled` is the single
cheap gate every instrumented call site checks first), so the disabled
path costs one function call and stays inside the ``obs_overhead``
budget; the ``health_overhead`` perf workload pins the *enabled* cost to
within 5% of a monitors-off reduce.

Like the rest of :mod:`repro.obs`, this module is stdlib-only: the
numerics (GEMMs, residual norms, singular values) happen at the call
sites, which pass plain floats in.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

from repro.obs.metrics import default_metrics

__all__ = [
    "DEFAULT_THRESHOLDS",
    "HealthCheck",
    "HealthMonitors",
    "HealthReport",
    "begin_reduce_health",
    "classify",
    "default_health",
    "disable_health_monitors",
    "enable_health_monitors",
    "finish_reduce_health",
    "health_enabled",
]

#: Severity order used to pick a report's overall status.
_STATUS_RANK = {"ok": 0, "warn": 1, "fail": 2}

#: Checks retained in one :class:`HealthMonitors` log.  Old checks fall
#: off the front, like the span buffer — a watchdog is about *recent*
#: behaviour.
DEFAULT_CHECK_BUFFER = 4096

#: Built-in warn/fail thresholds per monitor name.  ``direction`` says
#: which side of the threshold is unhealthy: ``"above"`` (the default —
#: losses, residuals, rates, latencies) or ``"below"``.  Call sites can
#: override any of these per call; :meth:`HealthMonitors.configure`
#: overrides them per registry.
DEFAULT_THRESHOLDS: dict[str, dict] = {
    # ||Q^T Q - I||_max of a merged basis after block_orthonormalize.
    # Healthy CGS2 + Householder merges sit at a few ulp (1e-15-ish);
    # 1e-8 means re-orthogonalisation is failing, 1e-6 means the basis
    # is numerically losing rank.
    "ortho.loss": {"warn_at": 1e-8, "fail_at": 1e-6},
    # Relative residual ||A x - b|| / ||b|| of sampled backend solves.
    # Direct factorisations sit near machine precision; iterative
    # backends near their convergence tolerance.
    "solve.residual": {"warn_at": 1e-8, "fail_at": 1e-4},
    # Fraction of Krylov candidates deflated during one reduce.  Some
    # deflation is normal; losing most of the block means the expansion
    # points or moment counts are mis-chosen.
    "reduce.deflation_rate": {"warn_at": 0.5, "fail_at": 0.95},
    # Fraction of screened recycle candidates captured by the recycled
    # basis.  Informational (no thresholds): a low rate wastes screening
    # work but produces correct results.
    "recycle.screen_rate": {},
    # Relative energy sqrt(sum(sv_discarded^2) / sum(sv^2)) the
    # interface-reduction SVD truncation throws away.  Thresholds are
    # passed by the call site relative to its --interface-tol.
    "interface.svd_tail": {},
    # Serving SLOs (per request kind, seconds / queue entries / rate).
    "serve.p99_seconds": {"warn_at": 0.5, "fail_at": 2.0},
    "serve.queue_depth": {"warn_at": 32, "fail_at": 256},
    "serve.error_rate": {"warn_at": 0.01, "fail_at": 0.1},
}


@dataclass
class HealthCheck:
    """One monitor observation, classified against its thresholds."""

    monitor: str
    value: float
    status: str = "ok"
    warn_at: float | None = None
    fail_at: float | None = None
    direction: str = "above"
    detail: str = ""
    labels: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        out = {"monitor": self.monitor, "value": self.value,
               "status": self.status, "direction": self.direction}
        if self.warn_at is not None:
            out["warn_at"] = self.warn_at
        if self.fail_at is not None:
            out["fail_at"] = self.fail_at
        if self.detail:
            out["detail"] = self.detail
        if self.labels:
            out["labels"] = dict(self.labels)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "HealthCheck":
        return cls(monitor=data["monitor"], value=float(data["value"]),
                   status=data.get("status", "ok"),
                   warn_at=data.get("warn_at"), fail_at=data.get("fail_at"),
                   direction=data.get("direction", "above"),
                   detail=data.get("detail", ""),
                   labels=dict(data.get("labels") or {}))


@dataclass
class HealthReport:
    """An ordered collection of checks with an aggregate verdict."""

    checks: list[HealthCheck] = field(default_factory=list)

    @property
    def status(self) -> str:
        """The worst status across all checks (``"ok"`` when empty)."""
        worst = "ok"
        for check in self.checks:
            if _STATUS_RANK.get(check.status, 0) > _STATUS_RANK[worst]:
                worst = check.status
        return worst

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def failed(self) -> list[HealthCheck]:
        return [c for c in self.checks if c.status == "fail"]

    def warned(self) -> list[HealthCheck]:
        return [c for c in self.checks if c.status == "warn"]

    def worst(self, monitor: str) -> HealthCheck | None:
        """The most severe (then most recent) check of one monitor."""
        best: HealthCheck | None = None
        for check in self.checks:
            if check.monitor != monitor:
                continue
            if best is None or (_STATUS_RANK.get(check.status, 0)
                                >= _STATUS_RANK.get(best.status, 0)):
                best = check
        return best

    def as_dict(self) -> dict:
        return {"status": self.status,
                "checks": [c.as_dict() for c in self.checks]}

    @classmethod
    def from_dict(cls, data: dict) -> "HealthReport":
        return cls(checks=[HealthCheck.from_dict(c)
                           for c in data.get("checks", ())])

    def summary(self) -> str:
        """One-line ``status (ok=a warn=b fail=c)`` rendering."""
        counts = {"ok": 0, "warn": 0, "fail": 0}
        for check in self.checks:
            counts[check.status] = counts.get(check.status, 0) + 1
        return (f"{self.status} (ok={counts['ok']} warn={counts['warn']} "
                f"fail={counts['fail']})")


def classify(value: float, *, warn_at: float | None,
             fail_at: float | None, direction: str = "above") -> str:
    """Classify ``value`` against thresholds into ok/warn/fail."""
    if direction not in ("above", "below"):
        raise ValueError(f"direction must be 'above' or 'below', "
                         f"got {direction!r}")
    bad = ((lambda v, t: v > t) if direction == "above"
           else (lambda v, t: v < t))
    if fail_at is not None and bad(value, fail_at):
        return "fail"
    if warn_at is not None and bad(value, warn_at):
        return "warn"
    return "ok"


class HealthMonitors:
    """Thread-safe registry of health checks with threshold watchdogs."""

    def __init__(self, *, buffer: int = DEFAULT_CHECK_BUFFER,
                 metrics=None) -> None:
        self._lock = threading.Lock()
        self._checks: deque[HealthCheck] = deque(maxlen=buffer)
        self._dropped = 0
        self._thresholds = {name: dict(spec)
                            for name, spec in DEFAULT_THRESHOLDS.items()}
        self._metrics = metrics

    def configure(self, monitor: str, *, warn_at: float | None = None,
                  fail_at: float | None = None,
                  direction: str | None = None) -> None:
        """Override the default thresholds of one monitor."""
        with self._lock:
            spec = self._thresholds.setdefault(monitor, {})
            if warn_at is not None:
                spec["warn_at"] = warn_at
            if fail_at is not None:
                spec["fail_at"] = fail_at
            if direction is not None:
                spec["direction"] = direction

    def record(self, monitor: str, value: float, *,
               warn_at: float | None = None, fail_at: float | None = None,
               direction: str | None = None, detail: str = "",
               **labels) -> HealthCheck:
        """Classify and log one observation; returns the check.

        Explicit ``warn_at``/``fail_at``/``direction`` override the
        registry's configured thresholds for this call only.  ``labels``
        become gauge labels in the metrics registry, so keep their
        cardinality bounded (backend names, request kinds — not values).
        """
        # Lock-free read: _thresholds maps to per-monitor dicts that
        # configure() mutates in place, and dict reads are atomic under
        # the GIL — record() is hot, configure() is setup-time.
        spec = self._thresholds.get(monitor, {})
        if warn_at is None:
            warn_at = spec.get("warn_at")
        if fail_at is None:
            fail_at = spec.get("fail_at")
        if direction is None:
            direction = spec.get("direction", "above")
        value = float(value)
        status = classify(value, warn_at=warn_at, fail_at=fail_at,
                          direction=direction)
        check = HealthCheck(monitor=monitor, value=value, status=status,
                            warn_at=warn_at, fail_at=fail_at,
                            direction=direction, detail=detail,
                            labels=dict(labels))
        with self._lock:
            if len(self._checks) == self._checks.maxlen:
                self._dropped += 1
            self._checks.append(check)
        metrics = self._metrics or default_metrics()
        metrics.set_gauge(f"health.{monitor}", value, **labels)
        if status != "ok":
            metrics.increment("health.verdict", status=status,
                              monitor=monitor)
        return check

    def mark(self) -> int:
        """Opaque position marker for :meth:`report`'s ``since``.

        ``report(since=mark)`` later returns only checks recorded after
        this call — how reducers scope ``rom.health`` to their own run.
        """
        with self._lock:
            return self._dropped + len(self._checks)

    def report(self, *, since: int = 0) -> HealthReport:
        """Assemble a report of the checks recorded after ``since``."""
        with self._lock:
            skip = max(0, since - self._dropped)
            checks = list(self._checks)[skip:]
        return HealthReport(checks=checks)

    def reset(self) -> None:
        with self._lock:
            self._checks.clear()
            self._dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._checks)


_DEFAULT_HEALTH = HealthMonitors()
_HEALTH_ENABLED = False


def default_health() -> HealthMonitors:
    """The process-wide monitor registry instrumented call sites use."""
    return _DEFAULT_HEALTH


def health_enabled() -> bool:
    """Cheap gate every instrumented call site checks before computing
    its health scalar (the scalar, not the gate, is the real cost)."""
    return _HEALTH_ENABLED


def enable_health_monitors() -> None:
    global _HEALTH_ENABLED
    _HEALTH_ENABLED = True


def disable_health_monitors() -> None:
    global _HEALTH_ENABLED
    _HEALTH_ENABLED = False


def begin_reduce_health() -> int | None:
    """Mark the monitor log at the start of one reduce (``None`` while
    monitoring is off — pass it straight to :func:`finish_reduce_health`,
    which then does nothing)."""
    return default_health().mark() if health_enabled() else None


def finish_reduce_health(mark: int | None, rom, ortho_stats, *,
                         method: str, recycle_stats=None):
    """Record the end-of-reduce rate monitors and attach ``rom.health``.

    Shared by every reducer: records the deflation rate (deflated /
    candidate columns) and — when the reduce recycled bases — the
    recycle screen rate, then scoops every check recorded since ``mark``
    (orthogonality losses, solve residuals, interface tails included)
    into a :class:`HealthReport` attached to the ROM by plain attribute
    assignment, the same idiom as ``rom.solve_counts``.

    ``rom`` and the stats objects are duck-typed (``rom.size``,
    ``ortho_stats.deflations``, ``recycle_stats.hits/screened``) so this
    module stays a stdlib-only leaf.
    """
    if mark is None:
        return None
    monitors = default_health()
    deflations = int(getattr(ortho_stats, "deflations", 0))
    kept = int(getattr(rom, "size", 0))
    monitors.record(
        "reduce.deflation_rate",
        deflations / max(1, deflations + kept),
        method=method, detail=f"deflated={deflations} kept={kept}")
    screened = int(getattr(recycle_stats, "screened", 0) or 0)
    if screened:
        hits = int(getattr(recycle_stats, "hits", 0))
        monitors.record(
            "recycle.screen_rate", hits / screened, method=method,
            detail=f"hits={hits} screened={screened} solves_skipped="
                   f"{getattr(recycle_stats, 'solves_skipped', 0)}")
    report = monitors.report(since=mark)
    rom.health = report
    return report
