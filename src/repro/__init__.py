"""repro — reproduction of "A Block-Diagonal Structured Model Reduction
Scheme for Power Grid Networks" (Zhang, Hu, Cheng, Wong — DATE 2011).

The package implements the BDSM algorithm (block-diagonal structured model
order reduction), the full power-grid substrate it operates on (netlists,
MNA stamping, synthetic industrial-style benchmarks), the baseline reducers
it is compared against (PRIMA, SVDMOR, EKS, multi-point projection, PMTBR),
frequency/transient simulation of both full and reduced models, and the
passivity post-processing the paper sketches.

Quick start
-----------
>>> from repro import make_benchmark, bdsm_reduce, prima_reduce
>>> system = make_benchmark("ckt1", scale="smoke")
>>> rom, stats, seconds = bdsm_reduce(system, n_moments=4)

See ``examples/`` for end-to-end scenarios and ``benchmarks/`` for the
scripts that regenerate every table and figure of the paper.
"""

from repro.analysis import (
    FrequencyAnalysis,
    FrequencySweepResult,
    IRDropResult,
    SourceBank,
    SweepEngine,
    TransientAnalysis,
    TransientResult,
    dynamic_ir_drop,
    dynamic_ir_drop_batch,
    ir_drop_analysis,
    ir_drop_batch,
)
from repro.circuit import (
    DescriptorSystem,
    GridRegion,
    Netlist,
    PowerGridSpec,
    assemble_mna,
    benchmark_names,
    build_power_grid,
    make_benchmark,
    make_multidomain_spec,
    parse_netlist,
    parse_netlist_file,
    write_netlist,
)
from repro.core import (
    BDSMOptions,
    BlockDiagonalROM,
    bdsm_reduce,
    multipoint_bdsm_reduce,
)
from repro.exceptions import (
    CircuitError,
    NetlistParseError,
    PartitionError,
    PassivityError,
    ReductionError,
    ReproError,
    ResourceBudgetExceeded,
    SimulationError,
    SingularSystemError,
    SolverBackendError,
    StampingError,
    ValidationError,
)
from repro.linalg import (
    FactorizationCache,
    SolverOptions,
    available_backends,
    block_orthonormalize,
    clear_default_cache,
    default_cache,
    get_solver,
)
from repro.partition import (
    GridPartitioner,
    PartitionedROM,
    PartitionResult,
    available_partitioners,
    partitioned_reduce,
)
from repro.obs import (
    disable_tracing,
    enable_tracing,
    span_tree_report,
    to_chrome_trace,
    to_prometheus,
    trace_span,
    tracing_enabled,
)
from repro.perf import default_registry, scoped_timer
from repro.mor import (
    ReducedSystem,
    ReductionSummary,
    ResourceBudget,
    eks_reduce,
    multipoint_prima_reduce,
    pmtbr_reduce,
    prima_reduce,
    svdmor_reduce,
)
from repro.passivity import (
    enforce_passivity,
    hamiltonian_passivity_test,
    laguerre_passivity_scan,
)
from repro.serve import (
    ModelRegistry,
    QueryPlanner,
    ServeError,
    ServingStats,
)
from repro.store import (
    ModelServer,
    ModelStore,
    QueryRequest,
    StoreStats,
    load_artifact,
    save_artifact,
)
from repro.validation import (
    count_matched_moments,
    max_relative_error,
    relative_error_curve,
    rom_structure_report,
    verify_moment_matching,
)

__version__ = "1.0.0"

__all__ = [
    "BDSMOptions",
    "BlockDiagonalROM",
    "CircuitError",
    "DescriptorSystem",
    "FactorizationCache",
    "FrequencyAnalysis",
    "FrequencySweepResult",
    "GridPartitioner",
    "GridRegion",
    "IRDropResult",
    "ModelRegistry",
    "ModelServer",
    "ModelStore",
    "Netlist",
    "NetlistParseError",
    "PartitionError",
    "PartitionResult",
    "PartitionedROM",
    "PassivityError",
    "PowerGridSpec",
    "QueryPlanner",
    "QueryRequest",
    "ReducedSystem",
    "ReductionError",
    "ReductionSummary",
    "ReproError",
    "ResourceBudget",
    "ResourceBudgetExceeded",
    "ServeError",
    "ServingStats",
    "SimulationError",
    "SingularSystemError",
    "SolverBackendError",
    "SolverOptions",
    "SourceBank",
    "StampingError",
    "StoreStats",
    "SweepEngine",
    "TransientAnalysis",
    "TransientResult",
    "ValidationError",
    "assemble_mna",
    "available_backends",
    "available_partitioners",
    "bdsm_reduce",
    "benchmark_names",
    "block_orthonormalize",
    "build_power_grid",
    "clear_default_cache",
    "count_matched_moments",
    "default_cache",
    "default_registry",
    "disable_tracing",
    "dynamic_ir_drop",
    "dynamic_ir_drop_batch",
    "eks_reduce",
    "enable_tracing",
    "enforce_passivity",
    "get_solver",
    "hamiltonian_passivity_test",
    "ir_drop_analysis",
    "ir_drop_batch",
    "laguerre_passivity_scan",
    "load_artifact",
    "make_benchmark",
    "make_multidomain_spec",
    "max_relative_error",
    "multipoint_bdsm_reduce",
    "multipoint_prima_reduce",
    "parse_netlist",
    "parse_netlist_file",
    "partitioned_reduce",
    "pmtbr_reduce",
    "prima_reduce",
    "relative_error_curve",
    "rom_structure_report",
    "save_artifact",
    "scoped_timer",
    "span_tree_report",
    "svdmor_reduce",
    "to_chrome_trace",
    "to_prometheus",
    "trace_span",
    "tracing_enabled",
    "verify_moment_matching",
    "write_netlist",
]
