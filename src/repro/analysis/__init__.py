"""Simulation substrate: frequency sweeps, transient integration, IR drop.

These analyses operate uniformly on any object exposing the descriptor
quadruple ``(C, G, B, L)`` — the full MNA model, a dense PRIMA/SVDMOR/EKS
ROM, or a BDSM :class:`~repro.core.structured_rom.BlockDiagonalROM` — so the
benchmark harness can compare "simulate the full model" against "simulate
the ROM" without special cases.
"""

from repro.analysis.engine import AdaptiveSweepResult, SweepEngine
from repro.analysis.frequency import FrequencyAnalysis, FrequencySweepResult
from repro.analysis.ir_drop import (
    IRDropResult,
    dynamic_ir_drop,
    dynamic_ir_drop_batch,
    ir_drop_analysis,
    ir_drop_batch,
)
from repro.analysis.sources import (
    ConstantSource,
    PiecewiseLinearSource,
    PulseSource,
    SourceBank,
    StepSource,
    UnitImpulseSource,
    Waveform,
)
from repro.analysis.transient import TransientAnalysis, TransientResult

__all__ = [
    "AdaptiveSweepResult",
    "ConstantSource",
    "FrequencyAnalysis",
    "FrequencySweepResult",
    "IRDropResult",
    "PiecewiseLinearSource",
    "PulseSource",
    "SourceBank",
    "StepSource",
    "SweepEngine",
    "TransientAnalysis",
    "TransientResult",
    "UnitImpulseSource",
    "Waveform",
    "dynamic_ir_drop",
    "dynamic_ir_drop_batch",
    "ir_drop_analysis",
    "ir_drop_batch",
]
