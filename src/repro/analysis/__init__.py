"""Simulation substrate: frequency sweeps, transient integration, IR drop.

These analyses operate uniformly on any object exposing the descriptor
quadruple ``(C, G, B, L)`` — the full MNA model, a dense PRIMA/SVDMOR/EKS
ROM, or a BDSM :class:`~repro.core.structured_rom.BlockDiagonalROM` — so the
benchmark harness can compare "simulate the full model" against "simulate
the ROM" without special cases.
"""

from repro.analysis.frequency import FrequencyAnalysis, FrequencySweepResult
from repro.analysis.ir_drop import IRDropResult, ir_drop_analysis
from repro.analysis.sources import (
    ConstantSource,
    PiecewiseLinearSource,
    PulseSource,
    SourceBank,
    StepSource,
    UnitImpulseSource,
    Waveform,
)
from repro.analysis.transient import TransientAnalysis, TransientResult

__all__ = [
    "ConstantSource",
    "FrequencyAnalysis",
    "FrequencySweepResult",
    "IRDropResult",
    "PiecewiseLinearSource",
    "PulseSource",
    "SourceBank",
    "StepSource",
    "TransientAnalysis",
    "TransientResult",
    "UnitImpulseSource",
    "Waveform",
    "ir_drop_analysis",
]
