"""Static and dynamic IR-drop analysis on power grids.

IR drop — how far each observed node's voltage sags below the ideal supply —
is the quantity power-grid analysis ultimately cares about, and the paper's
application section motivates BDSM exactly with "IR-drop or package
resonance analysis".  This module provides:

* :func:`ir_drop_analysis` — static (DC) IR drop for a given load-current
  vector, on the full model or on a ROM;
* :meth:`IRDropResult.worst` — the worst-case drop and where it occurs;
* dynamic IR drop as a thin convenience over
  :class:`~repro.analysis.transient.TransientAnalysis`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.sources import SourceBank
from repro.analysis.transient import TransientAnalysis
from repro.exceptions import SimulationError
from repro.linalg.backends import SolverOptions
from repro.linalg.krylov import ShiftedOperator

__all__ = ["IRDropResult", "ir_drop_analysis", "ir_drop_batch",
           "dynamic_ir_drop", "dynamic_ir_drop_batch"]


@dataclass
class IRDropResult:
    """Result of a static IR-drop analysis.

    Attributes
    ----------
    node_names:
        Names of the observed outputs (one per row of ``L``).
    voltages:
        Small-signal voltage deviation at each observed node caused by the
        load currents (negative values mean the node sags).
    reference_voltage:
        Ideal supply voltage the deviations are measured against.
    """

    node_names: list[str]
    voltages: np.ndarray
    reference_voltage: float = 1.0

    @property
    def drops(self) -> np.ndarray:
        """IR drop per observed node (positive numbers, volts)."""
        return np.maximum(0.0, -self.voltages)

    def worst(self) -> tuple[str, float]:
        """Return ``(node_name, drop)`` of the worst-hit observed node."""
        idx = int(np.argmax(self.drops))
        name = self.node_names[idx] if self.node_names else f"output{idx}"
        return name, float(self.drops[idx])

    def as_table(self) -> list[dict[str, object]]:
        """Rows suitable for tabular reporting."""
        rows = []
        for idx, drop in enumerate(self.drops):
            name = self.node_names[idx] if self.node_names else f"output{idx}"
            rows.append({
                "node": name,
                "drop_volts": float(drop),
                "drop_percent": 100.0 * float(drop) / self.reference_voltage
                if self.reference_voltage else float("nan"),
            })
        return rows


def ir_drop_analysis(system, load_currents: np.ndarray, *,
                     reference_voltage: float = 1.0,
                     solver: SolverOptions | None = None) -> IRDropResult:
    """Static IR-drop: solve ``-G x = B i_load`` and read the observed nodes.

    Parameters
    ----------
    system:
        Full :class:`~repro.circuit.mna.DescriptorSystem` or any ROM exposing
        ``C, G, B, L`` (the DC solve only uses ``G``, ``B`` and ``L``).
    load_currents:
        Length-``m`` vector of DC currents drawn at each port.
    reference_voltage:
        Ideal supply voltage used for percentage reporting.
    solver:
        Optional :class:`~repro.linalg.backends.SolverOptions` for the DC
        solve (an analysis right after a reduction at ``s0 = 0`` reuses the
        cached pencil factorisation).
    """
    loads = np.asarray(load_currents, dtype=float).reshape(-1)
    m = system.B.shape[1]
    if loads.shape[0] != m:
        raise SimulationError(
            f"expected {m} load currents, got {loads.shape[0]}")
    op = ShiftedOperator(system.C, system.G, s0=0.0, solver=solver)
    rhs = system.B @ loads
    rhs = np.asarray(rhs).reshape(-1)
    x = np.asarray(op.solve(rhs)).reshape(-1)
    y = np.asarray(system.L @ x).reshape(-1)
    names = list(getattr(system, "output_names", []) or [])
    return IRDropResult(node_names=names, voltages=y,
                        reference_voltage=reference_voltage)


def ir_drop_batch(system, load_scenarios, *,
                  reference_voltage: float = 1.0,
                  solver: SolverOptions | None = None) -> list[IRDropResult]:
    """Static IR-drop for a batch of load corners in one multi-RHS solve.

    All scenarios share the DC pencil ``-G``, so instead of one
    factorisation + solve per corner, the load vectors are stacked into an
    ``(n, K)`` right-hand-side block and pushed through a single factorized
    solve — the batched decomposition the paper's ``O(m l^3)``
    block-simulation argument relies on.

    Parameters
    ----------
    system:
        Full :class:`~repro.circuit.mna.DescriptorSystem` or any ROM
        exposing ``C, G, B, L``.
    load_scenarios:
        ``(K, m)`` array (or sequence of length-``m`` vectors) of DC port
        currents, one row per corner.
    reference_voltage, solver:
        As for :func:`ir_drop_analysis`.

    Returns
    -------
    One :class:`IRDropResult` per scenario, in input order; each is
    numerically identical to running :func:`ir_drop_analysis` on that
    scenario alone.
    """
    loads = np.atleast_2d(np.asarray(load_scenarios, dtype=float))
    m = system.B.shape[1]
    if loads.ndim != 2 or loads.shape[1] != m:
        raise SimulationError(
            f"expected load scenarios of shape (K, {m}), got {loads.shape}")
    if loads.shape[0] == 0:
        raise SimulationError("need at least one load scenario")
    op = ShiftedOperator(system.C, system.G, s0=0.0, solver=solver)
    rhs = np.asarray(system.B @ loads.T)
    X = np.asarray(op.solve(rhs))
    Y = np.asarray(system.L @ X)
    names = list(getattr(system, "output_names", []) or [])
    return [IRDropResult(node_names=names,
                         voltages=np.ascontiguousarray(Y[:, j]),
                         reference_voltage=reference_voltage)
            for j in range(loads.shape[0])]


def dynamic_ir_drop(system, sources: SourceBank, *, t_stop: float, dt: float,
                    reference_voltage: float = 1.0,
                    method: str = "backward_euler",
                    solver: SolverOptions | None = None) -> IRDropResult:
    """Worst-case dynamic IR drop over a transient run.

    Runs a transient simulation and reports, per observed node, the largest
    sag seen at any time point.  Because the analysis only touches the
    descriptor interface, swapping the full model for a BDSM ROM changes
    nothing except the runtime.
    """
    transient = TransientAnalysis(t_stop=t_stop, dt=dt, method=method,
                                  solver=solver)
    result = transient.run(system, sources)
    worst_deviation = result.outputs.min(axis=1)
    names = list(getattr(system, "output_names", []) or [])
    return IRDropResult(node_names=names, voltages=worst_deviation,
                        reference_voltage=reference_voltage)


def dynamic_ir_drop_batch(system, scenario_banks, *, t_stop: float,
                          dt: float, reference_voltage: float = 1.0,
                          method: str = "backward_euler",
                          solver: SolverOptions | None = None,
                          mode: str = "stacked",
                          engine=None) -> list[IRDropResult]:
    """Worst-case dynamic IR drop for a batch of source corners.

    All corners share the transient stepping pencil, so the underlying
    :meth:`~repro.analysis.transient.TransientAnalysis.run_batch` either
    steps them together with one multi-RHS solve per time point
    (``mode="stacked"``, default) or fans them across the worker pool of
    ``engine`` (``mode="pooled"``).  Each returned
    :class:`IRDropResult` matches a standalone :func:`dynamic_ir_drop` of
    that corner.
    """
    transient = TransientAnalysis(t_stop=t_stop, dt=dt, method=method,
                                  solver=solver)
    results = transient.run_batch(system, list(scenario_banks), mode=mode,
                                  engine=engine)
    names = list(getattr(system, "output_names", []) or [])
    return [IRDropResult(node_names=names,
                         voltages=res.outputs.min(axis=1),
                         reference_voltage=reference_voltage)
            for res in results]
