"""Input waveforms for transient simulation.

A power-grid ROM is excited by the currents drawn by transistor blocks.
The paper stresses that BDSM ROMs are *reusable* under different excitations,
whereas EKS ROMs are tied to the waveform assumed during reduction — so the
reproduction needs a small waveform library to switch excitations around.

All waveforms are callables ``w(t) -> float`` for scalar ``t`` and expose a
vectorised :meth:`Waveform.sample` for time grids.
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Sequence

import numpy as np

from repro.exceptions import SimulationError

__all__ = [
    "Waveform",
    "ConstantSource",
    "StepSource",
    "PulseSource",
    "PiecewiseLinearSource",
    "UnitImpulseSource",
    "SourceBank",
]


class Waveform:
    """Base class of all scalar input waveforms."""

    def __call__(self, t: float) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def sample(self, times: np.ndarray) -> np.ndarray:
        """Evaluate the waveform on a time grid."""
        times = np.asarray(times, dtype=float)
        return np.array([self(float(t)) for t in times])


class ConstantSource(Waveform):
    """Constant (DC) waveform ``w(t) = value``."""

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def __call__(self, t: float) -> float:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConstantSource({self.value})"


class StepSource(Waveform):
    """Step from 0 to ``amplitude`` at ``t0`` with optional linear rise time."""

    def __init__(self, amplitude: float, t0: float = 0.0,
                 rise_time: float = 0.0) -> None:
        if rise_time < 0.0:
            raise SimulationError("rise_time must be non-negative")
        self.amplitude = float(amplitude)
        self.t0 = float(t0)
        self.rise_time = float(rise_time)

    def __call__(self, t: float) -> float:
        if t < self.t0:
            return 0.0
        if self.rise_time == 0.0 or t >= self.t0 + self.rise_time:
            return self.amplitude
        return self.amplitude * (t - self.t0) / self.rise_time


class PulseSource(Waveform):
    """Periodic trapezoidal pulse (SPICE ``PULSE`` semantics, zero baseline).

    Parameters
    ----------
    amplitude:
        Peak value.
    period:
        Repetition period.
    width:
        Flat-top duration.
    rise, fall:
        Edge durations.
    delay:
        Time before the first pulse starts.
    """

    def __init__(self, amplitude: float, period: float, width: float,
                 rise: float = 0.0, fall: float = 0.0,
                 delay: float = 0.0) -> None:
        if period <= 0.0:
            raise SimulationError("pulse period must be positive")
        if width < 0.0 or rise < 0.0 or fall < 0.0:
            raise SimulationError("pulse width/rise/fall must be non-negative")
        if rise + width + fall > period:
            raise SimulationError(
                "rise + width + fall must not exceed the period")
        self.amplitude = float(amplitude)
        self.period = float(period)
        self.width = float(width)
        self.rise = float(rise)
        self.fall = float(fall)
        self.delay = float(delay)

    def __call__(self, t: float) -> float:
        if t < self.delay:
            return 0.0
        phase = (t - self.delay) % self.period
        if self.rise > 0.0 and phase < self.rise:
            return self.amplitude * phase / self.rise
        phase -= self.rise
        if phase < self.width:
            return self.amplitude
        phase -= self.width
        if self.fall > 0.0 and phase < self.fall:
            return self.amplitude * (1.0 - phase / self.fall)
        return 0.0


class PiecewiseLinearSource(Waveform):
    """Piecewise-linear waveform through ``(time, value)`` breakpoints."""

    def __init__(self, points: Sequence[tuple[float, float]]) -> None:
        if len(points) < 2:
            raise SimulationError("PWL source needs at least two points")
        times = [float(t) for t, _ in points]
        if any(t1 >= t2 for t1, t2 in zip(times, times[1:])):
            raise SimulationError("PWL time points must be strictly increasing")
        self.times = times
        self.values = [float(v) for _, v in points]

    def __call__(self, t: float) -> float:
        if t <= self.times[0]:
            return self.values[0]
        if t >= self.times[-1]:
            return self.values[-1]
        idx = bisect_right(self.times, t) - 1
        t0, t1 = self.times[idx], self.times[idx + 1]
        v0, v1 = self.values[idx], self.values[idx + 1]
        return v0 + (v1 - v0) * (t - t0) / (t1 - t0)


class UnitImpulseSource(Waveform):
    """Discrete approximation of a unit impulse.

    A true Dirac impulse cannot be represented on a time grid; this waveform
    returns ``1/width`` during the first ``width`` seconds so that its
    integral is one.  The EKS comparison in the paper excites "all ports with
    unit-impulse signals"; this is the transient counterpart of that setup.
    """

    def __init__(self, width: float) -> None:
        if width <= 0.0:
            raise SimulationError("impulse width must be positive")
        self.width = float(width)

    def __call__(self, t: float) -> float:
        return 1.0 / self.width if 0.0 <= t < self.width else 0.0


class SourceBank:
    """Maps each input port of a system to a waveform.

    Parameters
    ----------
    n_ports:
        Number of input ports of the system being driven.
    default:
        Waveform used for ports without an explicit assignment
        (defaults to zero input).
    """

    def __init__(self, n_ports: int,
                 default: Waveform | None = None) -> None:
        if n_ports < 1:
            raise SimulationError("SourceBank needs at least one port")
        self.n_ports = int(n_ports)
        self._default = default or ConstantSource(0.0)
        self._sources: dict[int, Waveform] = {}

    def assign(self, port: int, waveform: Waveform) -> None:
        """Attach ``waveform`` to input port ``port``."""
        if not 0 <= port < self.n_ports:
            raise SimulationError(
                f"port index {port} out of range (n_ports={self.n_ports})")
        if not isinstance(waveform, Waveform):
            raise SimulationError("waveform must be a Waveform instance")
        self._sources[port] = waveform

    def assign_all(self, waveform: Waveform) -> None:
        """Attach the same waveform to every port."""
        for port in range(self.n_ports):
            self.assign(port, waveform)

    def waveform(self, port: int) -> Waveform:
        """Return the waveform attached to ``port`` (or the default)."""
        return self._sources.get(port, self._default)

    def __call__(self, t: float) -> np.ndarray:
        """Evaluate the full input vector ``u(t)``."""
        return np.array([self.waveform(port)(t)
                         for port in range(self.n_ports)])

    def sample(self, times: np.ndarray) -> np.ndarray:
        """Evaluate the input matrix ``U`` of shape ``(n_ports, len(times))``."""
        times = np.asarray(times, dtype=float)
        return np.column_stack([self(float(t)) for t in times])

    @classmethod
    def uniform(cls, n_ports: int, waveform: Waveform) -> "SourceBank":
        """Bank where every port carries the same waveform."""
        bank = cls(n_ports)
        bank.assign_all(waveform)
        return bank
