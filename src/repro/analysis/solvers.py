"""Iterative solvers for large power-grid DC/transient systems.

Before MOR became the tool of choice, large power grids were attacked with
preconditioned Krylov-subspace iterative solvers (the paper's reference [2])
— and the full-model reference simulations in this reproduction can use the
same machinery when a grid is too large to factorise comfortably.

The conductance matrix of a grounded RC power grid (in MNA form, i.e. the
*negative* of the paper-convention ``G``) is symmetric positive definite, so
conjugate gradients with a simple preconditioner is the canonical choice.
For RLC grids (package inductance adds branch rows) the matrix is no longer
symmetric and the solver falls back to GMRES.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.exceptions import SimulationError
from repro.linalg.sparse_utils import is_symmetric, to_csr

__all__ = ["IterativeSolveResult", "solve_dc_iterative", "jacobi_preconditioner",
           "ilu_preconditioner"]


@dataclass
class IterativeSolveResult:
    """Solution and convergence record of an iterative solve.

    Attributes
    ----------
    x:
        Solution vector.
    iterations:
        Number of iterations taken (as counted through the callback).
    converged:
        Whether the requested tolerance was reached.
    residual_norm:
        Final relative residual ``||b - A x|| / ||b||``.
    method:
        ``"cg"`` or ``"gmres"``.
    """

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norm: float
    method: str


def jacobi_preconditioner(matrix) -> spla.LinearOperator:
    """Diagonal (Jacobi) preconditioner ``M^{-1} ~ diag(A)^{-1}``.

    Zero or non-finite diagonal entries — a node with no conductance to
    ground (cap-only or inductor-branch rows in an RLC grid), or an empty
    matrix — are passed through with unit scale instead of raising, so the
    preconditioner stays well defined on any grid the iterative solvers can
    handle.
    """
    A = to_csr(matrix)
    diag = np.asarray(A.diagonal())
    inv_diag = np.ones_like(diag)
    usable = np.isfinite(diag) & (diag != 0.0)
    inv_diag[usable] = 1.0 / diag[usable]
    return spla.LinearOperator(A.shape, matvec=lambda v: inv_diag * v)


def ilu_preconditioner(matrix, drop_tol: float = 1e-4,
                       fill_factor: float = 10.0) -> spla.LinearOperator:
    """Incomplete-LU preconditioner (the standard choice for grid matrices)."""
    A = matrix.tocsc() if sp.issparse(matrix) else sp.csc_matrix(matrix)
    try:
        ilu = spla.spilu(A, drop_tol=drop_tol, fill_factor=fill_factor)
    except RuntimeError as exc:
        raise SimulationError(f"ILU factorisation failed: {exc}") from exc
    return spla.LinearOperator(A.shape, matvec=ilu.solve)


def solve_dc_iterative(system, rhs: np.ndarray, *,
                       tol: float = 1e-10,
                       max_iterations: int = 5000,
                       preconditioner: str = "jacobi",
                       ) -> IterativeSolveResult:
    """Solve the DC system ``-G x = rhs`` iteratively.

    Parameters
    ----------
    system:
        Object exposing the paper-convention ``G`` (so ``-G`` is the MNA
        conductance matrix).
    rhs:
        Right-hand side (e.g. ``B @ load_currents``).
    tol:
        Relative residual tolerance.
    max_iterations:
        Iteration cap.
    preconditioner:
        ``"jacobi"``, ``"ilu"`` or ``"none"``.
    """
    A = to_csr(-system.G)
    b = np.asarray(rhs, dtype=float).reshape(-1)
    if b.shape[0] != A.shape[0]:
        raise SimulationError(
            f"rhs has length {b.shape[0]}, expected {A.shape[0]}")
    if preconditioner == "jacobi":
        M = jacobi_preconditioner(A)
    elif preconditioner == "ilu":
        M = ilu_preconditioner(A)
    elif preconditioner == "none":
        M = None
    else:
        raise SimulationError(
            f"unknown preconditioner {preconditioner!r}")

    iterations = 0

    def count(_xk):
        nonlocal iterations
        iterations += 1

    symmetric = is_symmetric(A)
    if symmetric:
        x, info = spla.cg(A, b, rtol=tol, maxiter=max_iterations, M=M,
                          callback=count)
        method = "cg"
    else:
        x, info = spla.gmres(A, b, rtol=tol, maxiter=max_iterations, M=M,
                             callback=count, callback_type="pr_norm")
        method = "gmres"

    b_norm = max(float(np.linalg.norm(b)), 1e-300)
    residual = float(np.linalg.norm(b - A @ x)) / b_norm
    return IterativeSolveResult(
        x=np.asarray(x), iterations=iterations,
        converged=(info == 0), residual_norm=residual, method=method)
