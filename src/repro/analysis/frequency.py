"""Frequency-domain analysis of descriptor systems and ROMs.

Reproduces the kind of data behind Fig. 5 of the paper: transfer-function
curves ``|H(j*omega)[output, port]|`` over a log-spaced frequency band, for
the full model and for each ROM, plus the relative-error curves between
them.

Any object exposing ``C, G, B, L`` works; block-diagonal ROMs additionally
expose a fast per-block solve that :class:`FrequencyAnalysis` uses
automatically when present (duck-typed through ``transfer_function``).

Point evaluation is delegated to the
:class:`~repro.analysis.engine.SweepEngine`: the default engine runs
serially, and passing one with ``jobs >= 2`` fans the frequency points
across a worker pool with bit-identical results.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field, replace

import numpy as np

# _accepts_solver is re-exported for back-compat; the memoized signature
# probe lives in the engine module now.
from repro.analysis.engine import (  # noqa: F401
    SweepEngine,
    _accepts_solver,
    _call_transfer,
)
from repro.exceptions import SimulationError
from repro.linalg.backends import SolverOptions

__all__ = ["FrequencyAnalysis", "FrequencySweepResult"]


@dataclass
class FrequencySweepResult:
    """Transfer-function samples over a frequency grid.

    Attributes
    ----------
    omegas:
        Angular frequencies (rad/s) of the sweep.
    values:
        Complex samples; shape ``(len(omegas), p, m)`` for full-matrix sweeps
        or ``(len(omegas),)`` for single-entry sweeps.
    output, port:
        Set for single-entry sweeps; ``None`` otherwise.
    label:
        Name of the system the sweep was run on.
    """

    omegas: np.ndarray
    values: np.ndarray
    output: int | None = None
    port: int | None = None
    label: str = ""

    @property
    def magnitude(self) -> np.ndarray:
        """Magnitude of the sampled transfer function."""
        return np.abs(self.values)

    def entry(self, output: int, port: int) -> np.ndarray:
        """Extract a single ``(output, port)`` series from a full sweep."""
        if self.values.ndim == 1:
            if output == self.output and port == self.port:
                return self.values
            raise SimulationError(
                "this sweep stored a single entry "
                f"({self.output}, {self.port}), not ({output}, {port})")
        return self.values[:, output, port]

    def relative_error_to(self, reference: "FrequencySweepResult",
                          floor: float = 1e-300) -> np.ndarray:
        """Pointwise relative error of this sweep against ``reference``.

        Both sweeps must share the frequency grid and shape.  The error is
        ``|H - H_ref| / max(|H_ref|, floor)`` evaluated entrywise; for
        full-matrix sweeps the maximum entrywise error per frequency is
        returned (a conservative summary matching the paper's "relative
        error" axis).
        """
        if self.values.shape != reference.values.shape:
            raise SimulationError(
                "sweeps have different shapes: "
                f"{self.values.shape} vs {reference.values.shape}")
        if not np.allclose(self.omegas, reference.omegas):
            raise SimulationError("sweeps use different frequency grids")
        err = np.abs(self.values - reference.values)
        den = np.maximum(np.abs(reference.values), floor)
        rel = err / den
        if rel.ndim == 1:
            return rel
        return rel.reshape(rel.shape[0], -1).max(axis=1)


@dataclass
class FrequencyAnalysis:
    """Frequency sweep driver.

    Parameters
    ----------
    omega_min, omega_max:
        Sweep band in rad/s (log-spaced).
    n_points:
        Number of frequency samples.
    solver:
        Optional :class:`~repro.linalg.backends.SolverOptions` for the
        per-frequency pencil solves on systems without their own
        ``transfer_function``.  When left ``None``, per-frequency factors
        are NOT cached: a default sweep touches ``n_points`` distinct
        pencils, which would thrash the shared LRU cache and evict factors
        other analyses still need.  To reuse factorisations across repeated
        sweeps of the same grid, pass options with caching enabled and give
        the process cache room for them, e.g. ``set_default_cache(
        FactorizationCache(capacity=2 * n_points))``.
    engine:
        Optional :class:`~repro.analysis.engine.SweepEngine`.  ``None``
        (default) evaluates serially; an engine with ``jobs >= 2`` fans the
        frequency points across its worker pool with bit-identical results.
        *Parallel* generic pencil solves (systems without their own
        ``transfer_function``) run uncached — a sweep touches each pencil
        once, so a cache could never hit — which means a cache installed
        via :func:`~repro.linalg.backends.set_default_cache` is neither
        consulted nor polluted by concurrent workers; serial sweeps keep
        consulting the default cache, so the ``set_default_cache`` reuse
        recipe above still applies.  Systems that provide their own
        ``transfer_function`` (e.g. the full MNA model, whose default is
        uncached per-frequency factors) keep their own caching policy, and
        process-pool workers always start from a fresh default cache
        installed by :func:`~repro.linalg.backends.process_worker_init`.
    """

    omega_min: float = 1e5
    omega_max: float = 1e12
    n_points: int = 60
    solver: SolverOptions | None = None
    engine: SweepEngine | None = None
    _omegas: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.omega_min <= 0 or self.omega_max <= self.omega_min:
            raise SimulationError(
                "need 0 < omega_min < omega_max for a log-spaced sweep")
        if self.n_points < 2:
            raise SimulationError("n_points must be at least 2")
        self._omegas = np.logspace(np.log10(self.omega_min),
                                   np.log10(self.omega_max),
                                   self.n_points)

    @property
    def omegas(self) -> np.ndarray:
        """The angular-frequency grid of the sweep."""
        return self._omegas.copy()

    def _engine(self) -> SweepEngine:
        return self.engine if self.engine is not None else SweepEngine(jobs=1)

    # ------------------------------------------------------------------ #
    # Sweeps
    # ------------------------------------------------------------------ #
    def sweep(self, system, *, label: str | None = None,
              ) -> FrequencySweepResult:
        """Sample the full ``p x m`` transfer matrix over the band.

        Uses the system's own ``transfer_function`` when available (which for
        a :class:`~repro.core.structured_rom.BlockDiagonalROM` exploits the
        block structure); otherwise falls back to a generic sparse solve
        whose dense right-hand-side block is built once for the whole sweep
        and solved with one multi-RHS call per frequency pencil.
        """
        values = self._engine().sample_matrix(
            system, 1j * self._omegas, solver=self.solver)
        return FrequencySweepResult(
            omegas=self.omegas, values=values,
            label=label or getattr(system, "name", ""))

    def sweep_entry(self, system, output: int, port: int, *,
                    label: str | None = None) -> FrequencySweepResult:
        """Sample a single transfer-matrix entry over the band (Fig. 5a)."""
        values = self._engine().sample_entry(
            system, 1j * self._omegas, output, port, solver=self.solver)
        return FrequencySweepResult(
            omegas=self.omegas, values=values, output=output, port=port,
            label=label or getattr(system, "name", ""))

    def sweep_many(self, systems: Mapping[str, object],
                   ) -> dict[str, "FrequencySweepResult"]:
        """Full-matrix sweeps of several models, fanned across the engine.

        Each model is swept serially inside a worker (nesting parallel
        dispatches of one engine would risk pool starvation); with an
        engine of ``jobs >= 2`` the *models* run concurrently, which is the
        shape a model-serving front end needs — many small ROMs, one sweep
        each.  Results are keyed like ``systems`` and each is identical to
        a standalone :meth:`sweep` of that model.
        """
        labels = list(systems)
        serial = replace(self, engine=None)
        tasks = [(serial, systems[label], label) for label in labels]
        results = self._engine().map_scenarios(_sweep_one_model, tasks)
        return dict(zip(labels, results))

    def compare(self, reference, candidates: dict, *, output: int,
                port: int, adaptive: bool = False,
                target_error: float = 1e-3,
                ) -> dict[str, dict[str, np.ndarray]]:
        """Sweep one entry on a reference model and several ROMs.

        Returns a mapping ``label -> {"magnitude": ..., "relative_error": ...}``
        plus a ``"reference"`` entry, i.e. exactly the series plotted in
        Fig. 5(a)/(b).

        With ``adaptive=True`` the engine refines the frequency grid
        instead of sweeping it densely: points are solved exactly only
        where the interpolated relative-error estimate is near or above
        ``target_error`` (or changes too fast to trust), and the remaining
        samples are interpolated.  The report then carries an extra
        ``"adaptive"`` entry with the evaluation mask and the number of
        per-model point evaluations saved.
        """
        if adaptive:
            return self._compare_adaptive(reference, candidates,
                                          output=output, port=port,
                                          target_error=target_error)
        ref_sweep = self.sweep_entry(reference, output, port,
                                     label="reference")
        report: dict[str, dict[str, np.ndarray]] = {
            "reference": {
                "omegas": self.omegas,
                "magnitude": ref_sweep.magnitude,
            }
        }
        for label, model in candidates.items():
            sweep = self.sweep_entry(model, output, port, label=label)
            report[label] = {
                "omegas": self.omegas,
                "magnitude": sweep.magnitude,
                "relative_error": sweep.relative_error_to(ref_sweep),
            }
        return report

    def _compare_adaptive(self, reference, candidates: dict, *, output: int,
                          port: int, target_error: float,
                          ) -> dict[str, dict[str, np.ndarray]]:
        result = self._engine().adaptive_entry_sweep(
            reference, candidates, self._omegas, output, port,
            solver=self.solver, target_error=target_error)
        report: dict[str, dict[str, np.ndarray]] = {
            "reference": {
                "omegas": self.omegas,
                "magnitude": np.abs(result.reference),
            }
        }
        for label in candidates:
            report[label] = {
                "omegas": self.omegas,
                "magnitude": np.abs(result.candidates[label]),
                "relative_error": result.errors[label],
            }
        report["adaptive"] = {
            "evaluated": result.evaluated,
            "n_evaluated": result.n_evaluated,
            "n_points": result.n_points,
            "target_error": target_error,
            "evaluations_saved": result.evaluations_saved,
        }
        return report

    # ------------------------------------------------------------------ #
    # Internals (kept for backward compatibility; the engine kernels are
    # the canonical implementation)
    # ------------------------------------------------------------------ #
    def _call_transfer(self, fn, *args):
        """Invoke a system's own transfer evaluator, forwarding the solver."""
        return _call_transfer(fn, args, self.solver)

    def _evaluate(self, system, s: complex) -> np.ndarray:
        return self._engine().sample_matrix(system, [s],
                                            solver=self.solver)[0]


def _sweep_one_model(task) -> FrequencySweepResult:
    """Pool kernel for :meth:`FrequencyAnalysis.sweep_many` (module-level so
    process pools can pickle it)."""
    analysis, system, label = task
    return analysis.sweep(system, label=label)
