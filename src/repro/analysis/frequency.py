"""Frequency-domain analysis of descriptor systems and ROMs.

Reproduces the kind of data behind Fig. 5 of the paper: transfer-function
curves ``|H(j*omega)[output, port]|`` over a log-spaced frequency band, for
the full model and for each ROM, plus the relative-error curves between
them.

Any object exposing ``C, G, B, L`` works; block-diagonal ROMs additionally
expose a fast per-block solve that :class:`FrequencyAnalysis` uses
automatically when present (duck-typed through ``transfer_function``).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import SimulationError
from repro.linalg.backends import SolverOptions
from repro.linalg.krylov import ShiftedOperator

__all__ = ["FrequencyAnalysis", "FrequencySweepResult"]


def _accepts_solver(fn) -> bool:
    """Whether ``fn`` takes a ``solver`` keyword (signature probed once)."""
    try:
        return "solver" in inspect.signature(fn).parameters
    except (TypeError, ValueError):  # builtins / C callables
        return False


@dataclass
class FrequencySweepResult:
    """Transfer-function samples over a frequency grid.

    Attributes
    ----------
    omegas:
        Angular frequencies (rad/s) of the sweep.
    values:
        Complex samples; shape ``(len(omegas), p, m)`` for full-matrix sweeps
        or ``(len(omegas),)`` for single-entry sweeps.
    output, port:
        Set for single-entry sweeps; ``None`` otherwise.
    label:
        Name of the system the sweep was run on.
    """

    omegas: np.ndarray
    values: np.ndarray
    output: int | None = None
    port: int | None = None
    label: str = ""

    @property
    def magnitude(self) -> np.ndarray:
        """Magnitude of the sampled transfer function."""
        return np.abs(self.values)

    def entry(self, output: int, port: int) -> np.ndarray:
        """Extract a single ``(output, port)`` series from a full sweep."""
        if self.values.ndim == 1:
            if output == self.output and port == self.port:
                return self.values
            raise SimulationError(
                "this sweep stored a single entry "
                f"({self.output}, {self.port}), not ({output}, {port})")
        return self.values[:, output, port]

    def relative_error_to(self, reference: "FrequencySweepResult",
                          floor: float = 1e-300) -> np.ndarray:
        """Pointwise relative error of this sweep against ``reference``.

        Both sweeps must share the frequency grid and shape.  The error is
        ``|H - H_ref| / max(|H_ref|, floor)`` evaluated entrywise; for
        full-matrix sweeps the maximum entrywise error per frequency is
        returned (a conservative summary matching the paper's "relative
        error" axis).
        """
        if self.values.shape != reference.values.shape:
            raise SimulationError(
                "sweeps have different shapes: "
                f"{self.values.shape} vs {reference.values.shape}")
        if not np.allclose(self.omegas, reference.omegas):
            raise SimulationError("sweeps use different frequency grids")
        err = np.abs(self.values - reference.values)
        den = np.maximum(np.abs(reference.values), floor)
        rel = err / den
        if rel.ndim == 1:
            return rel
        return rel.reshape(rel.shape[0], -1).max(axis=1)


@dataclass
class FrequencyAnalysis:
    """Frequency sweep driver.

    Parameters
    ----------
    omega_min, omega_max:
        Sweep band in rad/s (log-spaced).
    n_points:
        Number of frequency samples.
    solver:
        Optional :class:`~repro.linalg.backends.SolverOptions` for the
        per-frequency pencil solves on systems without their own
        ``transfer_function``.  When left ``None``, per-frequency factors
        are NOT cached: a default sweep touches ``n_points`` distinct
        pencils, which would thrash the shared LRU cache and evict factors
        other analyses still need.  To reuse factorisations across repeated
        sweeps of the same grid, pass options with caching enabled and give
        the process cache room for them, e.g. ``set_default_cache(
        FactorizationCache(capacity=2 * n_points))``.
    """

    omega_min: float = 1e5
    omega_max: float = 1e12
    n_points: int = 60
    solver: SolverOptions | None = None
    _omegas: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.omega_min <= 0 or self.omega_max <= self.omega_min:
            raise SimulationError(
                "need 0 < omega_min < omega_max for a log-spaced sweep")
        if self.n_points < 2:
            raise SimulationError("n_points must be at least 2")
        self._omegas = np.logspace(np.log10(self.omega_min),
                                   np.log10(self.omega_max),
                                   self.n_points)

    @property
    def omegas(self) -> np.ndarray:
        """The angular-frequency grid of the sweep."""
        return self._omegas.copy()

    # ------------------------------------------------------------------ #
    # Sweeps
    # ------------------------------------------------------------------ #
    def sweep(self, system, *, label: str | None = None,
              ) -> FrequencySweepResult:
        """Sample the full ``p x m`` transfer matrix over the band.

        Uses the system's own ``transfer_function`` when available (which for
        a :class:`~repro.core.structured_rom.BlockDiagonalROM` exploits the
        block structure); otherwise falls back to a generic sparse solve.
        """
        samples = []
        for omega in self._omegas:
            samples.append(self._evaluate(system, 1j * omega))
        values = np.stack(samples, axis=0)
        return FrequencySweepResult(
            omegas=self.omegas, values=values,
            label=label or getattr(system, "name", ""))

    def sweep_entry(self, system, output: int, port: int, *,
                    label: str | None = None) -> FrequencySweepResult:
        """Sample a single transfer-matrix entry over the band (Fig. 5a)."""
        values = np.empty(self.n_points, dtype=complex)
        for k, omega in enumerate(self._omegas):
            s = 1j * omega
            if hasattr(system, "transfer_entry"):
                values[k] = self._call_transfer(
                    system.transfer_entry, s, output, port)
            else:
                values[k] = self._evaluate(system, s)[output, port]
        return FrequencySweepResult(
            omegas=self.omegas, values=values, output=output, port=port,
            label=label or getattr(system, "name", ""))

    def compare(self, reference, candidates: dict, *, output: int,
                port: int) -> dict[str, dict[str, np.ndarray]]:
        """Sweep one entry on a reference model and several ROMs.

        Returns a mapping ``label -> {"magnitude": ..., "relative_error": ...}``
        plus a ``"reference"`` entry, i.e. exactly the series plotted in
        Fig. 5(a)/(b).
        """
        ref_sweep = self.sweep_entry(reference, output, port,
                                     label="reference")
        report: dict[str, dict[str, np.ndarray]] = {
            "reference": {
                "omegas": self.omegas,
                "magnitude": ref_sweep.magnitude,
            }
        }
        for label, model in candidates.items():
            sweep = self.sweep_entry(model, output, port, label=label)
            report[label] = {
                "omegas": self.omegas,
                "magnitude": sweep.magnitude,
                "relative_error": sweep.relative_error_to(ref_sweep),
            }
        return report

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _call_transfer(self, fn, *args):
        """Invoke a system's own transfer evaluator, forwarding the solver.

        Full MNA systems accept ``solver=`` (and default to uncached
        per-frequency factors); ROM classes evaluate densely and take no
        such knob.  The signature is inspected rather than catching
        ``TypeError`` so a genuine evaluator bug is never masked or
        re-executed.
        """
        if self.solver is not None and _accepts_solver(fn):
            return fn(*args, solver=self.solver)
        return fn(*args)

    def _evaluate(self, system, s: complex) -> np.ndarray:
        if hasattr(system, "transfer_function"):
            return np.asarray(self._call_transfer(system.transfer_function, s))
        solver = self.solver
        if solver is None:
            solver = SolverOptions(use_cache=False)
        op = ShiftedOperator(system.C, system.G, s0=s, solver=solver)
        B = system.B.toarray() if hasattr(system.B, "toarray") else system.B
        X = op.solve(B)
        L = system.L
        return np.asarray(L @ X)
