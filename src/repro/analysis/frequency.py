"""Frequency-domain analysis of descriptor systems and ROMs.

Reproduces the kind of data behind Fig. 5 of the paper: transfer-function
curves ``|H(j*omega)[output, port]|`` over a log-spaced frequency band, for
the full model and for each ROM, plus the relative-error curves between
them.

Any object exposing ``C, G, B, L`` works; block-diagonal ROMs additionally
expose a fast per-block solve that :class:`FrequencyAnalysis` uses
automatically when present (duck-typed through ``transfer_function``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import SimulationError
from repro.linalg.krylov import ShiftedOperator

__all__ = ["FrequencyAnalysis", "FrequencySweepResult"]


@dataclass
class FrequencySweepResult:
    """Transfer-function samples over a frequency grid.

    Attributes
    ----------
    omegas:
        Angular frequencies (rad/s) of the sweep.
    values:
        Complex samples; shape ``(len(omegas), p, m)`` for full-matrix sweeps
        or ``(len(omegas),)`` for single-entry sweeps.
    output, port:
        Set for single-entry sweeps; ``None`` otherwise.
    label:
        Name of the system the sweep was run on.
    """

    omegas: np.ndarray
    values: np.ndarray
    output: int | None = None
    port: int | None = None
    label: str = ""

    @property
    def magnitude(self) -> np.ndarray:
        """Magnitude of the sampled transfer function."""
        return np.abs(self.values)

    def entry(self, output: int, port: int) -> np.ndarray:
        """Extract a single ``(output, port)`` series from a full sweep."""
        if self.values.ndim == 1:
            if output == self.output and port == self.port:
                return self.values
            raise SimulationError(
                "this sweep stored a single entry "
                f"({self.output}, {self.port}), not ({output}, {port})")
        return self.values[:, output, port]

    def relative_error_to(self, reference: "FrequencySweepResult",
                          floor: float = 1e-300) -> np.ndarray:
        """Pointwise relative error of this sweep against ``reference``.

        Both sweeps must share the frequency grid and shape.  The error is
        ``|H - H_ref| / max(|H_ref|, floor)`` evaluated entrywise; for
        full-matrix sweeps the maximum entrywise error per frequency is
        returned (a conservative summary matching the paper's "relative
        error" axis).
        """
        if self.values.shape != reference.values.shape:
            raise SimulationError(
                "sweeps have different shapes: "
                f"{self.values.shape} vs {reference.values.shape}")
        if not np.allclose(self.omegas, reference.omegas):
            raise SimulationError("sweeps use different frequency grids")
        err = np.abs(self.values - reference.values)
        den = np.maximum(np.abs(reference.values), floor)
        rel = err / den
        if rel.ndim == 1:
            return rel
        return rel.reshape(rel.shape[0], -1).max(axis=1)


@dataclass
class FrequencyAnalysis:
    """Frequency sweep driver.

    Parameters
    ----------
    omega_min, omega_max:
        Sweep band in rad/s (log-spaced).
    n_points:
        Number of frequency samples.
    """

    omega_min: float = 1e5
    omega_max: float = 1e12
    n_points: int = 60
    _omegas: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.omega_min <= 0 or self.omega_max <= self.omega_min:
            raise SimulationError(
                "need 0 < omega_min < omega_max for a log-spaced sweep")
        if self.n_points < 2:
            raise SimulationError("n_points must be at least 2")
        self._omegas = np.logspace(np.log10(self.omega_min),
                                   np.log10(self.omega_max),
                                   self.n_points)

    @property
    def omegas(self) -> np.ndarray:
        """The angular-frequency grid of the sweep."""
        return self._omegas.copy()

    # ------------------------------------------------------------------ #
    # Sweeps
    # ------------------------------------------------------------------ #
    def sweep(self, system, *, label: str | None = None,
              ) -> FrequencySweepResult:
        """Sample the full ``p x m`` transfer matrix over the band.

        Uses the system's own ``transfer_function`` when available (which for
        a :class:`~repro.core.structured_rom.BlockDiagonalROM` exploits the
        block structure); otherwise falls back to a generic sparse solve.
        """
        samples = []
        for omega in self._omegas:
            samples.append(self._evaluate(system, 1j * omega))
        values = np.stack(samples, axis=0)
        return FrequencySweepResult(
            omegas=self.omegas, values=values,
            label=label or getattr(system, "name", ""))

    def sweep_entry(self, system, output: int, port: int, *,
                    label: str | None = None) -> FrequencySweepResult:
        """Sample a single transfer-matrix entry over the band (Fig. 5a)."""
        values = np.empty(self.n_points, dtype=complex)
        for k, omega in enumerate(self._omegas):
            s = 1j * omega
            if hasattr(system, "transfer_entry"):
                values[k] = system.transfer_entry(s, output, port)
            else:
                values[k] = self._evaluate(system, s)[output, port]
        return FrequencySweepResult(
            omegas=self.omegas, values=values, output=output, port=port,
            label=label or getattr(system, "name", ""))

    def compare(self, reference, candidates: dict, *, output: int,
                port: int) -> dict[str, dict[str, np.ndarray]]:
        """Sweep one entry on a reference model and several ROMs.

        Returns a mapping ``label -> {"magnitude": ..., "relative_error": ...}``
        plus a ``"reference"`` entry, i.e. exactly the series plotted in
        Fig. 5(a)/(b).
        """
        ref_sweep = self.sweep_entry(reference, output, port,
                                     label="reference")
        report: dict[str, dict[str, np.ndarray]] = {
            "reference": {
                "omegas": self.omegas,
                "magnitude": ref_sweep.magnitude,
            }
        }
        for label, model in candidates.items():
            sweep = self.sweep_entry(model, output, port, label=label)
            report[label] = {
                "omegas": self.omegas,
                "magnitude": sweep.magnitude,
                "relative_error": sweep.relative_error_to(ref_sweep),
            }
        return report

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _evaluate(system, s: complex) -> np.ndarray:
        if hasattr(system, "transfer_function"):
            return np.asarray(system.transfer_function(s))
        op = ShiftedOperator(system.C, system.G, s0=s)
        B = system.B.toarray() if hasattr(system.B, "toarray") else system.B
        X = op.solve(B)
        L = system.L
        return np.asarray(L @ X)
