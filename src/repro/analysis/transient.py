"""Transient (time-domain) simulation of descriptor systems and ROMs.

Implements the standard fixed-step one-step integrators used by power-grid
simulators:

* backward Euler:      ``(C/h - G) x_{k+1} = (C/h) x_k + B u_{k+1}``
* trapezoidal rule:    ``(2C/h - G) x_{k+1} = (2C/h + G) x_k + B (u_k + u_{k+1})``

Both only require a single factorisation of the (shifted) pencil because the
step size is fixed, which is also why a *sparse block-diagonal* ROM is so
much cheaper to simulate than a dense one — the claim quantified in the
paper's Sec. III-B (``O(m l^3)`` vs ``O(m^3 l^3)`` per factorisation).

The integrator is format-agnostic: it works on the full sparse MNA system,
on dense reduced systems and on block-diagonal ROMs.  Each solve routes
through the :mod:`repro.linalg.backends` registry, so the pencil is handled
by whatever backend fits it (sparse LU, Cholesky-style for SPD RC pencils,
dense LAPACK for small ROMs) and re-simulations reuse the cached
factorisation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.sources import SourceBank
from repro.exceptions import SimulationError
from repro.linalg.backends import SolverOptions, get_solver
from repro.linalg.sparse_utils import to_csc, to_csr

__all__ = ["TransientAnalysis", "TransientResult"]


@dataclass
class TransientResult:
    """Time-domain simulation output.

    Attributes
    ----------
    times:
        Simulation time grid (length ``N``).
    outputs:
        Output samples ``y(t_k)``, shape ``(p, N)``.
    states:
        State samples ``x(t_k)``, shape ``(n, N)`` — only stored when
        requested (it can be large for the full model).
    label:
        Name of the simulated system.
    method:
        Integration method used.
    """

    times: np.ndarray
    outputs: np.ndarray
    states: np.ndarray | None = None
    label: str = ""
    method: str = "backward_euler"

    @property
    def n_steps(self) -> int:
        """Number of time points."""
        return int(self.times.shape[0])

    def output(self, index: int) -> np.ndarray:
        """Time series of a single output."""
        return self.outputs[index, :]

    def max_abs_error_to(self, reference: "TransientResult") -> float:
        """Maximum absolute output deviation against a reference run."""
        if self.outputs.shape != reference.outputs.shape:
            raise SimulationError(
                "cannot compare transient results with different shapes "
                f"{self.outputs.shape} vs {reference.outputs.shape}")
        return float(np.max(np.abs(self.outputs - reference.outputs)))

    def rms_error_to(self, reference: "TransientResult") -> float:
        """Root-mean-square output deviation against a reference run."""
        if self.outputs.shape != reference.outputs.shape:
            raise SimulationError(
                "cannot compare transient results with different shapes "
                f"{self.outputs.shape} vs {reference.outputs.shape}")
        diff = self.outputs - reference.outputs
        return float(np.sqrt(np.mean(diff ** 2)))


@dataclass
class TransientAnalysis:
    """Fixed-step transient simulation driver.

    Parameters
    ----------
    t_stop:
        Final simulation time (seconds).
    dt:
        Fixed step size.
    method:
        ``"backward_euler"`` (robust default) or ``"trapezoidal"``
        (second-order accurate).
    store_states:
        Keep the full state trajectory in the result.
    solver:
        Optional :class:`~repro.linalg.backends.SolverOptions` for the
        stepping pencil ``(C/h - G)``.  With caching enabled (the default)
        a re-simulation of the same system with the same step size reuses
        the pencil factorisation from the process-wide cache — this is what
        makes repeated what-if transient runs cheap.
    """

    t_stop: float
    dt: float
    method: str = "backward_euler"
    store_states: bool = False
    solver: SolverOptions | None = None

    _METHODS = ("backward_euler", "trapezoidal")

    def __post_init__(self) -> None:
        if self.t_stop <= 0.0:
            raise SimulationError("t_stop must be positive")
        if self.dt <= 0.0 or self.dt > self.t_stop:
            raise SimulationError("dt must satisfy 0 < dt <= t_stop")
        if self.method not in self._METHODS:
            raise SimulationError(
                f"unknown method {self.method!r}; choose from {self._METHODS}")

    @property
    def times(self) -> np.ndarray:
        """The fixed time grid ``0, dt, 2 dt, ..., <= t_stop``."""
        n_steps = int(np.floor(self.t_stop / self.dt + 1e-12)) + 1
        return np.arange(n_steps) * self.dt

    def run(self, system, sources: SourceBank, *,
            x0: np.ndarray | None = None,
            label: str | None = None) -> TransientResult:
        """Simulate ``system`` driven by ``sources`` from ``x0`` (default 0).

        Parameters
        ----------
        system:
            Any object exposing sparse-compatible ``C, G, B, L`` matrices
            in the paper's convention ``C dx/dt = G x + B u``.
        sources:
            A :class:`~repro.analysis.sources.SourceBank` with one waveform
            per input port.
        x0:
            Optional initial state (length ``n``).
        label:
            Name recorded in the result (defaults to ``system.name``).
        """
        return self.run_batch(system, [sources], x0s=[x0],
                              labels=[label])[0]

    def run_batch(self, system, source_banks, *,
                  x0s: list[np.ndarray | None] | None = None,
                  labels: list[str | None] | None = None,
                  mode: str = "stacked",
                  engine=None) -> list[TransientResult]:
        """Simulate several source scenarios of one system in a batch.

        Independent scenarios (process corners, per-block load patterns,
        what-if source banks) share the stepping pencil ``(C/h - G)``, so
        they can be simulated far cheaper together than one by one:

        * ``mode="stacked"`` (default) carries one ``(n, K)`` state block
          for all ``K`` scenarios and performs a single multi-RHS
          triangular solve per time step — one factorisation, one block
          solve per step, regardless of ``K``.  The block kernels
          reassociate the sparse products, so outputs agree with
          per-scenario :meth:`run` calls to machine precision (last-ULP
          differences) rather than bit-for-bit;
        * ``mode="pooled"`` fans the scenarios across the worker pool of
          ``engine`` (a :class:`~repro.analysis.engine.SweepEngine`;
          default serial); each worker runs the plain single-scenario
          integrator, so results are bit-identical to :meth:`run`.
          Preferable when ``K`` is small but each scenario is long.

        Parameters
        ----------
        system:
            Any object exposing sparse-compatible ``C, G, B, L`` matrices.
        source_banks:
            One :class:`~repro.analysis.sources.SourceBank` per scenario.
        x0s:
            Optional per-scenario initial states (``None`` entries mean 0).
        labels:
            Optional per-scenario labels (default ``system.name``).
        """
        banks = list(source_banks)
        if not banks:
            raise SimulationError("run_batch needs at least one source bank")
        if x0s is None:
            x0s = [None] * len(banks)
        if labels is None:
            labels = [None] * len(banks)
        if len(x0s) != len(banks) or len(labels) != len(banks):
            raise SimulationError(
                f"got {len(banks)} source banks but {len(x0s)} initial "
                f"states and {len(labels)} labels")
        if mode == "pooled":
            from repro.analysis.engine import SweepEngine
            eng = engine if engine is not None else SweepEngine(jobs=1)
            opts = self.solver if self.solver is not None else SolverOptions()
            if opts.use_cache and \
                    getattr(eng, "executor", "thread") != "process":
                # Warm the shared stepping-pencil factorization once in the
                # parent: cache builders run outside the cache lock, so
                # concurrently started thread workers would otherwise all
                # miss and factorize the identical pencil, discarding all
                # but one.  Process workers get fresh caches and can never
                # see the parent's factor, so the warm-up is skipped there.
                self._stepping_solver(to_csr(system.C), to_csr(system.G))
            tasks = [(self, system, bank, x0, label)
                     for bank, x0, label in zip(banks, x0s, labels)]
            return eng.map_scenarios(_run_single_scenario, tasks)
        if mode != "stacked":
            raise SimulationError(
                f"unknown batch mode {mode!r}; choose 'stacked' or 'pooled'")
        return self._run_stacked(system, banks, x0s, labels)

    def _stepping_solver(self, C, G):
        """Prepared solver for the stepping pencil of the chosen method.

        Both the batch integrator and the pooled-mode warm-up build the
        pencil through this one helper, so they produce the same cache key
        and share one factorisation.
        """
        scale = 1.0 / self.dt if self.method == "backward_euler" \
            else 2.0 / self.dt
        lhs = to_csc(C.multiply(scale) - G)
        return get_solver(lhs, options=self.solver)

    def _run_stacked(self, system, banks: list, x0s: list,
                     labels: list) -> list[TransientResult]:
        """Step all scenarios at once with one multi-RHS solve per step."""
        C = to_csr(system.C)
        G = to_csr(system.G)
        B = to_csr(system.B)
        L = to_csr(system.L)
        n = C.shape[0]
        m = B.shape[1]
        n_scen = len(banks)
        for bank in banks:
            if bank.n_ports != m:
                raise SimulationError(
                    f"source bank drives {bank.n_ports} ports but the "
                    f"system has {m}")
        const = getattr(system, "const_input", None)
        const_vec = (np.zeros(n) if const is None
                     else np.asarray(const, dtype=float).reshape(-1))
        const_col = const_vec[:, np.newaxis]

        times = self.times
        X = np.zeros((n, n_scen))
        for j, x0 in enumerate(x0s):
            if x0 is None:
                continue
            x0 = np.asarray(x0, dtype=float).reshape(-1)
            if x0.shape[0] != n:
                raise SimulationError(
                    f"initial state has length {x0.shape[0]}, expected {n}")
            X[:, j] = x0

        def bank_values(t: float) -> np.ndarray:
            return np.column_stack([bank(t) for bank in banks])

        n_steps = times.shape[0]
        outputs = np.empty((L.shape[0], n_scen, n_steps))
        states = (np.empty((n, n_scen, n_steps)) if self.store_states
                  else None)
        outputs[:, :, 0] = np.asarray(L @ X)
        if states is not None:
            states[:, :, 0] = X

        h = self.dt
        factor = self._stepping_solver(C, G)
        if self.method == "backward_euler":
            for k in range(1, n_steps):
                U_next = bank_values(float(times[k]))
                rhs = np.asarray(C @ X) / h \
                    + np.asarray(B @ U_next) + const_col
                X = factor.solve(rhs)
                outputs[:, :, k] = np.asarray(L @ X)
                if states is not None:
                    states[:, :, k] = X
        else:  # trapezoidal
            rhs_mat = to_csr(C.multiply(2.0 / h) + G)
            U_prev = bank_values(float(times[0]))
            for k in range(1, n_steps):
                U_next = bank_values(float(times[k]))
                rhs = np.asarray(rhs_mat @ X) \
                    + np.asarray(B @ (U_prev + U_next)) \
                    + 2.0 * const_col
                X = factor.solve(rhs)
                outputs[:, :, k] = np.asarray(L @ X)
                if states is not None:
                    states[:, :, k] = X
                U_prev = U_next

        default_label = getattr(system, "name", "")
        return [
            TransientResult(
                times=times,
                outputs=np.ascontiguousarray(outputs[:, j, :]),
                states=(None if states is None
                        else np.ascontiguousarray(states[:, j, :])),
                label=labels[j] or default_label,
                method=self.method)
            for j in range(n_scen)
        ]


def _run_single_scenario(task) -> TransientResult:
    """Pool kernel for ``run_batch(mode="pooled")`` (module-level so process
    pools can pickle it)."""
    analysis, system, bank, x0, label = task
    return analysis._run_stacked(system, [bank], [x0], [label])[0]
