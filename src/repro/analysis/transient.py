"""Transient (time-domain) simulation of descriptor systems and ROMs.

Implements the standard fixed-step one-step integrators used by power-grid
simulators:

* backward Euler:      ``(C/h - G) x_{k+1} = (C/h) x_k + B u_{k+1}``
* trapezoidal rule:    ``(2C/h - G) x_{k+1} = (2C/h + G) x_k + B (u_k + u_{k+1})``

Both only require a single factorisation of the (shifted) pencil because the
step size is fixed, which is also why a *sparse block-diagonal* ROM is so
much cheaper to simulate than a dense one — the claim quantified in the
paper's Sec. III-B (``O(m l^3)`` vs ``O(m^3 l^3)`` per factorisation).

The integrator is format-agnostic: it works on the full sparse MNA system,
on dense reduced systems and on block-diagonal ROMs.  Each solve routes
through the :mod:`repro.linalg.backends` registry, so the pencil is handled
by whatever backend fits it (sparse LU, Cholesky-style for SPD RC pencils,
dense LAPACK for small ROMs) and re-simulations reuse the cached
factorisation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.analysis.sources import SourceBank
from repro.exceptions import SimulationError
from repro.linalg.backends import SolverOptions, get_solver
from repro.linalg.sparse_utils import to_csc, to_csr

__all__ = ["TransientAnalysis", "TransientResult"]


@dataclass
class TransientResult:
    """Time-domain simulation output.

    Attributes
    ----------
    times:
        Simulation time grid (length ``N``).
    outputs:
        Output samples ``y(t_k)``, shape ``(p, N)``.
    states:
        State samples ``x(t_k)``, shape ``(n, N)`` — only stored when
        requested (it can be large for the full model).
    label:
        Name of the simulated system.
    method:
        Integration method used.
    """

    times: np.ndarray
    outputs: np.ndarray
    states: np.ndarray | None = None
    label: str = ""
    method: str = "backward_euler"

    @property
    def n_steps(self) -> int:
        """Number of time points."""
        return int(self.times.shape[0])

    def output(self, index: int) -> np.ndarray:
        """Time series of a single output."""
        return self.outputs[index, :]

    def max_abs_error_to(self, reference: "TransientResult") -> float:
        """Maximum absolute output deviation against a reference run."""
        if self.outputs.shape != reference.outputs.shape:
            raise SimulationError(
                "cannot compare transient results with different shapes "
                f"{self.outputs.shape} vs {reference.outputs.shape}")
        return float(np.max(np.abs(self.outputs - reference.outputs)))

    def rms_error_to(self, reference: "TransientResult") -> float:
        """Root-mean-square output deviation against a reference run."""
        if self.outputs.shape != reference.outputs.shape:
            raise SimulationError(
                "cannot compare transient results with different shapes "
                f"{self.outputs.shape} vs {reference.outputs.shape}")
        diff = self.outputs - reference.outputs
        return float(np.sqrt(np.mean(diff ** 2)))


@dataclass
class TransientAnalysis:
    """Fixed-step transient simulation driver.

    Parameters
    ----------
    t_stop:
        Final simulation time (seconds).
    dt:
        Fixed step size.
    method:
        ``"backward_euler"`` (robust default) or ``"trapezoidal"``
        (second-order accurate).
    store_states:
        Keep the full state trajectory in the result.
    solver:
        Optional :class:`~repro.linalg.backends.SolverOptions` for the
        stepping pencil ``(C/h - G)``.  With caching enabled (the default)
        a re-simulation of the same system with the same step size reuses
        the pencil factorisation from the process-wide cache — this is what
        makes repeated what-if transient runs cheap.
    """

    t_stop: float
    dt: float
    method: str = "backward_euler"
    store_states: bool = False
    solver: SolverOptions | None = None

    _METHODS = ("backward_euler", "trapezoidal")

    def __post_init__(self) -> None:
        if self.t_stop <= 0.0:
            raise SimulationError("t_stop must be positive")
        if self.dt <= 0.0 or self.dt > self.t_stop:
            raise SimulationError("dt must satisfy 0 < dt <= t_stop")
        if self.method not in self._METHODS:
            raise SimulationError(
                f"unknown method {self.method!r}; choose from {self._METHODS}")

    @property
    def times(self) -> np.ndarray:
        """The fixed time grid ``0, dt, 2 dt, ..., <= t_stop``."""
        n_steps = int(np.floor(self.t_stop / self.dt + 1e-12)) + 1
        return np.arange(n_steps) * self.dt

    def run(self, system, sources: SourceBank, *,
            x0: np.ndarray | None = None,
            label: str | None = None) -> TransientResult:
        """Simulate ``system`` driven by ``sources`` from ``x0`` (default 0).

        Parameters
        ----------
        system:
            Any object exposing sparse-compatible ``C, G, B, L`` matrices
            in the paper's convention ``C dx/dt = G x + B u``.
        sources:
            A :class:`~repro.analysis.sources.SourceBank` with one waveform
            per input port.
        x0:
            Optional initial state (length ``n``).
        label:
            Name recorded in the result (defaults to ``system.name``).
        """
        C = to_csr(system.C)
        G = to_csr(system.G)
        B = to_csr(system.B)
        L = to_csr(system.L)
        n = C.shape[0]
        m = B.shape[1]
        if sources.n_ports != m:
            raise SimulationError(
                f"source bank drives {sources.n_ports} ports but the system "
                f"has {m}")
        const = getattr(system, "const_input", None)
        const_vec = (np.zeros(n) if const is None
                     else np.asarray(const, dtype=float).reshape(-1))

        times = self.times
        x = np.zeros(n) if x0 is None else \
            np.asarray(x0, dtype=float).reshape(-1).copy()
        if x.shape[0] != n:
            raise SimulationError(
                f"initial state has length {x.shape[0]}, expected {n}")

        outputs = np.empty((L.shape[0], times.shape[0]))
        states = np.empty((n, times.shape[0])) if self.store_states else None
        outputs[:, 0] = np.asarray(L @ x).reshape(-1)
        if states is not None:
            states[:, 0] = x

        h = self.dt
        if self.method == "backward_euler":
            lhs = to_csc(C.multiply(1.0 / h) - G)
            factor = get_solver(lhs, options=self.solver)
            u_next = sources(float(times[0]))
            for k in range(1, times.shape[0]):
                u_next = sources(float(times[k]))
                rhs = np.asarray(C @ x).reshape(-1) / h \
                    + np.asarray(B @ u_next).reshape(-1) + const_vec
                x = factor.solve(rhs)
                outputs[:, k] = np.asarray(L @ x).reshape(-1)
                if states is not None:
                    states[:, k] = x
        else:  # trapezoidal
            lhs = to_csc(C.multiply(2.0 / h) - G)
            rhs_mat = to_csr(C.multiply(2.0 / h) + G)
            factor = get_solver(lhs, options=self.solver)
            u_prev = sources(float(times[0]))
            for k in range(1, times.shape[0]):
                u_next = sources(float(times[k]))
                rhs = np.asarray(rhs_mat @ x).reshape(-1) \
                    + np.asarray(B @ (u_prev + u_next)).reshape(-1) \
                    + 2.0 * const_vec
                x = factor.solve(rhs)
                outputs[:, k] = np.asarray(L @ x).reshape(-1)
                if states is not None:
                    states[:, k] = x
                u_prev = u_next

        return TransientResult(
            times=times, outputs=outputs, states=states,
            label=label or getattr(system, "name", ""),
            method=self.method)
