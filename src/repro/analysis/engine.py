"""Parallel batched sweep engine for the analysis layer.

A frequency sweep, a bank of transient corners and a set of IR-drop load
scenarios share one computational shape: many *independent* evaluation
points, each dominated by a pencil factorisation and a handful of
triangular solves.  :class:`SweepEngine` exploits that shape twice over:

* **multi-RHS batching** — every right-hand side touching one factorized
  pencil is solved in a single ``(n, k)`` block call (the paper's
  ``O(m l^3)`` block-simulation argument), instead of column-by-column;
* **point parallelism** — evaluation points are split into contiguous,
  deterministic chunks and fanned across a thread pool (SciPy's SuperLU
  releases the GIL during factor and solve) or a process pool.  Parallel
  workers solve generic pencils *uncached* — a sweep touches each shifted
  pencil exactly once, so a cache could never hit, and skipping it keeps
  the shared default :class:`~repro.linalg.backends.FactorizationCache`
  free of worker traffic; serial sweeps keep consulting the default
  cache, so the documented ``set_default_cache`` reuse recipe for
  repeated sweeps is unaffected;
* **adaptive refinement** — :func:`SweepEngine.adaptive_entry_sweep`
  evaluates a coarse subset of the frequency grid, bisects intervals whose
  interpolated relative-error estimate is uncertain or near the target,
  and interpolates the rest, so a ROM-accuracy comparison reaches a target
  accuracy with far fewer pencil factorisations than a dense sweep.

Determinism is a design invariant: chunking is a pure function of
``(n_points, jobs)``, every chunk runs exactly the serial per-point code,
and results are reassembled by index — so a parallel sweep is bit-identical
to the serial one (pinned by the golden-regression harness under
``REPRO_GOLDEN_JOBS=2``).
"""

from __future__ import annotations

import functools
import inspect
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field, replace

import numpy as np

from repro.exceptions import SimulationError
from repro.linalg.backends import SolverOptions, process_worker_init
from repro.linalg.krylov import ShiftedOperator
from repro.obs.metrics import default_metrics
from repro.obs.tracing import (
    attach_context,
    capture_context,
    default_tracer,
    disable_tracing,
    drain_spans,
    enable_tracing,
    trace_span,
)
from repro.perf.timers import default_registry

__all__ = ["SweepEngine", "AdaptiveSweepResult"]

#: Relative-error floor shared with FrequencySweepResult.relative_error_to.
_ERROR_FLOOR = 1e-300


# --------------------------------------------------------------------------- #
# Signature probing (memoized — satellite fix: probed once per function)
# --------------------------------------------------------------------------- #
@functools.lru_cache(maxsize=256)
def _accepts_solver_uncached(fn) -> bool:
    try:
        return "solver" in inspect.signature(fn).parameters
    except (TypeError, ValueError):  # builtins / C callables
        return False


def _accepts_solver(fn) -> bool:
    """Whether ``fn`` takes a ``solver`` keyword.

    The signature really is probed only once: the probe is memoized on the
    underlying function object (``fn.__func__`` for bound methods, so every
    instance of a class shares one cache entry), not re-inspected on every
    frequency point of every sweep.
    """
    return _accepts_solver_uncached(getattr(fn, "__func__", fn))


def _call_transfer(fn, args: tuple, solver: SolverOptions | None):
    """Invoke a system's own transfer evaluator, forwarding ``solver``.

    The signature is inspected (memoized) rather than catching ``TypeError``
    so a genuine evaluator bug is never masked or re-executed.
    """
    if solver is not None and _accepts_solver(fn):
        return fn(*args, solver=solver)
    return fn(*args)


def _dense_rhs(system) -> np.ndarray:
    """Densify ``system.B`` once per sweep (not once per frequency point)."""
    B = system.B
    return B.toarray() if hasattr(B, "toarray") else np.asarray(B)


def _dense_rhs_column(system, port: int) -> np.ndarray:
    """One dense ``(n, 1)`` column of ``system.B``, built once per sweep.

    Sparse inputs go through CSR first so non-subscriptable formats
    (e.g. COO) keep working, exactly like the full-matrix path.
    """
    B = system.B
    if hasattr(B, "tocsr"):
        return B.tocsr()[:, [port]].toarray()
    if hasattr(B, "toarray"):
        return B.toarray()[:, [port]]
    return np.asarray(B)[:, [port]]


def _effective_options(solver: SolverOptions | None,
                       parallel: bool) -> SolverOptions:
    """Solver options for a chunk's generic pencil solves.

    A sweep touches each shifted pencil exactly once, so a cache can never
    hit *within* the sweep; parallel workers therefore solve uncached,
    which both skips the per-pencil fingerprinting cost and keeps the
    shared default cache free of worker traffic.  Serial execution keeps
    the caller's caching choice so repeated sweeps of the same grid reuse
    factors from the process-wide default cache (the documented
    ``set_default_cache`` workflow).  Caching never changes results, so
    parallel stays bit-identical to serial either way.
    """
    opts = solver if solver is not None else SolverOptions(use_cache=False)
    if parallel and opts.use_cache:
        opts = replace(opts, use_cache=False)
    return opts


# --------------------------------------------------------------------------- #
# Worker-side wrappers: trace-context hand-off and telemetry collection
# --------------------------------------------------------------------------- #
def _thread_chunk_call(kernel, task, ctx):
    """Run one chunk on a pool thread under the submitter's trace context.

    Contextvars do not follow work onto pool threads, so the context
    captured at dispatch is re-attached here; the ``engine.chunk`` span
    (a no-op while tracing is disabled) then parents every span the
    kernel opens.  The kernel itself is untouched — results stay
    bit-identical to the serial path.
    """
    with attach_context(ctx):
        with trace_span("engine.chunk", executor="thread",
                        kernel=getattr(kernel, "__name__", str(kernel))):
            return kernel(task)


def _process_chunk_call(payload):
    """Run one chunk in a worker process and ship its telemetry home.

    Process workers accumulate timers/counters/metrics into *their own*
    process-local default registries, which historically died with the
    pool.  This wrapper snapshots (and resets) those registries after the
    kernel runs and returns ``(result, telemetry)`` so the parent can
    merge them — and, when tracing is on, re-attaches the submitter's
    span context so worker spans land under the dispatching span.
    """
    kernel, task, ctx = payload
    if ctx is not None and ctx.enabled:
        enable_tracing()
    else:
        disable_tracing()
    with attach_context(ctx):
        with trace_span("engine.chunk", executor="process",
                        kernel=getattr(kernel, "__name__", str(kernel))):
            result = kernel(task)
    registry = default_registry()
    metrics = default_metrics()
    telemetry = {
        "perf": registry.snapshot(include_samples=True),
        "metrics": metrics.snapshot(),
        "spans": [span.as_dict() for span in drain_spans()],
    }
    registry.reset()
    metrics.reset()
    return result, telemetry


# --------------------------------------------------------------------------- #
# Per-chunk kernels (module-level so process pools can pickle them)
# --------------------------------------------------------------------------- #
def _evaluate_matrix_chunk(task) -> np.ndarray:
    """Evaluate the full ``p x m`` transfer matrix at each point of a chunk.

    One multi-RHS solve per factorized pencil: all ``m`` columns of ``B``
    are pushed through ``(sC - G)^{-1}`` in a single block call.
    """
    system, s_chunk, solver, rhs, parallel = task
    if hasattr(system, "transfer_function"):
        return np.stack(
            [np.asarray(_call_transfer(system.transfer_function, (s,), solver))
             for s in s_chunk], axis=0)
    opts = _effective_options(solver, parallel)
    L = system.L
    samples = []
    for s in s_chunk:
        op = ShiftedOperator(system.C, system.G, s0=s, solver=opts)
        X = op.solve(rhs)
        samples.append(np.asarray(L @ X))
    return np.stack(samples, axis=0)


def _evaluate_entry_chunk(task) -> np.ndarray:
    """Evaluate a single transfer-matrix entry at each point of a chunk.

    The generic fallback solves only the one ``B`` column and applies the
    one ``L`` row the entry needs — not the full ``p x m`` matrix.
    """
    system, s_chunk, output, port, solver, rhs, parallel = task
    values = np.empty(len(s_chunk), dtype=complex)
    if hasattr(system, "transfer_entry"):
        for k, s in enumerate(s_chunk):
            values[k] = _call_transfer(system.transfer_entry,
                                       (s, output, port), solver)
        return values
    if hasattr(system, "transfer_function"):
        for k, s in enumerate(s_chunk):
            values[k] = np.asarray(_call_transfer(
                system.transfer_function, (s,), solver))[output, port]
        return values
    opts = _effective_options(solver, parallel)
    L = system.L
    if hasattr(L, "tocsr"):
        row = L.tocsr()[output, :].toarray().reshape(-1)
    elif hasattr(L, "toarray"):
        row = L.toarray()[output, :]
    else:
        row = np.asarray(L)[output, :]
    for k, s in enumerate(s_chunk):
        op = ShiftedOperator(system.C, system.G, s0=s, solver=opts)
        x = op.solve(rhs)
        values[k] = complex(row @ np.asarray(x).reshape(-1))
    return values


@dataclass
class AdaptiveSweepResult:
    """Outcome of an adaptively refined entry sweep (see
    :meth:`SweepEngine.adaptive_entry_sweep`).

    Attributes
    ----------
    omegas:
        The full target frequency grid.
    reference:
        Reference-model samples on the full grid (exact where ``evaluated``,
        interpolated elsewhere).
    candidates:
        ``label -> samples`` on the full grid, filled like ``reference``.
    evaluated:
        Boolean mask of grid points that were actually solved.
    errors:
        ``label -> relative-error curve`` (exact at evaluated points,
        an interpolated estimate elsewhere).
    """

    omegas: np.ndarray
    reference: np.ndarray
    candidates: dict[str, np.ndarray]
    evaluated: np.ndarray
    errors: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def n_evaluated(self) -> int:
        """Number of grid points that were solved exactly."""
        return int(np.count_nonzero(self.evaluated))

    @property
    def n_points(self) -> int:
        """Size of the full target grid."""
        return int(self.omegas.shape[0])

    @property
    def evaluations_saved(self) -> int:
        """Per-model point evaluations avoided versus a dense sweep.

        Counts skipped ``(model, frequency)`` evaluations across the
        reference and all candidates.  How much work each one represents
        depends on the model — a sparse pencil factorisation for the full
        MNA model, small per-block solves for a ROM — so this is an
        evaluation count, not a factorisation count.
        """
        models = 1 + len(self.candidates)
        return models * (self.n_points - self.n_evaluated)


@dataclass
class SweepEngine:
    """Distributes independent sweep points over a worker pool.

    Parameters
    ----------
    jobs:
        Number of workers.  ``1`` (default) evaluates serially on the
        calling thread; ``0`` resolves to ``os.cpu_count()``.
    executor:
        ``"thread"`` (default; SciPy's factor/solve kernels release the GIL)
        or ``"process"`` for pools of separate interpreters.  Process
        workers receive a fresh default
        :class:`~repro.linalg.backends.FactorizationCache` through
        :func:`~repro.linalg.backends.process_worker_init`, and every task
        payload (system matrices, :class:`SolverOptions`) is pickled.
    solver:
        Default :class:`~repro.linalg.backends.SolverOptions` applied when
        a sampling call does not pass its own.
    worker_cache_capacity:
        Capacity of the fresh default
        :class:`~repro.linalg.backends.FactorizationCache` installed in
        each process-pool worker by
        :func:`~repro.linalg.backends.process_worker_init`.

    Notes
    -----
    Results are bit-identical across ``jobs`` values: chunk boundaries are
    deterministic, each worker runs the exact serial per-point kernel, and
    chunks are reassembled by index.  Parallel workers solve generic
    pencils uncached (each sweep pencil is touched once, so a cache could
    never hit) while serial execution keeps the caller's caching choice;
    caching only changes *when* a factorisation happens, never its result.
    """

    jobs: int = 1
    executor: str = "thread"
    solver: SolverOptions | None = None
    worker_cache_capacity: int = 16
    _pool: object = field(default=None, init=False, repr=False,
                          compare=False)

    _EXECUTORS = ("thread", "process")

    def __post_init__(self) -> None:
        if self.jobs < 0:
            raise SimulationError("jobs must be >= 0 (0 = one per CPU)")
        if self.executor not in self._EXECUTORS:
            raise SimulationError(
                f"unknown executor {self.executor!r}; "
                f"choose from {self._EXECUTORS}")
        if self.worker_cache_capacity < 0:
            raise SimulationError("worker_cache_capacity must be >= 0")

    # ------------------------------------------------------------------ #
    # Pool plumbing
    # ------------------------------------------------------------------ #
    def resolved_jobs(self) -> int:
        """The worker count after resolving ``jobs=0`` to the CPU count."""
        return self.jobs if self.jobs else (os.cpu_count() or 1)

    @staticmethod
    def _chunk_bounds(n_items: int, n_chunks: int) -> np.ndarray:
        """Deterministic contiguous chunk boundaries (length
        ``n_chunks + 1``)."""
        return np.linspace(0, n_items, n_chunks + 1).astype(int)

    def _get_pool(self):
        """The engine's persistent worker pool, created on first parallel
        dispatch.

        Keeping one executor alive across dispatches means adaptive
        refinement rounds and repeated sweeps reuse the same workers
        instead of paying pool spawn (and, for process pools, interpreter
        startup plus :func:`~repro.linalg.backends.process_worker_init`)
        per call.  Released by :meth:`close` / context-manager exit.
        """
        if self._pool is None:
            if self.executor == "process":
                self._pool = ProcessPoolExecutor(
                    max_workers=self.resolved_jobs(),
                    initializer=process_worker_init,
                    initargs=(max(self.worker_cache_capacity, 1),))
            else:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.resolved_jobs())
        return self._pool

    def close(self) -> None:
        """Shut down the persistent worker pool (no-op if never started).

        The engine stays usable: the next parallel dispatch starts a
        fresh pool.
        """
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "SweepEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def _execute(self, kernel, tasks: list) -> list:
        """Run ``kernel`` over ``tasks``, preserving task order.

        Parallel dispatches capture the submitting trace context so
        worker spans re-attach to the dispatching span (threads *and*
        processes); process dispatches additionally merge each worker's
        perf/metrics snapshots and finished spans back into the parent's
        default registries, so per-chunk telemetry survives the pool.
        """
        workers = min(self.resolved_jobs(), len(tasks))
        if workers <= 1:
            return [kernel(task) for task in tasks]
        ctx = capture_context()
        pool = self._get_pool()
        if self.executor == "process":
            payloads = [(kernel, task, ctx) for task in tasks]
            outcomes = list(pool.map(_process_chunk_call, payloads))
            registry = default_registry()
            metrics = default_metrics()
            tracer = default_tracer()
            results = []
            for result, telemetry in outcomes:
                results.append(result)
                registry.merge_snapshot(telemetry.get("perf") or {})
                metrics.merge_snapshot(telemetry.get("metrics") or {})
                tracer.ingest(telemetry.get("spans") or ())
            return results
        return list(pool.map(
            lambda task: _thread_chunk_call(kernel, task, ctx), tasks))

    def _split(self, values: np.ndarray) -> list[np.ndarray]:
        jobs = min(self.resolved_jobs(), len(values))
        if jobs <= 1:
            return [values]
        bounds = self._chunk_bounds(len(values), jobs)
        return [values[bounds[i]:bounds[i + 1]] for i in range(jobs)
                if bounds[i] < bounds[i + 1]]

    def _solver_for(self, solver: SolverOptions | None) -> SolverOptions | None:
        return solver if solver is not None else self.solver

    def _parallel_dispatch(self, n_tasks: int) -> bool:
        """Whether a dispatch of ``n_tasks`` chunks actually runs in
        parallel (see :func:`_effective_options` for what that implies)."""
        return min(self.resolved_jobs(), n_tasks) > 1

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def sample_matrix(self, system, s_values, *,
                      solver: SolverOptions | None = None) -> np.ndarray:
        """Sample the full transfer matrix at each ``s``; shape
        ``(k, p, m)``.

        The dense right-hand-side block is built once per sweep and every
        pencil is hit with a single multi-RHS solve.
        """
        s_values = np.asarray(s_values, dtype=complex)
        if s_values.size == 0:
            raise SimulationError("sample_matrix needs at least one point")
        opts = self._solver_for(solver)
        rhs = None
        if not hasattr(system, "transfer_function"):
            rhs = _dense_rhs(system)
        chunks = self._split(s_values)
        parallel = self._parallel_dispatch(len(chunks))
        tasks = [(system, chunk, opts, rhs, parallel) for chunk in chunks]
        pieces = self._execute(_evaluate_matrix_chunk, tasks)
        return np.concatenate(pieces, axis=0)

    def sample_entry(self, system, s_values, output: int, port: int, *,
                     solver: SolverOptions | None = None) -> np.ndarray:
        """Sample one ``(output, port)`` transfer entry at each ``s``."""
        s_values = np.asarray(s_values, dtype=complex)
        if s_values.size == 0:
            raise SimulationError("sample_entry needs at least one point")
        opts = self._solver_for(solver)
        rhs = None
        if not (hasattr(system, "transfer_entry")
                or hasattr(system, "transfer_function")):
            rhs = _dense_rhs_column(system, port)
        chunks = self._split(s_values)
        parallel = self._parallel_dispatch(len(chunks))
        tasks = [(system, chunk, output, port, opts, rhs, parallel)
                 for chunk in chunks]
        pieces = self._execute(_evaluate_entry_chunk, tasks)
        return np.concatenate(pieces, axis=0)

    def map_scenarios(self, fn, scenarios: list) -> list:
        """Run ``fn(scenario)`` for each scenario across the pool, in
        order.

        The generic fan-out used for independent transient corners and
        IR-drop scenarios; ``fn`` must be picklable for process pools.
        """
        return self._execute(fn, list(scenarios))

    # ------------------------------------------------------------------ #
    # Adaptive refinement
    # ------------------------------------------------------------------ #
    def adaptive_entry_sweep(self, reference, candidates: dict, omegas,
                             output: int, port: int, *,
                             solver: SolverOptions | None = None,
                             target_error: float = 1e-3,
                             seed_points: int = 9,
                             ) -> AdaptiveSweepResult:
        """Entry sweep of a reference and candidate models with grid
        refinement.

        Starts from ``seed_points`` log-evenly chosen grid points (always
        including both endpoints), then repeatedly bisects the gaps whose
        endpoint relative errors are near or above ``target_error`` — or
        disagree by more than a decade, i.e. where the interpolated error
        estimate is unreliable — until every remaining gap is certifiably
        flat.  Unevaluated points are filled by interpolating real and
        imaginary parts linearly in ``log10(omega)``.
        """
        omegas = np.asarray(omegas, dtype=float)
        n = omegas.shape[0]
        if n < 2:
            raise SimulationError("adaptive sweep needs at least 2 points")
        if target_error <= 0.0:
            raise SimulationError("target_error must be positive")
        seed_points = int(min(max(seed_points, 2), n))
        labels = list(candidates)

        evaluated = np.zeros(n, dtype=bool)
        ref_vals = np.zeros(n, dtype=complex)
        cand_vals = {label: np.zeros(n, dtype=complex) for label in labels}
        opts = self._solver_for(solver)
        models = [ref_vals] + [cand_vals[label] for label in labels]
        systems = [reference] + [candidates[label] for label in labels]
        rhs_blocks = [
            None if (hasattr(system, "transfer_entry")
                     or hasattr(system, "transfer_function"))
            else _dense_rhs_column(system, port)
            for system in systems]

        def _evaluate_at(indices: np.ndarray) -> None:
            # One pool dispatch per refinement round, chunked both across
            # models and within each model's points, so every worker gets
            # used even when there are more jobs than models.
            s_vals = 1j * omegas[indices]
            chunks = self._split(s_vals)
            parallel = self._parallel_dispatch(len(systems) * len(chunks))
            tasks = [(system, chunk, output, port, opts, rhs, parallel)
                     for system, rhs in zip(systems, rhs_blocks)
                     for chunk in chunks]
            results = self._execute(_evaluate_entry_chunk, tasks)
            for j, store in enumerate(models):
                pieces = results[j * len(chunks):(j + 1) * len(chunks)]
                store[indices] = np.concatenate(pieces)
            evaluated[indices] = True

        def _worst_error(indices: np.ndarray) -> np.ndarray:
            """Worst-over-candidates relative error at evaluated indices."""
            ref = ref_vals[indices]
            den = np.maximum(np.abs(ref), _ERROR_FLOOR)
            worst = np.zeros(len(indices))
            for label in labels:
                err = np.abs(cand_vals[label][indices] - ref) / den
                worst = np.maximum(worst, err)
            return worst

        seed = np.unique(np.round(
            np.linspace(0, n - 1, seed_points)).astype(int))
        _evaluate_at(seed)

        while True:
            idx = np.flatnonzero(evaluated)
            err = _worst_error(idx)
            refine: list[int] = []
            for pos in range(len(idx) - 1):
                a, b = int(idx[pos]), int(idx[pos + 1])
                if b - a <= 1:
                    continue
                hi = max(err[pos], err[pos + 1])
                lo = max(min(err[pos], err[pos + 1]), _ERROR_FLOOR)
                uncertain = np.log10(max(hi, _ERROR_FLOOR) / lo) > 1.0
                if hi >= 0.1 * target_error or uncertain:
                    refine.append((a + b) // 2)
            if not refine:
                break
            _evaluate_at(np.asarray(sorted(set(refine)), dtype=int))

        # Interpolate the skipped points (linear in log10-omega, per part).
        known = np.flatnonzero(evaluated)
        missing = np.flatnonzero(~evaluated)
        if missing.size:
            x_all = np.log10(omegas)
            x_known = x_all[known]

            def _fill(series: np.ndarray) -> None:
                series[missing] = (
                    np.interp(x_all[missing], x_known, series[known].real)
                    + 1j * np.interp(x_all[missing], x_known,
                                     series[known].imag))

            _fill(ref_vals)
            for label in labels:
                _fill(cand_vals[label])

        den = np.maximum(np.abs(ref_vals), _ERROR_FLOOR)
        errors = {label: np.abs(cand_vals[label] - ref_vals) / den
                  for label in labels}
        return AdaptiveSweepResult(
            omegas=omegas, reference=ref_vals, candidates=cand_vals,
            evaluated=evaluated, errors=errors)
