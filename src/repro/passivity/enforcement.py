"""First-order passivity enforcement by feedthrough perturbation.

When a reduced immittance model shows (weak) non-passivity — the paper notes
this "seldom occurs" for BDSM ROMs but must be handled before system-level
simulation — the cheapest repair consistent with the paper's "fast passivity
enforcement" pointer is a feedthrough (D-term) perturbation: the Hermitian
part of ``H(j omega) + Delta`` is that of ``H`` shifted by the Hermitian
part of ``Delta``, so adding ``delta * I`` with
``delta >= -min_omega lambda_min(Herm(H(j omega)))`` lifts every sampled
violation at zero dynamic cost (the perturbation is frequency-independent
and does not move any pole).

The perturbation magnitude equals the worst violation, so for the weak
violations the paper talks about the accuracy impact is of the same
(small) order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import PassivityError
from repro.passivity.hamiltonian import PassivityReport
from repro.passivity.state_space import StateSpaceModel

__all__ = ["EnforcementResult", "enforce_passivity"]


@dataclass
class EnforcementResult:
    """Result of a passivity-enforcement pass.

    Attributes
    ----------
    model:
        The (possibly perturbed) state-space model.
    perturbation:
        The scalar feedthrough shift that was applied (0 when the input was
        already passive).
    was_passive:
        Whether the input model was already passive.
    """

    model: StateSpaceModel
    perturbation: float
    was_passive: bool


def enforce_passivity(model: StateSpaceModel, report: PassivityReport, *,
                      margin: float = 1e-12) -> EnforcementResult:
    """Enforce passivity of ``model`` given a verification ``report``.

    Parameters
    ----------
    model:
        Square immittance state-space model.
    report:
        Output of :func:`~repro.passivity.hamiltonian.hamiltonian_passivity_test`
        or :func:`~repro.passivity.laguerre.laguerre_passivity_scan` run on
        the same model.
    margin:
        Extra positive shift added on top of the measured worst violation so
        the repaired model is strictly passive on the sampled grid.

    Returns
    -------
    EnforcementResult
    """
    if model.n_inputs != model.n_outputs:
        raise PassivityError(
            "passivity enforcement needs a square transfer matrix")
    if report.is_passive:
        return EnforcementResult(model=model, perturbation=0.0,
                                 was_passive=True)
    delta = float(-report.worst_eigenvalue) + margin
    if delta <= 0.0:
        raise PassivityError(
            "report claims non-passivity but records a non-negative worst "
            "eigenvalue; refusing to perturb")
    D_new = np.asarray(model.D, dtype=complex) \
        + delta * np.eye(model.n_outputs)
    repaired = StateSpaceModel(A=model.A, B=model.B, C=model.C, D=D_new)
    return EnforcementResult(model=repaired, perturbation=delta,
                             was_passive=False)
