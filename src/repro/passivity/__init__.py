"""Passivity verification and enforcement for reduced models (paper Sec. III-D).

BDSM's congruence transform does not guarantee passivity of the reduced
immittance model, so the paper sketches a post-processing pipeline that the
block-diagonal structure makes cheap:

1.  convert each size-``l`` descriptor block to a standard state-space model
    (``O(l^3)`` per block) — :mod:`repro.passivity.state_space`;
2.  diagonalise its ``A`` matrix by eigendecomposition — also ``O(l^3)``;
3.  test passivity, either with the generalized-Hamiltonian eigenvalue test
    (references [18]/[19]) — :mod:`repro.passivity.hamiltonian` — or with a
    cheap Laguerre-grid scan on the diagonalised blocks
    (reference [17]) — :mod:`repro.passivity.laguerre`;
4.  if violations are found, perturb the offending spectra —
    :mod:`repro.passivity.enforcement`.
"""

from repro.passivity.enforcement import enforce_passivity
from repro.passivity.hamiltonian import (
    PassivityReport,
    hamiltonian_passivity_test,
)
from repro.passivity.laguerre import laguerre_passivity_scan
from repro.passivity.state_space import (
    StateSpaceModel,
    descriptor_to_state_space,
    diagonalize_state_space,
    rom_block_to_state_space,
)

__all__ = [
    "PassivityReport",
    "StateSpaceModel",
    "descriptor_to_state_space",
    "diagonalize_state_space",
    "enforce_passivity",
    "hamiltonian_passivity_test",
    "laguerre_passivity_scan",
    "rom_block_to_state_space",
]
