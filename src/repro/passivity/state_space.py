"""Descriptor-to-state-space conversion and block diagonalisation.

The paper (Sec. III-D) converts each reduced block ``Sigma_ir`` to a standard
state-space model ``(I, A, B, C)`` at a cost of ``O(l^3)``, then eigen-
decomposes ``A = X Lambda X^{-1}`` so the block becomes a diagonal LTI
system on which passivity tests and enforcement are cheap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import PassivityError

__all__ = [
    "StateSpaceModel",
    "descriptor_to_state_space",
    "diagonalize_state_space",
    "rom_block_to_state_space",
]


@dataclass
class StateSpaceModel:
    """Standard state-space model ``dx/dt = A x + B u, y = C x + D u``.

    ``A``, ``B``, ``C`` may be complex after diagonalisation; the transfer
    function stays the same (similarity transforms preserve it), which the
    tests verify.
    """

    A: np.ndarray
    B: np.ndarray
    C: np.ndarray
    D: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.A = np.atleast_2d(np.asarray(self.A))
        self.B = np.atleast_2d(np.asarray(self.B))
        self.C = np.atleast_2d(np.asarray(self.C))
        n = self.A.shape[0]
        if self.A.shape != (n, n):
            raise PassivityError("A must be square")
        if self.B.shape[0] != n:
            raise PassivityError(
                f"B has {self.B.shape[0]} rows, expected {n}")
        if self.C.shape[1] != n:
            raise PassivityError(
                f"C has {self.C.shape[1]} columns, expected {n}")
        if self.D is None:
            self.D = np.zeros((self.C.shape[0], self.B.shape[1]))
        else:
            self.D = np.atleast_2d(np.asarray(self.D))

    @property
    def order(self) -> int:
        """State dimension."""
        return int(self.A.shape[0])

    @property
    def n_inputs(self) -> int:
        return int(self.B.shape[1])

    @property
    def n_outputs(self) -> int:
        return int(self.C.shape[0])

    def transfer_function(self, s: complex) -> np.ndarray:
        """Evaluate ``C (sI - A)^{-1} B + D``."""
        pencil = s * np.eye(self.order, dtype=complex) - self.A
        X = np.linalg.solve(pencil, self.B.astype(complex))
        return self.C @ X + self.D

    def poles(self) -> np.ndarray:
        """Eigenvalues of ``A`` (the system poles)."""
        return np.linalg.eigvals(self.A)

    def is_stable(self, tol: float = 1e-9) -> bool:
        """All poles strictly in the closed left half plane (up to ``tol``)."""
        return bool(np.all(np.real(self.poles()) <= tol))


def descriptor_to_state_space(C, G, B, L) -> StateSpaceModel:
    """Convert ``C dx/dt = G x + B u, y = L x`` to standard form.

    Requires the descriptor matrix ``C`` to be non-singular, which holds for
    every BDSM block built from an RLC grid where each node carries
    capacitance (the congruence transform preserves positive definiteness of
    the projected ``C``).

    Raises
    ------
    PassivityError
        If ``C`` is singular, in which case the block cannot be converted
        (the paper's procedure assumes it can).
    """
    C = np.atleast_2d(np.asarray(C, dtype=float))
    G = np.atleast_2d(np.asarray(G, dtype=float))
    B = np.atleast_2d(np.asarray(B, dtype=float))
    L = np.atleast_2d(np.asarray(L, dtype=float))
    try:
        A = np.linalg.solve(C, G)
        B_std = np.linalg.solve(C, B)
    except np.linalg.LinAlgError as exc:
        raise PassivityError(
            "descriptor matrix C is singular; cannot convert this block to "
            "standard state space") from exc
    return StateSpaceModel(A=A, B=B_std, C=L)


def rom_block_to_state_space(block) -> StateSpaceModel:
    """Convert one :class:`~repro.core.structured_rom.ROMBlock` to state space."""
    return descriptor_to_state_space(block.C, block.G,
                                     block.b.reshape(-1, 1), block.L)


def diagonalize_state_space(model: StateSpaceModel) -> StateSpaceModel:
    """Diagonalise ``A`` by eigendecomposition (paper Eq. 16).

    Returns the similar system ``(Lambda, X^{-1} B, C X, D)`` whose ``A`` is
    diagonal; the transfer function is unchanged.

    Raises
    ------
    PassivityError
        If ``A`` is defective (not diagonalisable to working precision).
    """
    eigvals, eigvecs = np.linalg.eig(model.A)
    cond = np.linalg.cond(eigvecs)
    if not np.isfinite(cond) or cond > 1e12:
        raise PassivityError(
            "A is (numerically) defective; eigenvector matrix condition "
            f"number {cond:.2e}")
    X_inv = np.linalg.inv(eigvecs)
    return StateSpaceModel(
        A=np.diag(eigvals),
        B=X_inv @ model.B.astype(complex),
        C=model.C.astype(complex) @ eigvecs,
        D=model.D,
    )
