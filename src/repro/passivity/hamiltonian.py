"""Hamiltonian-based passivity verification.

The paper points to generalized-Hamiltonian passivity tests (its references
[18], [19]) for locating non-passive frequency bands of a reduced
immittance model.  The classical test: an LTI immittance model
``(A, B, C, D)`` is non-passive at frequency ``omega`` iff the Hermitian
part of ``H(j omega)`` has a negative eigenvalue, and the boundary
crossings are the purely imaginary eigenvalues of the Hamiltonian matrix

    M = [ A - B R^{-1} C        -B R^{-1} B^T     ]
        [ C^T R^{-1} C          -A^T + C^T R^{-1} B^T ],    R = D + D^T.

Power-grid ROMs usually have ``D = 0``; the implementation regularises
``R`` with a small multiple of the identity in that case (documented in the
report) and falls back to direct frequency sampling between the candidate
crossings, so the final verdict never depends on the regularisation alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import PassivityError
from repro.passivity.state_space import StateSpaceModel

__all__ = ["PassivityReport", "hamiltonian_passivity_test",
           "hermitian_part_eigenvalues"]


@dataclass
class PassivityReport:
    """Outcome of a passivity test.

    Attributes
    ----------
    is_passive:
        Verdict over the examined frequency range.
    worst_eigenvalue:
        Most negative eigenvalue of the Hermitian part seen (>= 0 when
        passive).
    worst_frequency:
        Frequency (rad/s) at which ``worst_eigenvalue`` occurred.
    crossing_frequencies:
        Candidate boundary-crossing frequencies from the Hamiltonian
        spectrum (empty when none).
    sampled_frequencies:
        Frequencies at which the Hermitian part was evaluated directly.
    notes:
        Free-form remarks (e.g. that the Hamiltonian ``R`` was regularised).
    """

    is_passive: bool
    worst_eigenvalue: float
    worst_frequency: float
    crossing_frequencies: list[float] = field(default_factory=list)
    sampled_frequencies: list[float] = field(default_factory=list)
    notes: str = ""


def hermitian_part_eigenvalues(model, omega: float) -> np.ndarray:
    """Eigenvalues of ``(H(j w) + H(j w)^H) / 2`` for a square immittance model."""
    H = np.asarray(model.transfer_function(1j * omega))
    if H.shape[0] != H.shape[1]:
        raise PassivityError(
            "passivity is only defined for square (immittance) transfer "
            f"matrices, got shape {H.shape}")
    herm = 0.5 * (H + H.conj().T)
    return np.linalg.eigvalsh(herm)


def hamiltonian_passivity_test(model: StateSpaceModel, *,
                               omega_max: float = 1e13,
                               n_samples: int = 40,
                               regularization: float = 1e-8,
                               tol: float = -1e-10) -> PassivityReport:
    """Test passivity of a square immittance state-space model.

    Parameters
    ----------
    model:
        Standard state-space model with equal input and output counts.
    omega_max:
        Upper end of the frequency range examined by direct sampling.
    n_samples:
        Number of log-spaced sample frequencies (besides the Hamiltonian
        crossing candidates).
    regularization:
        Relative ridge added to ``D + D^T`` when it is singular, so the
        Hamiltonian matrix can still be formed.
    tol:
        Eigenvalues of the Hermitian part above this (slightly negative)
        threshold count as passive, absorbing round-off.

    Returns
    -------
    PassivityReport
    """
    if model.n_inputs != model.n_outputs:
        raise PassivityError(
            "Hamiltonian passivity test needs a square transfer matrix "
            f"(inputs={model.n_inputs}, outputs={model.n_outputs})")

    notes = []
    A = np.asarray(model.A, dtype=complex)
    B = np.asarray(model.B, dtype=complex)
    C = np.asarray(model.C, dtype=complex)
    D = np.asarray(model.D, dtype=complex)
    R = D + D.conj().T
    scale = max(float(np.linalg.norm(B) * np.linalg.norm(C)), 1.0)
    r_singular = (not np.any(R)) or np.linalg.cond(R) > 1e12
    if r_singular:
        R = R + regularization * scale * np.eye(R.shape[0])
        notes.append(
            f"D + D^T regularised with {regularization:g} * scale ridge")

    crossings: list[float] = []
    try:
        R_inv = np.linalg.inv(R)
        top_left = A - B @ R_inv @ C
        top_right = -B @ R_inv @ B.conj().T
        bottom_left = C.conj().T @ R_inv @ C
        bottom_right = -A.conj().T + C.conj().T @ R_inv @ B.conj().T
        M = np.block([[top_left, top_right], [bottom_left, bottom_right]])
        eigvals = np.linalg.eigvals(M)
        imag_tol = 1e-6 * max(np.max(np.abs(eigvals)), 1.0)
        for lam in eigvals:
            if abs(lam.real) <= imag_tol and lam.imag > imag_tol:
                crossings.append(float(lam.imag))
    except np.linalg.LinAlgError:
        notes.append("Hamiltonian matrix could not be formed; "
                     "falling back to pure frequency sampling")

    # Direct verification: sample the Hermitian part at DC, on a log grid
    # reaching well below the slowest pole, plus the candidate crossings
    # (and points on either side of them).
    samples = [0.0]
    samples.extend(np.logspace(-3, np.log10(omega_max), n_samples))
    for crossing in crossings:
        samples.extend([0.5 * crossing, crossing, 1.5 * crossing])
    samples = sorted(set(float(s) for s in samples if s >= 0.0))

    worst_eig = np.inf
    worst_freq = 0.0
    for omega in samples:
        eigs = hermitian_part_eigenvalues(model, omega)
        low = float(np.min(eigs))
        if low < worst_eig:
            worst_eig = low
            worst_freq = omega

    return PassivityReport(
        is_passive=bool(worst_eig >= tol),
        worst_eigenvalue=float(worst_eig),
        worst_frequency=float(worst_freq),
        crossing_frequencies=sorted(crossings),
        sampled_frequencies=samples,
        notes="; ".join(notes),
    )
