"""Laguerre-grid passivity scan for block-diagonal ROMs.

The paper (Sec. III-D) argues that thanks to the block-diagonal structure,
"the passivity test and enforcement can be simplified via Laguerre's method
at the cost of only O(q^2)": once every block is eigen-diagonalised, each
transfer-matrix entry is a sum of simple fractions and evaluating the
Hermitian part on a frequency grid is cheap.

This module implements that scan:

* the grid is built from scaled Gauss-Laguerre quadrature nodes, which cover
  ``[0, inf)`` with exponentially spaced points — a natural choice for the
  Laguerre-basis view the paper refers to;
* the per-port columns of ``H(j omega)`` are evaluated from the diagonalised
  blocks in ``O(q)`` flops per frequency (``q = sum of block orders``),
  so the whole scan over a fixed-size grid is ``O(q^2)`` in the worst case
  (when the port count grows with ``q``);
* the result is a :class:`~repro.passivity.hamiltonian.PassivityReport`
  compatible with the Hamiltonian test's, so enforcement code can consume
  either.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import PassivityError
from repro.passivity.hamiltonian import PassivityReport
from repro.passivity.state_space import (
    diagonalize_state_space,
    rom_block_to_state_space,
)

__all__ = ["laguerre_frequency_grid", "laguerre_passivity_scan"]


def laguerre_frequency_grid(n_points: int, time_scale: float = 1e-9,
                            ) -> np.ndarray:
    """Angular-frequency grid from scaled Gauss-Laguerre nodes.

    Parameters
    ----------
    n_points:
        Number of grid points.
    time_scale:
        Characteristic time constant of the network (seconds); the Laguerre
        nodes ``x_k`` are mapped to ``omega_k = x_k / time_scale`` so the
        grid brackets the band where an RC/RLC grid with that time constant
        has its dynamics.
    """
    if n_points < 1:
        raise PassivityError("n_points must be >= 1")
    if time_scale <= 0.0:
        raise PassivityError("time_scale must be positive")
    nodes, _weights = np.polynomial.laguerre.laggauss(n_points)
    return np.sort(nodes) / time_scale


def laguerre_passivity_scan(rom, *, n_points: int = 24,
                            time_scale: float = 1e-9,
                            tol: float = -1e-10) -> PassivityReport:
    """Scan a block-diagonal ROM for passivity violations on a Laguerre grid.

    Parameters
    ----------
    rom:
        A :class:`~repro.core.structured_rom.BlockDiagonalROM` whose transfer
        matrix is square (immittance parameters: the observed outputs are the
        port nodes themselves, which is the default for the power-grid
        benchmarks).
    n_points:
        Number of Laguerre grid frequencies.
    time_scale:
        Characteristic RC time constant used to scale the grid.
    tol:
        Eigenvalues of the Hermitian part above this threshold count as
        passive.

    Returns
    -------
    PassivityReport
    """
    if rom.n_outputs != rom.n_ports:
        raise PassivityError(
            "Laguerre passivity scan needs a square (immittance) ROM; got "
            f"{rom.n_outputs} outputs and {rom.n_ports} ports")

    # Pre-diagonalise every block once: poles and residue factors.
    diagonalized = []
    for block in rom.blocks:
        model = rom_block_to_state_space(block)
        diag = diagonalize_state_space(model)
        poles = np.diag(diag.A)
        # Column contribution: H[:, i](s) = sum_k c_k * b_k / (s - lambda_k)
        b_vec = np.asarray(diag.B).reshape(-1)
        c_mat = np.asarray(diag.C)
        diagonalized.append((poles, b_vec, c_mat))

    omegas = laguerre_frequency_grid(n_points, time_scale)
    worst_eig = np.inf
    worst_freq = float(omegas[0])
    for omega in omegas:
        s = 1j * float(omega)
        H = np.zeros((rom.n_outputs, rom.n_ports), dtype=complex)
        for col, (poles, b_vec, c_mat) in enumerate(diagonalized):
            weights = b_vec / (s - poles)
            H[:, col] = c_mat @ weights
        herm = 0.5 * (H + H.conj().T)
        low = float(np.min(np.linalg.eigvalsh(herm)))
        if low < worst_eig:
            worst_eig = low
            worst_freq = float(omega)

    return PassivityReport(
        is_passive=bool(worst_eig >= tol),
        worst_eigenvalue=float(worst_eig),
        worst_frequency=worst_freq,
        crossing_frequencies=[],
        sampled_frequencies=[float(w) for w in omegas],
        notes=f"Laguerre grid scan, {n_points} nodes, "
              f"time_scale={time_scale:g}s",
    )
