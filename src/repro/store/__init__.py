"""Persistent ROM artifact store and concurrent model serving.

This subsystem turns the library's reduce-once/reuse-forever story into an
actual cross-process service:

``artifacts``
    Versioned, fingerprinted ``.npz`` serialization of
    :class:`~repro.mor.base.ReducedSystem`,
    :class:`~repro.core.structured_rom.BlockDiagonalROM` and
    :class:`~repro.mor.base.ReductionSummary` (schema-version field,
    dtype/sparsity-preserving encoding, integrity check on load).
``model_store``
    :class:`ModelStore` — a directory cache keyed on (system fingerprint,
    method, reduction options) with atomic writes, LRU eviction by size
    budget and hit/miss statistics; ``bdsm_reduce(..., store=...)`` and
    ``prima_reduce(..., store=...)`` memoize through it across processes.
``server``
    :class:`ModelServer` — warm-loads ROMs from the store into an in-memory
    registry and answers batched transfer-function, sweep, transient and
    IR-drop queries concurrently through the
    :class:`~repro.analysis.engine.SweepEngine`.  Since the layered
    refactor the class is a thin facade over :mod:`repro.serve`
    (planner/registry/executor/stats layers), which also adds request
    coalescing and the admission-controlled warm set.
"""

from repro.store.artifacts import (
    SCHEMA_VERSION,
    artifact_meta,
    load_artifact,
    save_artifact,
)
from repro.store.model_store import ModelStore, StoreEntry, StoreStats
from repro.store.server import (
    ModelServer,
    QueryRequest,
    ServeError,
    ServerStats,
)

__all__ = [
    "SCHEMA_VERSION",
    "ModelServer",
    "ModelStore",
    "QueryRequest",
    "ServeError",
    "ServerStats",
    "StoreEntry",
    "StoreStats",
    "artifact_meta",
    "load_artifact",
    "save_artifact",
]
