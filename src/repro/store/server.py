"""Concurrent model-serving front end over the model store.

:class:`ModelServer` is the piece that turns a directory of ROM artifacts
into a *service*: load models from a :class:`~repro.store.ModelStore` into
an in-memory registry, then answer many cheap queries — batched
transfer-function samples, frequency sweeps, transient simulations and
IR-drop reports — concurrently.  This is exactly the reduce-once /
query-forever deployment the paper's reusability argument is about: the
expensive part (Algorithm 1) happened in some earlier process; the server
only ever pays the ``O(m l^3)`` reduced-model costs.

Since the layered refactor, :class:`ModelServer` is a thin facade over the
:mod:`repro.serve` package:

* the **planner** (:class:`~repro.serve.planner.QueryPlanner`) validates
  request batches, deduplicates identical requests and coalesces
  compatible transfer/sweep requests into shared multi-point engine
  evaluations (bit-identical to per-request evaluation — see the planner
  module docs for the exact rules);
* the **registry** (:class:`~repro.serve.registry.ModelRegistry`) resolves
  model names, and — when a ``warm_budget`` is configured — maintains an
  admission-controlled LRU warm set over the store: cold misses load on
  demand, eviction drops models back to store-resident;
* the **executor** (:class:`~repro.serve.executor.PlanExecutor`) owns the
  thread pool and the per-model locks, runs plans on the shared
  :class:`~repro.analysis.engine.SweepEngine`, and scatters results back
  outside the locks;
* the **stats** layer (:mod:`repro.serve.stats`) records per-kind
  latency/queue-depth/coalescing counters (:meth:`serving_stats`), while
  :meth:`stats` keeps returning the legacy three-field
  :class:`ServerStats`.

Concurrency model (unchanged): queries against one model are serialized by
its lock (BlockDiagonalROM caches assembled matrices lazily; the lock makes
that safe) while queries against different models run in parallel, and
heavy sweeps are delegated to the shared engine.
"""

from __future__ import annotations

from concurrent.futures import Future
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.analysis.engine import SweepEngine
from repro.analysis.frequency import FrequencySweepResult
from repro.obs.endpoint import TelemetryServer
from repro.obs.tracing import trace_span
from repro.analysis.ir_drop import IRDropResult
from repro.analysis.transient import TransientResult
from repro.serve.executor import PlanExecutor, ServeError
from repro.serve.planner import QueryPlanner, QueryRequest
from repro.serve.registry import ModelRegistry
from repro.serve.stats import ServingStats, StatsRecorder
from repro.store.model_store import ModelStore

__all__ = ["ModelServer", "QueryRequest", "ServerStats", "ServeError"]


@dataclass
class ServerStats:
    """Legacy three-field request counters of one :class:`ModelServer`.

    Kept for backward compatibility; :meth:`ModelServer.serving_stats`
    exposes the full per-kind latency/queue/coalescing breakdown.
    """

    requests: int = 0
    errors: int = 0
    models_loaded: int = 0


class ModelServer:
    """In-memory ROM registry with a concurrent query front end.

    Parameters
    ----------
    store:
        Optional :class:`~repro.store.ModelStore` backing :meth:`load` and
        :meth:`warm`.  A server can also be used store-less with models
        registered directly via :meth:`register`.
    engine:
        Optional shared :class:`~repro.analysis.engine.SweepEngine` for
        sweep evaluation (default: serial).
    max_workers:
        Worker threads answering queued requests (default 4).
    warm_budget:
        Optional byte budget of the store-backed warm set.  ``None``
        (default) disables admission control: :meth:`warm` loads every
        entry and nothing is evicted.  With a budget, :meth:`warm` eagerly
        loads the most recently used entries that fit, later store-backed
        loads are admitted as evictable warm entries, and least-recently
        used models are evicted back to store-resident when the budget
        overflows.
    coalesce:
        Default planning mode of :meth:`serve` (per-call overridable).
        Coalesced results are bit-identical to the per-request path.
    metrics_port:
        When set, start a stdlib
        :class:`~repro.obs.endpoint.TelemetryServer` sidecar on
        ``127.0.0.1:<metrics_port>`` (0 picks a free port; read it back
        from ``server.telemetry.port``) serving ``/metrics`` (Prometheus
        text: the default metrics registry plus the perf-timer snapshot)
        and ``/healthz`` (the :meth:`health` verdict as JSON, HTTP 503 on
        ``fail``).  The sidecar is closed by :meth:`close`.
    """

    _KINDS = ("transfer", "sweep", "transient", "ir_drop")

    def __init__(self, store: ModelStore | None = None, *,
                 engine: SweepEngine | None = None,
                 max_workers: int = 4,
                 warm_budget: int | None = None,
                 coalesce: bool = True,
                 metrics_port: int | None = None) -> None:
        self.store = store
        self.engine = engine if engine is not None else SweepEngine(jobs=1)
        self.registry = ModelRegistry(store, warm_budget=warm_budget)
        self.planner = QueryPlanner(coalesce=coalesce)
        self._recorder = StatsRecorder()
        self.executor = PlanExecutor(self.registry, self.engine,
                                     max_workers=max_workers,
                                     stats=self._recorder)
        self.telemetry: TelemetryServer | None = None
        if metrics_port is not None:
            from repro.obs.metrics import default_metrics
            from repro.perf.timers import default_registry
            self.telemetry = TelemetryServer(
                port=int(metrics_port),
                metrics_fn=lambda: default_metrics().snapshot(),
                perf_fn=lambda: default_registry().snapshot(),
                health_fn=lambda: self.health().as_dict())
            self.telemetry.start()

    # ------------------------------------------------------------------ #
    # Registry
    # ------------------------------------------------------------------ #
    def register(self, name: str, model) -> None:
        """Make ``model`` queryable under ``name`` (replaces any previous;
        registered models are pinned — never evicted)."""
        self.registry.register(name, model)

    def load(self, name: str, *, key: str | None = None,
             path: str | Path | None = None) -> None:
        """Load a model into the registry from the store or an artifact.

        Exactly one of ``key`` (a store key; requires a backing store) or
        ``path`` (a standalone artifact file) must be given.  Store loads
        are admitted to the warm set when a ``warm_budget`` is configured,
        pinned otherwise.
        """
        self.registry.load(name, key=key, path=path)

    def warm(self, budget: int | None = None) -> list[str]:
        """Warm-load store entries into the registry.

        Models are named ``"<system_name>/<method>"`` (falling back to the
        store key on collision or missing metadata).  Returns the names
        loaded.  Under a byte budget (``budget`` or the server's
        ``warm_budget``) only the most recently used entries that fit are
        loaded eagerly; the rest load lazily on first query.  Unreadable
        entries are *not* silently dropped: they are counted in
        :meth:`warm_stats`, logged through the ``repro.serve`` logger and
        available from :meth:`ModelRegistry.warm
        <repro.serve.registry.ModelRegistry.warm>` as ``skipped`` keys.
        """
        return self.registry.warm(budget).loaded

    def models(self) -> list[str]:
        """Names currently resident in the registry, sorted."""
        return self.registry.models()

    # ------------------------------------------------------------------ #
    # Queries (thread-safe; per-model locking in the executor)
    # ------------------------------------------------------------------ #
    def transfer(self, name: str, s_values) -> np.ndarray:
        """Batched transfer-matrix samples ``H(s)`` (shape ``(k, p, m)``)."""
        return self.executor.transfer(name, s_values)

    def sweep(self, name: str, *, omega_min: float = 1e5,
              omega_max: float = 1e12, n_points: int = 60,
              output: int | None = None, port: int | None = None,
              ) -> FrequencySweepResult:
        """Log-spaced frequency sweep of one model (full matrix, or one
        ``(output, port)`` entry when both indices are given)."""
        return self.executor.sweep(name, omega_min=omega_min,
                                   omega_max=omega_max, n_points=n_points,
                                   output=output, port=port)

    def sweep_models(self, names: list[str], *, omega_min: float = 1e5,
                     omega_max: float = 1e12, n_points: int = 60,
                     ) -> dict[str, FrequencySweepResult]:
        """Full-matrix sweeps of several registered models in one batch,
        fanned across the engine under canonically-ordered model locks."""
        return self.executor.sweep_models(names, omega_min=omega_min,
                                          omega_max=omega_max,
                                          n_points=n_points)

    def transient(self, name: str, sources, *, t_stop: float, dt: float,
                  method: str = "backward_euler",
                  x0: np.ndarray | None = None) -> TransientResult:
        """Fixed-step transient simulation of one registered model."""
        return self.executor.transient(name, sources, t_stop=t_stop, dt=dt,
                                       method=method, x0=x0)

    def ir_drop(self, name: str, load_currents, *,
                reference_voltage: float = 1.0) -> IRDropResult:
        """Static IR-drop report of one registered model."""
        return self.executor.ir_drop(name, load_currents,
                                     reference_voltage=reference_voltage)

    # ------------------------------------------------------------------ #
    # Queued front end
    # ------------------------------------------------------------------ #
    def submit(self, request: QueryRequest) -> Future:
        """Queue one request; the result arrives on the returned future."""
        # Validation runs in the planner so errors surface at submit time,
        # exactly like the legacy kind check.
        self.planner.plan([request])
        return self.executor.submit_request(request)

    def serve(self, requests: list[QueryRequest], *,
              coalesce: bool | None = None) -> list:
        """Answer a batch of requests concurrently, preserving order.

        The batch is planned first (validation, dedup and — with
        ``coalesce`` left at the server default of ``True`` — coalescing
        of compatible transfer/sweep requests into shared evaluations,
        bit-identical to per-request execution; duplicates share one
        result object, so treat served results as read-only).  Steps
        overlap on the worker pool; queries against one model serialize on
        its lock.

        Every request's outcome is collected — a failing request no longer
        abandons the rest of the batch.  When any request failed, raises
        :class:`~repro.serve.executor.ServeError` carrying every failed
        request's index, the per-index exceptions and the partial results.
        """
        planner = self.planner if coalesce is None \
            else QueryPlanner(coalesce=coalesce)
        with trace_span("serve.plan", n_requests=len(requests),
                        coalesce=coalesce if coalesce is not None
                        else self.planner.coalesce):
            plan = planner.plan(requests)
            return self.executor.execute(plan)

    def stats(self) -> ServerStats:
        """Legacy request/error/load counters of this server."""
        serving = self._recorder.snapshot()
        registry = self.registry.stats()
        return ServerStats(requests=serving.requests,
                           errors=serving.errors,
                           models_loaded=registry.loads)

    def serving_stats(self) -> ServingStats:
        """Per-kind latency/queue-depth/coalescing statistics."""
        return self._recorder.snapshot()

    def health(self):
        """The serving-SLO :class:`~repro.obs.health.HealthReport`
        (per-kind p99, queue depth, error rate) — what ``/healthz``
        serves when a ``metrics_port`` is configured."""
        return self._recorder.snapshot().health_report()

    def warm_stats(self):
        """Warm-set hit/miss/eviction/skip counters
        (:class:`~repro.serve.registry.WarmSetStats`)."""
        return self.registry.stats()

    def close(self) -> None:
        """Shut down the worker pool and any telemetry sidecar (the
        registry stays usable)."""
        if self.telemetry is not None:
            self.telemetry.close()
            self.telemetry = None
        self.executor.close()

    def __enter__(self) -> "ModelServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
