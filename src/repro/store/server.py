"""Concurrent model-serving front end over the model store.

:class:`ModelServer` is the piece that turns a directory of ROM artifacts
into a *service*: warm-load models from a :class:`~repro.store.ModelStore`
into an in-memory registry once, then answer many cheap queries — batched
transfer-function samples, frequency sweeps, transient simulations and
IR-drop reports — concurrently.  This is exactly the reduce-once /
query-forever deployment the paper's reusability argument is about: the
expensive part (Algorithm 1) happened in some earlier process; the server
only ever pays the ``O(m l^3)`` reduced-model costs.

Concurrency model
-----------------
* requests submitted through :meth:`submit` / :meth:`serve` go onto the
  thread-safe queue of an internal ``ThreadPoolExecutor`` and are answered
  on worker threads;
* each registered model carries its own lock, so queries against *one*
  model are serialized (BlockDiagonalROM caches assembled matrices lazily;
  the lock makes that safe) while queries against different models run in
  parallel;
* heavy sweeps are delegated to a shared
  :class:`~repro.analysis.engine.SweepEngine`, reusing PR 2's deterministic
  chunking, and multi-model sweep requests fan across the engine through
  :meth:`~repro.analysis.frequency.FrequencyAnalysis.sweep_many`.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.analysis.engine import SweepEngine
from repro.analysis.frequency import FrequencyAnalysis, FrequencySweepResult
from repro.analysis.ir_drop import IRDropResult, ir_drop_analysis
from repro.analysis.transient import TransientAnalysis, TransientResult
from repro.exceptions import ValidationError
from repro.store.artifacts import load_artifact
from repro.store.model_store import ModelStore

__all__ = ["ModelServer", "QueryRequest", "ServerStats"]


@dataclass(frozen=True)
class QueryRequest:
    """One serving request: ``kind`` selects the analysis, ``model`` the
    registry entry, ``params`` the keyword arguments of the corresponding
    :class:`ModelServer` method.

    Kinds: ``"transfer"``, ``"sweep"``, ``"transient"``, ``"ir_drop"``.
    """

    kind: str
    model: str
    params: dict = field(default_factory=dict)


@dataclass
class ServerStats:
    """Request counters of one :class:`ModelServer` instance."""

    requests: int = 0
    errors: int = 0
    models_loaded: int = 0


class ModelServer:
    """In-memory ROM registry with a concurrent query front end.

    Parameters
    ----------
    store:
        Optional :class:`~repro.store.ModelStore` backing :meth:`load` and
        :meth:`warm`.  A server can also be used store-less with models
        registered directly via :meth:`register`.
    engine:
        Optional shared :class:`~repro.analysis.engine.SweepEngine` for
        sweep evaluation (default: serial).
    max_workers:
        Worker threads answering queued requests (default 4).
    """

    _KINDS = ("transfer", "sweep", "transient", "ir_drop")

    def __init__(self, store: ModelStore | None = None, *,
                 engine: SweepEngine | None = None,
                 max_workers: int = 4) -> None:
        if max_workers < 1:
            raise ValidationError("max_workers must be >= 1")
        self.store = store
        self.engine = engine if engine is not None else SweepEngine(jobs=1)
        self._max_workers = max_workers
        self._models: dict[str, object] = {}
        self._model_locks: dict[str, threading.RLock] = {}
        self._registry_lock = threading.RLock()
        self._pool: ThreadPoolExecutor | None = None
        self._stats = ServerStats()

    # ------------------------------------------------------------------ #
    # Registry
    # ------------------------------------------------------------------ #
    def register(self, name: str, model) -> None:
        """Make ``model`` queryable under ``name`` (replaces any previous)."""
        if not name:
            raise ValidationError("model name must be non-empty")
        with self._registry_lock:
            self._models[name] = model
            self._model_locks[name] = threading.RLock()
            self._stats.models_loaded += 1

    def load(self, name: str, *, key: str | None = None,
             path: str | Path | None = None) -> None:
        """Load a model into the registry from the store or an artifact.

        Exactly one of ``key`` (a store key; requires a backing store) or
        ``path`` (a standalone artifact file) must be given.
        """
        if (key is None) == (path is None):
            raise ValidationError("pass exactly one of key= or path=")
        if key is not None:
            if self.store is None:
                raise ValidationError(
                    "this server has no backing store; load by path= or "
                    "construct it with ModelServer(store)")
            model = self.store.load(key)
        else:
            model = load_artifact(path)
        self.register(name, model)

    def warm(self) -> list[str]:
        """Warm-load every store entry into the registry.

        Models are named ``"<system_name>/<method>"`` (falling back to the
        store key on collision or missing metadata).  Returns the names
        loaded; unreadable entries are skipped.
        """
        if self.store is None:
            raise ValidationError("this server has no backing store")
        loaded: list[str] = []
        for entry in self.store.entries():
            try:
                model = self.store.load(entry.key)
            except ValidationError:
                continue
            name = f"{entry.system_name}/{entry.method}"
            if "?" in name or name in self._models:
                name = entry.key
            self.register(name, model)
            loaded.append(name)
        return loaded

    def models(self) -> list[str]:
        """Names currently registered, sorted."""
        with self._registry_lock:
            return sorted(self._models)

    def _resolve(self, name: str):
        with self._registry_lock:
            if name not in self._models:
                known = ", ".join(sorted(self._models)) or "(none)"
                raise ValidationError(
                    f"no model {name!r} registered; known models: {known}")
            return self._models[name], self._model_locks[name]

    # ------------------------------------------------------------------ #
    # Queries (thread-safe; per-model locking)
    # ------------------------------------------------------------------ #
    def transfer(self, name: str, s_values) -> np.ndarray:
        """Batched transfer-matrix samples ``H(s)`` (shape ``(k, p, m)``)."""
        model, lock = self._resolve(name)
        with lock:
            return self.engine.sample_matrix(model, s_values)

    def sweep(self, name: str, *, omega_min: float = 1e5,
              omega_max: float = 1e12, n_points: int = 60,
              output: int | None = None, port: int | None = None,
              ) -> FrequencySweepResult:
        """Log-spaced frequency sweep of one model (full matrix, or one
        ``(output, port)`` entry when both indices are given)."""
        if (output is None) != (port is None):
            raise ValidationError(
                "pass both output= and port= for an entry sweep, or "
                "neither for the full transfer matrix")
        analysis = FrequencyAnalysis(omega_min=omega_min,
                                     omega_max=omega_max,
                                     n_points=n_points, engine=self.engine)
        model, lock = self._resolve(name)
        with lock:
            if output is not None and port is not None:
                return analysis.sweep_entry(model, output, port, label=name)
            return analysis.sweep(model, label=name)

    def sweep_models(self, names: list[str], *, omega_min: float = 1e5,
                     omega_max: float = 1e12, n_points: int = 60,
                     ) -> dict[str, FrequencySweepResult]:
        """Full-matrix sweeps of several registered models in one batch.

        Fans the models across the server's engine via
        :meth:`~repro.analysis.frequency.FrequencyAnalysis.sweep_many`,
        holding every involved model's lock for the duration.
        """
        analysis = FrequencyAnalysis(omega_min=omega_min,
                                     omega_max=omega_max,
                                     n_points=n_points, engine=self.engine)
        resolved = {name: self._resolve(name) for name in names}
        # Canonical (sorted) acquisition order: two concurrent calls with
        # overlapping model sets can never deadlock on each other.
        ordered = sorted(resolved)
        for name in ordered:
            resolved[name][1].acquire()
        try:
            systems = {name: resolved[name][0] for name in names}
            return analysis.sweep_many(systems)
        finally:
            for name in reversed(ordered):
                resolved[name][1].release()

    def transient(self, name: str, sources, *, t_stop: float, dt: float,
                  method: str = "backward_euler",
                  x0: np.ndarray | None = None) -> TransientResult:
        """Fixed-step transient simulation of one registered model."""
        analysis = TransientAnalysis(t_stop=t_stop, dt=dt, method=method)
        model, lock = self._resolve(name)
        with lock:
            return analysis.run(model, sources, x0=x0, label=name)

    def ir_drop(self, name: str, load_currents, *,
                reference_voltage: float = 1.0) -> IRDropResult:
        """Static IR-drop report of one registered model."""
        model, lock = self._resolve(name)
        with lock:
            return ir_drop_analysis(model, load_currents,
                                    reference_voltage=reference_voltage)

    # ------------------------------------------------------------------ #
    # Queued front end
    # ------------------------------------------------------------------ #
    def _get_pool(self) -> ThreadPoolExecutor:
        with self._registry_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="repro-serve")
            return self._pool

    def _dispatch(self, request: QueryRequest):
        handler = {
            "transfer": self.transfer,
            "sweep": self.sweep,
            "transient": self.transient,
            "ir_drop": self.ir_drop,
        }[request.kind]
        try:
            return handler(request.model, **request.params)
        except Exception:
            with self._registry_lock:
                self._stats.errors += 1
            raise

    def submit(self, request: QueryRequest) -> Future:
        """Queue one request; the result arrives on the returned future."""
        if request.kind not in self._KINDS:
            raise ValidationError(
                f"unknown request kind {request.kind!r}; "
                f"choose from {self._KINDS}")
        with self._registry_lock:
            self._stats.requests += 1
        return self._get_pool().submit(self._dispatch, request)

    def serve(self, requests: list[QueryRequest]) -> list:
        """Answer a batch of requests concurrently, preserving order.

        Queries against distinct models overlap on the worker pool; queries
        against one model are serialized by its lock.  Raises the first
        request's exception if any request failed.
        """
        futures = [self.submit(request) for request in requests]
        return [future.result() for future in futures]

    def stats(self) -> ServerStats:
        """Request/error/load counters of this server."""
        with self._registry_lock:
            return ServerStats(requests=self._stats.requests,
                               errors=self._stats.errors,
                               models_loaded=self._stats.models_loaded)

    def close(self) -> None:
        """Shut down the worker pool (the registry stays usable)."""
        with self._registry_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ModelServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
