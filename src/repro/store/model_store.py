"""Fingerprint-keyed directory cache of reduced-order models.

The :class:`ModelStore` turns reduction into a cross-process memo: entries
are keyed on ``(system content fingerprint, method, reduction options)``, so
any process that stamps the same grid and asks for the same reduction gets
the previously-computed ROM off disk instead of re-running Algorithm 1.
This is the persistent counterpart of the in-process
:class:`~repro.linalg.backends.FactorizationCache` from PR 1 — same idea
(content-addressed reuse with LRU eviction and hit/miss statistics), one
level up the stack and durable across processes.

Design points:

* **keys** are content hashes: the four descriptor matrices are hashed with
  :func:`~repro.linalg.backends.matrix_fingerprint` (stable across
  processes and sparse formats) together with the method name and a
  canonical JSON form of the reduction options, so renaming a benchmark
  never aliases two different grids and changing any option that affects
  the ROM changes the key;
* **writes are atomic** (delegated to
  :func:`~repro.store.artifacts.save_artifact` plus an atomically-replaced
  JSON sidecar), so concurrent writers race benignly — last writer wins
  with a complete artifact, never a torn one;
* **LRU eviction by size budget**: every hit refreshes the artifact's
  mtime, and when the store exceeds ``max_bytes`` the least-recently-used
  entries are dropped (the just-written entry is protected);
* **forgiving fetch, strict load**: :meth:`fetch` treats a corrupted or
  concurrently-deleted entry as a miss (the caller just re-reduces and
  overwrites it) while :meth:`load` raises a clear
  :class:`~repro.exceptions.ValidationError`, which is what the CLI's
  ``--from-store`` path wants.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from collections.abc import Mapping
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import ValidationError
from repro.linalg.backends import matrix_fingerprint
from repro.obs.metrics import default_metrics
from repro.obs.tracing import trace_span
from repro.store.artifacts import (
    encode_json_value,
    load_artifact,
    save_artifact,
)

__all__ = ["ModelStore", "StoreStats", "StoreEntry"]

_ARTIFACT_SUFFIX = ".rom.npz"
_META_SUFFIX = ".meta.json"


@dataclass
class StoreStats:
    """Hit/miss/eviction counters of one :class:`ModelStore` instance."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the store."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class StoreEntry:
    """One cached model: key, artifact path and bookkeeping metadata."""

    key: str
    path: Path
    n_bytes: int
    last_used: float
    meta: dict = field(default_factory=dict)

    @property
    def method(self) -> str:
        """Reduction method recorded at save time."""
        return str(self.meta.get("method", "?"))

    @property
    def system_name(self) -> str:
        """Name of the system the model was reduced from."""
        return str(self.meta.get("system_name", "?"))


def canonical_options(options: Mapping | None) -> dict:
    """Reduction options normalised for hashing and sidecar storage.

    Complex scalars (expansion points) are encoded structurally via the
    artifact layer's shared :func:`~repro.store.artifacts.encode_json_value`
    since JSON has no complex type; anything else must already be
    JSON-serializable.
    """
    return {str(k): encode_json_value(v)
            for k, v in (options or {}).items()}


class ModelStore:
    """Directory-backed, size-bounded cache of reduced-order models.

    Parameters
    ----------
    root:
        Directory holding the artifacts (created unless ``create=False``).
    max_bytes:
        Optional size budget; when the store grows past it the
        least-recently-used entries are evicted (newest entry always kept).
    create:
        With ``False``, a missing ``root`` raises
        :class:`~repro.exceptions.ValidationError` instead of being created
        — the behaviour the CLI wants for ``--from-store`` and ``query``.
    """

    def __init__(self, root: str | Path, *, max_bytes: int | None = None,
                 create: bool = True) -> None:
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise ValidationError(
                f"model store path {self.root} exists but is not a directory")
        if not self.root.is_dir():
            if not create:
                raise ValidationError(
                    f"no model store at {self.root}; run a reduction with "
                    "--store first (or pass create=True)")
            self.root.mkdir(parents=True, exist_ok=True)
        if max_bytes is not None and max_bytes <= 0:
            raise ValidationError("max_bytes must be positive (or None)")
        self.max_bytes = max_bytes
        self._lock = threading.RLock()
        self._stats = StoreStats()

    # ------------------------------------------------------------------ #
    # Keys and paths
    # ------------------------------------------------------------------ #
    @staticmethod
    def key_for(system, method: str, options: Mapping | None = None) -> str:
        """Content key of ``(system, method, options)``.

        The system contributes through the fingerprints of its four
        descriptor matrices, so two identically-valued grids share keys no
        matter how they were built, while any numeric change — or any
        option change — produces a fresh key.
        """
        h = hashlib.blake2b(digest_size=16)
        for name in ("C", "G", "B", "L"):
            h.update(matrix_fingerprint(getattr(system, name)).encode())
        h.update(method.strip().lower().encode())
        h.update(json.dumps(canonical_options(options),
                            sort_keys=True).encode())
        return h.hexdigest()

    def artifact_path(self, key: str) -> Path:
        """Path of the artifact stored under ``key`` (existing or not)."""
        return self.root / f"{key}{_ARTIFACT_SUFFIX}"

    def _meta_path(self, key: str) -> Path:
        return self.root / f"{key}{_META_SUFFIX}"

    # ------------------------------------------------------------------ #
    # Core operations
    # ------------------------------------------------------------------ #
    def contains(self, key: str) -> bool:
        """Whether an artifact is stored under ``key`` (no stats update)."""
        return self.artifact_path(key).exists()

    def put(self, key: str, model, *, method: str = "?",
            options: Mapping | None = None,
            system_name: str | None = None) -> Path:
        """Store ``model`` under ``key`` (atomic; may trigger eviction)."""
        with self._lock, trace_span("store.put", key=key, method=method):
            path = save_artifact(model, self.artifact_path(key))
            meta = {
                "key": key,
                "method": method,
                "options": canonical_options(options),
                "system_name": system_name or getattr(model, "name", "?"),
                "kind": type(model).__name__,
                "rom_size": int(getattr(model, "size", 0) or 0),
                "created": time.time(),
            }
            tmp = Path(str(self._meta_path(key)) + ".tmp")
            tmp.write_text(json.dumps(meta, sort_keys=True, indent=2) + "\n")
            os.replace(tmp, self._meta_path(key))
            self._stats.puts += 1
            self._evict_if_needed(protect=key)
        return path

    def load(self, key: str):
        """Load the model stored under ``key`` (strict).

        Raises :class:`~repro.exceptions.ValidationError` when the entry is
        absent, corrupted or schema-incompatible.  A successful load
        refreshes the entry's LRU timestamp.
        """
        path = self.artifact_path(key)
        if not path.exists():
            raise ValidationError(
                f"model store {self.root} has no entry {key}")
        model = load_artifact(path)
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - entry raced away under us
            pass
        return model

    def fetch(self, system, method: str, options: Mapping | None = None):
        """Memoization lookup: the stored model, or ``None`` on a miss.

        Records a hit or a miss in :meth:`stats`.  Unreadable entries
        (corrupted artifact, concurrent eviction) count as misses — the
        caller re-reduces and overwrites them.
        """
        return self.fetch_key(self.key_for(system, method, options))

    def fetch_key(self, key: str):
        """Like :meth:`fetch` for a precomputed key."""
        with self._lock, trace_span("store.get", key=key) as span:
            if not self.contains(key):
                self._stats.misses += 1
                self._count("store.fetch", "miss")
                span.set_tag("result", "miss")
                return None
            try:
                model = self.load(key)
            except ValidationError:
                self._stats.misses += 1
                self._count("store.fetch", "miss")
                span.set_tag("result", "miss")
                return None
            self._stats.hits += 1
            self._count("store.fetch", "hit")
            span.set_tag("result", "hit")
            return model

    @staticmethod
    def _count(name: str, result: str) -> None:
        default_metrics().increment(name, result=result)

    def get_or_reduce(self, system, method: str, options: Mapping | None,
                      builder):
        """Return ``(model, from_store)``, building and storing on a miss.

        ``builder()`` must return the model to cache; it only runs when the
        store has no usable entry for the key.
        """
        key = self.key_for(system, method, options)
        cached = self.fetch_key(key)
        if cached is not None:
            return cached, True
        model = builder()
        self.put(key, model, method=method, options=options,
                 system_name=getattr(system, "name", None))
        return model, False

    # ------------------------------------------------------------------ #
    # Introspection and maintenance
    # ------------------------------------------------------------------ #
    def entries(self) -> list[StoreEntry]:
        """All stored entries, least-recently-used first."""
        out: list[StoreEntry] = []
        for path in sorted(self.root.glob(f"*{_ARTIFACT_SUFFIX}")):
            key = path.name[:-len(_ARTIFACT_SUFFIX)]
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - concurrent removal
                continue
            meta: dict = {}
            meta_path = self._meta_path(key)
            if meta_path.exists():
                try:
                    meta = json.loads(meta_path.read_text())
                except (OSError, json.JSONDecodeError):
                    meta = {}
            out.append(StoreEntry(key=key, path=path,
                                  n_bytes=int(stat.st_size),
                                  last_used=float(stat.st_mtime),
                                  meta=meta))
        out.sort(key=lambda e: (e.last_used, e.key))
        return out

    def total_bytes(self) -> int:
        """Bytes currently occupied by stored artifacts."""
        return sum(entry.n_bytes for entry in self.entries())

    def stats(self) -> StoreStats:
        """Hit/miss/put/eviction counters of this store instance."""
        with self._lock:
            return StoreStats(hits=self._stats.hits,
                              misses=self._stats.misses,
                              puts=self._stats.puts,
                              evictions=self._stats.evictions)

    def clear(self) -> int:
        """Remove every entry; returns the number of artifacts removed."""
        removed = 0
        with self._lock:
            for entry in self.entries():
                self._remove(entry)
                removed += 1
        return removed

    def _remove(self, entry: StoreEntry) -> None:
        for path in (entry.path, self._meta_path(entry.key)):
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent removal
                pass

    def _evict_if_needed(self, protect: str) -> None:
        """Drop LRU entries until the size budget holds (``protect`` and the
        most recent entry are never evicted)."""
        if self.max_bytes is None:
            return
        entries = self.entries()
        total = sum(e.n_bytes for e in entries)
        for entry in entries:
            if total <= self.max_bytes or len(entries) <= 1:
                break
            if entry.key == protect:
                continue
            self._remove(entry)
            total -= entry.n_bytes
            self._stats.evictions += 1
            default_metrics().increment("store.evictions")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ModelStore(root={str(self.root)!r}, "
                f"entries={len(self.entries())}, "
                f"max_bytes={self.max_bytes})")
