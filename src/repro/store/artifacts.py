"""Versioned on-disk artifacts for reduced-order models.

A paper-faithful BDSM workflow is *reduce once, query forever*: the ROM is
input-independent, so the expensive reduction should be paid a single time
and its result shipped between processes, machines and CI runs.  This module
provides the serialization layer that makes that possible (in the spirit of
pyMOR's persistence layer and SHARPy's on-disk case artifacts):

* one compressed ``.npz`` container per model, holding every payload array
  with its exact dtype and — for sparse matrices — its CSR structure, so a
  save/load round-trip is bit-identical;
* a JSON metadata record embedded in the container carrying a
  ``schema`` version field (loads of a different schema are rejected with a
  clear error instead of garbage) and the model's scalar attributes;
* a content fingerprint over all payload bytes plus the metadata, verified
  on load, so truncated or corrupted artifacts are rejected instead of
  silently producing a wrong model.

Three model kinds round-trip: :class:`~repro.mor.base.ReducedSystem`,
:class:`~repro.core.structured_rom.BlockDiagonalROM` (block by block,
including optional projection bases) and
:class:`~repro.mor.base.ReductionSummary`.  All writes are atomic (tempfile
in the target directory + ``os.replace``) so a concurrent reader never
observes a half-written artifact.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zipfile
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro.core.structured_rom import BlockDiagonalROM, ROMBlock
from repro.exceptions import ValidationError
from repro.mor.base import ReducedSystem, ReductionSummary

__all__ = [
    "SCHEMA_VERSION",
    "save_artifact",
    "load_artifact",
    "artifact_meta",
    "encode_json_value",
]

#: Version of the artifact container layout.  Bump on any incompatible
#: change to the array naming scheme or the metadata record; loaders reject
#: other versions with a :class:`~repro.exceptions.ValidationError`.
SCHEMA_VERSION = 1

#: Metadata key of the embedded JSON record.
_META_KEY = "__meta__"

#: ``meta["kind"]`` values understood by :func:`load_artifact`.
_KIND_REDUCED = "reduced_system"
_KIND_BDSM = "bdsm_rom"
_KIND_SUMMARY = "reduction_summary"


# --------------------------------------------------------------------------- #
# JSON helpers (complex scalars are not JSON; encode them structurally)
# --------------------------------------------------------------------------- #
def encode_json_value(value) -> object:
    """JSON-encode a metadata value, mapping complex scalars to
    ``{"re": ..., "im": ...}`` (recursively through lists/tuples).

    The single complex-to-JSON encoding shared by the artifact metadata
    and the :func:`~repro.store.model_store.canonical_options` store keys,
    so the two can never drift apart.
    """
    if isinstance(value, (list, tuple)):
        return [encode_json_value(v) for v in value]
    if isinstance(value, complex):
        return {"re": value.real, "im": value.imag}
    return value


def _encode_s0(s0) -> object:
    """JSON-encode an expansion point (scalar or list of complex).

    Unlike :func:`encode_json_value`, real scalars are promoted to complex
    first: an s0 always decodes back through :func:`_decode_s0`."""
    if isinstance(s0, (list, tuple)):
        return [_encode_s0(v) for v in s0]
    return encode_json_value(complex(s0))


def _decode_s0(payload) -> complex | list[complex]:
    if isinstance(payload, list):
        return [_decode_s0(v) for v in payload]
    return complex(payload["re"], payload["im"])


# --------------------------------------------------------------------------- #
# Matrix encoding (dtype- and sparsity-preserving)
# --------------------------------------------------------------------------- #
def _encode_matrix(arrays: dict, formats: dict, name: str, matrix) -> None:
    """Add one matrix to the payload, preserving dtype and sparsity."""
    if sp.issparse(matrix):
        m = matrix.tocsr()
        if not m.has_canonical_format:
            if m is matrix:
                m = m.copy()
            m.sum_duplicates()
        formats[name] = "csr"
        arrays[f"{name}_data"] = m.data
        arrays[f"{name}_indices"] = np.asarray(m.indices, dtype=np.int64)
        arrays[f"{name}_indptr"] = np.asarray(m.indptr, dtype=np.int64)
        arrays[f"{name}_shape"] = np.asarray(m.shape, dtype=np.int64)
    else:
        formats[name] = "dense"
        arrays[name] = np.asarray(matrix)


def _decode_matrix(data, formats: dict, name: str):
    fmt = formats.get(name)
    if fmt == "csr":
        shape = tuple(int(v) for v in data[f"{name}_shape"])
        return sp.csr_matrix(
            (data[f"{name}_data"], data[f"{name}_indices"],
             data[f"{name}_indptr"]), shape=shape)
    if fmt == "dense":
        return data[name]
    raise ValidationError(f"artifact payload is missing matrix {name!r}")


# --------------------------------------------------------------------------- #
# Fingerprinting
# --------------------------------------------------------------------------- #
def _payload_fingerprint(arrays: dict, meta: dict) -> str:
    """Content hash over every payload array and the metadata record.

    The metadata is hashed in canonical JSON form *without* the fingerprint
    field itself, so the stored value can be recomputed and compared on
    load.
    """
    h = hashlib.blake2b(digest_size=16)
    for key in sorted(arrays):
        arr = np.ascontiguousarray(arrays[key])
        h.update(key.encode())
        h.update(str(arr.dtype).encode())
        h.update(np.asarray(arr.shape, dtype=np.int64).tobytes())
        h.update(arr.tobytes())
    clean = {k: v for k, v in meta.items() if k != "fingerprint"}
    h.update(json.dumps(clean, sort_keys=True).encode())
    return h.hexdigest()


# --------------------------------------------------------------------------- #
# Encoders (model -> arrays + meta)
# --------------------------------------------------------------------------- #
def _encode_reduced_system(model: ReducedSystem) -> tuple[dict, dict]:
    arrays: dict[str, np.ndarray] = {}
    formats: dict[str, str] = {}
    for name in ("C", "G", "B", "L"):
        _encode_matrix(arrays, formats, name, getattr(model, name))
    if model.projection is not None:
        _encode_matrix(arrays, formats, "projection", model.projection)
    if model.const_input is not None:
        arrays["const_input"] = np.asarray(model.const_input)
    meta = {
        "kind": _KIND_REDUCED,
        "formats": formats,
        "method": model.method,
        "s0": _encode_s0(model.s0),
        "n_moments": int(model.n_moments),
        "reusable": bool(model.reusable),
        "original_size": int(model.original_size),
        "original_ports": int(model.original_ports),
        "name": model.name,
    }
    return arrays, meta


def _decode_reduced_system(data, meta: dict) -> ReducedSystem:
    formats = meta["formats"]
    return ReducedSystem(
        C=_decode_matrix(data, formats, "C"),
        G=_decode_matrix(data, formats, "G"),
        B=_decode_matrix(data, formats, "B"),
        L=_decode_matrix(data, formats, "L"),
        projection=(_decode_matrix(data, formats, "projection")
                    if "projection" in formats else None),
        const_input=(data["const_input"]
                     if "const_input" in data else None),
        method=str(meta["method"]),
        s0=_decode_s0(meta["s0"]),
        n_moments=int(meta["n_moments"]),
        reusable=bool(meta["reusable"]),
        original_size=int(meta["original_size"]),
        original_ports=int(meta["original_ports"]),
        name=str(meta["name"]),
    )


def _encode_bdsm_rom(rom: BlockDiagonalROM) -> tuple[dict, dict]:
    arrays: dict[str, np.ndarray] = {}
    formats: dict[str, str] = {}
    block_indices: list[int] = []
    has_basis: list[bool] = []
    for pos, block in enumerate(rom.blocks):
        prefix = f"block{pos}"
        arrays[f"{prefix}_C"] = block.C
        arrays[f"{prefix}_G"] = block.G
        arrays[f"{prefix}_b"] = block.b
        arrays[f"{prefix}_L"] = block.L
        if block.basis is not None:
            _encode_matrix(arrays, formats, f"{prefix}_basis", block.basis)
        block_indices.append(int(block.index))
        has_basis.append(block.basis is not None)
    meta = {
        "kind": _KIND_BDSM,
        "formats": formats,
        "n_blocks": len(rom.blocks),
        "block_indices": block_indices,
        "has_basis": has_basis,
        "n_outputs": int(rom.n_outputs),
        "s0": _encode_s0(rom.s0),
        "n_moments": int(rom.n_moments),
        "original_size": int(rom.original_size),
        "original_ports": int(rom.original_ports),
        "name": rom.name,
    }
    return arrays, meta


def _decode_bdsm_rom(data, meta: dict) -> BlockDiagonalROM:
    formats = meta["formats"]
    blocks: list[ROMBlock] = []
    for pos in range(int(meta["n_blocks"])):
        prefix = f"block{pos}"
        basis = None
        if meta["has_basis"][pos]:
            basis = _decode_matrix(data, formats, f"{prefix}_basis")
            if sp.issparse(basis):
                basis = basis.toarray()
        blocks.append(ROMBlock(
            index=int(meta["block_indices"][pos]),
            C=data[f"{prefix}_C"],
            G=data[f"{prefix}_G"],
            b=data[f"{prefix}_b"],
            L=data[f"{prefix}_L"],
            basis=basis))
    return BlockDiagonalROM(
        blocks,
        n_outputs=int(meta["n_outputs"]),
        s0=_decode_s0(meta["s0"]),
        n_moments=int(meta["n_moments"]),
        original_size=int(meta["original_size"]),
        original_ports=int(meta["original_ports"]),
        name=str(meta["name"]),
    )


def _encode_summary(summary: ReductionSummary) -> tuple[dict, dict]:
    meta = {
        "kind": _KIND_SUMMARY,
        "summary": {
            "method": summary.method,
            "benchmark": summary.benchmark,
            "original_size": summary.original_size,
            "original_ports": summary.original_ports,
            "rom_size": summary.rom_size,
            "rom_nnz": summary.rom_nnz,
            "matched_moments": summary.matched_moments,
            "reusable": summary.reusable,
            "mor_seconds": summary.mor_seconds,
            "ortho_inner_products": summary.ortho_inner_products,
            "status": summary.status,
            "notes": summary.notes,
            # ``extra`` must itself be JSON-serializable; harness records
            # only put scalars and strings in it.
            "extra": summary.extra,
        },
    }
    return {}, meta


def _decode_summary(data, meta: dict) -> ReductionSummary:
    payload = dict(meta["summary"])
    return ReductionSummary(**payload)


_ENCODERS = (
    (BlockDiagonalROM, _encode_bdsm_rom),
    (ReducedSystem, _encode_reduced_system),
    (ReductionSummary, _encode_summary),
)

_DECODERS = {
    _KIND_REDUCED: _decode_reduced_system,
    _KIND_BDSM: _decode_bdsm_rom,
    _KIND_SUMMARY: _decode_summary,
}


# --------------------------------------------------------------------------- #
# Public API
# --------------------------------------------------------------------------- #
def save_artifact(model, path: str | Path) -> Path:
    """Save a ROM (or summary) to a versioned ``.npz`` artifact.

    Supported types: :class:`~repro.mor.base.ReducedSystem`,
    :class:`~repro.core.structured_rom.BlockDiagonalROM` and
    :class:`~repro.mor.base.ReductionSummary`.  The write is atomic: the
    container is assembled in a temporary file next to ``path`` and moved
    into place with ``os.replace``, so concurrent readers never see a
    partial artifact.
    """
    for cls, encoder in _ENCODERS:
        if isinstance(model, cls):
            arrays, meta = encoder(model)
            break
    else:
        raise ValidationError(
            f"cannot serialize {type(model).__name__}; supported kinds are "
            "ReducedSystem, BlockDiagonalROM and ReductionSummary")
    meta["schema"] = SCHEMA_VERSION
    meta["fingerprint"] = _payload_fingerprint(arrays, meta)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".npz.tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez_compressed(
                handle, **{_META_KEY: np.asarray([json.dumps(meta)])},
                **arrays)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def _read_container(path: Path):
    """Open an artifact container, mapping low-level failures to
    :class:`~repro.exceptions.ValidationError`."""
    if not path.exists():
        raise ValidationError(f"no such artifact: {path}")
    try:
        with np.load(path, allow_pickle=False) as data:
            payload = {key: data[key] for key in data.files}
    except (zipfile.BadZipFile, OSError, ValueError, EOFError,
            KeyError) as exc:
        raise ValidationError(
            f"{path} is not a readable model artifact "
            f"(corrupted or truncated): {exc}") from exc
    if _META_KEY not in payload:
        raise ValidationError(
            f"{path} does not look like a model artifact (missing metadata)")
    try:
        meta = json.loads(str(payload.pop(_META_KEY)[0]))
    except (json.JSONDecodeError, IndexError) as exc:
        raise ValidationError(
            f"{path} carries unreadable artifact metadata: {exc}") from exc
    return payload, meta


def _check_schema_and_integrity(path: Path, payload: dict,
                                meta: dict) -> None:
    schema = meta.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValidationError(
            f"{path} uses artifact schema version {schema!r}; this build "
            f"reads version {SCHEMA_VERSION} — regenerate the artifact")
    stored = meta.get("fingerprint")
    actual = _payload_fingerprint(payload, meta)
    if stored != actual:
        raise ValidationError(
            f"{path} failed its integrity check (stored fingerprint "
            f"{stored!r}, recomputed {actual!r}); the artifact is corrupted")


def load_artifact(path: str | Path):
    """Load a model artifact previously written by :func:`save_artifact`.

    Verifies the schema version and the content fingerprint before
    decoding, so corrupted, truncated or incompatibly-versioned artifacts
    raise :class:`~repro.exceptions.ValidationError` instead of producing a
    silently wrong model.
    """
    path = Path(path)
    payload, meta = _read_container(path)
    _check_schema_and_integrity(path, payload, meta)
    kind = meta.get("kind")
    decoder = _DECODERS.get(kind)
    if decoder is None:
        raise ValidationError(
            f"{path} holds unknown artifact kind {kind!r}")
    return decoder(payload, meta)


def artifact_meta(path: str | Path) -> dict:
    """Read an artifact's metadata record (schema, kind, fingerprint, model
    attributes) without decoding the payload arrays."""
    path = Path(path)
    payload, meta = _read_container(path)
    _check_schema_and_integrity(path, payload, meta)
    return meta
