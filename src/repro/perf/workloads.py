"""Named performance workloads for the ``repro bench`` runner.

Each workload times one hot path of the reduction stack on a registered
synthetic benchmark grid and returns a JSON-ready entry for
:class:`~repro.perf.bench.BenchmarkRunner`.  The reduction workloads record
both the production (blocked BLAS-3) and the reference (column-wise MGS)
kernel so the *speedup ratio* — the machine-independent quantity the CI
gate enforces — is part of every recorded run:

``ortho_blocked_vs_columnwise``
    The orthogonalisation kernels head-to-head on one PRIMA-style global
    candidate block (``m*l`` Krylov candidates of the grid).
``bdsm_cold``
    Cold BDSM reduction (factorisation cache cleared before every
    repetition), blocked vs. column-wise cluster orthonormalisation.
``prima_cold``
    Cold PRIMA reduction, blocked vs. column-wise global
    orthonormalisation.
``bdsm_pooled_clusters``
    Cold BDSM serial vs. per-cluster chunks fanned over a thread-pool
    :class:`~repro.analysis.engine.SweepEngine`.  Recorded but never gated
    — pool speedups depend on the runner's core count.
``partitioned_cold``
    Cold partitioned reduction (``repro.partition``: shard, reduce the
    subdomains over a thread pool, reassemble) vs. the cold monolithic
    BDSM reduction of the same heterogeneous multi-domain grid, plus the
    partitioned-vs-monolithic transfer-function agreement.  Recorded to
    the main results payload *and* to
    ``benchmarks/results/partitioned_reduce.json``; never gated (pool
    speedups and interface fractions are machine- and grid-dependent).
``partitioned_scaled``
    Cold interface-reduced multilevel partitioned reduction
    (:func:`~repro.partition.multilevel_reduce` with a reduced separator
    basis) vs. the cold monolithic BDSM reduction, on a *port-dominated*
    multi-domain grid — the regime the partition subsystem targets, where
    the monolithic Krylov/projection cost grows with the full port count
    while every shard only sees its own ports plus a few compressed
    interface injections.  Records the speedup, the macromodel sizes and
    the transfer-function error against its configured budget.  Recorded
    to the main payload *and* merged per scale into
    ``benchmarks/results/partitioned_scaled.json`` (so a ``--quick``
    smoke run never clobbers the committed laptop entry); never gated
    in the main payload — the conformance suite asserts on the committed
    JSON instead.
``serving_load``
    The layered serving stack under deterministic popularity-skewed mixed
    query traffic (:mod:`repro.serve.loadgen`): the same request stream is
    replayed through the naive per-request path and the coalescing
    planner of one warm :class:`~repro.store.ModelServer`, every coalesced
    answer is checked bit-identical to its per-request counterpart, and
    the recorded speedup (the QPS ratio) is **gated** — the coalescing
    planner must stay ≥2x the naive path within the usual tolerance.
    QPS and batch-latency percentiles are merged per scale into
    ``benchmarks/results/serving_load.json``.
``multipoint_recycle``
    Multipoint reduction with cross-shift basis recycling vs. the
    from-scratch build on the same >=3-point shift list.  The **gated**
    quantity is the shifted-solve ratio (scratch solve columns over
    recycled solve columns — deterministic and machine-independent, the
    unit the recycling work is counted in), asserted >= 1.5x inside the
    workload alongside transfer-function parity of the two ROMs; wall
    clocks are recorded for the trajectory.  Merged per scale into
    ``benchmarks/results/multipoint_recycle.json``.
``obs_overhead``
    The observability layer's cost contract on the cold PRIMA reduce:
    tracing-disabled instrumentation overhead (no-op span price x spans
    per run over the untraced reduce time) is asserted <= 3 % inside the
    workload, and the enabled/disabled wall-clock ratio is recorded and
    **gated**.  Merged per scale into
    ``benchmarks/results/obs_overhead.json``.
``health_overhead``
    The numerical-health monitors' cost contract on the cold BDSM
    reduce: the monitors-enabled run is asserted within 5 % of the
    monitors-off run inside the workload, the enabled/disabled ratio is
    recorded and **gated**, and the monitors-on run's health report is
    written to ``benchmarks/results/health_report.json`` (the CI
    perf-smoke artifact).  Merged per scale into
    ``benchmarks/results/health_overhead.json``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.analysis.engine import SweepEngine
from repro.circuit.benchmarks import BENCHMARKS, make_benchmark
from repro.circuit.mna import assemble_mna
from repro.circuit.powergrid import build_power_grid, make_multidomain_spec
from repro.core.bdsm import BDSMOptions, bdsm_reduce
from repro.core.multipoint import multipoint_bdsm_reduce
from repro.exceptions import ValidationError
from repro.linalg.backends import clear_default_cache
from repro.linalg.krylov import ShiftedOperator, krylov_candidate_blocks
from repro.linalg.orthogonalization import (
    block_orthonormalize,
    modified_gram_schmidt,
)
from repro.mor.prima import prima_reduce
from repro.mor.rational import multipoint_prima_reduce
from repro.obs.metrics import default_metrics
from repro.obs.tracing import (
    default_tracer,
    disable_tracing,
    enable_tracing,
    trace_span,
    tracing_enabled,
)
from repro.partition import (
    PartitionedOptions,
    multilevel_reduce,
    partitioned_reduce,
)
from repro.perf.bench import BenchmarkRunner
from repro.perf.timers import default_registry
from repro.validation.error_metrics import rom_agreement_report

__all__ = ["WORKLOADS", "run_workloads", "workload_names"]

#: Where the partitioned-vs-monolithic trajectory is recorded (the
#: acceptance artifact of the partitioned-reduction subsystem).
PARTITIONED_RESULTS_PATH = Path("benchmarks/results/partitioned_reduce.json")

#: Multi-domain grids of the ``partitioned_cold`` workload per scale:
#: (rows, cols, n_ports, n_parts, n_moments).
_PARTITIONED_GRIDS = {
    "smoke": (32, 32, 12, 4, 3),
    "laptop": (64, 64, 24, 4, 4),
}

#: Where the interface-reduced multilevel trajectory is recorded, merged
#: per scale (the acceptance artifact of the interface-reduction PR).
PARTITIONED_SCALED_PATH = Path("benchmarks/results/partitioned_scaled.json")

#: Port-dominated grids of the ``partitioned_scaled`` workload per scale:
#: (rows, cols, n_ports, n_parts, n_moments, levels, interface_order,
#: interface_tol, error_budget).  The port counts are deliberately large —
#: the monolithic Krylov/projection cost is what the partition subsystem
#: amortises, and it scales with ``(ports * moments)^2``.
_SCALED_GRIDS = {
    "smoke": (64, 64, 256, 4, 3, 1, 3, 1e-4, 5e-2),
    "laptop": (256, 256, 3072, 8, 4, 2, 4, 1e-4, 5e-2),
}

#: Where the serving-stack trajectory is recorded, merged per scale (the
#: acceptance artifact of the layered-serving PR).
SERVING_LOAD_PATH = Path("benchmarks/results/serving_load.json")

#: Traffic shape of the ``serving_load`` workload per scale:
#: (n_requests, duplication, transfer_points, sweep_points, clients,
#: batch_size, moments).  Duplication is the popularity-skew assumption
#: the coalescing planner exploits; batch size bounds how many duplicates
#: one plan can see, so the laptop spec pairs heavier skew (12) with
#: larger batches (120) — at that scale per-call overhead is negligible
#: next to the solves and dedup is where the whole win comes from.
_SERVING_SPECS = {
    "smoke": (240, 8.0, 24, 32, 4, 60, 4),
    "laptop": (480, 12.0, 24, 32, 4, 120, 6),
}

#: Grid the reduction workloads run on — the paper's ckt2 (Table II), the
#: scale (smoke/laptop) chosen by the caller.
DEFAULT_BENCHMARK = "ckt2"


def _grid(benchmark: str, scale: str):
    system = make_benchmark(benchmark, scale=scale)
    n_moments = BENCHMARKS[benchmark].matched_moments
    return system, n_moments


def _ortho_kernels(runner: BenchmarkRunner, benchmark: str,
                   scale: str) -> dict:
    system, n_moments = _grid(benchmark, scale)
    operator = ShiftedOperator(system.C, system.G, s0=0.0)
    candidates = np.hstack(
        krylov_candidate_blocks(operator, system.B, n_moments))
    blocked = runner.time_callable(
        lambda: block_orthonormalize(candidates))
    columnwise = runner.time_callable(
        lambda: modified_gram_schmidt(candidates))
    rank_blocked = block_orthonormalize(candidates)[0].shape[1]
    rank_columnwise = modified_gram_schmidt(candidates)[0].shape[1]
    return {
        "seconds": blocked,
        "baseline_seconds": columnwise,
        "speedup": columnwise / blocked,
        "gate": True,
        "grid": system.name,
        "n": int(system.size),
        "candidates": int(candidates.shape[1]),
        "rank_blocked": int(rank_blocked),
        "rank_columnwise": int(rank_columnwise),
    }


def _bdsm_cold(runner: BenchmarkRunner, benchmark: str, scale: str) -> dict:
    system, n_moments = _grid(benchmark, scale)

    def reduce_with(kernel: str) -> float:
        options = BDSMOptions(ortho_kernel=kernel)
        return runner.time_callable(
            lambda: bdsm_reduce(system, n_moments, options=options),
            setup=clear_default_cache)

    blocked = reduce_with("blocked")
    columnwise = reduce_with("columnwise")
    return {
        "seconds": blocked,
        "baseline_seconds": columnwise,
        "speedup": columnwise / blocked,
        "gate": True,
        "grid": system.name,
        "n": int(system.size),
        "ports": int(system.n_ports),
        "n_moments": int(n_moments),
    }


def _prima_cold(runner: BenchmarkRunner, benchmark: str, scale: str) -> dict:
    system, n_moments = _grid(benchmark, scale)

    def reduce_with(kernel: str) -> float:
        return runner.time_callable(
            lambda: prima_reduce(system, n_moments, ortho_kernel=kernel),
            setup=clear_default_cache)

    blocked = reduce_with("blocked")
    columnwise = reduce_with("columnwise")
    return {
        "seconds": blocked,
        "baseline_seconds": columnwise,
        "speedup": columnwise / blocked,
        "gate": True,
        "grid": system.name,
        "n": int(system.size),
        "ports": int(system.n_ports),
        "n_moments": int(n_moments),
    }


def _bdsm_pooled(runner: BenchmarkRunner, benchmark: str, scale: str) -> dict:
    system, n_moments = _grid(benchmark, scale)
    jobs = min(4, os.cpu_count() or 1)

    serial = runner.time_callable(
        lambda: bdsm_reduce(system, n_moments, options=BDSMOptions()),
        setup=clear_default_cache)
    with SweepEngine(jobs=jobs) as engine:
        options = BDSMOptions(engine=engine)  # reducer auto-chunks
        pooled = runner.time_callable(
            lambda: bdsm_reduce(system, n_moments, options=options),
            setup=clear_default_cache)
    return {
        "seconds": pooled,
        "baseline_seconds": serial,
        "speedup": serial / pooled,
        # Pool speedups depend on the machine's core count — recorded for
        # the trajectory, never gated.
        "gate": False,
        "grid": system.name,
        "jobs": int(jobs),
    }


def _partitioned_cold(runner: BenchmarkRunner, benchmark: str,
                      scale: str) -> dict:
    """Partitioned vs. monolithic cold reduce on a multi-domain grid.

    Runs on its own heterogeneous grid (four R/C domains plus a central
    blockage void, see
    :func:`~repro.circuit.powergrid.make_multidomain_spec`) rather than
    the homogeneous ``benchmark`` mesh — sharding is only interesting
    when the subdomains differ.  ``benchmark`` still labels the payload.
    """
    rows, cols, n_ports, n_parts, n_moments = _PARTITIONED_GRIDS.get(
        scale, _PARTITIONED_GRIDS["laptop"])
    spec = make_multidomain_spec(rows, cols, n_ports, seed=3,
                                 name=f"multidomain-{rows}x{cols}-{scale}")
    system = assemble_mna(build_power_grid(spec))
    jobs = min(n_parts, os.cpu_count() or 1)

    # The timed closures capture their last ROM so the agreement report
    # below reuses it instead of paying a fourth reduction of each kind.
    roms: dict[str, object] = {}

    def run_monolithic():
        roms["monolithic"] = bdsm_reduce(system, n_moments)[0]

    monolithic = runner.time_callable(run_monolithic,
                                      setup=clear_default_cache)
    with SweepEngine(jobs=jobs) as engine:
        def run_partitioned():
            roms["partitioned"] = partitioned_reduce(
                system, n_moments, n_parts=n_parts, engine=engine)[0]

        partitioned = runner.time_callable(run_partitioned,
                                           setup=clear_default_cache)

    mono_rom = roms["monolithic"]
    part_rom = roms["partitioned"]
    agreement = rom_agreement_report(mono_rom, part_rom,
                                     np.logspace(5, 9, 7))
    entry = {
        "seconds": partitioned,
        "baseline_seconds": monolithic,
        "speedup": monolithic / partitioned,
        # Interface overhead vs. pool speedup is machine- and
        # grid-dependent — recorded for the trajectory, never gated.
        "gate": False,
        "grid": system.name,
        "n": int(system.size),
        "ports": int(system.n_ports),
        "n_moments": int(n_moments),
        "n_parts": int(n_parts),
        "jobs": int(jobs),
        "partition": part_rom.partition_info,
        "macromodel_size": int(part_rom.size),
        "monolithic_size": int(mono_rom.size),
        "max_rel_error_vs_monolithic": agreement["max_rel_error"],
    }
    payload = {
        "schema": 1,
        "scale": scale,
        "workloads": {"partitioned_cold": entry},
    }
    PARTITIONED_RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    PARTITIONED_RESULTS_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return entry


def _partitioned_scaled(runner: BenchmarkRunner, benchmark: str,
                        scale: str) -> dict:
    """Interface-reduced multilevel vs. monolithic cold reduce, at scale.

    The grid is port-dominated (see ``_SCALED_GRIDS``): the monolithic
    BDSM baseline drags every port through its global Krylov recursion
    and the ``(ports * moments)``-wide congruence projection, while the
    multilevel partitioned reduction gives each shard only its own ports
    plus the compressed interface injections.  One repetition per side —
    the laptop baseline runs for minutes and the recorded quantity is a
    structural multiple, not a timer-noise measurement.
    """
    (rows, cols, n_ports, n_parts, n_moments, levels, interface_order,
     interface_tol, error_budget) = _SCALED_GRIDS.get(
        scale, _SCALED_GRIDS["laptop"])
    spec = make_multidomain_spec(
        rows, cols, n_ports, seed=3,
        name=f"multidomain-scaled-{rows}x{cols}-{scale}")
    system = assemble_mna(build_power_grid(spec))
    interface = PartitionedOptions(interface_order=interface_order,
                                   interface_tol=interface_tol)

    roms: dict[str, object] = {}

    def run_monolithic():
        roms["monolithic"] = bdsm_reduce(system, n_moments)[0]

    def run_multilevel():
        roms["multilevel"] = multilevel_reduce(
            system, n_moments, levels=levels, n_parts=n_parts,
            interface=interface)[0]

    monolithic = runner.time_callable(run_monolithic, repeats=1,
                                      setup=clear_default_cache)
    multilevel = runner.time_callable(run_multilevel, repeats=1,
                                      setup=clear_default_cache)

    mono_rom = roms["monolithic"]
    multi_rom = roms["multilevel"]
    agreement = rom_agreement_report(mono_rom, multi_rom,
                                     np.logspace(5, 9, 7))
    error = float(agreement["max_rel_error"])
    entry = {
        "seconds": multilevel,
        "baseline_seconds": monolithic,
        "speedup": monolithic / multilevel,
        # Machine-dependent wall clock — recorded, never gated here; the
        # partition conformance suite asserts on the committed JSON.
        "gate": False,
        "grid": system.name,
        "n": int(system.size),
        "ports": int(system.n_ports),
        "n_moments": int(n_moments),
        "n_parts": int(n_parts),
        "levels": int(levels),
        "interface_order": int(interface_order),
        "interface_tol": float(interface_tol),
        "partition": multi_rom.partition_info,
        "macromodel_size": int(multi_rom.size),
        "monolithic_size": int(mono_rom.size),
        "max_rel_error_vs_monolithic": error,
        "error_budget": float(error_budget),
        "within_budget": bool(error <= error_budget),
    }
    # Merge by scale: a smoke run updates only its own entry, leaving the
    # committed laptop trajectory untouched.
    _merge_scale(PARTITIONED_SCALED_PATH, scale, entry)
    return entry


def _serving_load(runner: BenchmarkRunner, benchmark: str,
                  scale: str) -> dict:
    """Coalescing planner vs. naive per-request serving, bit-checked.

    Reduces ckt1+ckt2 with BDSM and PRIMA into a temporary store, warms a
    :class:`~repro.store.ModelServer` and replays one deterministic
    popularity-skewed request stream (transfer/sweep/IR-drop mix) through
    both planning modes with concurrent client threads.  Each mode runs
    ``runner.repeats`` drives and the best (lowest-wall-clock) drive is
    recorded; one drive per mode collects results for the bit-identity
    check.  The gated quantity is the QPS ratio — machine-independent to
    first order because both paths run the same engine on the same
    models, so the ratio isolates the planner's dedup/coalescing wins.
    """
    import tempfile

    from repro.serve.loadgen import (
        LoadSpec,
        generate_requests,
        results_equal,
        run_load,
    )
    from repro.store.model_store import ModelStore
    from repro.store.server import ModelServer

    (n_requests, duplication, transfer_points, sweep_points, clients,
     batch_size, moments) = _SERVING_SPECS.get(scale,
                                               _SERVING_SPECS["laptop"])
    spec = LoadSpec(n_requests=n_requests, duplication=duplication,
                    transfer_points=transfer_points,
                    sweep_points=sweep_points)
    with tempfile.TemporaryDirectory() as tmp:
        store = ModelStore(tmp)
        for name in ("ckt1", "ckt2"):
            system = make_benchmark(name, scale=scale)
            bdsm_reduce(system, moments, store=store)
            prima_reduce(system, moments, store=store)
        with ModelServer(store) as server:
            server.warm()
            models = {name: server.registry.resolve(name)
                      for name in server.registry.known_names()}
            requests = generate_requests(models, spec)
            runs = {}
            for mode, coalesce in (("naive", False), ("coalesced", True)):
                best = None
                for repeat in range(max(1, runner.repeats)):
                    drive = run_load(server, requests, clients=clients,
                                     batch_size=batch_size,
                                     coalesce=coalesce,
                                     collect_results=repeat == 0)
                    if best is None or drive.seconds < best.seconds:
                        best = drive
                    if repeat == 0:
                        runs[mode + "_results"] = drive.results
                runs[mode] = best
            serving = server.serving_stats()
    naive, coalesced = runs["naive"], runs["coalesced"]
    bit_identical = all(
        results_equal(a, b) for a, b in zip(runs["naive_results"],
                                            runs["coalesced_results"]))
    if not bit_identical:
        raise ValidationError(
            "serving_load: coalesced results diverged from the "
            "per-request path")
    return {
        "seconds": coalesced.seconds,
        "baseline_seconds": naive.seconds,
        # The gated, machine-independent quantity: how much faster the
        # coalescing planner answers the same traffic.
        "speedup": naive.seconds / coalesced.seconds,
        "gate": True,
        "n_requests": int(n_requests),
        "duplication": float(duplication),
        "clients": int(clients),
        "batch_size": int(batch_size),
        "bit_identical": True,
        "coalescing_rate": serving.coalescing_rate,
        "naive_qps": naive.qps,
        "coalesced_qps": coalesced.qps,
        "naive_p50_s": naive.p50,
        "naive_p99_s": naive.p99,
        "coalesced_p50_s": coalesced.p50,
        "coalesced_p99_s": coalesced.p99,
    }


def _serving_load_recorded(runner: BenchmarkRunner, benchmark: str,
                           scale: str) -> dict:
    """:func:`_serving_load`, merged per scale into its results JSON."""
    entry = _serving_load(runner, benchmark, scale)
    _merge_scale(SERVING_LOAD_PATH, scale, entry)
    return entry


#: Where the cross-shift recycling trajectory is recorded, merged per
#: scale (the acceptance artifact of the basis-recycling PR).
MULTIPOINT_RECYCLE_PATH = Path("benchmarks/results/multipoint_recycle.json")

#: In-workload floor on the shifted-solve ratio: recycling must cut the
#: solve columns of a >=3-point multipoint reduce by at least this factor.
MULTIPOINT_RECYCLE_FLOOR = 1.5

#: In-workload ceiling on the recycled-vs-scratch transfer-function
#: disagreement over the 1e5-1e9 rad/s band.
MULTIPOINT_RECYCLE_ERROR_BUDGET = 1e-6

#: Shift lists of the ``multipoint_recycle`` workload per scale:
#: (moments_per_point, expansion_points).  The points are clustered —
#: the regime where neighbouring Krylov spaces overlap and recycling
#: pays; >=3 points so the skipped work dominates the mandatory
#: starting-block solves.
_MULTIPOINT_SPECS = {
    "smoke": (3, (1e3, 5e3, 2e4)),
    "laptop": (4, (1e3, 5e3, 2e4, 1e5)),
}


def _multipoint_recycle(runner: BenchmarkRunner, benchmark: str,
                        scale: str) -> dict:
    """Cross-shift basis recycling vs. from-scratch multipoint reduction.

    Runs the multipoint PRIMA reducer over a clustered shift list twice —
    from scratch and with a shared
    :class:`~repro.linalg.recycle.RecycleWorkspace` — and gates on the
    **shifted-solve ratio**: the solve columns the scratch build spends
    over what the recycled build spends.  Solve counts are exact and
    deterministic (every right-hand-side column through the factorised
    pencil is counted), so the gate is machine-independent where wall
    clock is not; both wall clocks are still recorded.  The workload
    asserts the ratio stays >= ``MULTIPOINT_RECYCLE_FLOOR`` and the two
    ROMs agree in transfer function, and records the BDSM-side ratio on
    the same shift list alongside.
    """
    system, _ = _grid(benchmark, scale)
    moments, raw_points = _MULTIPOINT_SPECS.get(scale,
                                                _MULTIPOINT_SPECS["laptop"])
    points = [complex(p) for p in raw_points]
    roms: dict[str, object] = {}

    def run_scratch():
        roms["scratch"] = multipoint_prima_reduce(system, moments, points)[0]

    def run_recycled():
        roms["recycled"] = multipoint_prima_reduce(system, moments, points,
                                                   recycle=True)[0]

    scratch = runner.time_callable(run_scratch, setup=clear_default_cache)
    recycled = runner.time_callable(run_recycled, setup=clear_default_cache)

    scratch_solves = sum(roms["scratch"].solve_counts)
    recycled_solves = sum(roms["recycled"].solve_counts)
    if recycled_solves <= 0:
        raise ValidationError("multipoint_recycle: no solves recorded")
    solve_ratio = scratch_solves / recycled_solves
    agreement = rom_agreement_report(roms["scratch"], roms["recycled"],
                                     np.logspace(5, 9, 7))
    error = float(agreement["max_rel_error"])
    if error > MULTIPOINT_RECYCLE_ERROR_BUDGET:
        raise ValidationError(
            f"multipoint_recycle: recycled ROM diverged from scratch "
            f"(max rel TF error {error:.2e} > "
            f"{MULTIPOINT_RECYCLE_ERROR_BUDGET:.0e})")
    if solve_ratio < MULTIPOINT_RECYCLE_FLOOR:
        raise ValidationError(
            f"multipoint_recycle: solve ratio {solve_ratio:.2f}x below "
            f"the {MULTIPOINT_RECYCLE_FLOOR}x floor "
            f"({scratch_solves} scratch vs {recycled_solves} recycled "
            "solve columns)")
    recycle_stats = roms["recycled"].recycle_stats

    # BDSM-side ratio on the same shift list: counted, not separately
    # timed — solve counts are deterministic, and one extra pair of
    # reduces keeps the workload cheap.
    bdsm_scratch = multipoint_bdsm_reduce(system, moments, points)[0]
    bdsm_recycled = multipoint_bdsm_reduce(system, moments, points,
                                           recycle=True)[0]
    bdsm_ratio = (sum(bdsm_scratch.solve_counts)
                  / max(1, sum(bdsm_recycled.solve_counts)))

    entry = {
        "seconds": recycled,
        "baseline_seconds": scratch,
        # The gated, machine-independent quantity: how many shifted-solve
        # columns recycling saves on the same shift list.
        "speedup": solve_ratio,
        "gate": True,
        "grid": system.name,
        "n": int(system.size),
        "ports": int(system.n_ports),
        "moments_per_point": int(moments),
        "points": [str(p) for p in points],
        "scratch_solves": int(scratch_solves),
        "recycled_solves": int(recycled_solves),
        "wall_speedup": scratch / recycled if recycled > 0 else 0.0,
        "recycle_hits": int(recycle_stats.hits),
        "recycle_screened": int(recycle_stats.screened),
        "solves_skipped": int(recycle_stats.solves_skipped),
        "bdsm_solve_ratio": bdsm_ratio,
        "max_rel_error_vs_scratch": error,
        "error_budget": MULTIPOINT_RECYCLE_ERROR_BUDGET,
        "solve_ratio_floor": MULTIPOINT_RECYCLE_FLOOR,
    }
    _merge_scale(MULTIPOINT_RECYCLE_PATH, scale, entry)
    return entry


#: Where the tracing-overhead gate is recorded, merged per scale (the
#: acceptance artifact of the observability layer).
OBS_OVERHEAD_PATH = Path("benchmarks/results/obs_overhead.json")

#: Hard in-workload budget: fraction of a cold PRIMA reduce the *disabled*
#: tracing instrumentation may cost (the acceptance bar is <= 3%).
OBS_OVERHEAD_BUDGET = 0.03


def _merge_scale(path: Path, scale: str, entry: dict) -> None:
    """Merge ``entry`` under ``scale`` into a per-scale results JSON, so a
    smoke run never clobbers the committed laptop entry."""
    payload = {"schema": 1, "scales": {}}
    if path.exists():
        try:
            previous = json.loads(path.read_text())
        except (OSError, ValueError):
            previous = {}
        if isinstance(previous.get("scales"), dict):
            payload["scales"].update(previous["scales"])
    payload["scales"][scale] = entry
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _obs_overhead(runner: BenchmarkRunner, benchmark: str,
                  scale: str) -> dict:
    """Tracing overhead on the cold PRIMA workload, disabled and enabled.

    Two quantities are recorded:

    * the **disabled-path overhead** — the cost of every ``trace_span``
      call site returning the shared no-op while tracing is off.  It is
      measured deterministically: a microbenchmark prices one no-op span
      entry/exit, the enabled run counts how many spans one cold reduce
      opens, and the product over the untraced reduce time bounds the
      fraction.  The workload *asserts* this stays within
      ``OBS_OVERHEAD_BUDGET`` (3%) — tracing must be free when off;
    * the **enabled/disabled wall-clock ratio** as the recorded
      ``speedup`` (enabled over disabled, ~1.0), gated against the
      baseline so a regression in either path trips the perf check.
    """
    system, n_moments = _grid(benchmark, scale)
    was_enabled = tracing_enabled()
    disable_tracing()
    tracer = default_tracer()

    def reduce_cold() -> None:
        prima_reduce(system, n_moments)

    try:
        disabled = runner.time_callable(reduce_cold,
                                        setup=clear_default_cache)

        def setup_enabled() -> None:
            clear_default_cache()
            tracer.drain()

        enable_tracing()
        setup_enabled()
        reduce_cold()
        spans_per_run = len(tracer.drain())
        enabled = runner.time_callable(reduce_cold, setup=setup_enabled)
    finally:
        disable_tracing()
        tracer.drain()

    # Price one disabled trace_span call site (kwargs included — tags are
    # evaluated whether or not tracing is on).
    n_calls = 200_000
    t0 = time.perf_counter()
    for _ in range(n_calls):
        with trace_span("obs.noop", backend="x", cache="off"):
            pass
    noop_seconds = (time.perf_counter() - t0) / n_calls

    overhead_fraction = (noop_seconds * spans_per_run / disabled
                         if disabled > 0 else 0.0)
    if overhead_fraction > OBS_OVERHEAD_BUDGET:
        raise ValidationError(
            f"obs_overhead: disabled-tracing overhead "
            f"{overhead_fraction:.2%} exceeds the "
            f"{OBS_OVERHEAD_BUDGET:.0%} budget "
            f"({spans_per_run} spans x {noop_seconds * 1e9:.0f} ns over "
            f"{disabled:.4f} s)")

    entry = {
        "seconds": disabled,
        "baseline_seconds": enabled,
        # Gated ~1.0 ratio: how much the *enabled* tracer costs.  A drop
        # means either the disabled path got slower or the enabled path
        # got faster than the untraced one — both worth a look.
        "speedup": enabled / disabled,
        "gate": True,
        "grid": system.name,
        "n": int(system.size),
        "n_moments": int(n_moments),
        "spans_per_run": int(spans_per_run),
        "noop_span_seconds": noop_seconds,
        "disabled_overhead_fraction": overhead_fraction,
        "overhead_budget": OBS_OVERHEAD_BUDGET,
        "enabled_overhead_fraction": max(0.0, enabled / disabled - 1.0),
    }
    _merge_scale(OBS_OVERHEAD_PATH, scale, entry)
    if was_enabled:
        enable_tracing()
    return entry


#: Where the health-monitor overhead gate is recorded, merged per scale.
HEALTH_OVERHEAD_PATH = Path("benchmarks/results/health_overhead.json")

#: Where the monitors-on reduce's health report is written (the CI
#: perf-smoke job uploads it as a run artifact).
HEALTH_REPORT_PATH = Path("benchmarks/results/health_report.json")

#: Hard in-workload budget: fractional wall-clock cost the *enabled*
#: health monitors may add to a cold BDSM reduce (acceptance bar: 5%).
HEALTH_OVERHEAD_BUDGET = 0.05


def _health_overhead(runner: BenchmarkRunner, benchmark: str,
                     scale: str) -> dict:
    """Health-monitor cost on the cold BDSM workload, off and on.

    The monitors-off reduce and the monitors-on reduce are timed as
    interleaved off/on pairs (order alternating per round) and compared
    by the **best of the per-round on/off ratios**.  On shared CI
    hardware, timing noise at this ~5ms scale is strictly-positive
    spikes (preemption, frequency drops) over a stable floor, so the
    cleanest round is the honest estimate — while a *systematic* monitor
    cost lifts every round, best one included, so a real hot-path
    regression still trips the gate.  The workload *asserts* the enabled
    run stays within ``HEALTH_OVERHEAD_BUDGET`` (5%) of the disabled one
    — the monitors buy orthogonality-loss, solve-residual and
    deflation-rate watchdogs with a capped-subsample Gram probe and a
    1-in-16 residual sample, and this gate is what keeps those caps
    honest.  The enabled/disabled ratio is recorded as the gated
    ``speedup`` (~1.0), and the monitors-on run's
    :class:`~repro.obs.health.HealthReport` is written to
    ``benchmarks/results/health_report.json`` for the CI artifact.
    """
    from repro.obs.health import (
        default_health,
        disable_health_monitors,
        enable_health_monitors,
        health_enabled,
    )

    system, n_moments = _grid(benchmark, scale)
    was_enabled = health_enabled()
    disable_health_monitors()
    monitors = default_health()

    roms: dict[str, object] = {}

    def reduce_cold() -> None:
        roms["last"] = bdsm_reduce(system, n_moments)[0]

    def timed_sample(inner: int = 8) -> float:
        # A smoke-scale reduce is ~5ms — too short to time alone — so
        # one sample aggregates ``inner`` cold reduces.
        total = 0.0
        for _ in range(inner):
            clear_default_cache()
            start = time.perf_counter()
            reduce_cold()
            total += time.perf_counter() - start
        return total / inner

    try:
        # One untimed warmup so BLAS dispatch / allocator state is hot
        # before either side is measured.
        clear_default_cache()
        reduce_cold()
        rounds = max(6, runner.repeats)
        ratios = []
        disabled = enabled = None
        report = None
        for round_idx in range(rounds):
            # Alternate which side goes first: on a thermally throttling
            # or shared CPU the second sample of a pair runs slower, and
            # a fixed order would book that bias entirely to one side.
            if round_idx % 2 == 0:
                disable_health_monitors()
                off_s = timed_sample()
                enable_health_monitors()
                monitors.reset()
                on_s = timed_sample()
                on_report = roms["last"].health
            else:
                enable_health_monitors()
                monitors.reset()
                on_s = timed_sample()
                on_report = roms["last"].health
                disable_health_monitors()
                off_s = timed_sample()
            if off_s > 0:
                ratios.append(on_s / off_s)
            disabled = off_s if disabled is None else min(disabled, off_s)
            if enabled is None or on_s < enabled:
                enabled = on_s
                report = on_report
    finally:
        disable_health_monitors()
        monitors.reset()

    ratio = float(min(ratios)) if ratios else 1.0
    overhead = ratio - 1.0
    if overhead > HEALTH_OVERHEAD_BUDGET:
        raise ValidationError(
            f"health_overhead: monitors-enabled reduce is "
            f"{overhead:.2%} slower than monitors-off, over the "
            f"{HEALTH_OVERHEAD_BUDGET:.0%} budget "
            f"(best of {len(ratios)} paired rounds; best samples "
            f"{enabled:.4f}s vs {disabled:.4f}s, "
            f"{len(report.checks)} checks recorded)")

    by_monitor: dict[str, int] = {}
    for check in report.checks:
        by_monitor[check.monitor] = by_monitor.get(check.monitor, 0) + 1
    HEALTH_REPORT_PATH.parent.mkdir(parents=True, exist_ok=True)
    HEALTH_REPORT_PATH.write_text(json.dumps({
        "schema": 1,
        "workload": "health_overhead",
        "grid": system.name,
        "scale": scale,
        "n_moments": int(n_moments),
        "checks_by_monitor": by_monitor,
        "report": report.as_dict(),
    }, indent=2, sort_keys=True) + "\n")

    entry = {
        # "baseline" = monitors off, "seconds" = monitors on, matching
        # the speedup direction below (bigger = monitors cheaper).
        "seconds": enabled,
        "baseline_seconds": disabled,
        # Gated ~1.0 ratio: disabled over enabled (inverse of the best
        # paired on/off ratio), so lower = monitors more expensive — the
        # direction check_regressions gates on.  A hot-path regression
        # pushes this below the baseline floor, while downward timing
        # noise only pushes it up (harmlessly past the gate).
        "speedup": 1.0 / ratio if ratio > 0 else 1.0,
        "gate": True,
        "grid": system.name,
        "n": int(system.size),
        "ports": int(system.n_ports),
        "n_moments": int(n_moments),
        "health_status": report.status,
        "health_checks": len(report.checks),
        "checks_by_monitor": by_monitor,
        "enabled_overhead_fraction": max(0.0, overhead),
        "overhead_budget": HEALTH_OVERHEAD_BUDGET,
    }
    _merge_scale(HEALTH_OVERHEAD_PATH, scale, entry)
    if was_enabled:
        enable_health_monitors()
    return entry


#: Registry of the named workloads (name -> fn(runner, benchmark, scale)).
WORKLOADS = {
    "ortho_blocked_vs_columnwise": _ortho_kernels,
    "bdsm_cold": _bdsm_cold,
    "prima_cold": _prima_cold,
    "bdsm_pooled_clusters": _bdsm_pooled,
    "partitioned_cold": _partitioned_cold,
    "partitioned_scaled": _partitioned_scaled,
    "serving_load": _serving_load_recorded,
    "multipoint_recycle": _multipoint_recycle,
    "obs_overhead": _obs_overhead,
    "health_overhead": _health_overhead,
}


def workload_names() -> list[str]:
    """All registered workload names, in registry order."""
    return list(WORKLOADS)


def _workload_metrics() -> dict:
    """JSON-ready attribution snapshot of one workload's run: per-scope
    span totals (from the default perf registry) and cache hit rates
    (from the default metrics registry)."""
    perf = default_registry().snapshot()
    metrics = default_metrics().snapshot()
    counters: dict[str, float] = dict(perf.get("counters") or {})
    for item in metrics.get("counters", ()):
        labels = ",".join(f"{k}={v}"
                          for k, v in sorted(item["labels"].items()))
        key = item["name"] + (f"{{{labels}}}" if labels else "")
        counters[key] = counters.get(key, 0) + item["value"]

    def rate(name: str) -> float | None:
        hits = sum(i["value"] for i in metrics.get("counters", ())
                   if i["name"] == name and i["labels"].get("result") == "hit")
        misses = sum(i["value"] for i in metrics.get("counters", ())
                     if i["name"] == name
                     and i["labels"].get("result") == "miss")
        total = hits + misses
        return hits / total if total else None

    out = {
        "span_totals": {
            scope: {"count": stat["count"],
                    "total_seconds": stat["total_seconds"]}
            for scope, stat in (perf.get("timers") or {}).items()},
        "counters": counters,
    }
    for label, name in (("factorize_cache_hit_rate", "linalg.factorize.cache"),
                        ("store_hit_rate", "store.fetch"),
                        ("warm_set_hit_rate", "serve.warm_set")):
        value = rate(name)
        if value is not None:
            out[label] = value
    return out


def run_workloads(names=None, *, benchmark: str = DEFAULT_BENCHMARK,
                  scale: str = "laptop", repeats: int = 3) -> dict:
    """Run the named workloads (default: all) and return the payload."""
    selected = workload_names() if names is None else list(names)
    for name in selected:
        if name not in WORKLOADS:
            raise ValidationError(
                f"unknown workload {name!r}; "
                f"available: {workload_names()}")
    if benchmark not in BENCHMARKS:
        raise ValidationError(
            f"unknown benchmark {benchmark!r}; "
            f"available: {sorted(BENCHMARKS)}")
    runner = BenchmarkRunner(repeats=repeats)
    runner.set_meta(benchmark=benchmark, scale=scale, repeats=repeats)
    for name in selected:
        # Reset the process-wide telemetry so each workload's snapshot
        # attributes cache hits and span totals to *its* run only.
        default_registry().reset()
        default_metrics().reset()
        entry = dict(WORKLOADS[name](runner, benchmark, scale))
        entry["metrics"] = _workload_metrics()
        runner.record(name, entry)
    return runner.to_payload()
