"""Named performance workloads for the ``repro bench`` runner.

Each workload times one hot path of the reduction stack on a registered
synthetic benchmark grid and returns a JSON-ready entry for
:class:`~repro.perf.bench.BenchmarkRunner`.  The reduction workloads record
both the production (blocked BLAS-3) and the reference (column-wise MGS)
kernel so the *speedup ratio* — the machine-independent quantity the CI
gate enforces — is part of every recorded run:

``ortho_blocked_vs_columnwise``
    The orthogonalisation kernels head-to-head on one PRIMA-style global
    candidate block (``m*l`` Krylov candidates of the grid).
``bdsm_cold``
    Cold BDSM reduction (factorisation cache cleared before every
    repetition), blocked vs. column-wise cluster orthonormalisation.
``prima_cold``
    Cold PRIMA reduction, blocked vs. column-wise global
    orthonormalisation.
``bdsm_pooled_clusters``
    Cold BDSM serial vs. per-cluster chunks fanned over a thread-pool
    :class:`~repro.analysis.engine.SweepEngine`.  Recorded but never gated
    — pool speedups depend on the runner's core count.
``partitioned_cold``
    Cold partitioned reduction (``repro.partition``: shard, reduce the
    subdomains over a thread pool, reassemble) vs. the cold monolithic
    BDSM reduction of the same heterogeneous multi-domain grid, plus the
    partitioned-vs-monolithic transfer-function agreement.  Recorded to
    the main results payload *and* to
    ``benchmarks/results/partitioned_reduce.json``; never gated (pool
    speedups and interface fractions are machine- and grid-dependent).
``partitioned_scaled``
    Cold interface-reduced multilevel partitioned reduction
    (:func:`~repro.partition.multilevel_reduce` with a reduced separator
    basis) vs. the cold monolithic BDSM reduction, on a *port-dominated*
    multi-domain grid — the regime the partition subsystem targets, where
    the monolithic Krylov/projection cost grows with the full port count
    while every shard only sees its own ports plus a few compressed
    interface injections.  Records the speedup, the macromodel sizes and
    the transfer-function error against its configured budget.  Recorded
    to the main payload *and* merged per scale into
    ``benchmarks/results/partitioned_scaled.json`` (so a ``--quick``
    smoke run never clobbers the committed laptop entry); never gated
    in the main payload — the conformance suite asserts on the committed
    JSON instead.
``serving_load``
    The layered serving stack under deterministic popularity-skewed mixed
    query traffic (:mod:`repro.serve.loadgen`): the same request stream is
    replayed through the naive per-request path and the coalescing
    planner of one warm :class:`~repro.store.ModelServer`, every coalesced
    answer is checked bit-identical to its per-request counterpart, and
    the recorded speedup (the QPS ratio) is **gated** — the coalescing
    planner must stay ≥2x the naive path within the usual tolerance.
    QPS and batch-latency percentiles are merged per scale into
    ``benchmarks/results/serving_load.json``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.analysis.engine import SweepEngine
from repro.circuit.benchmarks import BENCHMARKS, make_benchmark
from repro.circuit.mna import assemble_mna
from repro.circuit.powergrid import build_power_grid, make_multidomain_spec
from repro.core.bdsm import BDSMOptions, bdsm_reduce
from repro.exceptions import ValidationError
from repro.linalg.backends import clear_default_cache
from repro.linalg.krylov import ShiftedOperator, krylov_candidate_blocks
from repro.linalg.orthogonalization import (
    block_orthonormalize,
    modified_gram_schmidt,
)
from repro.mor.prima import prima_reduce
from repro.partition import (
    PartitionedOptions,
    multilevel_reduce,
    partitioned_reduce,
)
from repro.perf.bench import BenchmarkRunner
from repro.validation.error_metrics import rom_agreement_report

__all__ = ["WORKLOADS", "run_workloads", "workload_names"]

#: Where the partitioned-vs-monolithic trajectory is recorded (the
#: acceptance artifact of the partitioned-reduction subsystem).
PARTITIONED_RESULTS_PATH = Path("benchmarks/results/partitioned_reduce.json")

#: Multi-domain grids of the ``partitioned_cold`` workload per scale:
#: (rows, cols, n_ports, n_parts, n_moments).
_PARTITIONED_GRIDS = {
    "smoke": (32, 32, 12, 4, 3),
    "laptop": (64, 64, 24, 4, 4),
}

#: Where the interface-reduced multilevel trajectory is recorded, merged
#: per scale (the acceptance artifact of the interface-reduction PR).
PARTITIONED_SCALED_PATH = Path("benchmarks/results/partitioned_scaled.json")

#: Port-dominated grids of the ``partitioned_scaled`` workload per scale:
#: (rows, cols, n_ports, n_parts, n_moments, levels, interface_order,
#: interface_tol, error_budget).  The port counts are deliberately large —
#: the monolithic Krylov/projection cost is what the partition subsystem
#: amortises, and it scales with ``(ports * moments)^2``.
_SCALED_GRIDS = {
    "smoke": (64, 64, 256, 4, 3, 1, 3, 1e-4, 5e-2),
    "laptop": (256, 256, 3072, 8, 4, 2, 4, 1e-4, 5e-2),
}

#: Where the serving-stack trajectory is recorded, merged per scale (the
#: acceptance artifact of the layered-serving PR).
SERVING_LOAD_PATH = Path("benchmarks/results/serving_load.json")

#: Traffic shape of the ``serving_load`` workload per scale:
#: (n_requests, duplication, transfer_points, sweep_points, clients,
#: batch_size, moments).  Duplication is the popularity-skew assumption
#: the coalescing planner exploits; batch size bounds how many duplicates
#: one plan can see, so the laptop spec pairs heavier skew (12) with
#: larger batches (120) — at that scale per-call overhead is negligible
#: next to the solves and dedup is where the whole win comes from.
_SERVING_SPECS = {
    "smoke": (240, 8.0, 24, 32, 4, 60, 4),
    "laptop": (480, 12.0, 24, 32, 4, 120, 6),
}

#: Grid the reduction workloads run on — the paper's ckt2 (Table II), the
#: scale (smoke/laptop) chosen by the caller.
DEFAULT_BENCHMARK = "ckt2"


def _grid(benchmark: str, scale: str):
    system = make_benchmark(benchmark, scale=scale)
    n_moments = BENCHMARKS[benchmark].matched_moments
    return system, n_moments


def _ortho_kernels(runner: BenchmarkRunner, benchmark: str,
                   scale: str) -> dict:
    system, n_moments = _grid(benchmark, scale)
    operator = ShiftedOperator(system.C, system.G, s0=0.0)
    candidates = np.hstack(
        krylov_candidate_blocks(operator, system.B, n_moments))
    blocked = runner.time_callable(
        lambda: block_orthonormalize(candidates))
    columnwise = runner.time_callable(
        lambda: modified_gram_schmidt(candidates))
    rank_blocked = block_orthonormalize(candidates)[0].shape[1]
    rank_columnwise = modified_gram_schmidt(candidates)[0].shape[1]
    return {
        "seconds": blocked,
        "baseline_seconds": columnwise,
        "speedup": columnwise / blocked,
        "gate": True,
        "grid": system.name,
        "n": int(system.size),
        "candidates": int(candidates.shape[1]),
        "rank_blocked": int(rank_blocked),
        "rank_columnwise": int(rank_columnwise),
    }


def _bdsm_cold(runner: BenchmarkRunner, benchmark: str, scale: str) -> dict:
    system, n_moments = _grid(benchmark, scale)

    def reduce_with(kernel: str) -> float:
        options = BDSMOptions(ortho_kernel=kernel)
        return runner.time_callable(
            lambda: bdsm_reduce(system, n_moments, options=options),
            setup=clear_default_cache)

    blocked = reduce_with("blocked")
    columnwise = reduce_with("columnwise")
    return {
        "seconds": blocked,
        "baseline_seconds": columnwise,
        "speedup": columnwise / blocked,
        "gate": True,
        "grid": system.name,
        "n": int(system.size),
        "ports": int(system.n_ports),
        "n_moments": int(n_moments),
    }


def _prima_cold(runner: BenchmarkRunner, benchmark: str, scale: str) -> dict:
    system, n_moments = _grid(benchmark, scale)

    def reduce_with(kernel: str) -> float:
        return runner.time_callable(
            lambda: prima_reduce(system, n_moments, ortho_kernel=kernel),
            setup=clear_default_cache)

    blocked = reduce_with("blocked")
    columnwise = reduce_with("columnwise")
    return {
        "seconds": blocked,
        "baseline_seconds": columnwise,
        "speedup": columnwise / blocked,
        "gate": True,
        "grid": system.name,
        "n": int(system.size),
        "ports": int(system.n_ports),
        "n_moments": int(n_moments),
    }


def _bdsm_pooled(runner: BenchmarkRunner, benchmark: str, scale: str) -> dict:
    system, n_moments = _grid(benchmark, scale)
    jobs = min(4, os.cpu_count() or 1)

    serial = runner.time_callable(
        lambda: bdsm_reduce(system, n_moments, options=BDSMOptions()),
        setup=clear_default_cache)
    with SweepEngine(jobs=jobs) as engine:
        options = BDSMOptions(engine=engine)  # reducer auto-chunks
        pooled = runner.time_callable(
            lambda: bdsm_reduce(system, n_moments, options=options),
            setup=clear_default_cache)
    return {
        "seconds": pooled,
        "baseline_seconds": serial,
        "speedup": serial / pooled,
        # Pool speedups depend on the machine's core count — recorded for
        # the trajectory, never gated.
        "gate": False,
        "grid": system.name,
        "jobs": int(jobs),
    }


def _partitioned_cold(runner: BenchmarkRunner, benchmark: str,
                      scale: str) -> dict:
    """Partitioned vs. monolithic cold reduce on a multi-domain grid.

    Runs on its own heterogeneous grid (four R/C domains plus a central
    blockage void, see
    :func:`~repro.circuit.powergrid.make_multidomain_spec`) rather than
    the homogeneous ``benchmark`` mesh — sharding is only interesting
    when the subdomains differ.  ``benchmark`` still labels the payload.
    """
    rows, cols, n_ports, n_parts, n_moments = _PARTITIONED_GRIDS.get(
        scale, _PARTITIONED_GRIDS["laptop"])
    spec = make_multidomain_spec(rows, cols, n_ports, seed=3,
                                 name=f"multidomain-{rows}x{cols}-{scale}")
    system = assemble_mna(build_power_grid(spec))
    jobs = min(n_parts, os.cpu_count() or 1)

    # The timed closures capture their last ROM so the agreement report
    # below reuses it instead of paying a fourth reduction of each kind.
    roms: dict[str, object] = {}

    def run_monolithic():
        roms["monolithic"] = bdsm_reduce(system, n_moments)[0]

    monolithic = runner.time_callable(run_monolithic,
                                      setup=clear_default_cache)
    with SweepEngine(jobs=jobs) as engine:
        def run_partitioned():
            roms["partitioned"] = partitioned_reduce(
                system, n_moments, n_parts=n_parts, engine=engine)[0]

        partitioned = runner.time_callable(run_partitioned,
                                           setup=clear_default_cache)

    mono_rom = roms["monolithic"]
    part_rom = roms["partitioned"]
    agreement = rom_agreement_report(mono_rom, part_rom,
                                     np.logspace(5, 9, 7))
    entry = {
        "seconds": partitioned,
        "baseline_seconds": monolithic,
        "speedup": monolithic / partitioned,
        # Interface overhead vs. pool speedup is machine- and
        # grid-dependent — recorded for the trajectory, never gated.
        "gate": False,
        "grid": system.name,
        "n": int(system.size),
        "ports": int(system.n_ports),
        "n_moments": int(n_moments),
        "n_parts": int(n_parts),
        "jobs": int(jobs),
        "partition": part_rom.partition_info,
        "macromodel_size": int(part_rom.size),
        "monolithic_size": int(mono_rom.size),
        "max_rel_error_vs_monolithic": agreement["max_rel_error"],
    }
    payload = {
        "schema": 1,
        "scale": scale,
        "workloads": {"partitioned_cold": entry},
    }
    PARTITIONED_RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    PARTITIONED_RESULTS_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return entry


def _partitioned_scaled(runner: BenchmarkRunner, benchmark: str,
                        scale: str) -> dict:
    """Interface-reduced multilevel vs. monolithic cold reduce, at scale.

    The grid is port-dominated (see ``_SCALED_GRIDS``): the monolithic
    BDSM baseline drags every port through its global Krylov recursion
    and the ``(ports * moments)``-wide congruence projection, while the
    multilevel partitioned reduction gives each shard only its own ports
    plus the compressed interface injections.  One repetition per side —
    the laptop baseline runs for minutes and the recorded quantity is a
    structural multiple, not a timer-noise measurement.
    """
    (rows, cols, n_ports, n_parts, n_moments, levels, interface_order,
     interface_tol, error_budget) = _SCALED_GRIDS.get(
        scale, _SCALED_GRIDS["laptop"])
    spec = make_multidomain_spec(
        rows, cols, n_ports, seed=3,
        name=f"multidomain-scaled-{rows}x{cols}-{scale}")
    system = assemble_mna(build_power_grid(spec))
    interface = PartitionedOptions(interface_order=interface_order,
                                   interface_tol=interface_tol)

    roms: dict[str, object] = {}

    def run_monolithic():
        roms["monolithic"] = bdsm_reduce(system, n_moments)[0]

    def run_multilevel():
        roms["multilevel"] = multilevel_reduce(
            system, n_moments, levels=levels, n_parts=n_parts,
            interface=interface)[0]

    monolithic = runner.time_callable(run_monolithic, repeats=1,
                                      setup=clear_default_cache)
    multilevel = runner.time_callable(run_multilevel, repeats=1,
                                      setup=clear_default_cache)

    mono_rom = roms["monolithic"]
    multi_rom = roms["multilevel"]
    agreement = rom_agreement_report(mono_rom, multi_rom,
                                     np.logspace(5, 9, 7))
    error = float(agreement["max_rel_error"])
    entry = {
        "seconds": multilevel,
        "baseline_seconds": monolithic,
        "speedup": monolithic / multilevel,
        # Machine-dependent wall clock — recorded, never gated here; the
        # partition conformance suite asserts on the committed JSON.
        "gate": False,
        "grid": system.name,
        "n": int(system.size),
        "ports": int(system.n_ports),
        "n_moments": int(n_moments),
        "n_parts": int(n_parts),
        "levels": int(levels),
        "interface_order": int(interface_order),
        "interface_tol": float(interface_tol),
        "partition": multi_rom.partition_info,
        "macromodel_size": int(multi_rom.size),
        "monolithic_size": int(mono_rom.size),
        "max_rel_error_vs_monolithic": error,
        "error_budget": float(error_budget),
        "within_budget": bool(error <= error_budget),
    }
    # Merge by scale: a smoke run updates only its own entry, leaving the
    # committed laptop trajectory untouched.
    payload = {"schema": 1, "scales": {}}
    if PARTITIONED_SCALED_PATH.exists():
        try:
            previous = json.loads(PARTITIONED_SCALED_PATH.read_text())
        except (OSError, ValueError):
            previous = {}
        if isinstance(previous.get("scales"), dict):
            payload["scales"].update(previous["scales"])
    payload["scales"][scale] = entry
    PARTITIONED_SCALED_PATH.parent.mkdir(parents=True, exist_ok=True)
    PARTITIONED_SCALED_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return entry


def _serving_load(runner: BenchmarkRunner, benchmark: str,
                  scale: str) -> dict:
    """Coalescing planner vs. naive per-request serving, bit-checked.

    Reduces ckt1+ckt2 with BDSM and PRIMA into a temporary store, warms a
    :class:`~repro.store.ModelServer` and replays one deterministic
    popularity-skewed request stream (transfer/sweep/IR-drop mix) through
    both planning modes with concurrent client threads.  Each mode runs
    ``runner.repeats`` drives and the best (lowest-wall-clock) drive is
    recorded; one drive per mode collects results for the bit-identity
    check.  The gated quantity is the QPS ratio — machine-independent to
    first order because both paths run the same engine on the same
    models, so the ratio isolates the planner's dedup/coalescing wins.
    """
    import tempfile

    from repro.serve.loadgen import (
        LoadSpec,
        generate_requests,
        results_equal,
        run_load,
    )
    from repro.store.model_store import ModelStore
    from repro.store.server import ModelServer

    (n_requests, duplication, transfer_points, sweep_points, clients,
     batch_size, moments) = _SERVING_SPECS.get(scale,
                                               _SERVING_SPECS["laptop"])
    spec = LoadSpec(n_requests=n_requests, duplication=duplication,
                    transfer_points=transfer_points,
                    sweep_points=sweep_points)
    with tempfile.TemporaryDirectory() as tmp:
        store = ModelStore(tmp)
        for name in ("ckt1", "ckt2"):
            system = make_benchmark(name, scale=scale)
            bdsm_reduce(system, moments, store=store)
            prima_reduce(system, moments, store=store)
        with ModelServer(store) as server:
            server.warm()
            models = {name: server.registry.resolve(name)
                      for name in server.registry.known_names()}
            requests = generate_requests(models, spec)
            runs = {}
            for mode, coalesce in (("naive", False), ("coalesced", True)):
                best = None
                for repeat in range(max(1, runner.repeats)):
                    drive = run_load(server, requests, clients=clients,
                                     batch_size=batch_size,
                                     coalesce=coalesce,
                                     collect_results=repeat == 0)
                    if best is None or drive.seconds < best.seconds:
                        best = drive
                    if repeat == 0:
                        runs[mode + "_results"] = drive.results
                runs[mode] = best
            serving = server.serving_stats()
    naive, coalesced = runs["naive"], runs["coalesced"]
    bit_identical = all(
        results_equal(a, b) for a, b in zip(runs["naive_results"],
                                            runs["coalesced_results"]))
    if not bit_identical:
        raise ValidationError(
            "serving_load: coalesced results diverged from the "
            "per-request path")
    return {
        "seconds": coalesced.seconds,
        "baseline_seconds": naive.seconds,
        # The gated, machine-independent quantity: how much faster the
        # coalescing planner answers the same traffic.
        "speedup": naive.seconds / coalesced.seconds,
        "gate": True,
        "n_requests": int(n_requests),
        "duplication": float(duplication),
        "clients": int(clients),
        "batch_size": int(batch_size),
        "bit_identical": True,
        "coalescing_rate": serving.coalescing_rate,
        "naive_qps": naive.qps,
        "coalesced_qps": coalesced.qps,
        "naive_p50_s": naive.p50,
        "naive_p99_s": naive.p99,
        "coalesced_p50_s": coalesced.p50,
        "coalesced_p99_s": coalesced.p99,
    }


def _serving_load_recorded(runner: BenchmarkRunner, benchmark: str,
                           scale: str) -> dict:
    """:func:`_serving_load`, merged per scale into its results JSON."""
    entry = _serving_load(runner, benchmark, scale)
    payload = {"schema": 1, "scales": {}}
    if SERVING_LOAD_PATH.exists():
        try:
            previous = json.loads(SERVING_LOAD_PATH.read_text())
        except (OSError, ValueError):
            previous = {}
        if isinstance(previous.get("scales"), dict):
            payload["scales"].update(previous["scales"])
    payload["scales"][scale] = entry
    SERVING_LOAD_PATH.parent.mkdir(parents=True, exist_ok=True)
    SERVING_LOAD_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return entry


#: Registry of the named workloads (name -> fn(runner, benchmark, scale)).
WORKLOADS = {
    "ortho_blocked_vs_columnwise": _ortho_kernels,
    "bdsm_cold": _bdsm_cold,
    "prima_cold": _prima_cold,
    "bdsm_pooled_clusters": _bdsm_pooled,
    "partitioned_cold": _partitioned_cold,
    "partitioned_scaled": _partitioned_scaled,
    "serving_load": _serving_load_recorded,
}


def workload_names() -> list[str]:
    """All registered workload names, in registry order."""
    return list(WORKLOADS)


def run_workloads(names=None, *, benchmark: str = DEFAULT_BENCHMARK,
                  scale: str = "laptop", repeats: int = 3) -> dict:
    """Run the named workloads (default: all) and return the payload."""
    selected = workload_names() if names is None else list(names)
    for name in selected:
        if name not in WORKLOADS:
            raise ValidationError(
                f"unknown workload {name!r}; "
                f"available: {workload_names()}")
    if benchmark not in BENCHMARKS:
        raise ValidationError(
            f"unknown benchmark {benchmark!r}; "
            f"available: {sorted(BENCHMARKS)}")
    runner = BenchmarkRunner(repeats=repeats)
    runner.set_meta(benchmark=benchmark, scale=scale, repeats=repeats)
    for name in selected:
        runner.record(name, WORKLOADS[name](runner, benchmark, scale))
    return runner.to_payload()
