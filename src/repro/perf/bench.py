"""Benchmark runner with recorded results and baseline regression gating.

Every performance claim in this library should land with a *recorded*
number.  :class:`BenchmarkRunner` times named workloads (best-of-``repeats``
wall clock), collects their result dictionaries and writes them to
``benchmarks/results/*.json``; :func:`check_regressions` then compares a
fresh run against a checked-in baseline and reports every workload whose
**speedup ratio** regressed beyond a tolerance.

Speedups, not absolute seconds, are what the gate compares: a ratio such
as "blocked orthogonalisation over column-wise" is (to first order)
machine-independent, while raw seconds on a CI runner are not.  Workloads
opt into gating with ``"gate": True`` in their entry; purely informational
timings (e.g. pool speedups on tiny smoke grids, where thread overhead
dominates) record ``"gate": False`` and are skipped by the check.

JSON schema (version 1)::

    {
      "schema": 1,
      "scale": "smoke",
      "workloads": {
        "<name>": {"seconds": 0.01, "speedup": 3.2, "gate": true, ...}
      }
    }
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.exceptions import ValidationError

__all__ = [
    "BenchmarkRunner",
    "check_regressions",
    "load_results",
    "format_workloads",
    "write_results",
]

#: Schema version stamped into every results payload.
SCHEMA_VERSION = 1

#: Fraction a gated speedup may drop below its baseline before failing.
DEFAULT_TOLERANCE = 0.20


class BenchmarkRunner:
    """Times named workloads and accumulates their result records.

    Parameters
    ----------
    repeats:
        Default number of repetitions per timing; the *best* (minimum)
        wall-clock time is kept, which is the standard way to suppress
        scheduler noise on shared machines.
    """

    def __init__(self, repeats: int = 3) -> None:
        if repeats < 1:
            raise ValidationError("repeats must be >= 1")
        self.repeats = repeats
        self._workloads: dict[str, dict] = {}
        self._meta: dict[str, object] = {}

    # ------------------------------------------------------------------ #
    # Timing
    # ------------------------------------------------------------------ #
    def time_callable(self, fn, *, repeats: int | None = None,
                      setup=None) -> float:
        """Best-of-``repeats`` wall-clock seconds of ``fn()``.

        ``setup`` (if given) runs before *every* repetition, outside the
        timed region — use it to clear caches so every repetition is a
        cold run.
        """
        reps = self.repeats if repeats is None else max(1, int(repeats))
        best = None
        for _ in range(reps):
            if setup is not None:
                setup()
            start = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        return float(best)

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record(self, name: str, entry: dict) -> dict:
        """Store one workload's result entry (a JSON-ready dict)."""
        self._workloads[str(name)] = dict(entry)
        return self._workloads[str(name)]

    def set_meta(self, **meta) -> None:
        """Attach top-level metadata (scale, grid sizes, ...)."""
        self._meta.update(meta)

    @property
    def workloads(self) -> dict[str, dict]:
        """The recorded workload entries (by name)."""
        return dict(self._workloads)

    def to_payload(self) -> dict:
        """The JSON payload for this run."""
        return {"schema": SCHEMA_VERSION, **self._meta,
                "workloads": {name: dict(entry)
                              for name, entry in self._workloads.items()}}

    def write(self, path) -> Path:
        """Write the payload to ``path`` (parents created), return it."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_payload(), indent=2,
                                   sort_keys=True) + "\n")
        return path


def write_results(payload: dict, path) -> Path:
    """Write a results payload to ``path`` (parents created), return it."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_results(path) -> dict:
    """Load a results payload, validating the schema version."""
    path = Path(path)
    if not path.exists():
        raise ValidationError(f"benchmark results file {path} does not exist")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValidationError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "workloads" not in payload:
        raise ValidationError(f"{path} is not a benchmark results payload")
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValidationError(
            f"{path} has schema {payload.get('schema')!r}, "
            f"expected {SCHEMA_VERSION}")
    return payload


def check_regressions(current: dict, baseline: dict, *,
                      tolerance: float = DEFAULT_TOLERANCE,
                      only: list[str] | None = None) -> list[str]:
    """Compare a fresh payload against a baseline payload.

    Returns a list of human-readable failure messages (empty = no
    regression).  Only baseline workloads with ``"gate": true`` are
    enforced, and only their ``speedup`` ratios: a gated workload fails
    when it is missing from the current run, or when its speedup dropped
    below ``(1 - tolerance)`` times the baseline speedup.  Speedup floors
    are grid-specific, so mismatched ``benchmark``/``scale`` metadata
    between the payloads is itself a failure rather than a silent
    apples-to-oranges pass.

    Parameters
    ----------
    only:
        Optional workload-name filter: gate only these names (for
        selective runs such as ``repro bench --workload X --check``);
        other gated baseline workloads are skipped instead of reported
        missing.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValidationError("tolerance must be in [0, 1)")
    failures: list[str] = []
    for key in ("benchmark", "scale"):
        base_value = baseline.get(key)
        value = current.get(key)
        if base_value is not None and value is not None \
                and value != base_value:
            failures.append(
                f"{key} mismatch: current results are for {value!r} but "
                f"the baseline was recorded on {base_value!r}")
    if failures:
        return failures
    current_workloads = current.get("workloads", {})
    for name, base_entry in baseline.get("workloads", {}).items():
        if not base_entry.get("gate"):
            continue
        if only is not None and name not in only:
            continue
        entry = current_workloads.get(name)
        if entry is None:
            failures.append(f"{name}: missing from current results")
            continue
        base_speedup = base_entry.get("speedup")
        speedup = entry.get("speedup")
        if base_speedup is None:
            continue
        if speedup is None:
            failures.append(f"{name}: current results record no speedup")
            continue
        floor = float(base_speedup) * (1.0 - tolerance)
        if float(speedup) < floor:
            failures.append(
                f"{name}: speedup {float(speedup):.2f}x regressed below "
                f"{floor:.2f}x (baseline {float(base_speedup):.2f}x "
                f"- {tolerance:.0%} tolerance)")
    return failures


def format_workloads(payload: dict) -> list[dict]:
    """Flatten a payload into printable table rows."""
    rows = []
    for name, entry in sorted(payload.get("workloads", {}).items()):
        row: dict[str, object] = {"workload": name}
        if "seconds" in entry:
            row["seconds"] = round(float(entry["seconds"]), 4)
        if "baseline_seconds" in entry:
            row["baseline (s)"] = round(float(entry["baseline_seconds"]), 4)
        if "speedup" in entry:
            row["speedup"] = f"{float(entry['speedup']):.2f}x"
        row["gated"] = "yes" if entry.get("gate") else "no"
        rows.append(row)
    return rows
