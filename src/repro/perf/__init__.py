"""Performance instrumentation and regression-gated benchmarking.

Contents
--------
``timers``
    Lightweight scoped timers/counters (:func:`scoped_timer`,
    :class:`PerfRegistry`) the reduction hot paths record into.
``bench``
    :class:`BenchmarkRunner` — times named workloads, writes
    ``benchmarks/results/*.json`` payloads, and
    :func:`check_regressions` gates speedup ratios against a checked-in
    baseline.
``workloads``
    The named reduction workloads behind the ``repro bench`` CLI
    subcommand (imported lazily by the CLI — not re-exported here, so the
    instrumented reducers can import :mod:`repro.perf.timers` without a
    cycle).
"""

from repro.perf.bench import (
    BenchmarkRunner,
    check_regressions,
    format_workloads,
    load_results,
)
from repro.perf.timers import (
    PerfRegistry,
    TimerStat,
    default_registry,
    increment_counter,
    scoped_timer,
)

__all__ = [
    "BenchmarkRunner",
    "PerfRegistry",
    "TimerStat",
    "check_regressions",
    "default_registry",
    "format_workloads",
    "increment_counter",
    "load_results",
    "scoped_timer",
]
