"""Lightweight scoped timers and counters for the hot paths.

The reduction and analysis hot paths are instrumented with
:func:`scoped_timer` so a benchmark run (or an interactive session) can ask
*where* the time went — Krylov construction vs. congruence projection vs.
solves — without attaching a profiler.  The accounting is a dictionary
update behind one lock per record, a few hundred nanoseconds per scope, so
it stays on permanently.

Since the observability layer landed, this module is a thin facade over
:mod:`repro.obs`:

* every :class:`TimerStat` carries a bounded
  :class:`~repro.obs.metrics.Reservoir`, so ``as_dict()`` now reports
  ``p50_seconds``/``p99_seconds`` from the one shared percentile
  implementation (0.0 before the first record);
* :func:`scoped_timer` also opens a :func:`~repro.obs.tracing.trace_span`
  of the same name, so every already-instrumented scope
  (``bdsm.cluster_bases``, ``prima.krylov``, ...) shows up in the span
  tree for free when tracing is enabled — and costs one boolean check
  when it is not;
* :meth:`PerfRegistry.merge_snapshot` folds a worker process's snapshot
  back into the parent registry (``SweepEngine`` ships these home at
  chunk completion, so process-pool telemetry is no longer lost).

Usage::

    from repro.perf import default_registry, scoped_timer

    with scoped_timer("bdsm.cluster_bases"):
        ...  # timed work

    default_registry().snapshot()
    # {"timers": {"bdsm.cluster_bases": {"count": 4, "total_seconds": ...,
    #                                    "p50_seconds": ..., ...}},
    #  "counters": {}}

All registry operations are thread-safe (BDSM chunks run on a pool).
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs.metrics import Reservoir
from repro.obs.tracing import trace_span

__all__ = [
    "PerfRegistry",
    "TimerStat",
    "default_registry",
    "increment_counter",
    "scoped_timer",
]


@dataclass
class TimerStat:
    """Accumulated wall-clock statistics of one named scope."""

    count: int = 0
    total_seconds: float = 0.0
    min_seconds: float = math.inf
    max_seconds: float = 0.0
    reservoir: Reservoir = field(default_factory=Reservoir, compare=False)

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total_seconds += seconds
        self.min_seconds = min(self.min_seconds, seconds)
        self.max_seconds = max(self.max_seconds, seconds)
        self.reservoir.observe(seconds)

    @property
    def mean_seconds(self) -> float:
        """Average scope duration (0.0 before the first record)."""
        return self.total_seconds / self.count if self.count else 0.0

    @property
    def p50_seconds(self) -> float:
        """Median duration over the recent window (0.0 when empty)."""
        return self.reservoir.p50

    @property
    def p99_seconds(self) -> float:
        """99th-percentile duration over the recent window (0.0 when
        empty)."""
        return self.reservoir.p99

    def copy(self) -> "TimerStat":
        return TimerStat(self.count, self.total_seconds, self.min_seconds,
                         self.max_seconds, self.reservoir.copy())

    def as_dict(self) -> dict[str, float | int]:
        """JSON-ready summary of this stat."""
        return {
            "count": self.count,
            "total_seconds": self.total_seconds,
            "mean_seconds": self.mean_seconds,
            "min_seconds": self.min_seconds if self.count else 0.0,
            "max_seconds": self.max_seconds,
            "p50_seconds": self.p50_seconds,
            "p99_seconds": self.p99_seconds,
        }


class PerfRegistry:
    """Thread-safe collection of named timers and counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._timers: dict[str, TimerStat] = {}
        self._counters: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record_timer(self, name: str, seconds: float) -> None:
        """Add one measured duration to timer ``name``."""
        with self._lock:
            stat = self._timers.get(name)
            if stat is None:
                stat = self._timers[name] = TimerStat()
            stat.record(seconds)

    def increment(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    @contextmanager
    def timer(self, name: str):
        """Context manager timing its body into timer ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record_timer(name, time.perf_counter() - start)

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    def timers(self) -> dict[str, TimerStat]:
        """Copy of the accumulated timer stats."""
        with self._lock:
            return {name: stat.copy()
                    for name, stat in self._timers.items()}

    def counters(self) -> dict[str, int]:
        """Copy of the accumulated counters."""
        with self._lock:
            return dict(self._counters)

    def snapshot(self, *, include_samples: bool = False) -> dict:
        """JSON-ready snapshot of every timer and counter.

        With ``include_samples=True`` each timer entry additionally
        carries its reservoir window, making the snapshot suitable for
        exact :meth:`merge_snapshot` across process boundaries.
        """
        timers = self.timers()
        out: dict = {
            "timers": {name: stat.as_dict()
                       for name, stat in sorted(timers.items())},
            "counters": dict(sorted(self.counters().items())),
        }
        if include_samples:
            for name, stat in timers.items():
                out["timers"][name]["samples"] = stat.reservoir.samples()
        return out

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` dict (e.g. shipped home from a
        ``SweepEngine`` process worker) into this registry.

        Counter values and timer count/total/min/max add exactly; timer
        percentile windows merge exactly when the snapshot was taken
        with ``include_samples=True`` (otherwise the incoming window is
        unknown and only the scalar stats merge).
        """
        with self._lock:
            for name, entry in (snapshot.get("timers") or {}).items():
                stat = self._timers.get(name)
                if stat is None:
                    stat = self._timers[name] = TimerStat()
                incoming_count = int(entry.get("count", 0))
                if not incoming_count:
                    continue
                stat.count += incoming_count
                stat.total_seconds += entry.get("total_seconds", 0.0)
                stat.min_seconds = min(stat.min_seconds,
                                       entry.get("min_seconds", math.inf))
                stat.max_seconds = max(stat.max_seconds,
                                       entry.get("max_seconds", 0.0))
                stat.reservoir.extend_window(entry.get("samples") or ())
            for name, value in (snapshot.get("counters") or {}).items():
                self._counters[name] = self._counters.get(name, 0) + value

    def reset(self) -> None:
        """Drop all accumulated timers and counters."""
        with self._lock:
            self._timers.clear()
            self._counters.clear()


#: Process-wide registry the hot-path instrumentation records into.
_DEFAULT_REGISTRY = PerfRegistry()


def default_registry() -> PerfRegistry:
    """The process-wide :class:`PerfRegistry`."""
    return _DEFAULT_REGISTRY


@contextmanager
def scoped_timer(name: str, registry: PerfRegistry | None = None, **tags):
    """Time the enclosed block into ``registry`` (default: process-wide).

    Also opens a :func:`~repro.obs.tracing.trace_span` of the same name
    (a no-op while tracing is disabled), so every scoped timer doubles
    as a span in the trace tree."""
    with trace_span(name, **tags):
        with (registry or _DEFAULT_REGISTRY).timer(name):
            yield


def increment_counter(name: str, amount: int = 1,
                      registry: PerfRegistry | None = None) -> None:
    """Bump a counter in ``registry`` (default: process-wide)."""
    (registry or _DEFAULT_REGISTRY).increment(name, amount)
