"""Lightweight scoped timers and counters for the hot paths.

The reduction and analysis hot paths are instrumented with
:func:`scoped_timer` so a benchmark run (or an interactive session) can ask
*where* the time went — Krylov construction vs. congruence projection vs.
solves — without attaching a profiler.  The accounting is a dictionary
update behind one lock per record, a few hundred nanoseconds per scope, so
it stays on permanently.

Usage::

    from repro.perf import default_registry, scoped_timer

    with scoped_timer("bdsm.cluster_bases"):
        ...  # timed work

    default_registry().snapshot()
    # {"timers": {"bdsm.cluster_bases": {"count": 4, "total_seconds": ...}},
    #  "counters": {}}

All registry operations are thread-safe (BDSM chunks run on a pool).
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "PerfRegistry",
    "TimerStat",
    "default_registry",
    "increment_counter",
    "scoped_timer",
]


@dataclass
class TimerStat:
    """Accumulated wall-clock statistics of one named scope."""

    count: int = 0
    total_seconds: float = 0.0
    min_seconds: float = math.inf
    max_seconds: float = 0.0

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total_seconds += seconds
        self.min_seconds = min(self.min_seconds, seconds)
        self.max_seconds = max(self.max_seconds, seconds)

    @property
    def mean_seconds(self) -> float:
        """Average scope duration (0.0 before the first record)."""
        return self.total_seconds / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, float | int]:
        """JSON-ready summary of this stat."""
        return {
            "count": self.count,
            "total_seconds": self.total_seconds,
            "mean_seconds": self.mean_seconds,
            "min_seconds": self.min_seconds if self.count else 0.0,
            "max_seconds": self.max_seconds,
        }


class PerfRegistry:
    """Thread-safe collection of named timers and counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._timers: dict[str, TimerStat] = {}
        self._counters: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record_timer(self, name: str, seconds: float) -> None:
        """Add one measured duration to timer ``name``."""
        with self._lock:
            stat = self._timers.get(name)
            if stat is None:
                stat = self._timers[name] = TimerStat()
            stat.record(seconds)

    def increment(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    @contextmanager
    def timer(self, name: str):
        """Context manager timing its body into timer ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record_timer(name, time.perf_counter() - start)

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    def timers(self) -> dict[str, TimerStat]:
        """Copy of the accumulated timer stats."""
        with self._lock:
            return {name: TimerStat(stat.count, stat.total_seconds,
                                    stat.min_seconds, stat.max_seconds)
                    for name, stat in self._timers.items()}

    def counters(self) -> dict[str, int]:
        """Copy of the accumulated counters."""
        with self._lock:
            return dict(self._counters)

    def snapshot(self) -> dict:
        """JSON-ready snapshot of every timer and counter."""
        timers = self.timers()
        return {
            "timers": {name: stat.as_dict()
                       for name, stat in sorted(timers.items())},
            "counters": dict(sorted(self.counters().items())),
        }

    def reset(self) -> None:
        """Drop all accumulated timers and counters."""
        with self._lock:
            self._timers.clear()
            self._counters.clear()


#: Process-wide registry the hot-path instrumentation records into.
_DEFAULT_REGISTRY = PerfRegistry()


def default_registry() -> PerfRegistry:
    """The process-wide :class:`PerfRegistry`."""
    return _DEFAULT_REGISTRY


@contextmanager
def scoped_timer(name: str, registry: PerfRegistry | None = None):
    """Time the enclosed block into ``registry`` (default: process-wide)."""
    with (registry or _DEFAULT_REGISTRY).timer(name):
        yield


def increment_counter(name: str, amount: int = 1,
                      registry: PerfRegistry | None = None) -> None:
    """Bump a counter in ``registry`` (default: process-wide)."""
    (registry or _DEFAULT_REGISTRY).increment(name, amount)
