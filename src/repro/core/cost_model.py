"""Closed-form cost model of Sec. III-B of the paper.

The paper's efficiency argument boils down to three formulas comparing BDSM
with PRIMA for a system with ``m`` input ports when ``l`` moments are
matched (assuming no deflation):

==========================  =======================  ====================
quantity                    PRIMA                     BDSM
==========================  =======================  ====================
orthonormalisation          ``m l (m l - 1) / 2``     ``m l (l - 1) / 2``
(long inner products)
ROM stored non-zeros        ``O(m^2 l^2)``            ``m l^2``
ROM simulation flops        ``O(m^3 l^3)``            ``O(m l^3)``
==========================  =======================  ====================

These functions evaluate the formulas so the ablation benchmark
(``benchmarks/bench_cost_model.py``) can sweep ``m`` and ``l`` and print the
predicted speedup/storage tables, and the tests can cross-check the measured
:class:`~repro.linalg.orthogonalization.OrthoStats` against the predictions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ValidationError
from repro.linalg.orthogonalization import theoretical_inner_products

__all__ = [
    "orthonormalization_inner_products",
    "rom_nonzeros",
    "simulation_flops",
    "CostComparison",
    "sweep_cost_model",
]

_METHODS = ("BDSM", "PRIMA")


def _check(m: int, l: int, method: str) -> str:
    if m < 1 or l < 1:
        raise ValidationError("m and l must be positive")
    method = method.upper()
    if method not in _METHODS:
        raise ValidationError(
            f"unknown method {method!r}; choose from {_METHODS}")
    return method


def orthonormalization_inner_products(m: int, l: int,
                                      method: str = "BDSM") -> int:
    """Long-vector inner products needed by the orthonormalisation step."""
    method = _check(m, l, method)
    return theoretical_inner_products(m, l, clustered=(method == "BDSM"))


def rom_nonzeros(m: int, l: int, method: str = "BDSM") -> int:
    """Stored non-zeros of the ROM's ``C_r``/``G_r`` (+ ``B_r``) matrices.

    BDSM stores ``m`` dense ``l x l`` blocks per matrix plus ``m`` reduced
    input vectors of length ``l``; PRIMA stores two dense ``(m l) x (m l)``
    matrices plus a dense ``(m l) x m`` input matrix.
    """
    method = _check(m, l, method)
    if method == "BDSM":
        return 2 * m * l * l + m * l
    q = m * l
    return 2 * q * q + q * m


def simulation_flops(m: int, l: int, method: str = "BDSM") -> int:
    """Leading-order flop count of one ROM factorisation during simulation.

    A transient / frequency step requires factorising the (shifted) reduced
    pencil: ``m`` independent ``l x l`` factorisations for BDSM
    (``O(m l^3)``), one dense ``(m l) x (m l)`` factorisation for PRIMA
    (``O(m^3 l^3)``).  Constant factors are dropped, as in the paper.
    """
    method = _check(m, l, method)
    if method == "BDSM":
        return m * l ** 3
    return (m * l) ** 3


@dataclass(frozen=True)
class CostComparison:
    """Predicted PRIMA-vs-BDSM costs for one ``(m, l)`` operating point."""

    m: int
    l: int
    prima_inner_products: int
    bdsm_inner_products: int
    prima_nonzeros: int
    bdsm_nonzeros: int
    prima_sim_flops: int
    bdsm_sim_flops: int

    @property
    def ortho_speedup(self) -> float:
        """Predicted orthonormalisation speedup of BDSM over PRIMA."""
        return self.prima_inner_products / max(self.bdsm_inner_products, 1)

    @property
    def storage_ratio(self) -> float:
        """Predicted ROM storage ratio (PRIMA / BDSM)."""
        return self.prima_nonzeros / max(self.bdsm_nonzeros, 1)

    @property
    def simulation_speedup(self) -> float:
        """Predicted ROM simulation speedup (the paper's ``10^6x`` example
        corresponds to ``m = 1000``)."""
        return self.prima_sim_flops / max(self.bdsm_sim_flops, 1)

    def as_row(self) -> dict[str, object]:
        """Flatten into a report row."""
        return {
            "m": self.m,
            "l": self.l,
            "PRIMA ortho": self.prima_inner_products,
            "BDSM ortho": self.bdsm_inner_products,
            "ortho speedup": round(self.ortho_speedup, 2),
            "PRIMA nnz": self.prima_nonzeros,
            "BDSM nnz": self.bdsm_nonzeros,
            "storage ratio": round(self.storage_ratio, 2),
            "sim speedup": round(self.simulation_speedup, 2),
        }


def compare_costs(m: int, l: int) -> CostComparison:
    """Evaluate all three cost formulas for one ``(m, l)`` point."""
    return CostComparison(
        m=m, l=l,
        prima_inner_products=orthonormalization_inner_products(m, l, "PRIMA"),
        bdsm_inner_products=orthonormalization_inner_products(m, l, "BDSM"),
        prima_nonzeros=rom_nonzeros(m, l, "PRIMA"),
        bdsm_nonzeros=rom_nonzeros(m, l, "BDSM"),
        prima_sim_flops=simulation_flops(m, l, "PRIMA"),
        bdsm_sim_flops=simulation_flops(m, l, "BDSM"),
    )


def sweep_cost_model(port_counts, moment_counts) -> list[CostComparison]:
    """Evaluate the cost model over a grid of ``m`` and ``l`` values."""
    comparisons = []
    for m in port_counts:
        for l in moment_counts:
            comparisons.append(compare_costs(int(m), int(l)))
    return comparisons
