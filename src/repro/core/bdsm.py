"""BDSM: block-diagonal structured model order reduction (Algorithm 1).

The reduction proceeds exactly as the paper's Algorithm 1:

1.  factorise the shifted pencil ``(s0 C - G)`` once (sparse LU);
2.  compute the candidate blocks ``M_j = A^{j-1} (s0 C - G)^{-1} B`` for
    ``j = 1..l`` with shared solves;
3.  *cluster* the candidate vectors by input column and orthonormalise each
    group separately, producing the thin bases ``V(i) in R^{n x l}``;
4.  congruence-project each split system:
    ``C_ir = V(i)^T C V(i)``, ``G_ir = V(i)^T G V(i)``,
    ``b_ir = V(i)^T b_i``, ``L_ir = L V(i)``;
5.  assemble the block-diagonal ROM of Eq. (14).

The implementation adds two practical features on top of the paper:

* ports are processed in chunks (``port_chunk_size``) — because the groups
  are orthonormalised independently anyway, chunking changes nothing
  numerically, but it bounds the peak memory at ``n * chunk * l`` floats
  instead of ``n * m * l``, which is what lets BDSM run on the largest
  benchmarks where the dense methods break down;
* chunks can be fanned across a :class:`~repro.analysis.engine.SweepEngine`
  worker pool (``BDSMOptions.engine``, or a transient thread engine built
  from ``n_workers``) — the paper points out that the block-diagonal
  structure "allows for parallel calculations"; every chunk shares the one
  cached pencil factorisation and the per-chunk work (sparse solves + BLAS
  projections) releases the GIL, so threads give a real speedup on
  multi-core machines without changing the result.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.analysis.engine import SweepEngine
from repro.core.structured_rom import BlockDiagonalROM, ROMBlock
from repro.exceptions import ReductionError
from repro.linalg.backends import SolverOptions
from repro.linalg.krylov import ShiftedOperator, column_clustered_krylov_bases
from repro.linalg.orthogonalization import OrthoStats
from repro.linalg.sparse_utils import to_csr
from repro.mor.base import ResourceBudget
from repro.obs.health import begin_reduce_health, finish_reduce_health
from repro.obs.tracing import traced
from repro.perf.timers import scoped_timer

__all__ = ["BDSMOptions", "bdsm_reduce", "bdsm_store_options"]


@dataclass(frozen=True)
class BDSMOptions:
    """Tuning knobs of :func:`bdsm_reduce`.

    Attributes
    ----------
    port_chunk_size:
        Number of input ports whose Krylov bases are built simultaneously.
        ``None`` processes all ports at once when running serially
        (fastest, most memory) and auto-chunks to roughly two chunks per
        worker when a pool is in play (``engine`` set or ``n_workers >
        1``); small explicit values bound memory on very wide systems.
    keep_projection:
        Store each per-port basis ``V(i)`` on its block (needed for state
        reconstruction; costs ``n*l`` floats per port).
    deflation_tol:
        Relative tolerance for dropping linearly dependent vectors inside a
        group; deflated blocks simply end up smaller than ``l``.
    n_workers:
        Number of workers processing port chunks concurrently. ``1``
        (default) is sequential; values above 1 only make sense together
        with ``port_chunk_size`` so there is more than one chunk.
    solver:
        Optional :class:`~repro.linalg.backends.SolverOptions` for the
        shifted-pencil solves (backend choice, caching, iterative
        parameters).  With caching on, repeated reductions of the same grid
        at the same ``s0`` — and analyses at the same shift — reuse the
        pencil factorisation.
    ortho_kernel:
        Orthonormalisation kernel used inside each cluster (``"blocked"``
        — the BLAS-3 default — or ``"columnwise"``, see
        :data:`~repro.linalg.krylov.ORTHO_KERNELS`).  Both kernels span
        the same per-port subspaces, so the ROM is equivalent up to an
        orthogonal change of each block's coordinates (same poles and
        transfer function); the choice does not enter the store key.
    engine:
        Optional :class:`~repro.analysis.engine.SweepEngine` whose worker
        pool processes the independent port chunks (all sharing the one
        cached pencil factorisation).  Takes precedence over
        ``n_workers``; when only ``n_workers > 1`` is set, a transient
        thread-pool engine is created for the reduction.
    """

    port_chunk_size: int | None = None
    keep_projection: bool = False
    deflation_tol: float = 1e-12
    n_workers: int = 1
    solver: SolverOptions | None = None
    ortho_kernel: str = "blocked"
    engine: SweepEngine | None = field(default=None, compare=False)


def bdsm_store_options(n_moments: int, *, s0: complex = 0.0,
                       options: BDSMOptions | None = None) -> dict:
    """The options record :func:`bdsm_reduce` memoizes under in a
    :class:`~repro.store.ModelStore` — the one true key builder, so CLI
    pre-checks (``--from-store``, ``query``) agree with the reducer.

    Only knobs that change the ROM numerically enter the key; chunking and
    worker counts do not (chunked processing is numerically identical).
    """
    opts = options or BDSMOptions()
    return {"n_moments": int(n_moments), "s0": complex(s0),
            "deflation_tol": float(opts.deflation_tol),
            "keep_projection": bool(opts.keep_projection)}


@traced("bdsm.reduce")
def bdsm_reduce(system, n_moments: int, *, s0: complex = 0.0,
                options: BDSMOptions | None = None,
                budget: ResourceBudget | None = None,
                store=None):
    """Reduce ``system`` with BDSM, matching ``n_moments`` per input column.

    Parameters
    ----------
    system:
        Object exposing sparse ``C, G, B, L`` in the paper's convention
        (``C dx/dt = G x + B u``).
    n_moments:
        Number of moments ``l`` matched for every column of the transfer
        matrix (the ROM order is ``m * l`` barring deflation).
    s0:
        Expansion point (0 gives DC-centred moments; any point where
        ``s0 C - G`` is non-singular works).
    options:
        Optional :class:`BDSMOptions`.
    budget:
        Optional :class:`~repro.mor.base.ResourceBudget`; BDSM's working set
        is ``n x chunk x l`` so it stays far below the dense methods' needs,
        but the guard is honoured for fairness in the Table II harness.
    store:
        Optional :class:`~repro.store.ModelStore`.  The reduction is then
        memoized *across processes*: if the store holds a ROM for this
        exact system content, ``(n_moments, s0, deflation_tol,
        keep_projection)`` and method, it is loaded instead of re-reduced
        (a store hit; the returned stats are empty and the time is the
        load time); otherwise the freshly-built ROM is saved.  Chunking
        and worker-count knobs do not enter the key — they change nothing
        numerically.

    Returns
    -------
    tuple(BlockDiagonalROM, OrthoStats, float)
        The structured ROM, the orthonormalisation operation counts
        (``m * l * (l-1) / 2`` inner products up to re-orthogonalisation),
        and the wall-clock build time in seconds.
    """
    if n_moments < 1:
        raise ReductionError("n_moments must be >= 1")
    opts = options or BDSMOptions()
    budget = budget or ResourceBudget.unlimited()

    store_key = None
    store_options = None
    if store is not None:
        store_options = bdsm_store_options(n_moments, s0=s0, options=opts)
        store_key = store.key_for(system, "BDSM", store_options)
        load_start = time.perf_counter()
        cached = store.fetch_key(store_key)
        if cached is not None:
            return cached, OrthoStats(), time.perf_counter() - load_start

    C = to_csr(system.C)
    G = to_csr(system.G)
    B = to_csr(system.B)
    L = to_csr(system.L)
    n, m = B.shape
    p = L.shape[0]
    if opts.n_workers < 1:
        raise ReductionError("n_workers must be >= 1")
    if opts.engine is not None and opts.engine.executor != "thread":
        raise ReductionError(
            "BDSM chunk fan-out needs a thread-pool SweepEngine: the "
            "chunks share one in-process pencil factorisation")
    workers = (opts.engine.resolved_jobs() if opts.engine is not None
               else opts.n_workers)
    if opts.port_chunk_size is None:
        # Serial: one chunk of all ports. Pooled: ~2 chunks per worker so
        # the pool stays busy even when chunks finish unevenly — the one
        # place this heuristic lives (the CLI and bench workloads just
        # hand over an engine).
        chunk = m if workers <= 1 else max(1, -(-m // (2 * workers)))
    else:
        chunk = int(opts.port_chunk_size)
    if chunk < 1:
        raise ReductionError("port_chunk_size must be >= 1")
    budget.check_dense(n, min(chunk, m) * n_moments * max(workers, 1),
                       what="BDSM chunked projection bases")

    start = time.perf_counter()
    health_mark = begin_reduce_health()
    operator = ShiftedOperator(C, G, s0=s0, solver=opts.solver)
    stats = OrthoStats()

    def process_chunk(chunk_columns: list[int],
                      ) -> tuple[list[ROMBlock], OrthoStats]:
        with scoped_timer("bdsm.cluster_bases"):
            bases, chunk_stats, _deflated = column_clustered_krylov_bases(
                operator, B, n_moments,
                deflation_tol=opts.deflation_tol,
                columns=chunk_columns,
                kernel=opts.ortho_kernel)
        chunk_blocks: list[ROMBlock] = []
        with scoped_timer("bdsm.project"):
            for local_idx, port in enumerate(chunk_columns):
                V_i = bases[local_idx]
                b_i = B[:, port].toarray().reshape(-1)
                chunk_blocks.append(ROMBlock(
                    index=port,
                    C=V_i.T @ (C @ V_i),
                    G=V_i.T @ (G @ V_i),
                    b=V_i.T @ b_i,
                    L=np.asarray(L @ V_i),
                    basis=V_i if opts.keep_projection else None))
        return chunk_blocks, chunk_stats

    chunk_lists = [list(range(s, min(s + chunk, m)))
                   for s in range(0, m, chunk)]
    blocks: list[ROMBlock] = []
    # The per-cluster chunks are independent (that is the paper's "allows
    # for parallel calculations" remark) and all share the one pencil
    # factorisation held by ``operator``, so they fan out over a
    # SweepEngine pool: the caller's engine if provided, else a transient
    # thread-pool engine sized by ``n_workers``.
    engine = opts.engine
    transient_engine = None
    if engine is None and opts.n_workers > 1 and len(chunk_lists) > 1:
        engine = transient_engine = SweepEngine(jobs=opts.n_workers)
    try:
        if engine is not None and len(chunk_lists) > 1:
            results = engine.map_scenarios(process_chunk, chunk_lists)
        else:
            results = [process_chunk(cols) for cols in chunk_lists]
    finally:
        if transient_engine is not None:
            transient_engine.close()
    for chunk_blocks, chunk_stats in results:
        blocks.extend(chunk_blocks)
        stats.merge(chunk_stats)

    rom = BlockDiagonalROM(
        blocks, n_outputs=p, s0=s0, n_moments=n_moments,
        original_size=n, original_ports=m,
        name=f"{getattr(system, 'name', 'system')}-BDSM")
    finish_reduce_health(health_mark, rom, stats, method="BDSM")
    elapsed = time.perf_counter() - start
    if store is not None:
        store.put(store_key, rom, method="BDSM", options=store_options,
                  system_name=getattr(system, "name", None))
    return rom, stats, elapsed
