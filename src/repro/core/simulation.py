"""Structure-exploiting transient simulation of block-diagonal ROMs.

The generic :class:`~repro.analysis.transient.TransientAnalysis` treats a
BDSM ROM as one sparse system and already benefits from its sparsity through
the sparse LU.  This module goes one step further and implements the
simulation scheme the paper's ``O(m l^3)`` claim really refers to: because
the reduced blocks are completely decoupled except through the shared input
vector, each block can be stepped *independently* with its own dense ``l x l``
factorisation, and the outputs are summed,

    y(t) = sum_i  L_i z_i(t),
    (C_i/h - G_i) z_i^{k+1} = (C_i/h) z_i^k + b_i u_i(t_{k+1}).

This is embarrassingly parallel over ports; the implementation below is
sequential but factorises each tiny block exactly once, so the per-step cost
is ``O(m l^2)`` after an ``O(m l^3)`` setup — versus ``O((m l)^2)`` per step
for a dense ROM.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.sources import SourceBank
from repro.analysis.transient import TransientResult
from repro.core.structured_rom import BlockDiagonalROM
from repro.exceptions import SimulationError
from repro.linalg.backends import SolverOptions, get_solver

__all__ = ["simulate_blockwise"]


def simulate_blockwise(rom: BlockDiagonalROM, sources: SourceBank, *,
                       t_stop: float, dt: float,
                       method: str = "backward_euler",
                       solver: SolverOptions | None = None) -> TransientResult:
    """Fixed-step transient simulation of a BDSM ROM, block by block.

    Parameters
    ----------
    rom:
        The block-diagonal ROM to simulate (zero initial state).
    sources:
        One waveform per input port.
    t_stop, dt:
        Simulation horizon and fixed step size.
    method:
        ``"backward_euler"`` or ``"trapezoidal"``.
    solver:
        Optional :class:`~repro.linalg.backends.SolverOptions`; the tiny
        ``l x l`` stepping pencils auto-select the dense LAPACK backend.
        By default the per-block factors are NOT cached: a realistic ROM
        has more blocks (one per port, up to 1429 in the paper's grids)
        than the shared LRU cache has slots, so caching them would thrash
        the cache and evict expensive full-grid factors while hitting
        nothing on re-simulation.  To make re-simulation skip the
        ``O(m l^3)`` setup, pass options with caching enabled *and* size
        the cache to at least the block count, e.g.
        ``set_default_cache(FactorizationCache(capacity=2 * rom.n_blocks))``.

    Returns
    -------
    TransientResult
        Same container as the generic integrator, so results are directly
        comparable (the tests check they agree to round-off).
    """
    if not isinstance(rom, BlockDiagonalROM):
        raise SimulationError(
            "simulate_blockwise only accepts a BlockDiagonalROM; use "
            "TransientAnalysis for other systems")
    if t_stop <= 0.0 or dt <= 0.0 or dt > t_stop:
        raise SimulationError("need 0 < dt <= t_stop")
    if method not in ("backward_euler", "trapezoidal"):
        raise SimulationError(f"unknown method {method!r}")
    if sources.n_ports != rom.n_ports:
        raise SimulationError(
            f"source bank drives {sources.n_ports} ports but the ROM has "
            f"{rom.n_ports}")

    n_steps = int(np.floor(t_stop / dt + 1e-12)) + 1
    times = np.arange(n_steps) * dt
    outputs = np.zeros((rom.n_outputs, n_steps))

    # Pre-factorise every block once (the O(m l^3) setup).
    if solver is None:
        solver = SolverOptions(use_cache=False)
    factorisations = []
    for block in rom.blocks:
        if method == "backward_euler":
            lhs = block.C / dt - block.G
            rhs_mat = block.C / dt
        else:
            lhs = 2.0 * block.C / dt - block.G
            rhs_mat = 2.0 * block.C / dt + block.G
        factorisations.append((get_solver(lhs, options=solver), rhs_mat))

    states = [np.zeros(block.order) for block in rom.blocks]
    u_prev = sources(float(times[0]))
    for k in range(1, n_steps):
        u_next = sources(float(times[k]))
        accumulated = np.zeros(rom.n_outputs)
        for idx, block in enumerate(rom.blocks):
            block_solver, rhs_mat = factorisations[idx]
            if method == "backward_euler":
                rhs = rhs_mat @ states[idx] + block.b * u_next[block.index]
            else:
                rhs = rhs_mat @ states[idx] + block.b * (
                    u_prev[block.index] + u_next[block.index])
            states[idx] = block_solver.solve(rhs)
            accumulated += block.L @ states[idx]
        outputs[:, k] = accumulated
        u_prev = u_next

    return TransientResult(times=times, outputs=outputs, states=None,
                           label=rom.name, method=method)
