"""Multi-point BDSM.

The paper develops BDSM at a single expansion point and notes that "the
multi-point projection follows analogously".  This module implements that
extension: for every input column ``i`` the bases computed at each expansion
point are concatenated and re-orthonormalised *within the group*, so the
per-port block grows to (at most) ``l * k`` for ``k`` points but the global
ROM stays block-diagonal.  Real and imaginary parts of complex-point bases
are split so the ROM remains real.

With ``recycle=True`` every port group carries a
:class:`~repro.linalg.recycle.RecycleWorkspace` across the expansion
points: a port whose candidate at a new shift is already captured by its
accumulated group basis drops out of the shared solve recursion, skipping
its remaining shifted solves at that point.  ``rom.recycle_stats`` /
``rom.solve_counts`` record the hits and the per-point solve columns.
Recycling off (the default) is bit-identical to the from-scratch path.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

import numpy as np

from repro.core.bdsm import BDSMOptions
from repro.core.structured_rom import BlockDiagonalROM, ROMBlock
from repro.exceptions import ReductionError
from repro.linalg.krylov import ShiftedOperator, column_clustered_krylov_bases
from repro.linalg.orthogonalization import OrthoStats, block_orthonormalize
from repro.linalg.recycle import (
    DEFAULT_RECYCLE_TOL,
    RecycleStats,
    RecycleWorkspace,
    recycled_clustered_krylov_bases,
)
from repro.linalg.sparse_utils import to_csr
from repro.mor.base import ResourceBudget
from repro.obs.health import begin_reduce_health, finish_reduce_health
from repro.obs.tracing import trace_span, traced

__all__ = ["multipoint_bdsm_reduce"]


@traced("bdsm.multipoint_reduce")
def multipoint_bdsm_reduce(system, moments_per_point: int,
                           expansion_points: Sequence[complex], *,
                           options: BDSMOptions | None = None,
                           budget: ResourceBudget | None = None,
                           recycle: bool = False,
                           recycle_tol: float = DEFAULT_RECYCLE_TOL):
    """BDSM with several expansion points.

    Parameters
    ----------
    system:
        Descriptor model exposing ``C, G, B, L``.
    moments_per_point:
        Moments matched per column at *each* expansion point.
    expansion_points:
        The expansion points; real points contribute ``l`` basis vectors per
        port, complex points up to ``2 l`` (real + imaginary parts).
    options:
        Optional :class:`~repro.core.bdsm.BDSMOptions` (chunking, deflation,
        basis retention).
    budget:
        Optional resource guard.
    recycle:
        Carry each port's accumulated group basis from one expansion
        point into the next and skip the shifted solves of directions it
        already captures.  Spans the same per-port subspaces up to
        ``recycle_tol``; leave off for bit-identical moment matching.
    recycle_tol:
        Relative residual below which a port's candidate at a new shift
        counts as captured by its recycled group basis.

    Returns
    -------
    tuple(BlockDiagonalROM, OrthoStats, float)
    """
    points = list(expansion_points)
    if not points:
        raise ReductionError("need at least one expansion point")
    if moments_per_point < 1:
        raise ReductionError("moments_per_point must be >= 1")
    opts = options or BDSMOptions()
    budget = budget or ResourceBudget.unlimited()

    C = to_csr(system.C)
    G = to_csr(system.G)
    B = to_csr(system.B)
    L = to_csr(system.L)
    n, m = B.shape
    p = L.shape[0]
    chunk = m if opts.port_chunk_size is None else int(opts.port_chunk_size)
    if chunk < 1:
        raise ReductionError("port_chunk_size must be >= 1")
    budget.check_dense(
        n, min(chunk, m) * moments_per_point * len(points) * 2,
        what="multipoint BDSM chunked projection bases")

    start = time.perf_counter()
    health_mark = begin_reduce_health()
    stats = OrthoStats()
    recycle_stats = RecycleStats() if recycle else None
    operators = [ShiftedOperator(C, G, s0=point, solver=opts.solver)
                 for point in points]
    # Densify the input matrix once for the whole reduce; every per-point
    # basis construction and per-port projection below slices this one
    # array instead of re-densifying B per (chunk x point).
    B_dense = np.asarray(B.toarray(), dtype=float)

    blocks: list[ROMBlock] = []
    for chunk_start in range(0, m, chunk):
        chunk_columns = list(range(chunk_start, min(chunk_start + chunk, m)))
        if recycle:
            workspaces = [
                RecycleWorkspace(n, recycle_tol=recycle_tol,
                                 deflation_tol=opts.deflation_tol,
                                 stats=recycle_stats)
                for _ in chunk_columns]
            for operator, point in zip(operators, points):
                for workspace in workspaces:
                    workspace.begin_shift()
                with trace_span("multipoint.krylov", point=str(point),
                                recycle=True):
                    point_stats, _ = recycled_clustered_krylov_bases(
                        operator, B_dense, moments_per_point,
                        workspaces=workspaces, columns=chunk_columns)
                stats.merge(point_stats)
            combined_bases = [workspace.basis for workspace in workspaces]
        else:
            per_point_bases: list[list[np.ndarray]] = []
            for operator, point in zip(operators, points):
                with trace_span("multipoint.krylov", point=str(point),
                                recycle=False):
                    bases, point_stats, _ = column_clustered_krylov_bases(
                        operator, B_dense, moments_per_point,
                        deflation_tol=opts.deflation_tol,
                        columns=chunk_columns,
                        kernel=opts.ortho_kernel)
                stats.merge(point_stats)
                if complex(point).imag != 0.0:
                    bases = [np.hstack([np.real(b), np.imag(b)])
                             for b in bases]
                else:
                    bases = [np.asarray(np.real(b), dtype=float)
                             for b in bases]
                per_point_bases.append(bases)

            combined_bases = []
            with trace_span("multipoint.merge", ports=len(chunk_columns)):
                for local_idx in range(len(chunk_columns)):
                    combined = np.empty((n, 0))
                    for bases in per_point_bases:
                        candidate = bases[local_idx]
                        # Whole-point-block merge into the port's group
                        # basis: BLAS-3 CGS2 + rank-revealing QR per
                        # expansion point.
                        new_cols, merge_stats = block_orthonormalize(
                            candidate,
                            initial_basis=(combined if combined.size
                                           else None),
                            deflation_tol=opts.deflation_tol)
                        stats.merge(merge_stats)
                        if new_cols.size:
                            combined = (np.hstack([combined, new_cols])
                                        if combined.size else new_cols)
                    combined_bases.append(combined)

        for local_idx, port in enumerate(chunk_columns):
            combined = combined_bases[local_idx]
            if not combined.size:
                raise ReductionError(
                    f"port {port}: multipoint basis is empty after deflation")
            b_i = B_dense[:, port]
            blocks.append(ROMBlock(
                index=port,
                C=combined.T @ (C @ combined),
                G=combined.T @ (G @ combined),
                b=combined.T @ b_i,
                L=np.asarray(L @ combined),
                basis=combined if opts.keep_projection else None))

    rom = BlockDiagonalROM(
        blocks, n_outputs=p, s0=list(points),
        n_moments=moments_per_point,
        original_size=n, original_ports=m,
        name=f"{getattr(system, 'system', getattr(system, 'name', 'system'))}"
             f"-BDSM-mp")
    rom.solve_counts = [op.solve_count  # type: ignore[attr-defined]
                        for op in operators]
    if recycle_stats is not None:
        rom.recycle_stats = recycle_stats  # type: ignore[attr-defined]
    finish_reduce_health(health_mark, rom, stats, method="BDSM-mp",
                         recycle_stats=recycle_stats)
    elapsed = time.perf_counter() - start
    return rom, stats, elapsed
