"""The block-diagonal structured reduced-order model (paper Eq. 14).

A BDSM ROM consists of ``m`` independent blocks, one per input port:

* ``C_ir = V(i)^T C V(i)`` and ``G_ir = V(i)^T G V(i)`` — small ``l x l``
  matrices forming the diagonal blocks of ``C_r`` / ``G_r``;
* ``b_ir = V(i)^T b_i`` — a length-``l`` vector sitting in column ``i`` of
  the otherwise-zero block-row ``i`` of ``B_r``;
* ``L_ir = L V(i)`` — the ``p x l`` slice of ``L_r``.

The class below stores exactly those pieces, assembles the sparse global
matrices on demand (for generic analyses and the Fig. 4 structure report),
and evaluates the transfer matrix block by block, which is where the
``O(m l^3)`` vs ``O(m^3 l^3)`` simulation advantage comes from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ReductionError
from repro.linalg.blockdiag import (
    BlockLayout,
    block_diag_sparse,
    stack_block_columns,
)
from repro.linalg.sparse_utils import nnz_density
from repro.mor.base import ReducedSystem, ReductionSummary

__all__ = ["ROMBlock", "BlockDiagonalROM"]


@dataclass
class ROMBlock:
    """One per-port block of a BDSM ROM.

    Attributes
    ----------
    index:
        Input-port index ``i`` this block belongs to.
    C, G:
        ``l_i x l_i`` reduced descriptor blocks.
    b:
        Length-``l_i`` reduced input vector ``V(i)^T b_i``.
    L:
        ``p x l_i`` reduced output slice ``L V(i)``.
    basis:
        Optional ``n x l_i`` projection basis ``V(i)`` (kept only when the
        caller asked for state reconstruction).
    """

    index: int
    C: np.ndarray
    G: np.ndarray
    b: np.ndarray
    L: np.ndarray
    basis: np.ndarray | None = None

    def __post_init__(self) -> None:
        # Preserve complexness (int inputs still become float): a grid
        # observed through a complex output matrix must not have the
        # imaginary part of its reduced ``L`` silently discarded — the
        # same coercion bug class ReducedSystem._dense fixed.
        def cast(arr):
            arr = np.asarray(arr)
            dtype = complex if np.iscomplexobj(arr) else float
            return arr.astype(dtype, copy=False)

        self.C = cast(self.C)
        self.G = cast(self.G)
        self.b = cast(self.b).reshape(-1)
        self.L = np.atleast_2d(cast(self.L))
        l = self.C.shape[0]
        if self.C.shape != (l, l) or self.G.shape != (l, l):
            raise ReductionError(
                f"block {self.index}: C and G must be square and equal-sized")
        if self.b.shape[0] != l:
            raise ReductionError(
                f"block {self.index}: b has length {self.b.shape[0]}, "
                f"expected {l}")
        if self.L.shape[1] != l:
            raise ReductionError(
                f"block {self.index}: L has {self.L.shape[1]} columns, "
                f"expected {l}")

    @property
    def order(self) -> int:
        """Size ``l_i`` of this block."""
        return int(self.C.shape[0])

    def transfer_column(self, s: complex) -> np.ndarray:
        """Column ``i`` of the ROM transfer matrix: ``L_i (sC_i - G_i)^{-1} b_i``."""
        pencil = s * self.C - self.G
        try:
            x = np.linalg.solve(pencil, self.b.astype(complex))
        except np.linalg.LinAlgError as exc:
            raise ReductionError(
                f"block {self.index}: reduced pencil singular at s={s}: {exc}"
            ) from exc
        return self.L @ x


class BlockDiagonalROM:
    """Block-diagonal structured ROM produced by BDSM (paper Eq. 14).

    Parameters
    ----------
    blocks:
        One :class:`ROMBlock` per input port, in port order.
    n_outputs:
        Number of outputs ``p`` (checked against every block's ``L``).
    s0:
        Expansion point(s) used during reduction.
    n_moments:
        Moments matched per column.
    original_size, original_ports:
        Dimensions of the full model.
    name:
        Label used in reports.
    """

    def __init__(self, blocks: list[ROMBlock], *, n_outputs: int,
                 s0: complex | list[complex] = 0.0, n_moments: int = 0,
                 original_size: int = 0, original_ports: int = 0,
                 name: str = "bdsm-rom") -> None:
        if not blocks:
            raise ReductionError("a BlockDiagonalROM needs at least one block")
        for block in blocks:
            if block.L.shape[0] != n_outputs:
                raise ReductionError(
                    f"block {block.index} has {block.L.shape[0]} output rows, "
                    f"expected {n_outputs}")
        self.blocks = list(blocks)
        self.layout = BlockLayout(tuple(b.order for b in self.blocks))
        self.n_outputs_ = int(n_outputs)
        self.s0 = s0
        self.n_moments = int(n_moments)
        self.original_size = int(original_size)
        self.original_ports = int(original_ports)
        self.name = name
        self.method = "BDSM"
        self.reusable = True
        self._cache: dict[str, sp.spmatrix] = {}
        self._reduced_system: ReducedSystem | None = None

    # ------------------------------------------------------------------ #
    # Dimensions
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Total reduced order (``m*l`` when no deflation occurred)."""
        return self.layout.total

    @property
    def n_blocks(self) -> int:
        """Number of diagonal blocks (= number of input ports)."""
        return self.layout.n_blocks

    @property
    def n_ports(self) -> int:
        """Number of input ports ``m``."""
        return self.layout.n_blocks

    @property
    def n_outputs(self) -> int:
        """Number of outputs ``p``."""
        return self.n_outputs_

    # ------------------------------------------------------------------ #
    # Assembled global matrices (sparse), cached
    # ------------------------------------------------------------------ #
    @property
    def C(self) -> sp.spmatrix:
        """Global block-diagonal ``C_r`` (sparse CSR)."""
        if "C" not in self._cache:
            self._cache["C"] = block_diag_sparse([b.C for b in self.blocks])
        return self._cache["C"]

    @property
    def G(self) -> sp.spmatrix:
        """Global block-diagonal ``G_r`` (sparse CSR)."""
        if "G" not in self._cache:
            self._cache["G"] = block_diag_sparse([b.G for b in self.blocks])
        return self._cache["G"]

    @property
    def B(self) -> sp.spmatrix:
        """Global ``B_r``: block-row ``i`` holds ``V(i)^T b_i`` in column ``i``."""
        if "B" not in self._cache:
            self._cache["B"] = stack_block_columns(
                [b.b for b in self.blocks], self.layout, self.n_ports)
        return self._cache["B"]

    @property
    def L(self) -> sp.spmatrix:
        """Global ``L_r = [L V(1), ..., L V(m)]`` (sparse CSR of a dense array)."""
        if "L" not in self._cache:
            self._cache["L"] = sp.csr_matrix(
                np.hstack([b.L for b in self.blocks]))
        return self._cache["L"]

    @property
    def nnz(self) -> int:
        """Stored non-zeros in ``C_r``, ``G_r`` and ``B_r`` (paper: ``m l^2``)."""
        return int(self.C.nnz + self.G.nnz + self.B.nnz)

    def density(self) -> dict[str, float]:
        """Per-matrix non-zero density (the Fig. 4 numbers)."""
        return {
            "C": nnz_density(self.C),
            "G": nnz_density(self.G),
            "B": nnz_density(self.B),
            "L": nnz_density(self.L),
        }

    # ------------------------------------------------------------------ #
    # Transfer-function evaluation (block-wise, the fast path)
    # ------------------------------------------------------------------ #
    def transfer_function(self, s: complex) -> np.ndarray:
        """Evaluate the full ``p x m`` transfer matrix column by column.

        Each column costs one ``l x l`` dense solve, so the total is
        ``O(m l^3)`` — the simulation-cost advantage of Sec. III-B.
        """
        H = np.zeros((self.n_outputs, self.n_ports), dtype=complex)
        for col, block in enumerate(self.blocks):
            H[:, col] = block.transfer_column(s)
        return H

    def transfer_entry(self, s: complex, output: int, port: int) -> complex:
        """Evaluate a single transfer-matrix entry using only block ``port``."""
        if not 0 <= port < self.n_ports:
            raise ReductionError(f"port {port} out of range")
        column = self.blocks[port].transfer_column(s)
        return complex(column[output])

    # ------------------------------------------------------------------ #
    # Conversions and reports
    # ------------------------------------------------------------------ #
    def to_reduced_system(self) -> ReducedSystem:
        """Densify into a :class:`~repro.mor.base.ReducedSystem`.

        Useful for feeding the BDSM ROM to code that expects dense matrices
        (e.g. the PMTBR comparison); it deliberately gives up the structure,
        so only do this for small ROMs.  The dense conversion is cached on
        the ROM (the blocks are immutable after construction), so repeated
        queries — a model server densifying per request, the Table I/II
        harness re-measuring — pay the ``toarray`` churn once.
        """
        if self._reduced_system is None:
            self._reduced_system = ReducedSystem(
                C=self.C.toarray(), G=self.G.toarray(), B=self.B.toarray(),
                L=self.L.toarray(), method="BDSM", s0=self._scalar_s0(),
                n_moments=self.n_moments, reusable=True,
                original_size=self.original_size,
                original_ports=self.original_ports,
                name=self.name)
        return self._reduced_system

    def reconstruct_state(self, z: np.ndarray) -> np.ndarray:
        """Lift a reduced state back to original coordinates (needs bases)."""
        z = np.asarray(z, dtype=float).reshape(-1)
        if z.shape[0] != self.size:
            raise ReductionError(
                f"reduced state has length {z.shape[0]}, expected {self.size}")
        if any(block.basis is None for block in self.blocks):
            raise ReductionError(
                "this ROM was built without keep_projection=True")
        x = np.zeros(self.original_size)
        for block, sl in zip(self.blocks,
                             (self.layout.block_slice(i)
                              for i in range(self.n_blocks))):
            x += block.basis @ z[sl]
        return x

    def summary(self, *, mor_seconds: float | None = None,
                ortho_stats=None) -> ReductionSummary:
        """Build the Table II record for this ROM."""
        return ReductionSummary(
            method="BDSM",
            benchmark=self.name,
            original_size=self.original_size,
            original_ports=self.original_ports,
            rom_size=self.size,
            rom_nnz=self.nnz,
            matched_moments=self.n_moments,
            reusable=True,
            mor_seconds=mor_seconds,
            ortho_inner_products=(ortho_stats.inner_products
                                  if ortho_stats else None),
            status="ok",
        )

    def _scalar_s0(self) -> complex:
        if isinstance(self.s0, (list, tuple)):
            return complex(self.s0[0]) if self.s0 else 0.0
        return complex(self.s0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"BlockDiagonalROM(blocks={self.n_blocks}, q={self.size}, "
                f"p={self.n_outputs}, nnz={self.nnz})")
