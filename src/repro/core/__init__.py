"""The paper's contribution: block-diagonal structured MOR (BDSM).

Contents
--------
``splitting``
    Input-matrix splitting (paper Eq. 6-8): ``B = sum_i B_i`` and the
    equivalent parallel composition of split systems.
``structured_rom``
    :class:`BlockDiagonalROM` — the sparse, block-diagonal reduced model of
    Eq. (14), with block-wise transfer-function evaluation and the same
    analysis interface as the full descriptor system.
``bdsm``
    :func:`bdsm_reduce` — Algorithm 1 of the paper (single expansion point),
    with chunked port processing so memory stays bounded on many-port grids.
``multipoint``
    Multi-point BDSM, the straightforward extension the paper mentions for
    wide-band excitations.
``cost_model``
    Closed-form cost expressions of Sec. III-B (orthonormalisation counts,
    ROM non-zeros, simulation flops) used by the ablation benchmarks.
"""

from repro.core.bdsm import BDSMOptions, bdsm_reduce, bdsm_store_options
from repro.core.cost_model import (
    CostComparison,
    orthonormalization_inner_products,
    rom_nonzeros,
    simulation_flops,
    sweep_cost_model,
)
from repro.core.multipoint import multipoint_bdsm_reduce
from repro.core.splitting import (
    parallel_composition,
    split_input_matrix,
    split_system,
)
from repro.core.structured_rom import BlockDiagonalROM

__all__ = [
    "BDSMOptions",
    "BlockDiagonalROM",
    "CostComparison",
    "bdsm_reduce",
    "bdsm_store_options",
    "multipoint_bdsm_reduce",
    "orthonormalization_inner_products",
    "parallel_composition",
    "rom_nonzeros",
    "simulation_flops",
    "split_input_matrix",
    "split_system",
    "sweep_cost_model",
]
