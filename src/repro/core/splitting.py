"""Input-matrix splitting (paper Sec. III-A).

The BDSM derivation starts by writing the input matrix as a sum of rank-one
matrices ``B = sum_i B_i`` where ``B_i`` keeps only the ``i``-th column of
``B`` (Eq. 6).  Each split system ``Sigma_i = (C, G, B_i, L)`` then has a
transfer matrix ``H_i(s)`` whose only non-zero column is the ``i``-th column
of ``H(s)``, so ``H(s) = sum_i H_i(s)`` (Eq. 7) and the original network is
equivalent to the parallel connection of the split systems, realised by the
size-``m*n`` block-diagonal model of Eq. (8).

These constructions are mostly used for validation and teaching: the actual
:func:`~repro.core.bdsm.bdsm_reduce` never materialises the size-``m*n``
model (that is the whole point), but the tests verify the identities the
algorithm rests on.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.circuit.mna import DescriptorSystem
from repro.exceptions import ReductionError
from repro.linalg.sparse_utils import to_csr

__all__ = ["split_input_matrix", "split_system", "parallel_composition"]


def split_input_matrix(B, index: int) -> sp.csr_matrix:
    """Return ``B_i``: same shape as ``B`` but only column ``index`` kept.

    This is Eq. (6) of the paper: ``B_i(:, j) = b_i`` if ``i == j`` else 0.
    """
    B = to_csr(B)
    m = B.shape[1]
    if not 0 <= index < m:
        raise ReductionError(f"column index {index} out of range for m={m}")
    column = B[:, index]
    return _place_column(column, index, m)


def _place_column(column: sp.spmatrix, index: int, m: int) -> sp.csr_matrix:
    """Build an ``n x m`` sparse matrix whose only non-zero column is ``column``."""
    col = column.tocoo()
    rows = col.row
    data = col.data
    cols = np.full_like(rows, index)
    return sp.csr_matrix((data, (rows, cols)), shape=(column.shape[0], m))


def split_system(system: DescriptorSystem, index: int) -> DescriptorSystem:
    """Return the split system ``Sigma_i = (C, G, B_i, L)``.

    The split system shares the (sparse) ``C``, ``G`` and ``L`` matrices with
    the original — only the input matrix changes — so building one is cheap.
    """
    B_i = split_input_matrix(system.B, index)
    return DescriptorSystem(
        C=system.C, G=system.G, B=B_i, L=system.L,
        state_names=list(system.state_names),
        port_names=list(system.port_names),
        output_names=list(system.output_names),
        name=f"{system.name}-split{index}",
    )


def parallel_composition(system: DescriptorSystem,
                         max_ports: int = 64) -> DescriptorSystem:
    """Materialise the size-``m*n`` parallel model of Eq. (8).

    The composed model stacks ``m`` copies of ``(C, G)`` block-diagonally,
    stacks the split input matrices ``B_i`` vertically and repeats ``L``
    horizontally.  Its transfer matrix equals that of the original system —
    a property the tests check — but its size grows with ``m * n``, so the
    construction refuses to run beyond ``max_ports`` ports to avoid
    accidental memory blow-ups (BDSM itself never needs it).
    """
    m = system.n_ports
    if m > max_ports:
        raise ReductionError(
            f"parallel_composition is a validation helper; refusing to "
            f"materialise an m*n model with m={m} > max_ports={max_ports}")
    C = to_csr(system.C)
    G = to_csr(system.G)
    L = to_csr(system.L)
    big_C = sp.block_diag([C] * m, format="csr")
    big_G = sp.block_diag([G] * m, format="csr")
    big_B = sp.vstack([split_input_matrix(system.B, i) for i in range(m)],
                      format="csr")
    big_L = sp.hstack([L] * m, format="csr")
    return DescriptorSystem(
        C=big_C, G=big_G, B=big_B, L=big_L,
        port_names=list(system.port_names),
        output_names=list(system.output_names),
        name=f"{system.name}-parallel",
    )
