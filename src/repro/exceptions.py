"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so downstream users can catch library failures with a
single ``except`` clause while still letting programming errors (``TypeError``,
``KeyError`` from bugs, ...) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CircuitError(ReproError):
    """Raised when a circuit description is malformed or inconsistent."""


class NetlistParseError(CircuitError):
    """Raised when a SPICE-subset netlist cannot be parsed."""

    def __init__(self, message: str, line_number: int | None = None,
                 line: str | None = None) -> None:
        self.line_number = line_number
        self.line = line
        if line_number is not None:
            message = f"line {line_number}: {message}"
        if line is not None:
            message = f"{message!s} [{line.strip()!r}]"
        super().__init__(message)


class StampingError(CircuitError):
    """Raised when MNA stamping fails (e.g. dangling node, bad element)."""


class ReductionError(ReproError):
    """Raised when a model-order-reduction run cannot be completed."""


class DeflationError(ReductionError):
    """Raised when a Krylov basis deflates to nothing (rank loss)."""


class PartitionError(ReductionError):
    """Raised by the partitioned-reduction subsystem.

    Covers infeasible partition requests (more subdomains than the node
    graph can support, a subdomain swallowed whole by the interface
    separator) and assembly inconsistencies between subdomain ROMs and the
    interface coupling blocks.
    """


class SingularSystemError(ReproError):
    """Raised when ``(s0*C - G)`` is singular at the chosen expansion point."""


class SimulationError(ReproError):
    """Raised when a frequency- or time-domain simulation fails."""


class SolverBackendError(ReproError):
    """Raised by the linear-solver backend subsystem.

    Covers requests for unknown backends, backends applied to matrices they
    cannot handle (e.g. Cholesky on an unsymmetric pencil), and iterative
    solves that fail to reach the requested tolerance.
    """


class PassivityError(ReproError):
    """Raised by passivity verification / enforcement routines."""


class ValidationError(ReproError):
    """Raised by validation helpers when inputs are inconsistent."""


class ResourceBudgetExceeded(ReductionError):
    """Raised when a reducer would exceed its configured memory/size budget.

    This mirrors the "break down" entries of Table II in the paper: dense
    projection bases and dense ROMs of PRIMA / SVDMOR exhaust memory on the
    largest many-port benchmarks.  The budget guard lets the benchmark harness
    report the same failure mode deterministically on laptop-scale inputs.
    """

    def __init__(self, message: str, required_bytes: int | None = None,
                 budget_bytes: int | None = None) -> None:
        self.required_bytes = required_bytes
        self.budget_bytes = budget_bytes
        super().__init__(message)
