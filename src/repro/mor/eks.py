"""EKS-style input-dependent reduction (extended Krylov subspace).

The EKS method of Wang & Nguyen (the paper's reference [10]) sidesteps the
many-port problem by folding the *known* input excitation into the input
matrix: with a prescribed input waveform whose Laplace transform is
``u(s) = w * f(s)`` (all ports sharing a common time shape ``f`` with
per-port weights ``w``), the product ``B u(s)`` becomes a single
frequency-dependent "input vector", and the system is reduced as a
single-input multi-output model.  Matching ``l`` moments then needs only an
``n x l`` basis and yields a tiny size-``l`` ROM — the "EKS" rows of
Table II.

The price, which the paper's Fig. 5 makes vivid, is that the ROM captures
moments of the *response under that particular excitation*, not of the
transfer matrix itself: change the input pattern and the ROM is no longer
valid (``reusable=False``).

This implementation supports the excitation model the paper uses in its
experiments ("all ports are assumed to be excited by unit-impulse signals"),
i.e. ``u(s) = w`` constant in ``s``, plus an optional polynomial-in-``1/s``
extension (step/ramp excitations) through ``input_moment_weights``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.exceptions import ReductionError
from repro.linalg.backends import SolverOptions
from repro.linalg.krylov import ShiftedOperator, block_krylov_basis
from repro.linalg.sparse_utils import to_csr
from repro.mor.base import ResourceBudget
from repro.mor.prima import congruence_project

__all__ = ["eks_reduce"]


def eks_reduce(system, n_moments: int, *,
               port_weights: np.ndarray | None = None,
               input_moment_weights: list[np.ndarray] | None = None,
               s0: complex = 0.0,
               budget: ResourceBudget | None = None,
               keep_projection: bool = False,
               deflation_tol: float = 1e-12,
               solver: SolverOptions | None = None):
    """Reduce ``system`` around a prescribed excitation pattern.

    Parameters
    ----------
    system:
        Descriptor model exposing ``C, G, B, L``.
    n_moments:
        Number of response moments ``l`` to capture.  The ROM size equals
        the number of retained basis vectors (at most ``l`` for an impulse
        excitation), matching the very small "ROM size" entries of Table II.
    port_weights:
        Length-``m`` weights of the assumed excitation (default: all ones,
        i.e. every port driven by a unit impulse as in the paper's setup).
    input_moment_weights:
        Optional additional weight vectors ``w_1, w_2, ...`` describing the
        higher moments of the input signal (for step/ramp-like excitations);
        each extra vector widens the starting block by one column.
    s0:
        Expansion point.
    budget:
        Optional resource guard (EKS essentially never trips it — its basis
        is ``n x l``).
    keep_projection:
        Store the projection basis on the ROM.
    deflation_tol:
        Relative deflation tolerance.
    solver:
        Optional :class:`~repro.linalg.backends.SolverOptions` for the
        shifted-pencil solves.

    Returns
    -------
    tuple(ReducedSystem, OrthoStats, float)
        The (non-reusable) ROM, orthonormalisation counts and build time.
    """
    if n_moments < 1:
        raise ReductionError("n_moments must be >= 1")
    budget = budget or ResourceBudget.unlimited()
    B = to_csr(system.B)
    n, m = B.shape
    weights = (np.ones(m) if port_weights is None
               else np.asarray(port_weights, dtype=float).reshape(-1))
    if weights.shape[0] != m:
        raise ReductionError(
            f"port_weights has length {weights.shape[0]}, expected {m}")
    if not np.any(weights):
        raise ReductionError("port_weights must not be all zero")

    start_columns = [np.asarray(B @ weights).reshape(-1)]
    for extra in input_moment_weights or []:
        extra = np.asarray(extra, dtype=float).reshape(-1)
        if extra.shape[0] != m:
            raise ReductionError(
                "every input_moment_weights vector must have length m")
        start_columns.append(np.asarray(B @ extra).reshape(-1))
    start_block = np.column_stack(start_columns)

    budget.check_dense(n, n_moments * start_block.shape[1],
                       what="EKS projection basis")

    start = time.perf_counter()
    operator = ShiftedOperator(system.C, system.G, s0=s0, solver=solver)
    krylov = block_krylov_basis(operator, start_block, n_moments,
                                deflation_tol=deflation_tol)
    rom = congruence_project(
        system, krylov.basis, method="EKS", s0=s0, n_moments=n_moments,
        reusable=False, keep_projection=keep_projection)
    rom.reusable = False
    rom.assumed_port_weights = weights  # type: ignore[attr-defined]
    elapsed = time.perf_counter() - start
    return rom, krylov.stats, elapsed
