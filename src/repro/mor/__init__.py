"""Model-order-reduction baselines the paper compares BDSM against.

Contents
--------
``base``
    Common :class:`ReducedSystem` container, the :class:`ResourceBudget`
    guard reproducing the "break down" entries of Table II, and the
    :class:`ReductionSummary` record used by the benchmark harness.
``prima``
    PRIMA: block-Arnoldi congruence projection (Odabasioglu et al.).
``svdmor``
    SVDMOR: SVD-based terminal reduction followed by PRIMA on the thin
    system (Feldmann).
``eks``
    EKS: extended-Krylov-subspace style input-dependent reduction
    (Wang & Nguyen) — fast but not reusable under new excitations.
``rational``
    Multi-point (rational Krylov) projection, the straightforward extension
    mentioned in the paper for wide-band inputs.
``btrunc``
    Poor Man's TBR sampling-based balanced truncation (Phillips & Silveira),
    the paper's reference [7], usable on small systems as an accuracy anchor.
"""

from repro.mor.base import (
    ReducedSystem,
    ReductionSummary,
    ResourceBudget,
)
from repro.mor.btrunc import pmtbr_reduce
from repro.mor.eks import eks_reduce
from repro.mor.prima import prima_reduce, prima_store_options
from repro.mor.rational import multipoint_prima_reduce
from repro.mor.svdmor import svdmor_reduce

__all__ = [
    "ReducedSystem",
    "ReductionSummary",
    "ResourceBudget",
    "eks_reduce",
    "multipoint_prima_reduce",
    "pmtbr_reduce",
    "prima_reduce",
    "prima_store_options",
    "svdmor_reduce",
]
