"""Common containers shared by every reducer in the library.

Three pieces live here:

:class:`ReducedSystem`
    A dense reduced descriptor model with the same interface as the full
    :class:`~repro.circuit.mna.DescriptorSystem`, so frequency and transient
    analyses run unchanged on it.

:class:`ResourceBudget`
    A memory guard.  PRIMA and SVDMOR "break down" on the largest Table II
    benchmarks because their dense projection bases and dense ROMs exhaust
    memory; the budget reproduces that failure mode deterministically (and
    safely) on laptop-scale inputs by estimating the dense storage a reducer
    is about to allocate and raising
    :class:`~repro.exceptions.ResourceBudgetExceeded` when it would not fit.

:class:`ReductionSummary`
    The per-run record (method, CPU time, ROM size, non-zeros, matched
    moments, reusability) that the Table I / Table II harnesses aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ReductionError, ResourceBudgetExceeded
from repro.linalg.orthogonalization import OrthoStats
from repro.linalg.sparse_utils import estimate_dense_bytes, nnz_density

__all__ = ["ReducedSystem", "ReductionSummary", "ResourceBudget"]


@dataclass
class ResourceBudget:
    """Memory budget for dense intermediate storage during reduction.

    Parameters
    ----------
    max_dense_bytes:
        Maximum number of bytes a reducer may allocate for its dense
        projection basis plus its dense ROM matrices.  ``None`` disables the
        guard.
    label:
        Free-form description used in error messages.
    """

    max_dense_bytes: int | None = None
    label: str = "default budget"

    #: Budget loosely corresponding to the paper's 4 GB workstation once the
    #: benchmark sizes are scaled down (see DESIGN.md §5).
    TABLE_II_DEFAULT_BYTES = 192 * 1024 * 1024

    @classmethod
    def table_ii(cls) -> "ResourceBudget":
        """The budget used by the Table II reproduction harness."""
        return cls(max_dense_bytes=cls.TABLE_II_DEFAULT_BYTES,
                   label="Table II scaled 4GB-workstation budget")

    @classmethod
    def unlimited(cls) -> "ResourceBudget":
        """A budget that never rejects an allocation."""
        return cls(max_dense_bytes=None, label="unlimited")

    def check_dense(self, rows: int, cols: int, *, what: str) -> None:
        """Raise if a dense ``rows x cols`` float64 array exceeds the budget."""
        if self.max_dense_bytes is None:
            return
        required = estimate_dense_bytes(rows, cols)
        if required > self.max_dense_bytes:
            raise ResourceBudgetExceeded(
                f"{what} would need a dense {rows}x{cols} array "
                f"({required / 1e6:.1f} MB) exceeding the "
                f"{self.label} of {self.max_dense_bytes / 1e6:.1f} MB",
                required_bytes=required,
                budget_bytes=self.max_dense_bytes,
            )


@dataclass
class ReducedSystem:
    """Dense reduced-order descriptor model ``C_r dz/dt = G_r z + B_r u``.

    The matrices are stored dense (PRIMA / SVDMOR / EKS ROMs *are* dense —
    that is the paper's point) but the interface mirrors
    :class:`~repro.circuit.mna.DescriptorSystem` so analyses are agnostic.

    Attributes
    ----------
    C, G, B, L:
        Reduced matrices (numpy arrays).
    projection:
        Optional ``n x q`` projection basis ``V`` (for state reconstruction
        ``x ~= V z``); omitted when memory matters.
    method:
        Name of the reduction algorithm.
    s0:
        Expansion point used.
    n_moments:
        Moments matched (per column / per block, as defined by the method).
    reusable:
        Whether the ROM remains valid under arbitrary new input waveforms
        (False for EKS-style input-dependent ROMs).
    original_size, original_ports:
        Dimensions of the model that was reduced.
    name:
        Label used in reports.
    """

    C: np.ndarray
    G: np.ndarray
    B: np.ndarray
    L: np.ndarray
    projection: np.ndarray | None = None
    method: str = "projection"
    s0: complex = 0.0
    n_moments: int = 0
    reusable: bool = True
    original_size: int = 0
    original_ports: int = 0
    name: str = "rom"
    const_input: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.C = self._dense(self.C)
        self.G = self._dense(self.G)
        self.B = self._dense(self.B)
        self.L = self._dense(self.L)
        q = self.C.shape[0]
        if self.C.shape != (q, q) or self.G.shape != (q, q):
            raise ReductionError("reduced C and G must be square and equal")
        if self.B.shape[0] != q or self.L.shape[1] != q:
            raise ReductionError("reduced B/L dimensions are inconsistent")
        # Lazy complex casts reused by every transfer evaluation (a sweep
        # calls transfer_function once per frequency point; re-casting B
        # each time re-densified the whole input block per point).
        self._B_complex: np.ndarray | None = None

    @staticmethod
    def _dense(matrix) -> np.ndarray:
        """Densify preserving complexness (int inputs still become float).

        The sparse branch always preserved the stored dtype; the ndarray
        branch used to coerce to ``float`` unconditionally, silently
        dropping the imaginary part of complex reduced pencils (e.g. a
        ROM built around a complex expansion point without the real-split
        trick).
        """
        if sp.issparse(matrix):
            return matrix.toarray()
        arr = np.asarray(matrix)
        if np.iscomplexobj(arr):
            return arr.astype(complex, copy=False)
        return arr.astype(float, copy=False)

    @property
    def B_complex(self) -> np.ndarray:
        """The input matrix pre-cast to complex (cached per ROM)."""
        if self._B_complex is None:
            self._B_complex = self.B.astype(complex)
        return self._B_complex

    # ------------------------------------------------------------------ #
    # DescriptorSystem-compatible interface
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Reduced order ``q``."""
        return int(self.C.shape[0])

    @property
    def n_ports(self) -> int:
        """Number of input ports ``m``."""
        return int(self.B.shape[1])

    @property
    def n_outputs(self) -> int:
        """Number of outputs ``p``."""
        return int(self.L.shape[0])

    @property
    def nnz(self) -> int:
        """Number of (numerically) non-zero stored entries in C, G and B."""
        return int(np.count_nonzero(self.C) + np.count_nonzero(self.G)
                   + np.count_nonzero(self.B))

    def density(self) -> dict[str, float]:
        """Per-matrix non-zero density (Fig. 4 style report)."""
        return {
            "C": nnz_density(self.C),
            "G": nnz_density(self.G),
            "B": nnz_density(self.B),
            "L": nnz_density(self.L),
        }

    def transfer_function(self, s: complex) -> np.ndarray:
        """Evaluate ``H_r(s) = L_r (s C_r - G_r)^{-1} B_r`` densely."""
        pencil = s * self.C - self.G
        try:
            X = np.linalg.solve(pencil, self.B_complex)
        except np.linalg.LinAlgError as exc:
            raise ReductionError(
                f"reduced pencil is singular at s={s}: {exc}") from exc
        return self.L @ X

    def transfer_entry(self, s: complex, output: int, port: int) -> complex:
        """Evaluate one entry of the reduced transfer matrix."""
        pencil = s * self.C - self.G
        x = np.linalg.solve(pencil, self.B_complex[:, port])
        return complex(self.L[output, :] @ x)

    def reconstruct_state(self, z: np.ndarray) -> np.ndarray:
        """Lift a reduced state back to the original coordinates (``x ~= V z``)."""
        if self.projection is None:
            raise ReductionError(
                "this ROM was built without storing the projection basis")
        return self.projection @ np.asarray(z, dtype=float)

    def summary(self, *, mor_seconds: float | None = None,
                ortho_stats: OrthoStats | None = None) -> "ReductionSummary":
        """Build the Table II record for this ROM."""
        return ReductionSummary(
            method=self.method,
            benchmark=self.name,
            original_size=self.original_size,
            original_ports=self.original_ports,
            rom_size=self.size,
            rom_nnz=self.nnz,
            matched_moments=self.n_moments,
            reusable=self.reusable,
            mor_seconds=mor_seconds,
            ortho_inner_products=(ortho_stats.inner_products
                                  if ortho_stats else None),
            status="ok",
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ReducedSystem(method={self.method!r}, q={self.size}, "
                f"m={self.n_ports}, p={self.n_outputs}, nnz={self.nnz})")


@dataclass
class ReductionSummary:
    """One row of the Table I / Table II style reports.

    ``status`` is ``"ok"`` for a completed reduction and ``"break down"``
    when the method exceeded its resource budget, mirroring the wording of
    the paper's Table II.
    """

    method: str
    benchmark: str
    original_size: int
    original_ports: int
    rom_size: int | None
    rom_nnz: int | None
    matched_moments: int | None
    reusable: bool
    mor_seconds: float | None = None
    ortho_inner_products: int | None = None
    status: str = "ok"
    notes: str = ""
    extra: dict = field(default_factory=dict)

    @classmethod
    def break_down(cls, method: str, benchmark: str, original_size: int,
                   original_ports: int, reason: str) -> "ReductionSummary":
        """Record for a method that exceeded its resource budget."""
        return cls(
            method=method, benchmark=benchmark,
            original_size=original_size, original_ports=original_ports,
            rom_size=None, rom_nnz=None, matched_moments=None,
            reusable=True, mor_seconds=None, status="break down",
            notes=reason)

    def as_row(self) -> dict[str, object]:
        """Flatten into a plain dict for the table writer."""
        return {
            "method": self.method,
            "benchmark": self.benchmark,
            "nodes": self.original_size,
            "ports": self.original_ports,
            "MOR time (s)": (None if self.mor_seconds is None
                             else round(self.mor_seconds, 3)),
            "ROM size": self.rom_size,
            "ROM nnz": self.rom_nnz,
            "moments": self.matched_moments,
            "reusable": "yes" if self.reusable else "no",
            "status": self.status,
        }
