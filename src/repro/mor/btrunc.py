"""Poor Man's TBR: sampling-based approximate balanced truncation.

The paper's reference [7] (Phillips & Silveira, "Poor Man's TBR") is the
balanced-truncation family member it contrasts Krylov projection against:
better error control, but too expensive for million-node grids.  We include
it as an accuracy anchor for small and medium systems and as an extra
baseline in the ablation benchmarks.

PMTBR approximates the controllability Gramian by numerical quadrature over
frequency samples,

    X ~= sum_k  w_k * x_k * x_k^H,     x_k = (j*omega_k*C - G)^{-1} B,

collects the (weighted) samples into a matrix ``Z``, takes its SVD and uses
the dominant left singular vectors as a congruence projection basis.  Unlike
exact balanced truncation it never forms or factorises dense ``n x n``
Gramians, so it runs fine on sparse descriptor models with singular ``C``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.exceptions import ReductionError
from repro.linalg.backends import SolverOptions
from repro.linalg.krylov import ShiftedOperator
from repro.linalg.orthogonalization import OrthoStats
from repro.linalg.sparse_utils import to_csr
from repro.mor.base import ResourceBudget
from repro.mor.prima import congruence_project

__all__ = ["pmtbr_reduce"]


def pmtbr_reduce(system, order: int, *,
                 omega_min: float = 1e5, omega_max: float = 1e12,
                 n_samples: int = 20,
                 budget: ResourceBudget | None = None,
                 keep_projection: bool = False,
                 singular_value_tol: float = 1e-12,
                 solver: SolverOptions | None = None):
    """Reduce ``system`` to (at most) ``order`` states with Poor Man's TBR.

    Parameters
    ----------
    system:
        Descriptor model exposing ``C, G, B, L``.
    order:
        Target reduced order (number of dominant singular vectors kept).
    omega_min, omega_max:
        Frequency band (rad/s) over which Gramian samples are taken,
        log-spaced.
    n_samples:
        Number of frequency samples; each costs one sparse factorisation and
        ``m`` solves.
    budget:
        Optional resource guard for the dense sample matrix.
    keep_projection:
        Store the projection basis on the ROM.
    singular_value_tol:
        Relative cut-off below which sample singular vectors are discarded
        even if ``order`` has not been reached.

    Returns
    -------
    tuple(ReducedSystem, OrthoStats, float)
        The ROM (its ``singular_values`` attribute holds the PMTBR spectrum,
        usable as an error indicator), empty orthonormalisation stats (PMTBR
        orthogonalises via SVD, not Gram-Schmidt), and the build time.
    """
    if order < 1:
        raise ReductionError("order must be >= 1")
    if n_samples < 1:
        raise ReductionError("n_samples must be >= 1")
    if omega_min <= 0 or omega_max <= omega_min:
        raise ReductionError("need 0 < omega_min < omega_max")
    budget = budget or ResourceBudget.unlimited()
    B = to_csr(system.B)
    n, m = B.shape
    budget.check_dense(n, 2 * m * n_samples, what="PMTBR sample matrix")

    start = time.perf_counter()
    omegas = np.logspace(np.log10(omega_min), np.log10(omega_max), n_samples)
    samples: list[np.ndarray] = []
    B_dense = B.toarray()
    for omega in omegas:
        op = ShiftedOperator(system.C, system.G, s0=1j * omega,
                             solver=solver)
        x = op.solve(B_dense)
        # Keep the ROM real: real and imaginary parts both enter the basis.
        samples.append(np.real(x))
        samples.append(np.imag(x))
    Z = np.hstack(samples)

    U, sigma, _ = np.linalg.svd(Z, full_matrices=False)
    if sigma.size == 0 or sigma[0] == 0.0:
        raise ReductionError("all PMTBR samples are zero")
    keep = min(order, int(np.sum(sigma > singular_value_tol * sigma[0])))
    if keep < 1:
        raise ReductionError("PMTBR retained no singular vectors")
    V = U[:, :keep]

    rom = congruence_project(
        system, V, method="PMTBR", s0=0.0, n_moments=0, reusable=True,
        keep_projection=keep_projection)
    rom.singular_values = sigma[:keep]  # type: ignore[attr-defined]
    elapsed = time.perf_counter() - start
    return rom, OrthoStats(), elapsed
