"""PRIMA: passive reduced-order interconnect macromodeling algorithm.

The classic block-Arnoldi congruence projection of Odabasioglu, Celik and
Pileggi (the paper's reference [5]) and the main baseline BDSM is compared
against.  Given the descriptor model ``(C, G, B, L)`` and an expansion point
``s0``, PRIMA builds one orthonormal basis of the *block* Krylov subspace

    V = K_l( (s0 C - G)^{-1} C, (s0 C - G)^{-1} B )

and projects congruently: ``C_r = V^T C V`` etc.  The resulting size-``m*l``
ROM matches the first ``l`` block moments of ``H(s)`` but its matrices are
fully dense — the storage and simulation cost the paper's Table I/II and
Fig. 4 quantify.
"""

from __future__ import annotations

import time

import numpy as np

from repro.exceptions import ReductionError
from repro.linalg.backends import SolverOptions
from repro.linalg.krylov import ShiftedOperator, block_krylov_basis
from repro.linalg.orthogonalization import OrthoStats, block_orthonormalize
from repro.linalg.sparse_utils import to_csr
from repro.mor.base import ReducedSystem, ResourceBudget
from repro.obs.health import begin_reduce_health, finish_reduce_health
from repro.obs.tracing import traced
from repro.perf.timers import scoped_timer

__all__ = ["prima_reduce", "prima_store_options", "congruence_project"]

#: Single source of the default deflation tolerance, shared by
#: :func:`prima_reduce` and :func:`prima_store_options` so the store key
#: the CLI predicts can never drift from the one the reducer uses.
_DEFAULT_DEFLATION_TOL = 1e-12


def congruence_project(system, V: np.ndarray, *, method: str,
                       s0: complex, n_moments: int,
                       reusable: bool = True,
                       keep_projection: bool = True) -> ReducedSystem:
    """Apply the congruence transform ``(V^T C V, V^T G V, V^T B, L V)``.

    Shared by PRIMA, SVDMOR (on the thin system), EKS and the multipoint
    reducer; BDSM uses its own block-wise variant.
    """
    V = np.asarray(V)
    if np.iscomplexobj(V):
        raise ReductionError(
            "congruence_project needs a real basis; span the real and "
            "imaginary parts of a complex basis first (the real "
            "rational-Arnoldi trick used by prima_reduce and "
            "multipoint_prima_reduce)")
    V = np.asarray(V, dtype=float)
    if V.ndim != 2:
        raise ReductionError("projection basis must be a 2-D array")
    C = to_csr(system.C)
    G = to_csr(system.G)
    B = to_csr(system.B)
    L = to_csr(system.L)
    if V.shape[0] != C.shape[0]:
        raise ReductionError(
            f"projection basis has {V.shape[0]} rows, system has "
            f"{C.shape[0]} states")
    Cr = V.T @ (C @ V)
    Gr = V.T @ (G @ V)
    # (B^T V)^T keeps B sparse through the product instead of densifying
    # the full n x m input block just to feed a GEMM.
    Br = np.asarray(B.T @ V).T
    Lr = (L @ V)
    Lr = Lr if isinstance(Lr, np.ndarray) else np.asarray(Lr)
    const = getattr(system, "const_input", None)
    const_r = None if const is None else V.T @ np.asarray(const).reshape(-1)
    return ReducedSystem(
        C=Cr, G=Gr, B=Br, L=Lr,
        projection=V if keep_projection else None,
        method=method, s0=s0, n_moments=n_moments, reusable=reusable,
        original_size=int(C.shape[0]), original_ports=int(B.shape[1]),
        name=f"{getattr(system, 'name', 'system')}-{method}",
        const_input=const_r,
    )


def prima_store_options(n_moments: int, *, s0: complex = 0.0,
                        deflation_tol: float = _DEFAULT_DEFLATION_TOL,
                        keep_projection: bool = False) -> dict:
    """The options record :func:`prima_reduce` memoizes under in a
    :class:`~repro.store.ModelStore` — the one true key builder, so CLI
    pre-checks (``--from-store``, ``query``) agree with the reducer."""
    return {"n_moments": int(n_moments), "s0": complex(s0),
            "deflation_tol": float(deflation_tol),
            "keep_projection": bool(keep_projection)}


@traced("prima.reduce")
def prima_reduce(system, n_moments: int, *, s0: complex = 0.0,
                 budget: ResourceBudget | None = None,
                 keep_projection: bool = False,
                 deflation_tol: float = _DEFAULT_DEFLATION_TOL,
                 solver: SolverOptions | None = None,
                 store=None,
                 ortho_kernel: str = "blocked"):
    """Reduce ``system`` with PRIMA, matching ``n_moments`` block moments.

    Parameters
    ----------
    system:
        Object exposing ``C, G, B, L`` in the paper's convention.
    n_moments:
        Number of (block) moments ``l`` to match at ``s0``.
    s0:
        Real or complex expansion point (0 matches DC-centred moments).
    budget:
        Optional :class:`~repro.mor.base.ResourceBudget`; when the dense
        ``n x (m*l)`` basis or the dense ``(m*l) x (m*l)`` ROM would exceed
        it, :class:`~repro.exceptions.ResourceBudgetExceeded` is raised —
        this reproduces the "break down" rows of Table II.
    keep_projection:
        Store the (large, dense) projection basis on the ROM.
    deflation_tol:
        Relative tolerance for dropping linearly dependent Krylov vectors.
    solver:
        Optional :class:`~repro.linalg.backends.SolverOptions` for the
        shifted-pencil solves (backend choice, caching, iterative
        parameters).
    store:
        Optional :class:`~repro.store.ModelStore` memoizing the reduction
        across processes, keyed on the system content and ``(n_moments,
        s0, deflation_tol, keep_projection)``.  On a store hit the ROM is
        loaded instead of rebuilt (empty stats, load time returned).
    ortho_kernel:
        Orthonormalisation kernel (``"blocked"`` — the BLAS-3 default —
        or ``"columnwise"``, see
        :data:`~repro.linalg.krylov.ORTHO_KERNELS`).  The kernels span the
        same subspace, so the ROM is equivalent up to an orthogonal change
        of reduced coordinates (same poles, moments and transfer function);
        the choice therefore does not enter the store key.

    Returns
    -------
    tuple(ReducedSystem, OrthoStats, float)
        The ROM, the orthonormalisation operation counts, and the wall-clock
        build time in seconds.
    """
    if n_moments < 1:
        raise ReductionError("n_moments must be >= 1")
    budget = budget or ResourceBudget.unlimited()

    store_key = None
    store_options = None
    if store is not None:
        store_options = prima_store_options(
            n_moments, s0=s0, deflation_tol=deflation_tol,
            keep_projection=keep_projection)
        store_key = store.key_for(system, "PRIMA", store_options)
        load_start = time.perf_counter()
        cached = store.fetch_key(store_key)
        if cached is not None:
            return cached, OrthoStats(), time.perf_counter() - load_start

    n = system.C.shape[0]
    m = system.B.shape[1]
    q_expected = m * n_moments
    budget.check_dense(n, q_expected, what="PRIMA projection basis")
    budget.check_dense(q_expected, 2 * q_expected, what="PRIMA dense ROM")

    start = time.perf_counter()
    health_mark = begin_reduce_health()
    operator = ShiftedOperator(system.C, system.G, s0=s0, solver=solver)
    with scoped_timer("prima.krylov"):
        krylov = block_krylov_basis(operator, system.B, n_moments,
                                    deflation_tol=deflation_tol,
                                    kernel=ortho_kernel)
    basis = krylov.basis
    stats = krylov.stats
    if np.iscomplexobj(basis) or complex(s0).imag != 0.0:
        # Complex expansion point: span the real and imaginary parts and
        # re-orthonormalise so the ROM stays real — the standard real
        # rational-Arnoldi trick, same as multipoint_prima_reduce.
        split = np.hstack([np.real(basis), np.imag(basis)])
        basis, split_stats = block_orthonormalize(
            np.asarray(split, dtype=float), deflation_tol=deflation_tol)
        merged = OrthoStats()
        merged.merge(krylov.stats)
        merged.merge(split_stats)
        stats = merged
    with scoped_timer("prima.project"):
        rom = congruence_project(
            system, basis, method="PRIMA", s0=s0, n_moments=n_moments,
            reusable=True, keep_projection=keep_projection)
    finish_reduce_health(health_mark, rom, stats, method="PRIMA")
    elapsed = time.perf_counter() - start
    if store is not None:
        store.put(store_key, rom, method="PRIMA", options=store_options,
                  system_name=getattr(system, "name", None))
    return rom, stats, elapsed
