"""Multi-point (rational Krylov) projection.

The paper notes that "if the input signals are distributed in a wide
frequency band, multi-point Krylov-subspace projection may be used to
improve the accuracy" and that both PRIMA and BDSM extend straightforwardly
to several expansion points.  This module provides the PRIMA-side extension
(a block rational Arnoldi in the spirit of Elfadel & Ling, the paper's
reference [15]); the BDSM-side extension lives in
:mod:`repro.core.multipoint`.

The basis is the union of the single-point block Krylov bases at every
expansion point, re-orthonormalised globally; the congruence transform then
matches the prescribed number of moments at each point (up to deflation).

With ``recycle=True`` the per-point builds share a
:class:`~repro.linalg.recycle.RecycleWorkspace`: candidates at shift
``s_{j+1}`` are screened against the basis accumulated at ``s_1 .. s_j``
first, and already-captured directions leave the Krylov recursion before
their remaining shifted solves are spent.  The ROM then carries
``rom.recycle_stats`` / ``rom.solve_counts`` so callers can audit the
skipped work.  Recycling off (the default) is bit-identical to the
from-scratch path.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

import numpy as np

from repro.exceptions import ReductionError
from repro.linalg.backends import SolverOptions
from repro.linalg.krylov import ShiftedOperator, block_krylov_basis
from repro.linalg.orthogonalization import OrthoStats, block_orthonormalize
from repro.linalg.recycle import (
    DEFAULT_RECYCLE_TOL,
    RecycleStats,
    RecycleWorkspace,
    recycled_block_krylov_basis,
)
from repro.mor.base import ResourceBudget
from repro.mor.prima import congruence_project
from repro.obs.health import begin_reduce_health, finish_reduce_health
from repro.obs.tracing import trace_span, traced

__all__ = ["multipoint_prima_reduce"]


@traced("prima.multipoint_reduce")
def multipoint_prima_reduce(system, moments_per_point: int,
                            expansion_points: Sequence[complex], *,
                            budget: ResourceBudget | None = None,
                            keep_projection: bool = False,
                            deflation_tol: float = 1e-12,
                            solver: SolverOptions | None = None,
                            recycle: bool = False,
                            recycle_tol: float = DEFAULT_RECYCLE_TOL):
    """PRIMA-style congruence projection with several expansion points.

    Parameters
    ----------
    system:
        Descriptor model exposing ``C, G, B, L``.
    moments_per_point:
        Block moments matched at *each* expansion point.
    expansion_points:
        The points ``s0^(1), ..., s0^(k)``.  Purely real points keep the
        projection (and hence the ROM) real; complex points are accepted and
        contribute the real and imaginary parts of their basis vectors so the
        ROM stays real — the standard trick for real rational Arnoldi.
    budget:
        Optional resource guard.
    keep_projection:
        Store the combined projection basis on the ROM.
    deflation_tol:
        Relative deflation tolerance for the global re-orthonormalisation.
    solver:
        Optional :class:`~repro.linalg.backends.SolverOptions` for the
        per-point shifted-pencil solves.
    recycle:
        Carry the accumulated basis from each expansion point into the
        next and skip the shifted solves of directions it already
        captures.  Spans the same subspace up to ``recycle_tol``; leave
        off for bit-identical moment matching at every point.
    recycle_tol:
        Relative residual below which a candidate at a new shift counts
        as captured by the recycled basis.

    Returns
    -------
    tuple(ReducedSystem, OrthoStats, float)
    """
    points = list(expansion_points)
    if not points:
        raise ReductionError("need at least one expansion point")
    if moments_per_point < 1:
        raise ReductionError("moments_per_point must be >= 1")
    budget = budget or ResourceBudget.unlimited()
    n = system.C.shape[0]
    m = system.B.shape[1]
    q_upper = m * moments_per_point * len(points) * 2
    budget.check_dense(n, q_upper, what="multipoint PRIMA projection basis")

    start = time.perf_counter()
    health_mark = begin_reduce_health()
    stats = OrthoStats()
    recycle_stats = RecycleStats() if recycle else None
    workspace = (RecycleWorkspace(n, recycle_tol=recycle_tol,
                                  deflation_tol=deflation_tol,
                                  stats=recycle_stats)
                 if recycle else None)
    solve_counts: list[int] = []
    combined = np.empty((n, 0))
    for point in points:
        operator = ShiftedOperator(system.C, system.G, s0=point,
                                   solver=solver)
        if workspace is not None:
            workspace.begin_shift()
            with trace_span("multipoint.krylov", point=str(point),
                            recycle=True) as span:
                point_stats, added, _ = recycled_block_krylov_basis(
                    operator, system.B, moments_per_point,
                    workspace=workspace)
                span.set_tag("columns_added", added)
            stats.merge(point_stats)
            solve_counts.append(operator.solve_count)
            continue
        with trace_span("multipoint.krylov", point=str(point),
                        recycle=False):
            krylov = block_krylov_basis(operator, system.B,
                                        moments_per_point,
                                        deflation_tol=deflation_tol)
        stats.merge(krylov.stats)
        solve_counts.append(operator.solve_count)
        candidate = krylov.basis
        if np.iscomplexobj(candidate) or complex(point).imag != 0.0:
            candidate = np.hstack([np.real(candidate), np.imag(candidate)])
        # Whole-block merge against the combined basis: one BLAS-3 CGS2
        # sweep plus a rank-revealing QR instead of a per-column MGS loop.
        with trace_span("multipoint.merge", point=str(point)):
            new_cols, merge_stats = block_orthonormalize(
                np.asarray(candidate, dtype=float),
                initial_basis=combined if combined.size else None,
                deflation_tol=deflation_tol)
        stats.merge(merge_stats)
        if new_cols.size:
            combined = (np.hstack([combined, new_cols])
                        if combined.size else new_cols)

    if workspace is not None:
        combined = workspace.basis
    if not combined.size:
        raise ReductionError("multipoint basis is empty after deflation")
    rom = congruence_project(
        system, combined, method="multipoint-PRIMA",
        s0=points[0], n_moments=moments_per_point, reusable=True,
        keep_projection=keep_projection)
    rom.expansion_points = list(points)  # type: ignore[attr-defined]
    rom.solve_counts = solve_counts  # type: ignore[attr-defined]
    if recycle_stats is not None:
        rom.recycle_stats = recycle_stats  # type: ignore[attr-defined]
    finish_reduce_health(health_mark, rom, stats,
                         method="multipoint-PRIMA",
                         recycle_stats=recycle_stats)
    elapsed = time.perf_counter() - start
    return rom, stats, elapsed
