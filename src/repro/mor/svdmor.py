"""SVDMOR: terminal reduction by SVD, then PRIMA on the thin system.

Implements the terminal-reduction baseline of the paper's Table I/II
(reference [11], Feldmann).  The idea: when the port responses are strongly
correlated, the ``p x m`` transfer matrix is approximately low rank, so one
can compress the terminals first,

    H(s) ~= U_l * Hhat(s) * U_r^T,     Hhat(s) in C^{phat x mhat},

with ``phat = round(alpha * p)`` and ``mhat = round(alpha * m)`` (``alpha``
is the port-compression ratio, 0.6 in the paper's experiments), and then
reduce the much thinner system ``(C, G, B U_r, U_l^T L)`` with PRIMA.

The correlation basis ``U_l, U_r`` is taken from the SVD of the DC moment
``M0 = L (s0 C - G)^{-1} B``, which is the standard SVDMOR choice.  Because
only the *approximated* transfer matrix's moments are matched, terminal
reduction is error-prone — exactly the inaccuracy Fig. 5(b) shows and that
BDSM avoids.
"""

from __future__ import annotations

import time

import numpy as np

from repro.exceptions import ReductionError
from repro.linalg.backends import SolverOptions
from repro.linalg.krylov import ShiftedOperator, block_krylov_basis
from repro.linalg.sparse_utils import to_csr
from repro.mor.base import ReducedSystem, ResourceBudget
from repro.mor.prima import congruence_project

__all__ = ["svdmor_reduce", "terminal_compression_basis"]


def terminal_compression_basis(system, alpha: float, *, s0: complex = 0.0,
                               solver: SolverOptions | None = None,
                               ) -> tuple[np.ndarray, np.ndarray]:
    """Compute the terminal-compression bases ``(U_l, U_r)`` from ``M0``.

    Parameters
    ----------
    system:
        Descriptor model exposing ``C, G, B, L``.
    alpha:
        Port compression ratio in ``(0, 1]``; the compressed port counts are
        ``max(1, round(alpha * p))`` and ``max(1, round(alpha * m))``.
    s0:
        Expansion point at which the correlation moment is evaluated.

    Returns
    -------
    (U_l, U_r)
        Column-orthonormal bases of sizes ``p x phat`` and ``m x mhat``.
    """
    if not 0.0 < alpha <= 1.0:
        raise ReductionError(f"alpha must lie in (0, 1], got {alpha}")
    operator = ShiftedOperator(system.C, system.G, s0=s0, solver=solver)
    B = to_csr(system.B)
    L = to_csr(system.L)
    X = np.asarray(operator.solve(B.toarray()), dtype=float)
    M0 = np.asarray(L @ X, dtype=float)
    p, m = M0.shape
    phat = max(1, int(round(alpha * p)))
    mhat = max(1, int(round(alpha * m)))
    U, _sigma, Vt = np.linalg.svd(M0, full_matrices=False)
    rank = _sigma.shape[0]
    phat = min(phat, rank)
    mhat = min(mhat, rank)
    return U[:, :phat], Vt[:mhat, :].T


def svdmor_reduce(system, n_moments: int, *, alpha: float = 0.6,
                  s0: complex = 0.0,
                  budget: ResourceBudget | None = None,
                  keep_projection: bool = False,
                  deflation_tol: float = 1e-12,
                  solver: SolverOptions | None = None):
    """Reduce ``system`` with SVDMOR at port-compression ratio ``alpha``.

    The returned :class:`~repro.mor.base.ReducedSystem` is expressed back in
    the *original* terminal space (its ``B_r`` has ``m`` columns and its
    ``L_r`` has ``p`` rows) so that its transfer matrix can be compared
    entrywise against the full model and the other ROMs.  Its state dimension
    is ``mhat * n_moments`` as in Table II's "ROM size" column.

    Returns
    -------
    tuple(ReducedSystem, OrthoStats, float)
        The ROM, the orthonormalisation counts of the inner PRIMA run, and
        the wall-clock build time (including the correlation SVD).
    """
    if n_moments < 1:
        raise ReductionError("n_moments must be >= 1")
    budget = budget or ResourceBudget.unlimited()
    n = system.C.shape[0]
    m = system.B.shape[1]
    p = system.L.shape[0]
    mhat_estimate = max(1, int(round(alpha * m)))
    q_expected = mhat_estimate * n_moments
    budget.check_dense(n, q_expected, what="SVDMOR projection basis")
    budget.check_dense(q_expected, 2 * q_expected, what="SVDMOR dense ROM")
    budget.check_dense(n, m, what="SVDMOR correlation moment solve")

    start = time.perf_counter()
    U_l, U_r = terminal_compression_basis(system, alpha, s0=s0,
                                          solver=solver)

    B_thin = to_csr(system.B).toarray() @ U_r
    L_thin = U_l.T @ to_csr(system.L).toarray()

    class _ThinSystem:
        """Descriptor view with compressed terminals (internal helper)."""

        C = system.C
        G = system.G
        B = B_thin
        L = L_thin
        const_input = getattr(system, "const_input", None)
        name = getattr(system, "name", "system")

    operator = ShiftedOperator(system.C, system.G, s0=s0, solver=solver)
    krylov = block_krylov_basis(operator, B_thin, n_moments,
                                deflation_tol=deflation_tol)
    thin_rom = congruence_project(
        _ThinSystem(), krylov.basis, method="SVDMOR", s0=s0,
        n_moments=n_moments, reusable=True, keep_projection=keep_projection)

    # Map the thin ROM back to the original terminals:
    # H(s) ~= U_l * Hhat_r(s) * U_r^T.
    rom = ReducedSystem(
        C=thin_rom.C, G=thin_rom.G,
        B=thin_rom.B @ U_r.T,
        L=U_l @ thin_rom.L,
        projection=thin_rom.projection if keep_projection else None,
        method="SVDMOR", s0=s0, n_moments=n_moments, reusable=True,
        original_size=n, original_ports=m,
        name=f"{getattr(system, 'name', 'system')}-SVDMOR",
    )
    rom.terminal_bases = (U_l, U_r)  # type: ignore[attr-defined]
    elapsed = time.perf_counter() - start
    return rom, krylov.stats, elapsed
